#!/usr/bin/env bash
# Bench regression guard over a freshly generated BENCH_counting.json.
#
#   tools/bench_guard.sh [BENCH_JSON]        (default: BENCH_counting.json)
#
# Fails (exit 1) when either headline ratio regresses:
#
#   * `level2_best_vs_seed`   < 1.0  — the new counting strategies (vertical
#     occurrence lists / word-packed Shift-And) must beat the frozen seed
#     scanner at level 2 on a single core: an algorithmic win, not
#     parallelism. 1.0 is an absolute floor, not a moving baseline.
#   * `level2_sharded_vs_seed` < MIN_SHARDED — the sharded-engine ratio must
#     stay at or above the committed 1-core artifact's value (minus a small
#     noise allowance), guarding the single-worker dispatch fix: cutting
#     shards without threads to scan them is how this ratio regresses.
#
# The JSON is the hand-rolled report from `reproduce --bench-json` (the
# workspace builds offline without a JSON crate), so the parse here is a
# plain key grep — both keys are emitted top-level, one per line.
set -euo pipefail

BENCH="${1:-BENCH_counting.json}"
# Committed baseline 0.7455 (results/BENCH_counting.json, 1-core container —
# the sequential compiled scan is inherently a bit slower than the seed scan
# at level 2; the new strategies, not sharding, are what beat it) less a
# timing-noise allowance. Multi-core CI runners clear it with real speedup.
MIN_SHARDED="${MIN_SHARDED:-0.70}"
MIN_BEST="${MIN_BEST:-1.0}"

[ -f "$BENCH" ] || { echo "bench_guard: $BENCH not found" >&2; exit 1; }

extract() {
    # "key": 1.2345,  ->  1.2345
    awk -F': ' -v key="\"$1\"" '$1 ~ key { gsub(/[ ,]/, "", $2); print $2; exit }' "$BENCH"
}

best="$(extract level2_best_vs_seed)"
sharded="$(extract level2_sharded_vs_seed)"
[ -n "$best" ] || { echo "bench_guard: level2_best_vs_seed missing from $BENCH" >&2; exit 1; }
[ -n "$sharded" ] || { echo "bench_guard: level2_sharded_vs_seed missing from $BENCH" >&2; exit 1; }

fail=0
if awk -v v="$best" -v min="$MIN_BEST" 'BEGIN { exit !(v+0 < min+0) }'; then
    echo "bench_guard: FAIL level2_best_vs_seed = $best < $MIN_BEST" >&2
    fail=1
else
    echo "bench_guard: ok   level2_best_vs_seed = $best (floor $MIN_BEST)"
fi
if awk -v v="$sharded" -v min="$MIN_SHARDED" 'BEGIN { exit !(v+0 < min+0) }'; then
    echo "bench_guard: FAIL level2_sharded_vs_seed = $sharded < $MIN_SHARDED" >&2
    fail=1
else
    echo "bench_guard: ok   level2_sharded_vs_seed = $sharded (floor $MIN_SHARDED)"
fi
exit "$fail"
