#!/usr/bin/env bash
# Bench regression guard over freshly generated benchmark artifacts.
#
#   tools/bench_guard.sh [BENCH_COUNTING_JSON] [BENCH_SERVE_JSON] [BENCH_GPU_JSON]
#
# Defaults: BENCH_counting.json; the serve and GPU reports are guarded only
# when their arguments are given (CI passes BENCH_serve.json and
# BENCH_gpu.json after generating them).
#
# Counting guard — fails (exit 1) when either headline ratio regresses:
#
#   * `level2_best_vs_seed`   < 1.0  — the new counting strategies (vertical
#     occurrence lists / word-packed Shift-And) must beat the frozen seed
#     scanner at level 2 on a single core: an algorithmic win, not
#     parallelism. 1.0 is an absolute floor, not a moving baseline.
#   * `level2_sharded_vs_seed` < MIN_SHARDED — the sharded-engine ratio must
#     stay at or above the committed 1-core artifact's value (minus a small
#     noise allowance), guarding the single-worker dispatch fix: cutting
#     shards without threads to scan them is how this ratio regresses.
#
# Serve guard — fails when either co-mining headline regresses below the
# committed results/BENCH_serve.json baseline (minus a noise allowance):
#
#   * `comine_vs_solo_scan_ratio` < MIN_COMINE — K same-database clients
#     fused into one union scan per level must stay faster than K solo runs
#     on an open gate.
#   * `saturated_fuse_vs_serial` < MIN_SATURATED — the overload-first
#     scenario: the same burst through a one-slot admission gate must be
#     fused in the waiting room instead of degrading to K serialized solo
#     runs. This is the ratio the pre-admission batch board exists for.
#   * `incremental_vs_rescan_ratio` < MIN_INCREMENTAL — the streaming
#     scenario: counting an append by resuming parked continuations at the
#     stream head must beat recounting the whole grown prefix. The floor is
#     an order of magnitude under the committed artifact: it catches the
#     incremental path silently degrading to a rescan, not timing noise.
#   * `socket_qps_16_clients_vs_1` < MIN_SOCKET_SCALING — the tdm-server
#     socket path: 16 concurrent TCP clients must not collapse below a
#     fraction of 1-client throughput. The floor catches the handler pool
#     serializing connections, not contention noise.
#   * `socket_vs_inprocess_overhead` > MAX_SOCKET_OVERHEAD — a ceiling, not
#     a floor: the wire (framing + JSON + per-request database decode) may
#     cost a multiple of in-process submission, but a blow-up past the cap
#     means something pathological (per-request reconnects, quadratic
#     encoding), not ordinary serialization cost.
#
# GPU guard — the simulated serving-pipeline trajectory (`BENCH_gpu.json`)
# is fully deterministic (simulated time, no host clock), so its floors are
# tight:
#
#   * `fused_pipeline_vs_per_level` < MIN_GPU_FUSED — the persistent device
#     pipeline (one stream upload, one kernel launch, then resident advances)
#     must beat the paper's launch-per-level discipline by >= 1.2x on the
#     serving workload; regression means advances stopped amortizing the
#     driver launch or the upload stopped being resident.
#   * `union_launch_vs_k_solo` < MIN_GPU_UNION — one K-tenant union launch
#     over the deduplicated CSR must beat K solo upload+launch cycles at all;
#     1.0 catches batching silently degrading to concatenation.
#
# The JSONs are hand-rolled reports from `reproduce` (the workspace builds
# offline without a JSON crate), so the parse here is a plain key grep —
# every guarded key is emitted top-level, one per line.
set -euo pipefail

BENCH="${1:-BENCH_counting.json}"
SERVE="${2:-}"
GPU="${3:-}"
# Committed baseline 0.7455 (results/BENCH_counting.json, 1-core container —
# the sequential compiled scan is inherently a bit slower than the seed scan
# at level 2; the new strategies, not sharding, are what beat it) less a
# timing-noise allowance. Multi-core CI runners clear it with real speedup.
MIN_SHARDED="${MIN_SHARDED:-0.70}"
MIN_BEST="${MIN_BEST:-1.0}"
# Serve floors: committed 1-core baselines less a generous allowance —
# fusion's win comes from doing one union scan instead of K, which survives
# any core count; these floors catch the batch board breaking, not noise.
MIN_COMINE="${MIN_COMINE:-1.2}"
MIN_SATURATED="${MIN_SATURATED:-2.0}"
MIN_INCREMENTAL="${MIN_INCREMENTAL:-2.0}"
# Socket-path guards: scaling floor well under the committed 1-core artifact
# (16 clients on 1 core can only tie, not win), overhead ceiling well over
# it (the wire should cost a small multiple, never orders of magnitude).
MIN_SOCKET_SCALING="${MIN_SOCKET_SCALING:-0.3}"
MAX_SOCKET_OVERHEAD="${MAX_SOCKET_OVERHEAD:-40.0}"
# GPU floors are deterministic (simulated time): no noise allowance needed.
MIN_GPU_FUSED="${MIN_GPU_FUSED:-1.2}"
MIN_GPU_UNION="${MIN_GPU_UNION:-1.0}"

[ -f "$BENCH" ] || { echo "bench_guard: $BENCH not found" >&2; exit 1; }

extract() {
    # "key": 1.2345,  ->  1.2345   (from file $2)
    awk -F': ' -v key="\"$1\"" '$1 ~ key { gsub(/[ ,]/, "", $2); print $2; exit }' "$2"
}

fail=0
guard() {
    # guard KEY VALUE FLOOR
    if [ -z "$2" ]; then
        echo "bench_guard: $1 missing" >&2
        fail=1
    elif awk -v v="$2" -v min="$3" 'BEGIN { exit !(v+0 < min+0) }'; then
        echo "bench_guard: FAIL $1 = $2 < $3" >&2
        fail=1
    else
        echo "bench_guard: ok   $1 = $2 (floor $3)"
    fi
}

guard_max() {
    # guard_max KEY VALUE CEILING
    if [ -z "$2" ]; then
        echo "bench_guard: $1 missing" >&2
        fail=1
    elif awk -v v="$2" -v max="$3" 'BEGIN { exit !(v+0 > max+0) }'; then
        echo "bench_guard: FAIL $1 = $2 > $3" >&2
        fail=1
    else
        echo "bench_guard: ok   $1 = $2 (ceiling $3)"
    fi
}

guard level2_best_vs_seed "$(extract level2_best_vs_seed "$BENCH")" "$MIN_BEST"
guard level2_sharded_vs_seed "$(extract level2_sharded_vs_seed "$BENCH")" "$MIN_SHARDED"

if [ -n "$SERVE" ]; then
    [ -f "$SERVE" ] || { echo "bench_guard: $SERVE not found" >&2; exit 1; }
    guard comine_vs_solo_scan_ratio "$(extract comine_vs_solo_scan_ratio "$SERVE")" "$MIN_COMINE"
    guard saturated_fuse_vs_serial "$(extract saturated_fuse_vs_serial "$SERVE")" "$MIN_SATURATED"
    guard incremental_vs_rescan_ratio "$(extract incremental_vs_rescan_ratio "$SERVE")" "$MIN_INCREMENTAL"
    guard socket_qps_16_clients_vs_1 "$(extract socket_qps_16_clients_vs_1 "$SERVE")" "$MIN_SOCKET_SCALING"
    guard_max socket_vs_inprocess_overhead "$(extract socket_vs_inprocess_overhead "$SERVE")" "$MAX_SOCKET_OVERHEAD"
fi

if [ -n "$GPU" ]; then
    [ -f "$GPU" ] || { echo "bench_guard: $GPU not found" >&2; exit 1; }
    guard fused_pipeline_vs_per_level "$(extract fused_pipeline_vs_per_level "$GPU")" "$MIN_GPU_FUSED"
    guard union_launch_vs_k_solo "$(extract union_launch_vs_k_solo "$GPU")" "$MIN_GPU_UNION"
fi

exit "$fail"
