#!/usr/bin/env bash
# A cargo-public-api-style surface check without external tooling.
#
# The public API surface is fingerprinted from rustdoc's generated item
# pages: every `kind.Name.html` under target/doc maps 1:1 to one public item
# (structs, enums, traits, fns, macros, constants, type aliases), so the
# sorted path list is a stable, reviewable snapshot of the workspace surface.
#
# Usage:
#   tools/public_api.sh          # verify surface matches results/PUBLIC_API.txt
#   tools/public_api.sh --bless  # regenerate the snapshot after an intended change
#
# CI runs the verify mode so public-surface changes must land with a blessed
# snapshot in the same commit — keeping the API intentional.
set -euo pipefail
cd "$(dirname "$0")/.."

# rustdoc never deletes pages for removed/renamed items, so a stale
# target/doc would poison both verify and --bless (CI caches target/ too):
# start from a clean doc tree every time.
rm -rf target/doc
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

snapshot=results/PUBLIC_API.txt
current=$(mktemp)
trap 'rm -f "$current"' EXIT

find target/doc -name '*.html' \
  | grep -E '/(struct|enum|trait|fn|macro|constant|type|union)\.[A-Za-z0-9_]+\.html$' \
  | sed 's|^target/doc/||' \
  | LC_ALL=C sort >"$current"

if [ "${1:-}" = "--bless" ]; then
  cp "$current" "$snapshot"
  echo "blessed $snapshot ($(wc -l <"$snapshot") public items)"
else
  if ! diff -u "$snapshot" "$current"; then
    echo
    echo "public API surface changed. If intended, run: tools/public_api.sh --bless"
    exit 1
  fi
  echo "public API surface unchanged ($(wc -l <"$snapshot") items)"
fi
