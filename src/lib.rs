//! # temporal-mining — reproduction of *Multi-Dimensional Characterization of
//! Temporal Data Mining on Graphics Processors* (IPPS 2009)
//!
//! This facade crate re-exports the whole workspace so applications (and the
//! `examples/`) can depend on a single crate:
//!
//! * [`core`] (`tdm-core`) — frequent episode mining: event databases, the
//!   paper's Figure-3 FSM, segmented counting with span handling, candidate
//!   generation, the level-wise miner, and the episode-expiry extension;
//! * [`sim`] (`gpu-sim`) — a CUDA-like SIMT performance simulator with the
//!   paper's three cards (Table 2) as presets;
//! * [`gpu`] (`tdm-gpu`) — the paper's four parallel counting kernels
//!   (thread-/block-level × unbuffered/buffered) running on the simulator;
//! * [`mapreduce`] (`tdm-mapreduce`) — the MapReduce programming model the
//!   paper frames its kernels with, for CPU execution;
//! * [`baselines`] (`tdm-baselines`) — GMiner-class serial and parallel CPU
//!   counting backends;
//! * [`workloads`] (`tdm-workloads`) — the paper's 393,019-letter database plus
//!   spike-train and market-basket generators;
//! * [`serve`] (`tdm-serve`) — the multi-tenant serving layer: concurrent
//!   mining sessions over one shared worker pool, with an LRU session cache,
//!   fair (aging) admission, and cross-request co-mining — concurrent
//!   same-database requests fused into one union scan per level;
//! * [`server`] (`tdm-server`) — the TCP front-end over that layer: a
//!   length-prefixed JSON protocol with per-tenant API keys, token-bucket
//!   rate limits, in-flight quotas, and level-loop deadline cancellation.
//!
//! ## Quickstart
//!
//! ```
//! use temporal_mining::prelude::*;
//!
//! // The paper's workload, scaled down for a doctest.
//! let db = temporal_mining::workloads::paper_database_scaled(0.01);
//!
//! // Plan once: a MiningSession owns the compiled candidate layout, the
//! // database shard bounds, and a persistent worker pool across levels.
//! let mut session = MiningSession::builder(&db)
//!     .config(MinerConfig { alpha: 0.0005, max_level: Some(2), ..Default::default() })
//!     .build();
//!
//! // Execute many times: every backend is an Executor over the same
//! // borrowed CountRequest — here the CPU active-set counter…
//! let cpu = session.mine(&mut ActiveSetBackend::default()).unwrap();
//!
//! // …and the simulated GPU kernel of the paper's Algorithm 3 on a GeForce
//! // GTX 280 — identical results, plus a time model. Each run compiles once
//! // per level, in place, into the session's reused buffers; backends never
//! // recompile or clone anything themselves.
//! let mut gpu = GpuBackend::new(Algorithm::BlockTexture, 64, DeviceConfig::geforce_gtx_280());
//! let gpu_result = session.mine(&mut gpu).unwrap();
//! assert_eq!(cpu, gpu_result);
//! assert!(gpu.simulated_ms > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use gpu_sim as sim;
pub use tdm_baselines as baselines;
pub use tdm_core as core;
pub use tdm_gpu as gpu;
pub use tdm_mapreduce as mapreduce;
pub use tdm_serve as serve;
pub use tdm_server as server;
pub use tdm_workloads as workloads;

/// The most common imports, for `use temporal_mining::prelude::*;`.
pub mod prelude {
    pub use gpu_sim::{CostModel, DeviceConfig, SimReport};
    pub use tdm_baselines::{
        ActiveSetBackend, MapReduceBackend, SerialScanBackend, ShardedScanBackend,
    };
    #[allow(deprecated)]
    pub use tdm_core::CountingBackend;
    pub use tdm_core::StreamingSession;
    pub use tdm_core::{
        Alphabet, AutoBackend, BackendError, BitmaskNfa, CandidateUnion, CoSession, CompileError,
        CompiledCandidates, CountRequest, CountScratch, CountSemantics, CountStrategy, Counts,
        DispatchClass, Episode, EventDb, Executor, GpuDispatchModel, MineError, Miner, MinerConfig,
        MiningResult, MiningSession, OccurrenceIndex, StrategyCosts, Symbol,
    };
    pub use tdm_gpu::{
        Algorithm, DevicePipeline, GpuBackend, GpuPipelineBackend, KernelRun, MiningProblem,
        SimOptions, StreamResidency, UnionLaunch,
    };
    pub use tdm_mapreduce::pool::{Pool, Priority};
    pub use tdm_serve::{
        AppendOutcome, BackendChoice, IngestTriggers, MiningRequest, MiningResponse, MiningService,
        ServeError, ServiceConfig, StreamIngest,
    };
}
