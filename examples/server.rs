//! The network front-end: a loopback `tdm-server`, three tenants, and the
//! whole gate sequence on display — authentication, rate limits, quotas,
//! deadlines, and wire-level co-mining fusion.
//!
//! Spins up a real TCP listener on an ephemeral port, then walks through:
//! a mine round-trip checked bit-identical to serial mining; a cache hit on
//! the second request; three same-database clients fusing into one batch
//! over the wire; a 1 ms deadline cancelling a run mid-level-loop; and the
//! typed refusals a hostile or over-eager client sees.
//!
//! ```sh
//! cargo run --release --example server
//! ```

use std::sync::Arc;
use std::time::Duration;

use temporal_mining::core::{Alphabet, MinerConfig};
use temporal_mining::prelude::*;
use temporal_mining::server::client::{mine_request, stats_request};
use temporal_mining::server::json::Value;
use temporal_mining::server::{wire, Client, Server, ServerConfig, TenantConfig};
use temporal_mining::workloads;

fn main() {
    // 1. Bind a server on an ephemeral loopback port: three tenants with
    //    different privileges, a shared mining service behind them.
    let server = Server::bind(ServerConfig {
        handler_threads: 8,
        service: temporal_mining::serve::ServiceConfig {
            comine_window: Duration::from_millis(150),
            comine_max_batch: 4,
            ..Default::default()
        },
        tenants: vec![
            TenantConfig::new("acme", "key-a"),
            // 1 req/s: slow enough that the bucket outlasts the co-mining
            // formation window each request waits out (~150 ms of refill).
            TenantConfig::new("beta", "key-b").rate(1.0, 2.0),
            TenantConfig::new("corp", "key-c").quota(1),
        ],
        ..Default::default()
    })
    .expect("bind failed");
    println!("tdm-server up on {} (ephemeral port)\n", server.addr());

    // 2. One mine round-trip, checked bit-identical to serial mining pushed
    //    through the same wire encoder.
    let db = workloads::markov_letters(10_000, 11, 0.6);
    let letters: String = db.symbols().iter().map(|&s| (b'A' + s) as char).collect();
    let config = MinerConfig {
        alpha: 0.02,
        max_level: Some(3),
        ..Default::default()
    };
    let serial = Miner::new(config)
        .mine(
            &db,
            &mut temporal_mining::core::SequentialBackend::default(),
        )
        .expect("serial mining failed");
    let want = wire::mining_result_value(&serial, &Alphabet::latin26()).encode();

    let mut acme = Client::connect(server.addr()).expect("connect failed");
    let request = mine_request("acme", "key-a", &letters, 0.02, Some(3), None, None, None);
    let reply = acme.call(&request).expect("mine failed");
    let got = reply.get("result").expect("no result").encode();
    assert_eq!(got, want, "wire reply diverged from serial mining");
    println!(
        "mine: {} levels, cache {}, bit-identical to serial ✓",
        serial.levels.len(),
        reply.get("cache").and_then(Value::as_str).unwrap_or("?")
    );

    // 3. Same request again: the parked session is a cache hit.
    let reply = acme.call(&request).expect("repeat mine failed");
    println!(
        "repeat: cache {} (planning skipped, warm buffers)\n",
        reply.get("cache").and_then(Value::as_str).unwrap_or("?")
    );

    // 4. Wire-level co-mining: three connections, one database, three
    //    different thresholds — fused into a single batch, one union scan
    //    per level.
    let fuse_db = Arc::new(workloads::uniform_letters(20_000, 7));
    let fuse_letters: String = fuse_db
        .symbols()
        .iter()
        .map(|&s| (b'A' + s) as char)
        .collect();
    std::thread::scope(|s| {
        for (i, alpha) in [0.05, 0.02, 0.01].into_iter().enumerate() {
            let addr = server.addr();
            let fuse_letters = &fuse_letters;
            s.spawn(move || {
                let mut conn = Client::connect(addr).expect("connect failed");
                let req = mine_request(
                    "acme",
                    "key-a",
                    fuse_letters,
                    alpha,
                    Some(2),
                    None,
                    None,
                    None,
                );
                let reply = conn.call(&req).expect("fused mine failed");
                println!(
                    "  client {i} (alpha {alpha}): cache {}",
                    reply.get("cache").and_then(Value::as_str).unwrap_or("?")
                );
            });
        }
    });
    let stats = acme
        .call(&stats_request("acme", "key-a"))
        .expect("stats failed");
    let comining = stats
        .get("service")
        .and_then(|s| s.get("comining"))
        .expect("no comining stats");
    println!(
        "co-mining over the wire: {} batch(es), {} fused request(s)\n",
        comining.get("batches").and_then(Value::as_u64).unwrap_or(0),
        comining
            .get("fused_requests")
            .and_then(Value::as_u64)
            .unwrap_or(0),
    );

    // 5. Deadlines cancel inside the level loop: a 1 ms budget against a
    //    40k-symbol stream aborts with a typed error naming the level.
    let big = workloads::markov_letters(40_000, 13, 0.7);
    let big_letters: String = big.symbols().iter().map(|&s| (b'A' + s) as char).collect();
    let reply = acme
        .call(&mine_request(
            "acme",
            "key-a",
            &big_letters,
            0.001,
            Some(6),
            Some("sequential"),
            None,
            Some(1),
        ))
        .expect("deadline call failed");
    println!(
        "deadline 1ms: code {:?} at level {:?}",
        reply.get("code").and_then(Value::as_str).unwrap_or("—"),
        reply.get("level").and_then(Value::as_u64),
    );

    // 6. The refusals: a bad key, then a drained token bucket — each a
    //    typed error on a live connection, never a dropped socket.
    let mut probe = Client::connect(server.addr()).expect("connect failed");
    let reply = probe
        .call(&mine_request(
            "acme",
            "wrong",
            &letters,
            0.02,
            Some(2),
            None,
            None,
            None,
        ))
        .expect("probe failed");
    println!(
        "bad key: {}",
        reply.get("code").and_then(Value::as_str).unwrap_or("?")
    );
    let mut beta = Client::connect(server.addr()).expect("connect failed");
    let mut last = String::new();
    for _ in 0..4 {
        let reply = beta
            .call(&mine_request(
                "beta",
                "key-b",
                "ABAB",
                0.5,
                Some(1),
                None,
                None,
                None,
            ))
            .expect("beta failed");
        last = reply
            .get("code")
            .and_then(Value::as_str)
            .unwrap_or("mine_result")
            .to_string();
    }
    println!("beta's 4th request against a 2-token, 1 req/s bucket: {last}");

    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
