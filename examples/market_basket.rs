//! Temporal market-basket analysis — the paper's §3.1 example: "how often
//! {peanut butter, bread} → {jelly}", where *order matters*.
//!
//! ```sh
//! cargo run --release --example market_basket
//! ```

use temporal_mining::prelude::*;
use temporal_mining::workloads::{market_basket, BasketConfig};

fn main() {
    // A purchase stream with the peanut-butter -> bread -> jelly motif seeded.
    let config = BasketConfig::default();
    let db = market_basket(&config);
    println!(
        "purchase stream: {} events over {} products",
        db.len(),
        db.alphabet().len()
    );

    // Mine frequent episodes up to level 3.
    let miner = Miner::new(MinerConfig {
        alpha: 0.004,
        max_level: Some(3),
        ..Default::default()
    });
    let result = miner
        .mine(&db, &mut ActiveSetBackend::default())
        .expect("mining failed");
    println!(
        "mined {} candidates -> {} frequent episodes",
        result.total_candidates(),
        result.total_frequent()
    );

    // Show the strongest level-3 rules in ordered form.
    let ab = db.alphabet();
    if let Some(l3) = result.levels.iter().find(|l| l.level == 3) {
        let mut rules: Vec<_> = l3.frequent.clone();
        rules.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        println!("\ntop level-3 temporal rules:");
        for (ep, count) in rules.iter().take(5) {
            let items = ep.items();
            let lhs: Vec<&str> = items[..2].iter().map(|&i| ab.name(Symbol(i))).collect();
            let rhs = ab.name(Symbol(items[2]));
            println!(
                "  {{{}}} -> {{{}}}   count {count} (support {:.4})",
                lhs.join(", "),
                rhs,
                *count as f64 / db.len() as f64
            );
        }
    }

    // The temporal point of §3.1: <peanut-butter, bread> -> jelly is NOT the
    // same rule as <bread, peanut-butter> -> jelly.
    let pb_bread_jelly = Episode::new(vec![0, 1, 2]).unwrap();
    let bread_pb_jelly = Episode::new(vec![1, 0, 2]).unwrap();
    let a = temporal_mining::core::count::count_episode(&db, &pb_bread_jelly);
    let b = temporal_mining::core::count::count_episode(&db, &bread_pb_jelly);
    println!(
        "\norder sensitivity: {} = {a}, {} = {b}",
        pb_bread_jelly.display(ab),
        bread_pb_jelly.display(ab)
    );
    assert!(
        a > 3 * (b + 1),
        "seeded ordering should dominate its reversal"
    );

    // And the same mining on a simulated GPU, validating the counts agree.
    let mut gpu = GpuBackend::new(Algorithm::BlockTexture, 64, DeviceConfig::geforce_gtx_280());
    let gpu_result = miner.mine(&db, &mut gpu).expect("GPU mining failed");
    assert_eq!(gpu_result, result);
    println!(
        "\nGPU-simulated mining agrees; total simulated kernel time {:.2} ms on GeForce GTX 280",
        gpu.simulated_ms
    );
}
