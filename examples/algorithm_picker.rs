//! Algorithm picker — the paper's conclusion operationalized: "a
//! MapReduce-based implementation must dynamically adapt the type and level of
//! parallelism in order to obtain the best performance."
//!
//! Given a card and a problem size, sweep the (algorithm, block-size) space on
//! the simulator and report the winner — the dynamic-adaptation policy a
//! production system would embed.
//!
//! ```sh
//! cargo run --release --example algorithm_picker [scale]
//! ```

use temporal_mining::core::candidate::permutations;
use temporal_mining::prelude::*;
use temporal_mining::workloads::paper_database_scaled;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let db = paper_database_scaled(scale);
    let ab = Alphabet::latin26();
    println!(
        "picking optimal kernel per (level, card) over {} letters (scale {scale})\n",
        db.len()
    );

    let sweep = temporal_mining::gpu::launch::coarse_tpb_sweep();
    for level in [1usize, 2, 3] {
        let episodes = permutations(&ab, level);
        println!("level {level} ({} episodes):", episodes.len());
        for card in DeviceConfig::paper_testbed() {
            let problem = MiningProblem::new(&db, &episodes);
            let mut rows: Vec<(Algorithm, u32, f64)> = Vec::new();
            for algo in Algorithm::ALL {
                for &tpb in &sweep {
                    let run = problem
                        .run(
                            algo,
                            tpb,
                            &card,
                            &CostModel::default(),
                            &SimOptions::default(),
                        )
                        .unwrap();
                    rows.push((algo, tpb, run.report.time_ms));
                }
            }
            rows.sort_by(|a, b| a.2.total_cmp(&b.2));
            let (algo, tpb, ms) = rows[0];
            let (walgo, wtpb, wms) = *rows.last().unwrap();
            println!(
                "  {:<22} pick {} @ {:>3} tpb ({:>9.3} ms) — worst {} @ {} tpb is {:.0}x slower ({:.1} ms)",
                card.name, algo, tpb, ms, walgo, wtpb, wms / ms, wms
            );
        }
        println!();
    }
    println!("no single configuration wins everywhere — the paper's 'one-size-fits-all' finding.");
}
