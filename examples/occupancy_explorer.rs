//! Occupancy explorer — the CUDA Occupancy Calculator, and why it is not
//! enough (paper §6: "30 multiprocessors of occupancy 66% might perform better
//! than 15 multiprocessors at 100% occupancy").
//!
//! For each card and block size this prints the occupancy a level-3 Algorithm-1
//! launch achieves, its limiting resource, and the *simulated execution time* —
//! showing that the occupancy maximum and the performance optimum do not
//! coincide.
//!
//! ```sh
//! cargo run --release --example occupancy_explorer
//! ```

use temporal_mining::core::candidate::permutations;
use temporal_mining::prelude::*;
use temporal_mining::sim::{occupancy, KernelResources};
use temporal_mining::workloads::paper_database_scaled;

fn main() {
    let db = paper_database_scaled(0.25);
    let ab = Alphabet::latin26();
    let episodes = permutations(&ab, 3);
    println!(
        "workload: level 3 ({} episodes) over {} letters, Algorithm 1\n",
        episodes.len(),
        db.len()
    );

    for card in DeviceConfig::paper_testbed() {
        println!(
            "{} ({} SMs, max {} warps/SM, {} regs/SM):",
            card.name, card.sm_count, card.max_warps_per_sm, card.registers_per_sm
        );
        println!(
            "  {:>5} {:>8} {:>10} {:>12} {:>10} {:>9}",
            "tpb", "blocks", "occupancy", "limiter", "time(ms)", "bound"
        );
        let problem = MiningProblem::new(&db, &episodes);
        let mut best: (u32, f64) = (0, f64::INFINITY);
        let mut best_occ: (u32, f64) = (0, 0.0);
        for tpb in temporal_mining::gpu::launch::paper_tpb_sweep() {
            let res = KernelResources::new(tpb).with_registers(16);
            let occ = occupancy(&card, &res).expect("valid launch");
            let run = problem
                .run(
                    Algorithm::ThreadTexture,
                    tpb,
                    &card,
                    &CostModel::default(),
                    &SimOptions::default(),
                )
                .unwrap();
            if run.report.time_ms < best.1 {
                best = (tpb, run.report.time_ms);
            }
            if occ.occupancy_fraction > best_occ.1 {
                best_occ = (tpb, occ.occupancy_fraction);
            }
            println!(
                "  {:>5} {:>8} {:>9.0}% {:>12} {:>10.2} {:>9}",
                tpb,
                run.launch.blocks,
                occ.occupancy_fraction * 100.0,
                format!("{:?}", occ.limiter),
                run.report.time_ms,
                format!("{:?}", run.report.bound),
            );
        }
        println!(
            "  -> highest occupancy at tpb={} ({:.0}%), but fastest run at tpb={} ({:.2} ms)\n",
            best_occ.0,
            best_occ.1 * 100.0,
            best.0,
            best.1
        );
    }
    println!("occupancy alone does not identify the optimum — the paper's §6 point.");
}
