//! Quickstart: mine frequent episodes from an event stream, on the CPU and on
//! every simulated GPU kernel of the paper.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use temporal_mining::prelude::*;
use temporal_mining::workloads;

fn main() {
    // 1. A workload: the paper's uniform 26-letter stream, 10% scale, with a
    //    planted episode so there is something to find.
    let ab = Alphabet::latin26();
    let secret = Episode::from_str(&ab, "GPU").unwrap();
    let (db, planted_at) = workloads::planted(39_302, 7, &secret, 400);
    println!(
        "database: {} events over {} symbols; planted {} copies of {}",
        db.len(),
        db.alphabet().len(),
        planted_at.len(),
        secret.display(&ab)
    );

    // 2. Plan once: the session compiles each level's candidates exactly once
    //    and owns the worker pool; then mine on the CPU (paper Algorithm 1),
    //    streaming each level's result as soon as it is eliminated.
    let mut session = MiningSession::builder(&db)
        .config(MinerConfig {
            alpha: 0.002, // support threshold: count / n must exceed this
            max_level: Some(3),
            ..Default::default()
        })
        .build();
    let t0 = std::time::Instant::now();
    let result = session
        .mine_with(&mut ActiveSetBackend::default(), |level| {
            println!(
                "  level {}: {} candidates, {} frequent (streamed)",
                level.level,
                level.candidates,
                level.len()
            );
        })
        .expect("CPU mining failed");
    let cpu_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nCPU mining: {} candidates -> {} frequent episodes in {:.1} ms (wall), {} compiles",
        result.total_candidates(),
        result.total_frequent(),
        cpu_ms,
        session.compiles()
    );
    match result.count_of(&secret) {
        Some(c) => println!(
            "  planted episode {} found with count {c}",
            secret.display(&ab)
        ),
        None => println!("  planted episode NOT found — lower alpha?"),
    }

    // 3. The same session drives each simulated GPU kernel as the counting
    //    executor: identical results, plus the simulated kernel time on a
    //    GeForce GTX 280. Each run still compiles once per level, but into
    //    the session's buffers, reused in place across every run below.
    println!("\nsimulated GPU backends (GeForce GTX 280, 128 threads/block):");
    for algo in Algorithm::ALL {
        let mut backend = GpuBackend::new(algo, 128, DeviceConfig::geforce_gtx_280());
        let gpu_result = session.mine(&mut backend).expect("GPU mining failed");
        assert_eq!(gpu_result, result, "kernel and CPU results must agree");
        println!(
            "  {algo}: same {} frequent episodes, simulated kernel time {:.2} ms",
            gpu_result.total_frequent(),
            backend.simulated_ms
        );
    }
    println!("\n(simulated times are model outputs for the paper's cards, not this machine)");
}
