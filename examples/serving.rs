//! Serving: many concurrent clients, one shared worker pool, a session cache.
//!
//! Spins up a [`MiningService`], hammers it from 8 client threads with a mix
//! of workloads and backends, and shows the serving telemetry: cache
//! hits/misses, queue wait, and per-request mining time — every response
//! bit-identical to a serial run of the same request.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use std::sync::Arc;
use temporal_mining::prelude::*;
use temporal_mining::serve::CacheOutcome;
use temporal_mining::workloads;

fn main() {
    // 1. One service for the whole process: a machine-sized shared pool,
    //    fair FIFO admission, and an LRU cache of parked mining sessions.
    let service = Arc::new(MiningService::new(ServiceConfig {
        cache_capacity: 8,
        ..Default::default()
    }));
    println!(
        "service up: {} pool workers shared by every client\n",
        service.pool().workers()
    );

    // 2. Three tenants' databases (the mixed workloads of the serve bench).
    let dbs: Vec<(&str, Arc<temporal_mining::core::EventDb>)> = vec![
        (
            "markov",
            Arc::new(workloads::markov_letters(30_000, 11, 0.7)),
        ),
        (
            "spike-train",
            Arc::new(workloads::spike_trains(&workloads::SpikeTrainConfig {
                duration_ms: 20_000.0,
                ..Default::default()
            })),
        ),
        (
            "market-basket",
            Arc::new(workloads::market_basket(&workloads::BasketConfig::default())),
        ),
    ];
    let config = MinerConfig {
        alpha: 0.001,
        max_level: Some(2),
        ..Default::default()
    };

    // 3. Eight clients, submitting concurrently from their own threads. An
    //    interactive tenant flags its requests high-priority: they overtake
    //    queued bulk requests at the admission gate.
    std::thread::scope(|s| {
        for client in 0..8usize {
            let service = Arc::clone(&service);
            let dbs = dbs.clone();
            s.spawn(move || {
                for round in 0..3usize {
                    let (name, db) = &dbs[(client + round) % dbs.len()];
                    let mut req = MiningRequest::new(Arc::clone(db), config);
                    if client == 0 {
                        req = req.priority(Priority::High);
                    }
                    let resp = service.submit(&req).expect("request failed");
                    println!(
                        "client {client} round {round}: {name:<13} -> {:>3} frequent, \
                         cache {}, queued {:>6.2} ms, mined {:>6.2} ms",
                        resp.result.total_frequent(),
                        match resp.stats.cache {
                            CacheOutcome::Hit => "hit  ",
                            CacheOutcome::Miss => "miss ",
                            CacheOutcome::CoMined => "fused",
                        },
                        resp.stats.queue_wait.as_secs_f64() * 1e3,
                        resp.stats.mine_time.as_secs_f64() * 1e3,
                    );
                }
            });
        }
    });

    // 4. The telemetry a production operator would scrape.
    let stats = service.stats();
    println!(
        "\nserved {} requests: {} cache hits, {} misses, {} evictions, {} parked sessions",
        stats.completed,
        stats.cache.hits,
        stats.cache.misses,
        stats.cache.evictions,
        service.cached_sessions()
    );

    // 5. The serving guarantee: a served result is exactly a serial mine.
    let (name, db) = &dbs[0];
    let serial = Miner::new(config)
        .mine(db.as_ref(), &mut ActiveSetBackend::default())
        .unwrap();
    let served = service
        .submit(&MiningRequest::new(Arc::clone(db), config))
        .unwrap();
    assert_eq!(serial, served.result);
    println!(
        "serial vs served on {name}: bit-identical ({} frequent)",
        serial.total_frequent()
    );

    // 6. Cross-request co-mining: a service with a formation window fuses
    //    concurrent same-database requests (different configs!) into one
    //    union scan per level. Four tenants, one batch, four bit-identical
    //    answers.
    let fused_service = Arc::new(MiningService::new(ServiceConfig {
        // Joiners must be *admitted* to reach the batch board — keep the
        // gate at least as wide as the batch.
        max_in_flight: 4,
        comine_window: std::time::Duration::from_millis(500),
        comine_max_batch: 4,
        ..Default::default()
    }));
    let (name, db) = &dbs[0];
    let configs: Vec<MinerConfig> = (0..4)
        .map(|i| MinerConfig {
            alpha: 0.001 * (1.0 + i as f64),
            ..config
        })
        .collect();
    std::thread::scope(|s| {
        {
            let service = Arc::clone(&fused_service);
            let req = MiningRequest::new(Arc::clone(db), configs[0]);
            s.spawn(move || service.submit(&req).expect("leader failed"));
        }
        while fused_service.open_batches() == 0 {
            std::thread::yield_now();
        }
        for cfg in &configs[1..] {
            let service = Arc::clone(&fused_service);
            let req = MiningRequest::new(Arc::clone(db), *cfg);
            s.spawn(move || service.submit(&req).expect("joiner failed"));
        }
    });
    let comining = fused_service.stats().comining;
    println!(
        "co-mining on {name}: {} configs fused into {} batch(es) — one union scan per level",
        comining.fused_requests, comining.batches
    );
}
