//! Neuroscience scenario — the paper's motivating application (§1):
//! reconstruct neuronal connectivity from multi-electrode spike recordings by
//! mining frequent episodes, with the episode-expiry extension (§6) providing a
//! physiologically meaningful time window.
//!
//! We synthesize a 60-second recording of 26 neurons firing as Poisson
//! processes, inject two causal chains (synthetic "circuits"), and recover them
//! with expiry-constrained counting — then check which simulated GPU
//! configuration would sustain real-time analysis.
//!
//! ```sh
//! cargo run --release --example neuro_spike_trains
//! ```

use temporal_mining::core::expiry::count_with_expiry;
use temporal_mining::prelude::*;
use temporal_mining::workloads::{spike_trains, CausalChain, SpikeTrainConfig};

fn main() {
    // 1. Synthesize the recording: 26 neurons, 5 Hz background, two circuits.
    let circuit_a = CausalChain {
        neurons: vec![2, 7, 19], // s2 -> s7 -> s19
        delay_ms: 3.0,
        jitter_ms: 1.0,
        rate_hz: 4.0,
    };
    let circuit_b = CausalChain {
        neurons: vec![11, 4], // s11 -> s4
        delay_ms: 2.0,
        jitter_ms: 0.5,
        rate_hz: 6.0,
    };
    let config = SpikeTrainConfig {
        neurons: 26,
        duration_ms: 60_000.0,
        base_rate_hz: 5.0,
        chains: vec![circuit_a.clone(), circuit_b.clone()],
        seed: 2009,
    };
    let db = spike_trains(&config);
    println!(
        "recording: {} spikes from {} neurons over {:.0} s",
        db.len(),
        config.neurons,
        config.duration_ms / 1e3
    );

    // 2. Score all ordered neuron pairs with expiry-constrained counting
    //    (window = 10 ms, i.e. 10_000 us): a directed functional-connectivity
    //    matrix, exactly the analysis GMiner-class tools run post-hoc.
    let window_us = 10_000u64;
    let mut pair_scores: Vec<(Episode, u64)> = Vec::new();
    for a in 0..26u8 {
        for b in 0..26u8 {
            if a != b {
                let ep = Episode::new(vec![a, b]).unwrap();
                let c = count_with_expiry(&db, &ep, window_us).unwrap();
                pair_scores.push((ep, c));
            }
        }
    }
    pair_scores.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!(
        "\ntop directed pairs within a {} ms window:",
        window_us / 1000
    );
    for (ep, c) in pair_scores.iter().take(5) {
        println!("  {} : {c}", ep.display(db.alphabet()));
    }
    let b_pair = Episode::new(circuit_b.neurons.clone()).unwrap();
    let rank_b = pair_scores.iter().position(|(e, _)| *e == b_pair).unwrap();
    println!(
        "  injected circuit {} ranks #{}",
        b_pair.display(db.alphabet()),
        rank_b + 1
    );
    assert!(rank_b < 5, "injected pair should rank in the top 5");

    // 3. The length-3 circuit: confirm the full chain beats its reversal.
    let chain = circuit_a.episode();
    let reversed = Episode::new(circuit_a.neurons.iter().rev().copied().collect()).unwrap();
    let fwd = count_with_expiry(&db, &chain, window_us).unwrap();
    let rev = count_with_expiry(&db, &reversed, window_us).unwrap();
    println!(
        "\ncircuit {}: forward {fwd} vs reversed {rev}",
        chain.display(db.alphabet())
    );
    assert!(fwd > 2 * (rev + 1));

    // 4. Real-time feasibility (the paper's goal: "real-time, interactive
    //    visualization"): which kernel/config counts all level-2 candidates
    //    within the 60 s recording window? Use the spike symbols as the stream.
    println!("\nreal-time feasibility on the paper's cards (level-2 sweep, 650 candidates):");
    let episodes = temporal_mining::core::candidate::permutations(db.alphabet(), 2);
    for card in DeviceConfig::paper_testbed() {
        let problem = MiningProblem::new(&db, &episodes);
        let mut best = (Algorithm::ThreadTexture, 0u32, f64::INFINITY);
        for algo in Algorithm::ALL {
            for tpb in [64u32, 128, 256] {
                let run = problem
                    .run(
                        algo,
                        tpb,
                        &card,
                        &CostModel::default(),
                        &SimOptions::default(),
                    )
                    .unwrap();
                if run.report.time_ms < best.2 {
                    best = (algo, tpb, run.report.time_ms);
                }
            }
        }
        println!(
            "  {}: best {} @ {} tpb -> {:.2} ms per pass ({}x faster than the recording)",
            card.name,
            best.0,
            best.1,
            best.2,
            (config.duration_ms / best.2) as u64
        );
    }
}
