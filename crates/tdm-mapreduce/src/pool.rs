//! Chunked parallel-for helpers shared by the CPU executors.

/// Applies `f` to contiguous chunks of `items` across `workers` scoped
/// threads and returns the per-chunk results in input order.
///
/// `f` receives `(chunk_index, chunk)`. With one worker (or one chunk) this
/// degrades to a sequential loop with identical results.
pub fn map_chunks<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let workers = workers.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(workers);
    if workers == 1 || chunk == items.len() {
        return items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect();
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| s.spawn(move || f(i, c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

/// A parallel map over individual items, preserving order.
pub fn map_items<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_chunks(items, workers, |_, chunk| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Default worker count: available parallelism, at least 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_results_in_order() {
        let data: Vec<u32> = (0..100).collect();
        let sums = map_chunks(&data, 4, |i, c| (i, c.iter().sum::<u32>()));
        assert_eq!(sums.len(), 4);
        assert_eq!(sums[0].0, 0);
        let total: u32 = sums.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn item_map_matches_sequential() {
        let data: Vec<u32> = (0..57).collect();
        for workers in [1, 2, 3, 16] {
            let out = map_items(&data, workers, |x| x * 2);
            let expect: Vec<u32> = data.iter().map(|x| x * 2).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(map_items::<u32, u32, _>(&[], 4, |x| *x).is_empty());
        assert_eq!(map_items(&[7u32], 8, |x| x + 1), vec![8]);
    }

    #[test]
    fn workers_floor_at_one() {
        let out = map_items(&[1u32, 2, 3], 0, |x| x * 3);
        assert_eq!(out, vec![3, 6, 9]);
        assert!(default_workers() >= 1);
    }
}
