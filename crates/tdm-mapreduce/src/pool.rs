//! Worker pools shared by the CPU executors.
//!
//! Two execution styles live here:
//!
//! * [`map_chunks`] / [`map_items`] — *scoped* parallel-for helpers that spawn
//!   threads per call and may borrow their inputs. Right for one-shot jobs.
//! * [`Pool`] — a *persistent* team of worker threads fed through a shared
//!   queue. Jobs are `'static` closures (share data via `Arc`), so the same
//!   threads serve every counting call of a mining session's level loop — no
//!   per-call spawn cost, and per-worker thread-local scratch stays warm
//!   across calls. This is the pool a `MiningSession` owns for its lifetime.
//!
//! A `Pool` is `Sync`: every method takes `&self`, so one pool wrapped in an
//! [`Arc`] can be shared by any number of concurrent sessions (the
//! `tdm-serve` service runs all of its clients over a single machine-sized
//! pool this way). Jobs carry a [`Priority`] tag — [`Priority::High`] jobs
//! overtake queued [`Priority::Normal`] ones, letting latency-sensitive
//! requests cut ahead of bulk work sharing the same threads. The overtaking
//! is **aged**, mirroring the serving layer's admission queue: after
//! [`DEFAULT_LANE_AGING`] consecutive high-lane pops made while normal jobs
//! were waiting, one normal job runs, so a continuous high stream cannot
//! starve the bulk lane ([`Pool::with_aging`] tunes or disables this).
//! [`shared`] exposes one lazily spawned process-wide pool for convenience
//! paths that have no session to borrow a pool from.
//!
//! ```
//! use std::sync::Arc;
//! use tdm_mapreduce::pool::Pool;
//!
//! // Spawn once, share everywhere: Pool is Sync, so clones of the Arc can
//! // dispatch from any thread.
//! let pool = Arc::new(Pool::with_workers(4));
//! let doubled = pool.map_move(vec![1u32, 2, 3], |x| x * 2);
//! assert_eq!(doubled, vec![2, 4, 6]);
//!
//! // The same threads serve the next call — nothing is respawned.
//! let sums = pool.map_move(vec![0..10u32, 10..20], |r| r.sum::<u32>());
//! assert_eq!(sums, vec![45, 145]);
//! ```

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A queued unit of work for a [`Pool`] worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Scheduling class of a pool job: [`Priority::High`] jobs are popped before
/// any queued [`Priority::Normal`] job (subject to lane aging); within a
/// class the queue is FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive work: overtakes every queued normal job.
    High,
    /// Bulk work (the default for [`Pool::execute`] / [`Pool::map_move`]).
    #[default]
    Normal,
}

/// Default lane-aging limit: after this many consecutive high-lane pops made
/// while normal jobs were waiting, one normal job runs. Mirrors the serving
/// layer's admission aging so neither queue in the stack can starve its
/// normal lane.
pub const DEFAULT_LANE_AGING: usize = 8;

struct PoolState {
    /// Two FIFO lanes; workers drain `high` before touching `normal`,
    /// except that every `aging`-th consecutive high pop (counted only while
    /// normal jobs wait) yields to the normal lane.
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
    /// Consecutive high-lane pops made while the normal lane was non-empty.
    high_streak: usize,
    shutdown: bool,
}

impl PoolState {
    /// Pops the next job under the aged two-lane discipline.
    fn pop(&mut self, aging: usize) -> Option<Job> {
        if aging != 0 && self.high_streak >= aging && !self.normal.is_empty() {
            self.high_streak = 0;
            return self.normal.pop_front();
        }
        if let Some(job) = self.high.pop_front() {
            // Only count the streak against waiting normal jobs: a high lane
            // running alone starves no one.
            if self.normal.is_empty() {
                self.high_streak = 0;
            } else {
                self.high_streak += 1;
            }
            return Some(job);
        }
        self.high_streak = 0;
        self.normal.pop_front()
    }
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    /// Lane-aging limit (0 = strict priority, normal can starve).
    aging: usize,
}

/// A persistent worker pool: `n` threads spawned once, fed through a shared
/// FIFO queue, joined on drop.
///
/// Unlike the scoped helpers, jobs must be `'static` — callers share read-only
/// inputs via [`Arc`] and receive results over channels ([`Pool::map_move`]
/// wraps that pattern). The payoff is that the threads — and anything they
/// cache in thread-local storage — persist across calls, which is what the
/// level-wise miner wants: one pool for the whole level loop instead of a
/// spawn per counting call.
pub struct Pool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.handles.len())
            .finish()
    }
}

impl Pool {
    /// Spawns a pool of `n` workers (0 is clamped to 1) with the default
    /// lane-aging limit ([`DEFAULT_LANE_AGING`]).
    pub fn with_workers(n: usize) -> Pool {
        Pool::with_aging(n, DEFAULT_LANE_AGING)
    }

    /// Spawns a pool of `n` workers (0 is clamped to 1) with an explicit
    /// lane-aging limit: after `aging` consecutive high-lane pops made while
    /// normal jobs were waiting, one normal job runs. `aging = 0` disables
    /// aging (strict priority — a continuous high stream starves the normal
    /// lane, the pre-aging behavior).
    pub fn with_aging(n: usize, aging: usize) -> Pool {
        let n = n.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                high_streak: 0,
                shutdown: false,
            }),
            available: Condvar::new(),
            aging,
        });
        let handles = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tdm-pool-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let mut st = shared.state.lock().expect("pool state");
                            loop {
                                let aging = shared.aging;
                                if let Some(job) = st.pop(aging) {
                                    break job;
                                }
                                if st.shutdown {
                                    return;
                                }
                                st = shared.available.wait(st).expect("pool state");
                            }
                        };
                        // A panicking job must not kill the worker: later jobs
                        // would sit in the queue forever and a blocked
                        // `map_move` would deadlock. The unwind drops the job's
                        // reply sender, so the caller observes the failure as
                        // a missing result instead of a hang.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn auto() -> Pool {
        Pool::with_workers(default_workers())
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// The lane-aging limit this pool schedules with (0 = strict priority).
    pub fn aging(&self) -> usize {
        self.shared.aging
    }

    /// Enqueues one [`Priority::Normal`] job; returns immediately.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.execute_prio(Priority::Normal, job);
    }

    /// Enqueues one job with an explicit [`Priority`] tag; returns
    /// immediately. High-priority jobs overtake every queued normal job but
    /// never preempt one already running.
    pub fn execute_prio(&self, priority: Priority, job: impl FnOnce() + Send + 'static) {
        let mut st = self.shared.state.lock().expect("pool state");
        match priority {
            Priority::High => st.high.push_back(Box::new(job)),
            Priority::Normal => st.normal.push_back(Box::new(job)),
        }
        drop(st);
        self.shared.available.notify_one();
    }

    /// Applies `f` to every input on the pool and returns the results in input
    /// order, blocking until all are done. Inputs are moved into the jobs;
    /// share big read-only data through `Arc` captures inside `f`.
    ///
    /// A single input is run inline on the caller's thread (no queue round
    /// trip).
    pub fn map_move<T, R, F>(&self, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        self.map_move_prio(Priority::Normal, inputs, f)
    }

    /// [`map_move`](Pool::map_move) with an explicit [`Priority`] tag for
    /// every job of the map — how a serving layer lets an interactive
    /// request's scans overtake queued bulk scans on a shared pool.
    pub fn map_move_prio<T, R, F>(&self, priority: Priority, inputs: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            let mut inputs = inputs;
            return vec![f(inputs.pop().expect("one input"))];
        }
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        for (i, input) in inputs.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            self.execute_prio(priority, move || {
                let r = f(input);
                // Release this job's handle on `f` (and any Arc data it
                // captured) *before* signalling completion, so that once the
                // caller has every result — and drops its own `f` below — no
                // worker still holds shared data. Sessions rely on this:
                // `Arc::make_mut` on the compiled candidates must find a
                // refcount of 1 at the next level's recompile.
                drop(f);
                let _ = tx.send((i, r));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            slots[i] = Some(r);
        }
        drop(f); // last handle: `f`'s captures die here, on the caller's thread
        slots
            .into_iter()
            .map(|s| s.expect("pool worker dropped a job (panicked?)"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool state").shutdown = true;
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Applies `f` to contiguous chunks of `items` across `workers` scoped
/// threads and returns the per-chunk results in input order.
///
/// `f` receives `(chunk_index, chunk)`. With one worker (or one chunk) this
/// degrades to a sequential loop with identical results.
pub fn map_chunks<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let workers = workers.max(1);
    if items.is_empty() {
        return Vec::new();
    }
    let chunk = items.len().div_ceil(workers);
    if workers == 1 || chunk == items.len() {
        return items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| f(i, c))
            .collect();
    }
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| s.spawn(move || f(i, c)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
}

/// A parallel map over individual items, preserving order.
pub fn map_items<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_chunks(items, workers, |_, chunk| {
        chunk.iter().map(&f).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Default worker count: available parallelism, at least 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide shared pool: one machine-sized [`Pool`], spawned lazily on
/// first use and reused by every caller for the rest of the process.
///
/// This is what the engine-level convenience paths
/// (`CompiledCandidates::count_sharded` / `count_auto`) dispatch to when no
/// session pool is in scope — a shared-threads replacement for the scoped
/// spawn-per-call they used before. Code that owns a lifecycle (a
/// `MiningSession`, a `tdm-serve` service) should size and own its own pool
/// instead.
pub fn shared() -> &'static Pool {
    static SHARED: OnceLock<Pool> = OnceLock::new();
    SHARED.get_or_init(Pool::auto)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_results_in_order() {
        let data: Vec<u32> = (0..100).collect();
        let sums = map_chunks(&data, 4, |i, c| (i, c.iter().sum::<u32>()));
        assert_eq!(sums.len(), 4);
        assert_eq!(sums[0].0, 0);
        let total: u32 = sums.iter().map(|(_, s)| s).sum();
        assert_eq!(total, 4950);
    }

    #[test]
    fn item_map_matches_sequential() {
        let data: Vec<u32> = (0..57).collect();
        for workers in [1, 2, 3, 16] {
            let out = map_items(&data, workers, |x| x * 2);
            let expect: Vec<u32> = data.iter().map(|x| x * 2).collect();
            assert_eq!(out, expect, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(map_items::<u32, u32, _>(&[], 4, |x| *x).is_empty());
        assert_eq!(map_items(&[7u32], 8, |x| x + 1), vec![8]);
    }

    #[test]
    fn workers_floor_at_one() {
        let out = map_items(&[1u32, 2, 3], 0, |x| x * 3);
        assert_eq!(out, vec![3, 6, 9]);
        assert!(default_workers() >= 1);
    }

    #[test]
    fn pool_map_preserves_order_and_is_reusable() {
        let pool = Pool::with_workers(4);
        assert_eq!(pool.workers(), 4);
        for round in 0..3u32 {
            let data: Vec<u32> = (0..57).collect();
            let out = pool.map_move(data, move |x| x * 2 + round);
            let expect: Vec<u32> = (0..57).map(|x| x * 2 + round).collect();
            assert_eq!(out, expect, "round {round}");
        }
    }

    #[test]
    fn pool_shares_data_through_arcs() {
        use std::sync::Arc;
        let pool = Pool::with_workers(3);
        let big: Arc<Vec<u64>> = Arc::new((0..10_000).collect());
        let ranges: Vec<std::ops::Range<usize>> = vec![0..2_500, 2_500..5_000, 5_000..10_000];
        let shared = Arc::clone(&big);
        let sums = pool.map_move(ranges, move |r| shared[r].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), big.iter().sum::<u64>());
    }

    #[test]
    fn pool_execute_runs_detached_jobs() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let pool = Pool::with_workers(2);
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let hits = Arc::clone(&hits);
            pool.execute(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drop joins the workers, so all jobs have run
        assert_eq!(hits.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn panicking_job_fails_the_map_without_hanging_the_pool() {
        let pool = Pool::with_workers(1);
        // One of three jobs panics on the single worker: map_move must report
        // the failure (missing result) rather than deadlock on the queue.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_move(vec![0u32, 1, 2], |x| {
                assert!(x != 1, "boom");
                x
            })
        }));
        assert!(outcome.is_err(), "map with a panicking job must fail");
        // The worker survived; the pool keeps serving jobs.
        assert_eq!(pool.map_move(vec![10u32, 20], |x| x + 1), vec![11, 21]);
    }

    #[test]
    fn pool_empty_and_single_inputs() {
        let pool = Pool::with_workers(0); // clamped to 1
        assert_eq!(pool.workers(), 1);
        assert!(pool.map_move(Vec::<u32>::new(), |x| x).is_empty());
        assert_eq!(pool.map_move(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn high_priority_jobs_overtake_queued_normal_jobs() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let pool = Pool::with_workers(1);
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Block the single worker so subsequent submissions queue up.
        {
            let gate = Arc::clone(&gate);
            pool.execute(move || {
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        let submitted = Arc::new(AtomicBool::new(false));
        for _ in 0..3 {
            let order = Arc::clone(&order);
            pool.execute(move || order.lock().unwrap().push("normal"));
        }
        {
            let order = Arc::clone(&order);
            let submitted = Arc::clone(&submitted);
            pool.execute_prio(Priority::High, move || {
                order.lock().unwrap().push("high");
                submitted.store(true, Ordering::SeqCst);
            });
        }
        // Open the gate and drain.
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        drop(pool); // joins the worker: everything queued has run
        let order = order.lock().unwrap();
        assert_eq!(
            order.as_slice(),
            ["high", "normal", "normal", "normal"],
            "the high job must run before every queued normal job"
        );
        assert!(submitted.load(Ordering::SeqCst));
    }

    /// Blocks `pool`'s (single) worker behind a gate, runs `queue` to enqueue
    /// jobs while the worker is pinned, opens the gate, joins the pool, and
    /// returns the order the queued jobs ran in.
    fn run_gated(
        pool: Pool,
        queue: impl FnOnce(&Pool, &Arc<Mutex<Vec<&'static str>>>),
    ) -> Vec<&'static str> {
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new((Mutex::new(false), Condvar::new()));
        {
            let gate = Arc::clone(&gate);
            let started = Arc::clone(&started);
            pool.execute(move || {
                {
                    let (lock, cv) = &*started;
                    *lock.lock().unwrap() = true;
                    cv.notify_all();
                }
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            });
        }
        // Only queue once the worker is pinned behind the gate, so the queued
        // jobs drain in one deterministic burst.
        {
            let (lock, cv) = &*started;
            let mut ok = lock.lock().unwrap();
            while !*ok {
                ok = cv.wait(ok).unwrap();
            }
        }
        queue(&pool, &order);
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        drop(pool); // joins the worker: everything queued has run
        Arc::try_unwrap(order).unwrap().into_inner().unwrap()
    }

    #[test]
    fn a_continuous_high_stream_no_longer_starves_the_normal_lane() {
        // Aging limit 2: after two high pops made while a normal job waits,
        // the normal job must run — even though six high jobs are queued.
        let order = run_gated(Pool::with_aging(1, 2), |pool, order| {
            {
                let order = Arc::clone(order);
                pool.execute(move || order.lock().unwrap().push("normal"));
            }
            for _ in 0..6 {
                let order = Arc::clone(order);
                pool.execute_prio(Priority::High, move || order.lock().unwrap().push("high"));
            }
        });
        assert_eq!(
            order.as_slice(),
            ["high", "high", "normal", "high", "high", "high", "high"],
            "the aged normal job must run after exactly two high pops"
        );
    }

    #[test]
    fn aging_zero_restores_strict_priority() {
        let order = run_gated(Pool::with_aging(1, 0), |pool, order| {
            {
                let order = Arc::clone(order);
                pool.execute(move || order.lock().unwrap().push("normal"));
            }
            for _ in 0..4 {
                let order = Arc::clone(order);
                pool.execute_prio(Priority::High, move || order.lock().unwrap().push("high"));
            }
        });
        assert_eq!(
            order.as_slice(),
            ["high", "high", "high", "high", "normal"],
            "aging 0 must drain the whole high lane first"
        );
    }

    #[test]
    fn default_pools_age_their_lanes() {
        assert_eq!(Pool::with_workers(1).aging(), DEFAULT_LANE_AGING);
        assert_eq!(Pool::with_aging(1, 3).aging(), 3);
    }

    #[test]
    fn prioritized_map_returns_in_input_order() {
        let pool = Pool::with_workers(3);
        let out = pool.map_move_prio(Priority::High, (0..40u32).collect(), |x| x + 1);
        assert_eq!(out, (1..=40).collect::<Vec<_>>());
    }

    #[test]
    fn shared_pool_is_one_instance_and_usable() {
        let a = shared() as *const Pool;
        let b = shared() as *const Pool;
        assert_eq!(a, b, "shared() must hand out one process-wide pool");
        assert!(shared().workers() >= 1);
        assert_eq!(shared().map_move(vec![1u32, 2, 3], |x| x * x), [1, 4, 9]);
    }

    #[test]
    fn pool_threads_persist_across_calls() {
        // Thread-local state survives between map_move calls: the whole point
        // of a persistent pool over scoped spawning.
        thread_local! {
            static CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        }
        let pool = Pool::with_workers(1);
        let bump = |_: u32| {
            CALLS.with(|c| {
                c.set(c.get() + 1);
                c.get()
            })
        };
        // (Single-element calls run inline on the caller, so use two inputs.)
        let a = pool.map_move(vec![0u32, 0], bump);
        let b = pool.map_move(vec![0u32, 0], bump);
        assert_eq!(a, vec![1, 2]);
        assert_eq!(b, vec![3, 4]);
    }
}
