//! # tdm-mapreduce — a minimal MapReduce framework
//!
//! The paper frames its mining kernels as MapReduce computations (§2.2, §3.3.1):
//! *map* emits the appearance count of one episode, *reduce* is either the
//! identity (thread-level parallelism) or a sum over the partial counts of the
//! threads that cooperated on one episode (block-level parallelism).
//!
//! This crate provides that programming model for the CPU side of the
//! reproduction: [`Mapper`]/[`Reducer`] traits, a sequential executor
//! ([`run_sequential`]) and a scoped-thread parallel executor ([`run_parallel`])
//! whose workers mirror the figure-2 topology (map workers → grouped intermediate
//! pairs → reduce workers). The CPU mining baselines in `tdm-baselines` are built
//! on it.
//!
//! The [`pool`] module holds the execution substrate underneath: scoped
//! parallel-for helpers for one-shot jobs, and the persistent, shareable,
//! priority-aware [`pool::Pool`] that mining sessions — and the whole
//! `tdm-serve` multi-tenant service — dispatch their counting scans to.
//!
//! ```
//! use tdm_mapreduce::{Mapper, Reducer, run_parallel};
//!
//! struct WordLen;
//! impl Mapper for WordLen {
//!     type Input = String;
//!     type Key = usize;
//!     type Value = u64;
//!     fn map(&self, word: &String, emit: &mut dyn FnMut(usize, u64)) {
//!         emit(word.len(), 1);
//!     }
//! }
//! struct Sum;
//! impl Reducer for Sum {
//!     type Key = usize;
//!     type Value = u64;
//!     type Output = u64;
//!     fn reduce(&self, _k: &usize, vs: &[u64]) -> u64 { vs.iter().sum() }
//! }
//!
//! let words: Vec<String> = ["a", "bb", "cc", "ddd"].iter().map(|s| s.to_string()).collect();
//! let out = run_parallel(&WordLen, &Sum, &words, 2);
//! assert_eq!(out, vec![(1, 1), (2, 2), (3, 1)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pool;

use std::collections::BTreeMap;

/// The map side: turns one input record into intermediate key/value pairs.
pub trait Mapper: Sync {
    /// Input record type.
    type Input: Sync;
    /// Intermediate key.
    type Key: Ord + Clone + Send + Sync;
    /// Intermediate value.
    type Value: Send + Sync;

    /// Emits zero or more intermediate pairs for one input.
    fn map(&self, input: &Self::Input, emit: &mut dyn FnMut(Self::Key, Self::Value));
}

/// The reduce side: folds all values of one intermediate key into an output.
pub trait Reducer: Sync {
    /// Intermediate key (must match the mapper's).
    type Key: Ord + Clone + Send + Sync;
    /// Intermediate value (must match the mapper's).
    type Value: Send + Sync;
    /// Final output per key.
    type Output: Send;

    /// Reduces the collected values of `key`.
    fn reduce(&self, key: &Self::Key, values: &[Self::Value]) -> Self::Output;
}

/// An identity-style reducer for map-only jobs (the paper's thread-level
/// algorithms): each key is expected to carry exactly one value, which is passed
/// through.
pub struct IdentityReducer<K, V>(std::marker::PhantomData<fn(K, V)>);

impl<K, V> Default for IdentityReducer<K, V> {
    fn default() -> Self {
        IdentityReducer(std::marker::PhantomData)
    }
}

impl<K: Ord + Clone + Send + Sync, V: Send + Sync + Clone> Reducer for IdentityReducer<K, V> {
    type Key = K;
    type Value = V;
    type Output = V;

    fn reduce(&self, _key: &K, values: &[V]) -> V {
        debug_assert_eq!(values.len(), 1, "identity reduce expects one value per key");
        values[0].clone()
    }
}

/// Runs the job sequentially (reference executor).
pub fn run_sequential<M, R>(
    mapper: &M,
    reducer: &R,
    inputs: &[M::Input],
) -> Vec<(M::Key, R::Output)>
where
    M: Mapper,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    let mut groups: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
    for input in inputs {
        mapper.map(input, &mut |k, v| groups.entry(k).or_default().push(v));
    }
    groups
        .into_iter()
        .map(|(k, vs)| {
            let out = reducer.reduce(&k, &vs);
            (k, out)
        })
        .collect()
}

/// Runs the job with `workers` map workers and the same number of reduce
/// workers, using scoped threads. Output is sorted by key, identical
/// to [`run_sequential`] for deterministic mappers/reducers.
pub fn run_parallel<M, R>(
    mapper: &M,
    reducer: &R,
    inputs: &[M::Input],
    workers: usize,
) -> Vec<(M::Key, R::Output)>
where
    M: Mapper,
    R: Reducer<Key = M::Key, Value = M::Value>,
{
    let workers = workers.max(1);
    if inputs.is_empty() {
        return Vec::new();
    }

    // Map phase: each worker maps a contiguous chunk into a local group table.
    let chunk = inputs.len().div_ceil(workers);
    let locals: Vec<BTreeMap<M::Key, Vec<M::Value>>> = std::thread::scope(|s| {
        let handles: Vec<_> = inputs
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    let mut local: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
                    for input in part {
                        mapper.map(input, &mut |k, v| local.entry(k).or_default().push(v));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map worker panicked"))
            .collect()
    });

    // Shuffle: merge worker-local tables (workers produced chunks in input order,
    // so values keep a deterministic order).
    let mut groups: BTreeMap<M::Key, Vec<M::Value>> = BTreeMap::new();
    for local in locals {
        for (k, mut vs) in local {
            groups.entry(k).or_default().append(&mut vs);
        }
    }

    // Reduce phase: chunk keys across workers.
    let entries: Vec<(M::Key, Vec<M::Value>)> = groups.into_iter().collect();
    let chunk = entries.len().div_ceil(workers).max(1);
    let reduced: Vec<Vec<(M::Key, R::Output)>> = std::thread::scope(|s| {
        let handles: Vec<_> = entries
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    part.iter()
                        .map(|(k, vs)| (k.clone(), reducer.reduce(k, vs)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reduce worker panicked"))
            .collect()
    });

    // Keys were globally sorted before chunking; concatenation preserves order.
    reduced.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tokenize;
    impl Mapper for Tokenize {
        type Input = String;
        type Key = String;
        type Value = u64;
        fn map(&self, line: &String, emit: &mut dyn FnMut(String, u64)) {
            for w in line.split_whitespace() {
                emit(w.to_string(), 1);
            }
        }
    }

    struct Sum;
    impl Reducer for Sum {
        type Key = String;
        type Value = u64;
        type Output = u64;
        fn reduce(&self, _k: &String, vs: &[u64]) -> u64 {
            vs.iter().sum()
        }
    }

    fn lines() -> Vec<String> {
        vec![
            "the quick brown fox".to_string(),
            "the lazy dog".to_string(),
            "the quick dog".to_string(),
        ]
    }

    #[test]
    fn word_count_sequential() {
        let out = run_sequential(&Tokenize, &Sum, &lines());
        let the = out.iter().find(|(k, _)| k == "the").unwrap();
        assert_eq!(the.1, 3);
        let quick = out.iter().find(|(k, _)| k == "quick").unwrap();
        assert_eq!(quick.1, 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = run_sequential(&Tokenize, &Sum, &lines());
        for workers in [1, 2, 3, 8] {
            assert_eq!(run_parallel(&Tokenize, &Sum, &lines(), workers), seq);
        }
    }

    #[test]
    fn empty_input() {
        let out = run_parallel(&Tokenize, &Sum, &[], 4);
        assert!(out.is_empty());
    }

    #[test]
    fn identity_reducer_passes_single_values() {
        struct One;
        impl Mapper for One {
            type Input = u32;
            type Key = u32;
            type Value = u32;
            fn map(&self, x: &u32, emit: &mut dyn FnMut(u32, u32)) {
                emit(*x, x * 10);
            }
        }
        let out = run_parallel(&One, &IdentityReducer::default(), &[3, 1, 2], 2);
        assert_eq!(out, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn output_sorted_by_key() {
        let out = run_parallel(&Tokenize, &Sum, &lines(), 3);
        let keys: Vec<&String> = out.iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn more_workers_than_inputs() {
        let out = run_parallel(&Tokenize, &Sum, &lines()[..1], 64);
        assert_eq!(out.len(), 4); // the quick brown fox
    }
}
