//! # tdm-core — frequent episode mining
//!
//! Core library for the reproduction of *"Multi-Dimensional Characterization of
//! Temporal Data Mining on Graphics Processors"* (Archuleta, Cao, Feng, Scogland;
//! IPPS 2009).
//!
//! Frequent **episode mining** searches an ordered database of items (events) for
//! *episodes* — ordered sequences of items — whose number of appearances divided by
//! the database length exceeds a support threshold α (paper §3.1).
//!
//! This crate provides:
//!
//! * the data model: [`Alphabet`], [`Symbol`], [`EventDb`], [`Episode`];
//! * the paper's Figure-3 finite state machine and alternative counting semantics
//!   ([`fsm`], [`semantics`]);
//! * sequential counters, including a fast multi-episode *active-set* counter
//!   ([`count`]);
//! * the counting **engine**: candidate sets compiled into flat CSR buffers
//!   with a symbol-anchored index, reusable scan scratch, and database-sharded
//!   parallel counting with boundary fix-up — the CPU analogue of the paper's
//!   block-level Algorithms 3/4 ([`engine`]) — plus two strategies that beat
//!   the scan outright: **vertical occurrence-list counting**
//!   ([`engine::OccurrenceIndex`]) and **word-packed Shift-And advancement**
//!   of many episodes per machine word ([`engine::BitmaskNfa`]), dispatched
//!   per level by estimated cost ([`miner::AutoBackend`]);
//! * **segmented** counting with boundary continuation — the span handling that the
//!   paper's block-level algorithms need (paper Fig. 5) — plus an exact
//!   state-composition variant ([`segment`]);
//! * candidate generation (full permutation spaces and Apriori-style joins)
//!   ([`candidate`]);
//! * the **plan/execute** counting API: [`session::MiningSession`] compiles
//!   each level once and owns the persistent worker pool, while counting
//!   backends implement [`session::Executor`] over borrowed
//!   [`session::CountRequest`] views ([`session`]);
//! * **cross-request co-mining**: [`session::CoSession`] advances several
//!   mining configurations over one database in lockstep, counting each
//!   level's deduplicated [`engine::CandidateUnion`] with a single shared
//!   scan and demultiplexing the counts back per member — bit-identical to
//!   mining each configuration alone;
//! * the level-wise mining loop of the paper's Algorithm 1, a thin driver
//!   over a session ([`miner`]);
//! * the episode-expiry extension sketched in the paper's future work ([`expiry`]).
//!
//! ## Quick example
//!
//! ```
//! use tdm_core::{Alphabet, EventDb, Episode, count::count_episode};
//!
//! let ab = Alphabet::latin26();
//! let db = EventDb::from_str_symbols(&ab, "ABCABCAB").unwrap();
//! let ep = Episode::from_str(&ab, "AB").unwrap();
//! assert_eq!(count_episode(&db, &ep), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alphabet;
pub mod candidate;
pub mod count;
pub mod engine;
pub mod episode;
pub mod expiry;
pub mod fsm;
pub mod miner;
pub mod segment;
pub mod semantics;
pub mod sequence;
pub mod session;
pub mod stats;
pub mod streaming;

pub use alphabet::{Alphabet, Symbol};
pub use engine::{
    BitmaskNfa, CandidateUnion, CompileError, CompiledCandidates, CountScratch, CountStrategy,
    DispatchClass, GpuDispatchModel, OccurrenceIndex, StrategyCosts,
};
pub use episode::Episode;
#[allow(deprecated)]
pub use miner::CountingBackend;
pub use miner::{AutoBackend, Miner, MinerConfig, SequentialBackend};
pub use semantics::CountSemantics;
pub use sequence::EventDb;
pub use session::{
    BackendError, CancelToken, CoSession, CoSessionBuilder, CountRequest, Counts, Executor,
    MineError, MiningSession, MiningSessionBuilder,
};
pub use stats::{LevelResult, MiningResult};
pub use streaming::StreamingSession;

/// Errors produced by `tdm-core` constructors and validators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A symbol name was not present in the alphabet.
    UnknownSymbol(String),
    /// A symbol id exceeded the alphabet size.
    SymbolOutOfRange {
        /// The offending symbol id.
        id: u8,
        /// The alphabet size it must be below.
        alphabet: usize,
    },
    /// An episode was empty; episodes must contain at least one item.
    EmptyEpisode,
    /// Alphabet construction exceeded the 256-symbol limit.
    AlphabetTooLarge(usize),
    /// Timestamps were required (expiry semantics) but the database has none.
    MissingTimestamps,
    /// Timestamps were not sorted in non-decreasing order.
    UnsortedTimestamps {
        /// Index of the first out-of-order timestamp.
        at: usize,
    },
    /// Mismatched lengths between symbols and timestamps.
    LengthMismatch {
        /// Number of symbols.
        symbols: usize,
        /// Number of timestamps.
        times: usize,
    },
    /// A session built over one stream snapshot was asked to serve (or rebase
    /// onto) a database that is not an append-descendant of that snapshot.
    StaleSnapshot {
        /// Epoch of the snapshot the session holds.
        session_epoch: u64,
        /// Epoch of the database it was offered.
        db_epoch: u64,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::UnknownSymbol(s) => write!(f, "unknown symbol {s:?}"),
            CoreError::SymbolOutOfRange { id, alphabet } => {
                write!(
                    f,
                    "symbol id {id} out of range for alphabet of size {alphabet}"
                )
            }
            CoreError::EmptyEpisode => write!(f, "episodes must contain at least one item"),
            CoreError::AlphabetTooLarge(n) => {
                write!(f, "alphabet of size {n} exceeds the 256-symbol limit")
            }
            CoreError::MissingTimestamps => {
                write!(f, "operation requires timestamps but the database has none")
            }
            CoreError::UnsortedTimestamps { at } => {
                write!(
                    f,
                    "timestamps must be non-decreasing (violated at index {at})"
                )
            }
            CoreError::LengthMismatch { symbols, times } => {
                write!(f, "{symbols} symbols but {times} timestamps")
            }
            CoreError::StaleSnapshot {
                session_epoch,
                db_epoch,
            } => {
                write!(
                    f,
                    "session snapshot at epoch {session_epoch} cannot rebase onto a database at epoch {db_epoch}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient result alias for `tdm-core` operations.
pub type Result<T> = std::result::Result<T, CoreError>;
