//! Segmented counting and boundary ("span") handling — paper §3.3.3 and Fig. 5.
//!
//! The paper's block-level algorithms split the database across threads; an
//! episode whose appearance *spans* a thread boundary would be missed unless an
//! intermediate step between map and reduce accounts for it. This module houses
//! the counting-side machinery those kernels use:
//!
//! * [`scan_segment`]: a thread's map step — scan a range from the start state,
//!   reporting the count and the live FSM state at the segment end;
//! * [`continuation_count`]: the span fix — resolve a live partial match by
//!   scanning past the boundary, advancing only. The continuation stops as soon as
//!   the match would *restart* (ownership of that anchor belongs to the next
//!   segment) or *reset* (the partial dies);
//! * [`count_segmented`]: map + span fix + reduce over an arbitrary segmentation;
//! * [`count_segmented_exact`]: an exact alternative based on FSM state-function
//!   composition, correct for *any* episode (see the consistency note below).
//!
//! ## Consistency
//!
//! For episodes with **distinct items** — every candidate the paper's evaluation
//! uses (permutations of distinct letters) — `count_segmented` equals the
//! sequential FSM count for every segmentation (property-tested). For episodes
//! with repeated items the greedy FSM's restart ambiguity can make the continuation
//! disagree with a sequential scan by a small amount; `count_segmented_exact`
//! composes per-segment transition functions and is exact for all episodes at the
//! cost of `L + 1` scans' worth of state per segment.

use crate::episode::Episode;
use crate::fsm::EpisodeFsm;
use crate::sequence::EventDb;

/// Result of one segment's map step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentScan {
    /// Appearances completed entirely within the segment (counting from state 0).
    pub count: u64,
    /// FSM state at the end of the segment (non-zero = a live partial match).
    pub end_state: u8,
}

/// Scans `stream[range]` from the start state (a block-level thread's map step).
pub fn scan_segment(
    stream: &[u8],
    episode: &Episode,
    range: std::ops::Range<usize>,
) -> SegmentScan {
    scan_segment_items(stream, episode.items(), range)
}

/// Item-slice form of [`scan_segment`], for callers holding a compiled
/// candidate layout ([`crate::engine::CompiledCandidates`]) rather than
/// [`Episode`] values. `items` must be non-empty.
pub fn scan_segment_items(
    stream: &[u8],
    items: &[u8],
    range: std::ops::Range<usize>,
) -> SegmentScan {
    let mut fsm = EpisodeFsm::from_items(items);
    let count = fsm.run(&stream[range]);
    SegmentScan {
        count,
        end_state: fsm.state(),
    }
}

/// Resolves a live partial match (`state`) by scanning forward from `from`,
/// **advancing only**:
///
/// * `c == a_next` → advance (a completion contributes 1 and stops);
/// * anything else → stop. In particular `c == a1` stops because a restarted
///   match is anchored in the downstream segment, which counts it itself.
///
/// Returns 1 when the spanning appearance completes, 0 otherwise.
pub fn continuation_count(stream: &[u8], episode: &Episode, state: u8, from: usize) -> u64 {
    continuation_count_items(stream, episode.items(), state, from)
}

/// Item-slice form of [`continuation_count`] (the engine's boundary-fix step
/// uses this directly on the compiled layout).
pub fn continuation_count_items(stream: &[u8], items: &[u8], state: u8, from: usize) -> u64 {
    if state == 0 {
        return 0;
    }
    let mut j = state as usize;
    for &c in &stream[from..] {
        if c == items[j] {
            j += 1;
            if j == items.len() {
                return 1;
            }
        } else {
            return 0;
        }
    }
    0
}

/// Outcome of advancing a parked continuation through one appended chunk
/// (the streaming form of [`continuation_count_items`], where the "rest of
/// the stream" has not arrived yet).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Continuation {
    /// The spanning appearance completed inside the chunk: count it.
    Completed,
    /// The partial died on a mismatch: nothing to count, nothing left parked.
    Died,
    /// The chunk ended while the partial was still advancing — park this
    /// state at the new stream head and resume on the next append.
    Pending(u8),
}

/// Advances a live partial match (`state`, non-zero) through `chunk`,
/// **advancing only** — the same stop-on-mismatch rule as
/// [`continuation_count_items`] — but reporting a still-live partial as
/// [`Continuation::Pending`] instead of dropping it, so a caller feeding the
/// stream chunk-by-chunk can carry the partial across any number of append
/// seams. Resuming a `Pending(s)` with the next chunk is exactly equivalent
/// to one [`continuation_count_items`] walk over the concatenation.
///
/// ```
/// use tdm_core::segment::{continuation_advance_items, Continuation};
///
/// // Episode ABC parked at state 1 (seen A); the next two chunks deliver
/// // B, then C.
/// let items = [0u8, 1, 2];
/// assert_eq!(continuation_advance_items(&[1], &items, 1), Continuation::Pending(2));
/// assert_eq!(continuation_advance_items(&[2], &items, 2), Continuation::Completed);
/// assert_eq!(continuation_advance_items(&[9], &items, 1), Continuation::Died);
/// ```
pub fn continuation_advance_items(chunk: &[u8], items: &[u8], state: u8) -> Continuation {
    debug_assert!(state > 0, "only live partials can be advanced");
    let mut j = state as usize;
    for &c in chunk {
        if c == items[j] {
            j += 1;
            if j == items.len() {
                return Continuation::Completed;
            }
        } else {
            return Continuation::Died;
        }
    }
    Continuation::Pending(j as u8)
}

/// Full segmented count: segments are delimited by `bounds`, a non-decreasing
/// sequence of cut positions in `0..=stream.len()`. Cuts at `0`, at
/// `stream.len()`, or repeated merely produce empty segments, which are
/// harmless; an empty `bounds` degrades to a sequential scan.
///
/// Each segment is scanned from state 0; each live end-state is resolved with a
/// continuation into the following characters; the reduce step sums everything —
/// exactly the map → span-check → reduce pipeline of the paper's Algorithms 3/4.
pub fn count_segmented(db: &EventDb, episode: &Episode, bounds: &[usize]) -> u64 {
    let stream = db.symbols();
    let mut total = 0u64;
    let mut start = 0usize;
    for &b in bounds.iter().chain(std::iter::once(&stream.len())) {
        debug_assert!(b >= start && b <= stream.len());
        let scan = scan_segment(stream, episode, start..b);
        total += scan.count;
        if b < stream.len() {
            total += continuation_count(stream, episode, scan.end_state, b);
        }
        start = b;
    }
    total
}

/// Per-segment FSM effect: for each possible entry state, the number of
/// completions within the segment and the exit state.
///
/// Composing these left-to-right reproduces the sequential scan exactly, for any
/// episode — the classic parallel-FSM trick. Each segment costs `L + 1` parallel
/// state tracks (cheap: states are `u8`s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEffect {
    /// `completions[s]` = appearances completed when entering at state `s`.
    pub completions: Vec<u64>,
    /// `exit[s]` = FSM state after the segment when entering at state `s`.
    pub exit: Vec<u8>,
}

impl SegmentEffect {
    /// Computes the effect of `stream[range]` for an episode of level `l`.
    pub fn compute(stream: &[u8], episode: &Episode, range: std::ops::Range<usize>) -> Self {
        Self::compute_items(stream, episode.items(), range)
    }

    /// Item-slice form of [`SegmentEffect::compute`].
    pub fn compute_items(stream: &[u8], items: &[u8], range: std::ops::Range<usize>) -> Self {
        let l = items.len();
        let mut completions = vec![0u64; l];
        let mut exit: Vec<u8> = (0..l as u8).collect();
        for &c in &stream[range] {
            for s in 0..l {
                let (ns, done) = crate::fsm::fsm_step(items, exit[s], c);
                exit[s] = ns;
                if done {
                    completions[s] += 1;
                }
            }
        }
        SegmentEffect { completions, exit }
    }

    /// Sequentially composes `self` followed by `next`.
    pub fn then(&self, next: &SegmentEffect) -> SegmentEffect {
        let l = self.exit.len();
        let mut completions = vec![0u64; l];
        let mut exit = vec![0u8; l];
        for s in 0..l {
            let mid = self.exit[s] as usize;
            completions[s] = self.completions[s] + next.completions[mid];
            exit[s] = next.exit[mid];
        }
        SegmentEffect { completions, exit }
    }
}

/// Exact segmented count via state-function composition. Matches the sequential
/// FSM count for **every** episode and segmentation.
pub fn count_segmented_exact(db: &EventDb, episode: &Episode, bounds: &[usize]) -> u64 {
    count_segmented_exact_items(db.symbols(), episode.items(), bounds)
}

/// Item-slice form of [`count_segmented_exact`] — the engine's fallback for
/// repeated-item episodes in a sharded count.
pub fn count_segmented_exact_items(stream: &[u8], items: &[u8], bounds: &[usize]) -> u64 {
    let mut start = 0usize;
    let mut acc: Option<SegmentEffect> = None;
    for &b in bounds.iter().chain(std::iter::once(&stream.len())) {
        let eff = SegmentEffect::compute_items(stream, items, start..b);
        acc = Some(match acc {
            None => eff,
            Some(prev) => prev.then(&eff),
        });
        start = b;
    }
    acc.map(|e| e.completions[0]).unwrap_or(0)
}

/// Evenly spaced cut positions for `parts` segments over a stream of length `n`
/// (the partitioning the paper's block-level kernels use: thread `t` of `T` scans
/// `[t*n/T, (t+1)*n/T)`).
pub fn even_bounds(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0, "need at least one part");
    (1..parts).map(|t| t * n / parts).collect()
}

/// The segments a set of interior cut positions induces over a stream of
/// length `n`: `bounds.len() + 1` contiguous half-open ranges covering
/// `0..n`. The inverse view of [`even_bounds`]-style cuts, shared by every
/// sharded scanner (one range per map worker).
pub fn segment_ranges(n: usize, bounds: &[usize]) -> Vec<std::ops::Range<usize>> {
    std::iter::once(0)
        .chain(bounds.iter().copied())
        .zip(bounds.iter().copied().chain(std::iter::once(n)))
        .map(|(s, e)| s..e)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::count::count_episode;
    use proptest::prelude::*;

    fn setup(db: &str, ep: &str) -> (EventDb, Episode) {
        let ab = Alphabet::latin26();
        (
            EventDb::from_str_symbols(&ab, db).unwrap(),
            Episode::from_str(&ab, ep).unwrap(),
        )
    }

    #[test]
    fn figure5_span_scenario() {
        // Paper Fig. 5: searching B => C across a boundary; with the span check
        // the count is found, without it it is lost.
        let (db, ep) = setup("ABCB" /* boundary */, "BC");
        // Put the boundary right after the 'B' so "B|C" spans it.
        let (db2, _) = setup("ABCBC", "BC");
        let seq = count_episode(&db2, &ep);
        assert_eq!(seq, 2);
        let with_span = count_segmented(&db2, &ep, &[4]); // "ABCB | C"
        assert_eq!(with_span, 2);
        // Dropping the continuation loses the spanning appearance:
        let naive: u64 = [0..4, 4..5]
            .into_iter()
            .map(|r| scan_segment(db2.symbols(), &ep, r).count)
            .sum();
        assert_eq!(naive, 1);
        drop(db);
    }

    #[test]
    fn continuation_stops_on_restart() {
        // Segment 1 ends mid-match "A"; segment 2 begins with a fresh 'A' anchor,
        // which belongs to segment 2: the continuation must NOT steal it.
        let (db, ep) = setup("XAAB", "AB");
        let seq = count_episode(&db, &ep);
        assert_eq!(seq, 1);
        assert_eq!(count_segmented(&db, &ep, &[2]), seq); // "XA | AB"
    }

    #[test]
    fn continuation_completes_spanning_match() {
        let (db, ep) = setup("XAB", "AB");
        assert_eq!(count_segmented(&db, &ep, &[2]), 1); // "XA | B"
        let (db, ep) = setup("ABCDE", "ABCDE");
        for cut in 1..5 {
            assert_eq!(count_segmented(&db, &ep, &[cut]), 1, "cut={cut}");
        }
    }

    #[test]
    fn many_segments_level1() {
        let (db, ep) = setup("AXAXAXA", "A");
        assert_eq!(count_segmented(&db, &ep, &even_bounds(7, 7)), 4);
    }

    #[test]
    fn exact_composition_handles_repeated_items() {
        // The known adversarial case for the greedy continuation: episode "AAB"
        // over "A | AAB". Sequential: A,A->2; A restarts->1; B resets. Count 0.
        let (db, ep) = setup("AAAB", "AAB");
        assert_eq!(count_episode(&db, &ep), 0);
        assert_eq!(count_segmented_exact(&db, &ep, &[1]), 0);
        // ... for every cut.
        for cut in 1..4 {
            assert_eq!(count_segmented_exact(&db, &ep, &[cut]), 0, "cut={cut}");
        }
    }

    #[test]
    fn chunked_continuation_equals_one_walk() {
        // Resuming Pending states chunk-by-chunk matches a single
        // continuation walk over the concatenated remainder.
        let items = [0u8, 1, 2, 3];
        let rest = [1u8, 2, 3];
        assert_eq!(continuation_count_items(&rest, &items, 1, 0), 1);
        let mut state = 1u8;
        let mut completed = 0u64;
        for chunk in rest.chunks(1) {
            match continuation_advance_items(chunk, &items, state) {
                Continuation::Completed => {
                    completed += 1;
                    break;
                }
                Continuation::Died => break,
                Continuation::Pending(s) => state = s,
            }
        }
        assert_eq!(completed, 1);
        // A mismatch kills the partial exactly like the one-walk form.
        assert_eq!(continuation_count_items(&[1, 9, 2, 3], &items, 1, 0), 0);
        assert_eq!(
            continuation_advance_items(&[1, 9], &items, 1),
            Continuation::Died
        );
    }

    #[test]
    fn empty_segments_are_harmless() {
        let (db, ep) = setup("ABAB", "AB");
        assert_eq!(count_segmented(&db, &ep, &[2, 2, 2]), 2);
        assert_eq!(count_segmented_exact(&db, &ep, &[0, 4]), 2);
    }

    #[test]
    fn even_bounds_partitions() {
        assert_eq!(even_bounds(10, 4), vec![2, 5, 7]);
        assert_eq!(even_bounds(9, 3), vec![3, 6]);
        assert!(even_bounds(5, 1).is_empty());
    }

    proptest! {
        /// For distinct-item episodes, the paper-style continuation scheme equals
        /// the sequential FSM count under ANY segmentation.
        #[test]
        fn segmented_equals_sequential_distinct_items(
            data in proptest::collection::vec(0u8..6, 1..300),
            cuts in proptest::collection::vec(0usize..300, 0..8),
            len in 1usize..4,
        ) {
            let ab = Alphabet::numbered(6).unwrap();
            let n = data.len();
            let db = EventDb::new(ab, data).unwrap();
            // Distinct-item episode 0..len (all items distinct by construction).
            let ep = Episode::new((0..len as u8).collect()).unwrap();
            let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
            bounds.sort_unstable();
            let seq = count_episode(&db, &ep);
            prop_assert_eq!(count_segmented(&db, &ep, &bounds), seq);
        }

        /// The state-composition counter equals the sequential FSM count for ANY
        /// episode (repeats allowed) and ANY segmentation.
        #[test]
        fn exact_composition_equals_sequential(
            data in proptest::collection::vec(0u8..4, 1..300),
            ep_items in proptest::collection::vec(0u8..4, 1..5),
            cuts in proptest::collection::vec(0usize..300, 0..8),
        ) {
            let ab = Alphabet::numbered(4).unwrap();
            let n = data.len();
            let db = EventDb::new(ab, data).unwrap();
            let ep = Episode::new(ep_items).unwrap();
            let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
            bounds.sort_unstable();
            prop_assert_eq!(
                count_segmented_exact(&db, &ep, &bounds),
                count_episode(&db, &ep)
            );
        }

        /// SegmentEffect composition is associative (fold order is irrelevant —
        /// what makes tree-reductions of segments legal).
        #[test]
        fn effect_composition_associative(
            data in proptest::collection::vec(0u8..4, 3..120),
            ep_items in proptest::collection::vec(0u8..4, 1..4),
        ) {
            let ep = Episode::new(ep_items).unwrap();
            let n = data.len();
            let (c1, c2) = (n / 3, 2 * n / 3);
            let a = SegmentEffect::compute(&data, &ep, 0..c1);
            let b = SegmentEffect::compute(&data, &ep, c1..c2);
            let c = SegmentEffect::compute(&data, &ep, c2..n);
            prop_assert_eq!(a.then(&b).then(&c), a.then(&b.then(&c)));
        }
    }
}
