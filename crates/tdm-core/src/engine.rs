//! The counting engine: compiled candidate sets and database-sharded parallel
//! counting.
//!
//! The paper's central performance idea is that the *shape* of the parallel
//! decomposition should follow the shape of the problem (§3.3): when candidates
//! are plentiful, shard the candidate set (thread-level, Algorithms 1/2); when
//! candidates are few but the stream is long, shard the **database** and fix up
//! the appearances that span worker boundaries (block-level, Algorithms 3/4,
//! Fig. 5). This module is the host-side engine built around that idea:
//!
//! * [`CompiledCandidates`] — the candidate set flattened into one contiguous
//!   CSR buffer (`items` + `offsets`) plus a CSR **anchor index** mapping each
//!   alphabet symbol to the episodes whose first item it is. Compiling once per
//!   level replaces the per-call `Vec<Vec<u32>>` the old active-set counter
//!   rebuilt on every invocation; after compilation no per-scan heap allocation
//!   of the index happens at all.
//! * [`CountScratch`] — the mutable per-scan state (FSM states, active set,
//!   double buffer), reusable across `count` calls so the level-wise miner
//!   amortizes allocations across levels.
//! * [`CompiledCandidates::count`] — the single-pass active-set scan over the
//!   compiled layout (the fast sequential ground truth).
//! * [`CompiledCandidates::count_sharded`] — the CPU analogue of the paper's
//!   Algorithms 3/4: the stream is split into per-worker segments (via
//!   [`tdm_mapreduce::pool`]), each worker runs the active-set scan over its
//!   segment from the start state, and live partial matches at segment
//!   boundaries are resolved with the advance-only continuation of
//!   [`crate::segment`]. Exact for distinct-item episodes (the paper's whole
//!   candidate universe) under any segmentation — property-tested — and exact
//!   for repeated-item episodes too via the state-composition fallback
//!   ([`crate::segment::count_segmented_exact_items`]).
//!
//! ## When database-sharding wins
//!
//! The active-set scan does `O(active + anchors(c))` work per character, so its
//! cost is dominated by the stream length once the candidate set is small
//! (levels 1–2: 26–650 episodes over 393,019 letters). Candidate-sharding
//! cannot help there — each worker still scans the full stream — but
//! database-sharding divides the stream itself, at the cost of
//! `episodes × (workers - 1)` cheap boundary continuations (each a few
//! characters long, paper Fig. 5). This mirrors the paper's Characterizations
//! 5–6: block-level (database-parallel) kernels dominate at low levels,
//! thread-level (candidate-parallel) kernels at high levels.
//!
//! ```
//! use tdm_core::engine::{CompiledCandidates, CountScratch};
//! use tdm_core::{Alphabet, Episode};
//!
//! let ab = Alphabet::latin26();
//! let eps = vec![
//!     Episode::from_str(&ab, "AB").unwrap(),
//!     Episode::from_str(&ab, "BA").unwrap(),
//! ];
//! // Compile once; scan as often as you like without re-indexing.
//! let compiled = CompiledCandidates::compile(ab.len(), &eps);
//! let stream: Vec<u8> = b"ABABAB".iter().map(|c| c - b'A').collect();
//! let mut scratch = CountScratch::new();
//! assert_eq!(compiled.count(&stream, &mut scratch), vec![3, 2]);
//! // The sharded path is bit-identical for any worker count.
//! assert_eq!(compiled.count_sharded(&stream, 4), vec![3, 2]);
//! ```

pub mod bitmask;
pub mod vertical;

pub use bitmask::BitmaskNfa;
pub use vertical::OccurrenceIndex;

use crate::episode::Episode;
use crate::segment::{continuation_count_items, count_segmented_exact_items};
use std::collections::HashMap;
use std::sync::Arc;
use tdm_mapreduce::pool::{default_workers, shared};

/// Streams shorter than this are counted sequentially even when more workers
/// are requested — dispatch costs more than the scan.
pub const MIN_SHARD_STREAM: usize = 4096;

/// A candidate set that does not fit the engine's `u32`-indexed CSR layout.
///
/// The compiled buffers index items and episodes with `u32` (half the memory
/// traffic of `usize` on the hot scan path); a set larger than that limit
/// must be split by the caller instead of silently wrapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The episodes' total item count exceeds the `u32` offset range.
    TooManyItems {
        /// Total items across all episodes.
        total: usize,
        /// The layout's limit.
        max: u32,
    },
    /// The episode count exceeds the `u32` index range.
    TooManyEpisodes {
        /// Number of episodes in the set.
        episodes: usize,
        /// The layout's limit.
        max: u32,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::TooManyItems { total, max } => {
                write!(f, "{total} total items exceed the compiled layout's {max}")
            }
            CompileError::TooManyEpisodes { episodes, max } => {
                write!(f, "{episodes} episodes exceed the compiled layout's {max}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// One of the engine's interchangeable counting strategies — all
/// bit-identical, chosen per level by cost
/// ([`CompiledCandidates::choose_strategy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountStrategy {
    /// The seed-style single-pass scan with a per-episode active set
    /// ([`CompiledCandidates::count`]).
    ActiveSet,
    /// Occurrence-list probing via an [`OccurrenceIndex`]
    /// ([`CompiledCandidates::count_vertical`]) — `O(min occurrences)` per
    /// episode, no stream pass at all.
    Vertical,
    /// Word-packed Shift-And advancement of up to `⌊64 / level⌋` episodes per
    /// machine word ([`BitmaskNfa`]).
    Bitmask,
}

/// Per-strategy cost estimates in comparable "simple op" units — the numbers
/// behind [`CompiledCandidates::choose_strategy`], exposed via
/// [`CompiledCandidates::strategy_costs`] so serve-time CPU-vs-GPU dispatch
/// shares one model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyCosts {
    /// Estimated ops of the vertical occurrence-list strategy.
    pub vertical: f64,
    /// Estimated ops of the word-packed Shift-And strategy (`f64::INFINITY`
    /// when the level exceeds a 64-bit lane).
    pub bitmask: f64,
}

impl StrategyCosts {
    /// The cheaper CPU strategy's cost.
    pub fn cpu_best(&self) -> f64 {
        self.vertical.min(self.bitmask)
    }
}

/// What [`CompiledCandidates::choose_backend_class`] picks per (level, union
/// size) at serve time: one of the CPU strategy classes, or handing the level
/// to a resident GPU pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchClass {
    /// CPU, seed-style active-set scan (empty sets land here too).
    CpuActiveSet,
    /// CPU, vertical occurrence-list probing.
    CpuVertical,
    /// CPU, word-packed Shift-And.
    CpuBitmask,
    /// A resident device pipeline advance (the `tdm-gpu` serving backend).
    GpuPipeline,
}

impl DispatchClass {
    /// True for the CPU classes.
    pub fn is_cpu(self) -> bool {
        !matches!(self, DispatchClass::GpuPipeline)
    }
}

/// The GPU side of the serve-time dispatch model, in the same op units as
/// [`StrategyCosts`]. Plain numbers by design: `tdm-core` knows nothing about
/// the simulator — the GPU crate (or a calibration pass) supplies them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuDispatchModel {
    /// Fixed ops-equivalent of one pipeline advance: the doorbell write,
    /// count-buffer readback, and host demux.
    pub advance_ops: f64,
    /// Device throughput advantage over one CPU core for the scan itself.
    pub speedup: f64,
}

impl Default for GpuDispatchModel {
    fn default() -> Self {
        // ~20k ops ≈ a few microseconds of fixed cost at CPU op rates; 8× is
        // the conservative end of the paper's measured kernel speedups.
        GpuDispatchModel {
            advance_ops: 20_000.0,
            speedup: 8.0,
        }
    }
}

/// A candidate set compiled into flat, scan-friendly buffers.
///
/// Layout (all CSR):
///
/// * episode `i`'s items live at `items[offsets[i]..offsets[i+1]]`;
/// * the episodes anchored at symbol `c` (first item `== c`) are
///   `anchor_episodes[anchor_offsets[c]..anchor_offsets[c+1]]`.
///
/// Compile once per candidate set (one pass, counting sort); every subsequent
/// scan reuses the buffers without touching the allocator. [`recompile`]
/// rebuilds in place so the level-wise miner reuses capacity across levels.
///
/// [`recompile`]: CompiledCandidates::recompile
#[derive(Debug, Clone, Default)]
pub struct CompiledCandidates {
    items: Vec<u8>,
    offsets: Vec<u32>,
    anchor_offsets: Vec<u32>,
    anchor_episodes: Vec<u32>,
    /// Episodes with a repeated item (need the exact fallback when sharding and
    /// the `last_step` guard when scanning). Empty for the paper's universe.
    repeated: Vec<u32>,
    /// Counting-sort cursor scratch for [`recompile`] (kept so recompiling a
    /// level allocates nothing once capacities are established).
    ///
    /// [`recompile`]: CompiledCandidates::recompile
    anchor_cursor: Vec<u32>,
    alphabet_len: usize,
    max_level: usize,
}

impl CompiledCandidates {
    /// Compiles a candidate set over an alphabet of `alphabet_len` symbols.
    ///
    /// # Panics
    /// When the set exceeds the `u32`-indexed layout (see [`try_compile`]).
    ///
    /// [`try_compile`]: CompiledCandidates::try_compile
    pub fn compile(alphabet_len: usize, episodes: &[Episode]) -> Self {
        let mut c = CompiledCandidates::default();
        c.recompile(alphabet_len, episodes);
        c
    }

    /// Checked form of [`compile`]: errors instead of panicking when the set
    /// exceeds the `u32`-indexed layout.
    ///
    /// # Errors
    /// [`CompileError`] when the episodes' total item count or the episode
    /// count exceeds `u32::MAX`.
    ///
    /// [`compile`]: CompiledCandidates::compile
    pub fn try_compile(alphabet_len: usize, episodes: &[Episode]) -> Result<Self, CompileError> {
        let mut c = CompiledCandidates::default();
        c.try_recompile(alphabet_len, episodes)?;
        Ok(c)
    }

    /// Rebuilds the compiled layout in place, reusing every buffer's capacity.
    ///
    /// # Panics
    /// When the set exceeds the `u32`-indexed layout (see [`try_recompile`]).
    ///
    /// [`try_recompile`]: CompiledCandidates::try_recompile
    pub fn recompile(&mut self, alphabet_len: usize, episodes: &[Episode]) {
        self.try_recompile(alphabet_len, episodes)
            .unwrap_or_else(|e| panic!("candidate set exceeds the compiled layout: {e}"));
    }

    /// Checked form of [`recompile`]: errors instead of panicking when the
    /// set exceeds the `u32`-indexed layout. The limits are checked **before**
    /// any buffer is touched, so on error the previously compiled set is left
    /// intact.
    ///
    /// # Errors
    /// [`CompileError`] when the episodes' total item count or the episode
    /// count exceeds `u32::MAX`.
    ///
    /// [`recompile`]: CompiledCandidates::recompile
    pub fn try_recompile(
        &mut self,
        alphabet_len: usize,
        episodes: &[Episode],
    ) -> Result<(), CompileError> {
        self.try_recompile_capped(alphabet_len, episodes, u32::MAX)
    }

    /// [`try_recompile`] against an artificial layout cap — the error paths
    /// are testable without a 4 GiB allocation.
    ///
    /// [`try_recompile`]: CompiledCandidates::try_recompile
    fn try_recompile_capped(
        &mut self,
        alphabet_len: usize,
        episodes: &[Episode],
        cap: u32,
    ) -> Result<(), CompileError> {
        if episodes.len() > cap as usize {
            return Err(CompileError::TooManyEpisodes {
                episodes: episodes.len(),
                max: cap,
            });
        }
        let total: usize = episodes.iter().map(|e| e.items().len()).sum();
        if total > cap as usize {
            return Err(CompileError::TooManyItems { total, max: cap });
        }
        self.alphabet_len = alphabet_len;
        self.items.clear();
        self.offsets.clear();
        self.repeated.clear();
        self.max_level = 0;

        self.offsets.push(0);
        for (i, ep) in episodes.iter().enumerate() {
            let it = ep.items();
            debug_assert!(it.iter().all(|&s| (s as usize) < alphabet_len));
            self.items.extend_from_slice(it);
            self.offsets.push(self.items.len() as u32);
            self.max_level = self.max_level.max(it.len());
            if !ep.has_distinct_items() {
                self.repeated.push(i as u32);
            }
        }

        // Anchor index: counting sort of episode indices by first item.
        self.anchor_offsets.clear();
        self.anchor_offsets.resize(alphabet_len + 1, 0);
        for i in 0..episodes.len() {
            let first = self.items[self.offsets[i] as usize] as usize;
            self.anchor_offsets[first + 1] += 1;
        }
        for c in 0..alphabet_len {
            self.anchor_offsets[c + 1] += self.anchor_offsets[c];
        }
        self.anchor_episodes.clear();
        self.anchor_episodes.resize(episodes.len(), 0);
        self.anchor_cursor.clear();
        self.anchor_cursor
            .extend_from_slice(&self.anchor_offsets[..alphabet_len]);
        for i in 0..episodes.len() {
            let first = self.items[self.offsets[i] as usize] as usize;
            self.anchor_episodes[self.anchor_cursor[first] as usize] = i as u32;
            self.anchor_cursor[first] += 1;
        }
        Ok(())
    }

    /// Number of compiled episodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True when the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The longest episode level in the set (0 when empty).
    #[inline]
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Alphabet size the set was compiled against.
    #[inline]
    pub fn alphabet_len(&self) -> usize {
        self.alphabet_len
    }

    /// True when every episode has distinct items (the paper's permutation
    /// universe) — the regime where the boundary-continuation scheme is exact.
    #[inline]
    pub fn all_distinct(&self) -> bool {
        self.repeated.is_empty()
    }

    /// Items of episode `i`.
    #[inline]
    pub fn items_of(&self, i: usize) -> &[u8] {
        &self.items[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Episode indices anchored at symbol `c` (first item equals `c`).
    #[inline]
    pub fn anchored_at(&self, c: u8) -> &[u32] {
        let c = c as usize;
        &self.anchor_episodes[self.anchor_offsets[c] as usize..self.anchor_offsets[c + 1] as usize]
    }

    /// Single-pass active-set scan of `stream[range]` from the start state,
    /// adding completions into `counts` (indexed by episode). The FSM states at
    /// the end of the range remain in `scratch.state` (non-zero = live partial
    /// match at the segment boundary).
    ///
    /// This is the workhorse of both the sequential [`count`] and each
    /// sharded worker's map step.
    ///
    /// [`count`]: CompiledCandidates::count
    pub fn scan_range(
        &self,
        stream: &[u8],
        range: std::ops::Range<usize>,
        scratch: &mut CountScratch,
        counts: &mut [u64],
    ) {
        self.scan_episode_range(stream, range, 0..self.len(), scratch, counts);
    }

    /// Like [`scan_range`], but restricted to the candidate chunk
    /// `episodes` (a contiguous range of compiled episode indices): only
    /// chunk members may anchor, and `counts`, the scratch state, and the
    /// end states are all **chunk-local** (`counts.len() ==
    /// episodes.len()`, index `e - episodes.start`) — the per-chunk work is
    /// `O(chunk)`, not `O(total candidates)`.
    ///
    /// This is the borrowed-chunk view the candidate-sharded (MapReduce-style)
    /// executors scan — one compiled layout shared by every worker, no
    /// per-chunk clone or recompile.
    ///
    /// [`scan_range`]: CompiledCandidates::scan_range
    pub fn scan_episode_range(
        &self,
        stream: &[u8],
        range: std::ops::Range<usize>,
        episodes: std::ops::Range<usize>,
        scratch: &mut CountScratch,
        counts: &mut [u64],
    ) {
        debug_assert_eq!(counts.len(), episodes.len());
        debug_assert!(episodes.start <= episodes.end && episodes.end <= self.len());
        scratch.prepare(episodes.len());
        let ep_base = episodes.start;
        if self.is_empty() || range.is_empty() || episodes.is_empty() {
            return;
        }
        let (ep_lo, ep_hi) = (episodes.start as u32, episodes.end as u32);
        let whole_set = ep_lo == 0 && ep_hi as usize == self.len();
        // Per-symbol anchor-bucket windows restricted to the chunk. Bucket
        // entries are ascending (counting sort preserves episode order), so the
        // chunk members form one contiguous sub-slice per bucket.
        scratch.anchor_window.clear();
        for c in 0..self.alphabet_len {
            let bucket = &self.anchor_episodes
                [self.anchor_offsets[c] as usize..self.anchor_offsets[c + 1] as usize];
            let (lo, hi) = if whole_set {
                (0, bucket.len() as u32)
            } else {
                (
                    bucket.partition_point(|&e| e < ep_lo) as u32,
                    bucket.partition_point(|&e| e < ep_hi) as u32,
                )
            };
            scratch.anchor_window.push((lo, hi));
        }
        let CountScratch {
            state,
            last_step,
            active,
            next_active,
            anchor_window,
        } = scratch;
        // Distinct-item episodes can never re-anchor on the character that
        // completed or reset them (the completing character equals the LAST
        // item, the resetting one differs from the first), so the `last_step`
        // guard — and its per-step bookkeeping store — is only needed when the
        // set holds repeated-item episodes (in the chunk).
        let guard = self.repeated.iter().any(|&r| r >= ep_lo && r < ep_hi);

        for (pos, &c) in stream[range].iter().enumerate() {
            let pos = pos as u64;
            // Phase 1: step in-progress matches. The active set holds global
            // episode indices (for `items_of`); state/counts are chunk-local.
            for &ei in active.iter() {
                let e = ei as usize;
                let l = e - ep_base;
                let it = self.items_of(e);
                let j = state[l] as usize;
                if guard {
                    last_step[l] = pos;
                }
                if c == it[j] {
                    if j + 1 == it.len() {
                        counts[l] += 1;
                        state[l] = 0; // completed: leaves the active set
                    } else {
                        state[l] += 1;
                        next_active.push(ei);
                    }
                } else if c == it[0] {
                    state[l] = 1; // restart, stays active
                    next_active.push(ei);
                } else {
                    state[l] = 0; // reset: leaves the active set
                }
            }
            std::mem::swap(active, next_active);
            next_active.clear();

            // Phase 2: anchor fresh matches. Only state-0 episodes that did not
            // already consume this character in phase 1 may anchor.
            let (wlo, whi) = anchor_window[c as usize];
            let base = self.anchor_offsets[c as usize] as usize;
            for &ei in &self.anchor_episodes[base + wlo as usize..base + whi as usize] {
                let e = ei as usize;
                let l = e - ep_base;
                if state[l] == 0 && (!guard || last_step[l] != pos) {
                    if self.offsets[e + 1] - self.offsets[e] == 1 {
                        counts[l] += 1; // level-1 episodes complete on anchor
                    } else {
                        state[l] = 1;
                        active.push(ei);
                    }
                }
            }
        }
    }

    /// Counts every compiled episode over the whole stream with a single
    /// active-set pass — observationally identical to
    /// [`crate::count::count_episodes_naive`] for any episodes, without any
    /// per-call index construction.
    pub fn count(&self, stream: &[u8], scratch: &mut CountScratch) -> Vec<u64> {
        let mut counts = vec![0u64; self.len()];
        self.scan_range(stream, 0..stream.len(), scratch, &mut counts);
        counts
    }

    /// Segmented count over arbitrary cut positions (non-decreasing, in
    /// `0..=stream.len()`), sequentially: per-segment active-set map step,
    /// advance-only boundary continuations (paper Fig. 5), exact-composition
    /// fallback for repeated-item episodes. Equals the sequential count for
    /// every segmentation.
    ///
    /// This is the reference the parallel [`count_sharded`] is tested against
    /// with adversarial boundary positions.
    ///
    /// [`count_sharded`]: CompiledCandidates::count_sharded
    pub fn count_with_bounds(
        &self,
        stream: &[u8],
        bounds: &[usize],
        scratch: &mut CountScratch,
    ) -> Vec<u64> {
        let n = stream.len();
        let mut counts = vec![0u64; self.len()];
        let mut start = 0usize;
        for &b in bounds.iter().chain(std::iter::once(&n)) {
            debug_assert!(b >= start && b <= n);
            self.scan_range(stream, start..b, scratch, &mut counts);
            if b < n {
                self.fix_boundary(stream, b, &scratch.state, &mut counts);
            }
            start = b;
        }
        self.apply_exact_fallback(stream, bounds, &mut counts);
        counts
    }

    /// Database-sharded parallel count: the stream is split into `workers`
    /// even segments, each scanned by one pool worker from the start state;
    /// boundary partials are resolved with continuations and the per-segment
    /// partial counts are reduced by summation — the paper's map → span-check
    /// → reduce pipeline (Algorithms 3/4) on host threads.
    ///
    /// The map step runs on the **process-wide shared pool**
    /// ([`tdm_mapreduce::pool::shared`]): no thread is spawned per call, and
    /// the pool workers' thread-local scan scratch stays warm across calls.
    /// Because pool jobs are `'static`, the borrowed inputs are snapshotted
    /// into `Arc`s once per call (a clone of the compiled buffers plus one
    /// stream copy) — callers that already hold `Arc`'d inputs and a session
    /// pool (the `MiningSession` executors) use the zero-copy
    /// [`shard_scan`] / [`merge_shard_counts`] path instead.
    ///
    /// Bit-identical to the sequential count for every episode set (distinct
    /// items via the continuation scheme, repeated items via exact
    /// state-composition) and every worker count.
    ///
    /// [`shard_scan`]: CompiledCandidates::shard_scan
    /// [`merge_shard_counts`]: CompiledCandidates::merge_shard_counts
    pub fn count_sharded(&self, stream: &[u8], workers: usize) -> Vec<u64> {
        let n = stream.len();
        // More shards than hardware threads is pure overhead (snapshot, pool
        // dispatch, merge) for zero parallelism — on a 1-core host every
        // worker count collapses to the plain sequential scan.
        let workers = workers.clamp(1, default_workers());
        if workers == 1 || n < MIN_SHARD_STREAM || self.is_empty() {
            let mut scratch = CountScratch::new();
            return self.count(stream, &mut scratch);
        }
        // One snapshot of each borrowed input, then the Arc-native path.
        let this: Arc<CompiledCandidates> = Arc::new(self.clone());
        let shared_stream: Arc<[u8]> = Arc::from(stream);
        CompiledCandidates::count_sharded_arc(&this, &shared_stream, workers)
    }

    /// The **Arc-native** database-sharded count: like [`count_sharded`], but
    /// the compiled set and the stream arrive as shared handles, so dispatching
    /// the map step to the process-wide pool costs refcount bumps — no clone of
    /// the compiled buffers, no stream copy, per call. The borrowed
    /// [`count_sharded`] pays one snapshot and then delegates here; callers
    /// that already hold `Arc`'d inputs (e.g. a counting service outside the
    /// session framing) skip the snapshot entirely. Session-driven executors
    /// don't need this entry — their [`crate::session::CountRequest`] already
    /// exposes shared handles for the equivalent [`shard_scan`] /
    /// [`merge_shard_counts`] path.
    ///
    /// Bit-identical to the sequential count for every episode set and worker
    /// count, exactly like [`count_sharded`].
    ///
    /// [`count_sharded`]: CompiledCandidates::count_sharded
    /// [`shard_scan`]: CompiledCandidates::shard_scan
    /// [`merge_shard_counts`]: CompiledCandidates::merge_shard_counts
    pub fn count_sharded_arc(this: &Arc<Self>, stream: &Arc<[u8]>, workers: usize) -> Vec<u64> {
        let n = stream.len();
        // Same single-worker clamp as `count_sharded`: never cut more shards
        // than hardware threads exist to scan them.
        let workers = workers.clamp(1, default_workers());
        if workers == 1 || n < MIN_SHARD_STREAM || this.is_empty() {
            return with_thread_scratch(|scratch| this.count(stream, scratch));
        }
        let bounds = crate::segment::even_bounds(n, workers);
        let ranges = crate::segment::segment_ranges(n, &bounds);

        // Map: each shared-pool worker scans its segment with its persistent
        // thread-local scratch; the Arc clones below are the whole dispatch
        // cost.
        let compiled = Arc::clone(this);
        let shared_stream = Arc::clone(stream);
        let shards: Vec<(Vec<u64>, Vec<u8>)> =
            shared().map_move(ranges, move |r| compiled.shard_scan(&shared_stream, r));

        this.merge_shard_counts(stream, &bounds, &shards)
    }

    /// Convenience: sharded count with the machine's available parallelism.
    pub fn count_auto(&self, stream: &[u8]) -> Vec<u64> {
        self.count_sharded(stream, default_workers())
    }

    /// Picks the estimated-cheapest counting strategy for this set over the
    /// indexed stream — the per-level dispatch rule of the engine-auto
    /// executor ([`crate::miner::AutoBackend`]).
    ///
    /// The cost model (in comparable "simple op" units):
    ///
    /// * **vertical** — level-1 episodes are one list-length read; longer
    ///   distinct episodes pay ~3 ops per occurrence of their *rarest* item;
    ///   repeated-item episodes pay a full FSM scan of the stream.
    /// * **bitmask** — ~2 ops of per-character overhead plus ~10 ops per
    ///   stepped word: each symbol occurrence steps the words anchored at it
    ///   (and roughly as many live words again); repeated-item episodes pay a
    ///   full FSM scan of the stream.
    ///
    /// Sets whose level exceeds a 64-bit lane ([`BitmaskNfa::build`] returns
    /// `None`) always choose vertical; empty sets report
    /// [`CountStrategy::ActiveSet`] (nothing to scan either way).
    pub fn choose_strategy(&self, index: &OccurrenceIndex) -> CountStrategy {
        if self.is_empty() {
            return CountStrategy::ActiveSet;
        }
        if self.max_level > 64 {
            return CountStrategy::Vertical;
        }
        let costs = self.strategy_costs(index);
        if costs.vertical <= costs.bitmask {
            CountStrategy::Vertical
        } else {
            CountStrategy::Bitmask
        }
    }

    /// The cost model behind [`choose_strategy`], exposed so serve-time
    /// dispatch (CPU class vs a GPU pipeline, [`choose_backend_class`]) can
    /// reason in the same comparable "simple op" units instead of inventing a
    /// second model. Sets too long for a 64-bit lane report an infinite
    /// bitmask cost (that strategy does not exist for them).
    ///
    /// [`choose_strategy`]: CompiledCandidates::choose_strategy
    /// [`choose_backend_class`]: CompiledCandidates::choose_backend_class
    pub fn strategy_costs(&self, index: &OccurrenceIndex) -> StrategyCosts {
        let n = index.stream_len() as f64;
        let fallback_cost = 2.0 * n * self.repeated.len() as f64;

        let mut vertical = fallback_cost;
        for e in 0..self.len() {
            if self.is_repeated(e) {
                continue;
            }
            let items = self.items_of(e);
            if items.len() == 1 {
                vertical += 1.0;
            } else {
                let rarest = items.iter().map(|&c| index.occ_len(c)).min().unwrap_or(0);
                vertical += 3.0 * rarest as f64;
            }
        }

        if self.max_level > 64 {
            return StrategyCosts {
                vertical,
                bitmask: f64::INFINITY,
            };
        }
        let lanes = (64 / self.max_level.max(1)).max(1);
        let mut bitmask = 2.0 * n + fallback_cost;
        for c in 0..self.alphabet_len {
            let anchored = self
                .anchored_at(c as u8)
                .iter()
                .filter(|&&e| !self.is_repeated(e as usize))
                .count();
            let words = anchored.div_ceil(lanes) as f64;
            bitmask += 10.0 * 2.0 * words * index.occ_len(c as u8) as f64;
        }

        StrategyCosts { vertical, bitmask }
    }

    /// Serve-time backend dispatch: picks a CPU strategy class or the GPU
    /// pipeline for this (level, candidate-set) pair, reusing
    /// [`strategy_costs`]'s op units. The GPU side pays a fixed per-advance
    /// cost (`gpu.advance_ops`, covering the doorbell + count readback) and
    /// then runs the scan `gpu.speedup`× faster than one CPU core — so small
    /// sets (level 1, narrow unions) stay on the CPU and wide levels go to the
    /// device, per the paper's small-problem characterization.
    ///
    /// The CPU classes mirror [`choose_strategy`] exactly; empty sets are
    /// [`DispatchClass::CpuActiveSet`] (nothing to scan either way).
    ///
    /// [`strategy_costs`]: CompiledCandidates::strategy_costs
    /// [`choose_strategy`]: CompiledCandidates::choose_strategy
    pub fn choose_backend_class(
        &self,
        index: &OccurrenceIndex,
        gpu: &GpuDispatchModel,
    ) -> DispatchClass {
        if self.is_empty() {
            return DispatchClass::CpuActiveSet;
        }
        let costs = self.strategy_costs(index);
        let cpu_best = costs.vertical.min(costs.bitmask);
        let gpu_cost = gpu.advance_ops + cpu_best / gpu.speedup.max(1.0);
        if gpu_cost < cpu_best {
            DispatchClass::GpuPipeline
        } else if costs.vertical <= costs.bitmask {
            DispatchClass::CpuVertical
        } else {
            DispatchClass::CpuBitmask
        }
    }

    /// Counts with the estimated-best strategy ([`choose_strategy`]) on one
    /// thread: the algorithmic fast path for callers without a session or a
    /// pool (e.g. `tdm-gpu`'s reference counts). Builds the
    /// [`OccurrenceIndex`] itself; callers that count several levels over one
    /// stream should build the index once and use
    /// [`count_best_with_index`] instead.
    ///
    /// Bit-identical to [`count`](CompiledCandidates::count) for every
    /// episode set.
    ///
    /// [`choose_strategy`]: CompiledCandidates::choose_strategy
    /// [`count_best_with_index`]: CompiledCandidates::count_best_with_index
    pub fn count_best(&self, stream: &[u8]) -> Vec<u64> {
        let index = OccurrenceIndex::build(self.alphabet_len.max(1), stream);
        self.count_best_with_index(stream, &index)
    }

    /// [`count_best`] with a caller-provided (typically session-cached)
    /// occurrence index.
    ///
    /// [`count_best`]: CompiledCandidates::count_best
    pub fn count_best_with_index(&self, stream: &[u8], index: &OccurrenceIndex) -> Vec<u64> {
        match self.choose_strategy(index) {
            CountStrategy::Vertical => self.count_vertical(stream, index),
            CountStrategy::Bitmask => match BitmaskNfa::build(self) {
                Some(nfa) => nfa.count(stream),
                None => self.count_vertical(stream, index),
            },
            CountStrategy::ActiveSet => with_thread_scratch(|s| self.count(stream, s)),
        }
    }

    /// The reduce step of a database-sharded count: sums per-segment partial
    /// counts, resolves each interior boundary's live partials with
    /// advance-only continuations (paper Fig. 5), and applies the exact
    /// state-composition fallback for repeated-item episodes.
    ///
    /// `shards[w]` is segment `w`'s `(partial counts, FSM end states)` as
    /// produced by [`shard_scan`] / [`scan_range`] over the segmentation
    /// `bounds` (one more shard than bounds). Callers that run the map step on
    /// their own worker pool (the `MiningSession` path) use this to finish the
    /// count without re-implementing the boundary scheme.
    ///
    /// # Panics
    /// When `shards.len() != bounds.len() + 1` — a malformed segmentation
    /// would otherwise return silently wrong counts.
    ///
    /// [`shard_scan`]: CompiledCandidates::shard_scan
    /// [`scan_range`]: CompiledCandidates::scan_range
    pub fn merge_shard_counts(
        &self,
        stream: &[u8],
        bounds: &[usize],
        shards: &[(Vec<u64>, Vec<u8>)],
    ) -> Vec<u64> {
        assert_eq!(
            shards.len(),
            bounds.len() + 1,
            "one shard per segment: {} bounds need {} shards, got {}",
            bounds.len(),
            bounds.len() + 1,
            shards.len()
        );
        let mut counts = vec![0u64; self.len()];
        for (seg_counts, _) in shards {
            for (t, &c) in counts.iter_mut().zip(seg_counts.iter()) {
                *t += c;
            }
        }
        for (w, &b) in bounds.iter().enumerate() {
            self.fix_boundary(stream, b, &shards[w].1, &mut counts);
        }
        self.apply_exact_fallback(stream, bounds, &mut counts);
        counts
    }

    /// One database shard's map step, using this worker thread's persistent
    /// scratch: scans `stream[range]` from the start state and returns the
    /// partial counts plus the FSM end states the reduce step
    /// ([`merge_shard_counts`]) needs for boundary continuations.
    ///
    /// Designed for persistent-pool workers: the thread-local scratch stays
    /// warm across every call the worker serves, so the steady-state
    /// allocation cost is just the returned vectors.
    ///
    /// [`merge_shard_counts`]: CompiledCandidates::merge_shard_counts
    pub fn shard_scan(&self, stream: &[u8], range: std::ops::Range<usize>) -> (Vec<u64>, Vec<u8>) {
        with_thread_scratch(|scratch| {
            let mut counts = vec![0u64; self.len()];
            self.scan_range(stream, range, scratch, &mut counts);
            (counts, scratch.state.clone())
        })
    }

    /// One candidate chunk's map step, using this worker thread's persistent
    /// scratch: scans the whole stream for the compiled episodes
    /// `chunk` only and returns *their* counts (length `chunk.len()`,
    /// chunk-local order). Concatenating the chunks in order restores the full
    /// candidate order — the candidate-sharded executors' reduce step.
    pub fn chunk_scan(&self, stream: &[u8], chunk: std::ops::Range<usize>) -> Vec<u64> {
        with_thread_scratch(|scratch| {
            let mut counts = vec![0u64; chunk.len()];
            self.scan_episode_range(stream, 0..stream.len(), chunk, scratch, &mut counts);
            counts
        })
    }

    /// Resolves one interior boundary: every episode with a live end state gets
    /// its advance-only continuation scanned past `boundary`.
    fn fix_boundary(&self, stream: &[u8], boundary: usize, end_states: &[u8], counts: &mut [u64]) {
        for (e, &st) in end_states.iter().enumerate() {
            if st > 0 {
                counts[e] += continuation_count_items(stream, self.items_of(e), st, boundary);
            }
        }
    }

    /// Replaces the (possibly inconsistent) continuation-scheme counts of
    /// repeated-item episodes with the exact state-composition count over the
    /// same segmentation.
    fn apply_exact_fallback(&self, stream: &[u8], bounds: &[usize], counts: &mut [u64]) {
        for &ei in &self.repeated {
            let e = ei as usize;
            counts[e] = count_segmented_exact_items(stream, self.items_of(e), bounds);
        }
    }
}

/// Reusable mutable state for [`CompiledCandidates`] scans.
///
/// Holding one of these across `count` calls (as the counting backends do)
/// means the per-scan vectors are allocated once and then only grown — the
/// level-wise miner pays zero steady-state allocation for the scan state.
#[derive(Debug, Clone, Default)]
pub struct CountScratch {
    /// FSM state per episode (0 = start). After a scan, non-zero entries mark
    /// live partial matches at the end of the scanned range.
    pub(crate) state: Vec<u8>,
    /// Segment-local position of each episode's last phase-1 step (repeated-item
    /// guard; untouched for all-distinct sets).
    last_step: Vec<u64>,
    /// Indices of episodes with non-zero state (the active set).
    active: Vec<u32>,
    /// Double buffer for the active set.
    next_active: Vec<u32>,
    /// Per-symbol anchor-bucket windows of the episode chunk being scanned
    /// (whole buckets for unrestricted scans). Rebuilt per scan, reusing
    /// capacity.
    anchor_window: Vec<(u32, u32)>,
}

thread_local! {
    static THREAD_SCRATCH: std::cell::RefCell<CountScratch> =
        std::cell::RefCell::new(CountScratch::new());
}

/// Runs `f` with this thread's persistent [`CountScratch`].
///
/// Pool workers (and any other long-lived thread) get scan scratch that is
/// allocated once per thread and then only grows — the per-call allocation
/// profile of holding a scratch in a struct, without having to thread one
/// through `'static` job closures.
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut CountScratch) -> R) -> R {
    THREAD_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

impl CountScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        CountScratch::default()
    }

    /// FSM end states of the most recent scan (one per episode).
    pub fn end_states(&self) -> &[u8] {
        &self.state
    }

    /// Resets for a scan over `n_eps` episodes, reusing capacity.
    fn prepare(&mut self, n_eps: usize) {
        self.state.clear();
        self.state.resize(n_eps, 0);
        self.last_step.clear();
        self.last_step.resize(n_eps, u64::MAX);
        self.active.clear();
        self.next_active.clear();
    }
}

/// The deduplicated union of several candidate sets, with per-source
/// ownership maps — the compile side of **cross-request co-mining**.
///
/// When K concurrent mining requests share one database, their per-level
/// candidate sets usually overlap heavily (identical configs overlap fully;
/// different support thresholds still share the dense core of the space).
/// Scanning each set separately pays K stream passes for work one pass could
/// do. A `CandidateUnion` merges the sets:
///
/// * [`episodes`](CandidateUnion::episodes) — every distinct episode across
///   the sources, in first-appearance order (source 0's candidates first, then
///   the novel tail of source 1, …). Compile *this* set into a
///   [`CompiledCandidates`] and scan it **once**.
/// * [`map`](CandidateUnion::map) — for each source `s`, the offset map from
///   source-local candidate index to union index: `map(s)[i]` is where source
///   `s`'s candidate `i` landed in the union.
/// * [`demux`](CandidateUnion::demux) — gathers a union count vector back
///   into one source's own candidate ordering, so every request sees exactly
///   the counts a solo scan of its set would have produced.
///
/// Because the engine's scan semantics are per-episode (an episode's count
/// never depends on what else is compiled alongside it — property-tested in
/// the workspace suite), demuxed union counts are **bit-identical** to
/// per-source scans.
///
/// [`rebuild`](CandidateUnion::rebuild) reuses every buffer's capacity, so a
/// co-mining session re-unions each level without steady-state allocation.
///
/// ```
/// use tdm_core::engine::{CandidateUnion, CompiledCandidates, CountScratch};
/// use tdm_core::{Alphabet, Episode};
///
/// let ab = Alphabet::latin26();
/// let eps = |specs: &[&str]| -> Vec<Episode> {
///     specs.iter().map(|s| Episode::from_str(&ab, s).unwrap()).collect()
/// };
/// let req_a = eps(&["AB", "BC", "CA"]);
/// let req_b = eps(&["BC", "AB", "XY"]); // overlaps A on {AB, BC}
///
/// let union = CandidateUnion::build(&[&req_a, &req_b]);
/// assert_eq!(union.len(), 4); // AB, BC, CA, XY — deduplicated
///
/// // One compile, one scan, two demuxed answers.
/// let compiled = CompiledCandidates::compile(ab.len(), union.episodes());
/// let stream: Vec<u8> = b"ABCABXY".iter().map(|c| c - b'A').collect();
/// let counts = compiled.count(&stream, &mut CountScratch::new());
/// let a = union.demux(0, &counts);
/// let b = union.demux(1, &counts);
/// assert_eq!(a, CompiledCandidates::compile(ab.len(), &req_a).count(&stream, &mut CountScratch::new()));
/// assert_eq!(b, CompiledCandidates::compile(ab.len(), &req_b).count(&stream, &mut CountScratch::new()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CandidateUnion {
    /// Distinct episodes across every source, first-appearance order.
    episodes: Vec<Episode>,
    /// Per-source offset maps into `episodes` (CSR: `map_items[map_offsets[s]
    /// .. map_offsets[s+1]]` is source `s`'s map).
    map_items: Vec<u32>,
    map_offsets: Vec<u32>,
    /// Dedup index, kept to reuse its table capacity across rebuilds.
    index: HashMap<Episode, u32>,
}

impl CandidateUnion {
    /// Builds the union of `sources` (each one request's candidate set).
    pub fn build(sources: &[&[Episode]]) -> Self {
        let mut u = CandidateUnion::default();
        u.rebuild(sources);
        u
    }

    /// Rebuilds the union in place, reusing every buffer's capacity — the
    /// per-level step of a co-mining session.
    pub fn rebuild(&mut self, sources: &[&[Episode]]) {
        self.episodes.clear();
        self.map_items.clear();
        self.map_offsets.clear();
        self.index.clear();
        self.map_offsets.push(0);
        for source in sources {
            for ep in source.iter() {
                // Probe before cloning: in the heavy-overlap regime co-mining
                // targets, most candidates are duplicates, and the episode is
                // only cloned on a genuine first appearance.
                let slot = match self.index.get(ep) {
                    Some(&slot) => slot,
                    None => {
                        let next = self.episodes.len() as u32;
                        self.index.insert(ep.clone(), next);
                        self.episodes.push(ep.clone());
                        next
                    }
                };
                self.map_items.push(slot);
            }
            self.map_offsets.push(self.map_items.len() as u32);
        }
    }

    /// Number of distinct episodes in the union.
    pub fn len(&self) -> usize {
        self.episodes.len()
    }

    /// True when the union holds no episode.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    /// Number of source sets the union was built from.
    pub fn sources(&self) -> usize {
        self.map_offsets.len().saturating_sub(1)
    }

    /// The deduplicated episode set — what a co-mining scan compiles.
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Source `s`'s offset map: element `i` is the union index of source
    /// `s`'s candidate `i`.
    pub fn map(&self, s: usize) -> &[u32] {
        &self.map_items[self.map_offsets[s] as usize..self.map_offsets[s + 1] as usize]
    }

    /// Gathers union-ordered `counts` back into source `s`'s own candidate
    /// ordering — the demultiplex step after the single shared scan.
    ///
    /// # Panics
    /// When `counts.len() != self.len()` — a malformed scan result would
    /// otherwise demux silently wrong counts.
    pub fn demux(&self, s: usize, counts: &[u64]) -> Vec<u64> {
        assert_eq!(
            counts.len(),
            self.len(),
            "union scan returned {} counts for {} distinct episodes",
            counts.len(),
            self.len()
        );
        self.map(s).iter().map(|&u| counts[u as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::candidate::permutations;
    use crate::count::count_episodes_naive;
    use crate::sequence::EventDb;
    use proptest::prelude::*;

    fn db_of(s: &str) -> EventDb {
        EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap()
    }

    fn eps_of(specs: &[&str]) -> Vec<Episode> {
        let ab = Alphabet::latin26();
        specs
            .iter()
            .map(|s| Episode::from_str(&ab, s).unwrap())
            .collect()
    }

    #[test]
    fn csr_layout_round_trips() {
        let eps = eps_of(&["AB", "Q", "CAB", "AZ"]);
        let c = CompiledCandidates::compile(26, &eps);
        assert_eq!(c.len(), 4);
        assert_eq!(c.max_level(), 3);
        assert_eq!(c.alphabet_len(), 26);
        for (i, ep) in eps.iter().enumerate() {
            assert_eq!(c.items_of(i), ep.items());
        }
        // Anchor index: episodes 0 and 3 start with A, 1 with Q, 2 with C.
        assert_eq!(c.anchored_at(0), &[0, 3]);
        assert_eq!(c.anchored_at(b'Q' - b'A'), &[1]);
        assert_eq!(c.anchored_at(b'C' - b'A'), &[2]);
        assert_eq!(c.anchored_at(b'Z' - b'A'), &[] as &[u32]);
        assert!(c.all_distinct());
    }

    #[test]
    fn capped_compile_surfaces_typed_errors() {
        let mut c = CompiledCandidates::compile(26, &eps_of(&["AB", "BC"]));
        let before = c.len();

        // 5 single-item episodes against an episode cap of 4.
        let five = eps_of(&["A", "B", "C", "D", "E"]);
        assert_eq!(
            c.try_recompile_capped(26, &five, 4),
            Err(CompileError::TooManyEpisodes {
                episodes: 5,
                max: 4
            })
        );
        // 2 episodes × 3 items = 6 total items against an item cap of 5.
        let chunky = eps_of(&["ABC", "DEF"]);
        assert_eq!(
            c.try_recompile_capped(26, &chunky, 5),
            Err(CompileError::TooManyItems { total: 6, max: 5 })
        );
        // Errors are raised before any buffer is touched.
        assert_eq!(c.len(), before);
        assert_eq!(c.items_of(0), eps_of(&["AB"])[0].items());

        // At the cap exactly, compilation succeeds.
        assert!(c.try_recompile_capped(26, &chunky, 6).is_ok());
        assert_eq!(c.len(), 2);
        // And the uncapped checked paths accept ordinary sets.
        assert!(CompiledCandidates::try_compile(26, &five).is_ok());
        let err = CompileError::TooManyItems { total: 6, max: 5 };
        assert!(err.to_string().contains("6 total items"));
    }

    #[test]
    fn strategy_dispatch_picks_a_probing_strategy_and_counts_identically() {
        let db = db_of(&"ABCABZQXABC".repeat(60));
        let idx = OccurrenceIndex::build(26, db.symbols());
        let mut scratch = CountScratch::new();

        // Empty set: trivially the active-set scan.
        let none = CompiledCandidates::compile(26, &[]);
        assert_eq!(none.choose_strategy(&idx), CountStrategy::ActiveSet);
        assert!(none.count_best(db.symbols()).is_empty());

        // Level-1 sets are free with occurrence lists.
        let l1 = CompiledCandidates::compile(26, &permutations(&Alphabet::latin26(), 1));
        assert_eq!(l1.choose_strategy(&idx), CountStrategy::Vertical);
        assert_eq!(
            l1.count_best(db.symbols()),
            l1.count(db.symbols(), &mut scratch)
        );

        // Over a stream that uses the whole alphabet, the dense level-2
        // universe has no rare symbol to probe, while the word-packed scan
        // steps about one word per character: bitmask.
        let full = db_of(&"ABCDEFGHIJKLMNOPQRSTUVWXYZ".repeat(30));
        let idx_full = OccurrenceIndex::build(26, full.symbols());
        let l2 = CompiledCandidates::compile(26, &permutations(&Alphabet::latin26(), 2));
        assert_eq!(l2.choose_strategy(&idx_full), CountStrategy::Bitmask);
        assert_eq!(
            l2.count_best(full.symbols()),
            l2.count(full.symbols(), &mut scratch)
        );
        // Against the sparse stream the same set probes its (many) empty
        // occurrence lists instead.
        assert_eq!(l2.choose_strategy(&idx), CountStrategy::Vertical);
        assert_eq!(
            l2.count_best(db.symbols()),
            l2.count(db.symbols(), &mut scratch)
        );

        // Levels beyond a 64-bit lane cannot pack: vertical.
        let long = Episode::new((0..70u8).collect::<Vec<_>>()).unwrap();
        let l70 = CompiledCandidates::compile(80, &[long]);
        let idx80 = OccurrenceIndex::build(80, &[0, 1, 2]);
        assert_eq!(l70.choose_strategy(&idx80), CountStrategy::Vertical);
        assert_eq!(l70.count_best_with_index(&[0, 1, 2], &idx80), vec![0]);

        // Mixed sets with repeats stay bit-identical through dispatch.
        let mixed = CompiledCandidates::compile(26, &eps_of(&["AB", "ABA", "AAB", "Q"]));
        assert_eq!(
            mixed.count_best(db.symbols()),
            mixed.count(db.symbols(), &mut scratch)
        );
    }

    #[test]
    fn repeated_items_detected() {
        let c = CompiledCandidates::compile(26, &eps_of(&["AB", "ABA"]));
        assert!(!c.all_distinct());
        assert_eq!(c.repeated, vec![1]);
    }

    #[test]
    fn recompile_reuses_buffers_without_reallocating() {
        let big = permutations(&Alphabet::latin26(), 2);
        let small = eps_of(&["AB", "BC"]);
        let mut c = CompiledCandidates::compile(26, &big);
        let caps = (
            c.items.capacity(),
            c.offsets.capacity(),
            c.anchor_offsets.capacity(),
            c.anchor_episodes.capacity(),
        );
        let ptrs = (c.items.as_ptr(), c.anchor_episodes.as_ptr());
        c.recompile(26, &small);
        assert_eq!(c.len(), 2);
        assert_eq!(
            caps,
            (
                c.items.capacity(),
                c.offsets.capacity(),
                c.anchor_offsets.capacity(),
                c.anchor_episodes.capacity(),
            )
        );
        assert_eq!(ptrs, (c.items.as_ptr(), c.anchor_episodes.as_ptr()));
        let db = db_of("ABCABC");
        let mut scratch = CountScratch::new();
        assert_eq!(
            c.count(db.symbols(), &mut scratch),
            count_episodes_naive(&db, &small)
        );
    }

    #[test]
    fn compiled_count_matches_naive() {
        let db = db_of("ABCABCABZZQABC");
        let eps = eps_of(&["A", "AB", "ABC", "CBA", "ZQ", "QZ", "BCA", "AA", "ABA"]);
        let c = CompiledCandidates::compile(26, &eps);
        let mut scratch = CountScratch::new();
        assert_eq!(
            c.count(db.symbols(), &mut scratch),
            count_episodes_naive(&db, &eps)
        );
    }

    #[test]
    fn scratch_is_reusable_across_sets_of_different_sizes() {
        let db = db_of(&"ABCXYZ".repeat(40));
        let mut scratch = CountScratch::new();
        for level in [1usize, 2, 3] {
            let eps = permutations(&Alphabet::latin26(), level);
            let c = CompiledCandidates::compile(26, &eps);
            assert_eq!(
                c.count(db.symbols(), &mut scratch),
                count_episodes_naive(&db, &eps),
                "level {level}"
            );
        }
    }

    #[test]
    fn sharded_matches_naive_on_level2_universe() {
        // Long enough to actually shard (> MIN_SHARD_STREAM).
        let text: String = (0..8192u32)
            .map(|i| char::from(b'A' + ((i.wrapping_mul(2654435761) >> 7) % 26) as u8))
            .collect();
        let db = db_of(&text);
        let eps = permutations(&Alphabet::latin26(), 2);
        let c = CompiledCandidates::compile(26, &eps);
        let expected = count_episodes_naive(&db, &eps);
        for workers in [1usize, 2, 3, 4, 7, 8] {
            assert_eq!(
                c.count_sharded(db.symbols(), workers),
                expected,
                "workers={workers}"
            );
        }
        assert_eq!(c.count_auto(db.symbols()), expected);
    }

    #[test]
    fn empty_inputs() {
        let c = CompiledCandidates::compile(26, &[]);
        let mut scratch = CountScratch::new();
        assert!(c.count(&[], &mut scratch).is_empty());
        assert!(c.count_sharded(&[0, 1, 2], 4).is_empty());
        let c2 = CompiledCandidates::compile(26, &eps_of(&["AB"]));
        assert_eq!(c2.count(&[], &mut scratch), vec![0]);
    }

    #[test]
    fn chunk_scans_concatenate_to_the_full_count() {
        let db = db_of(&"ABCABZQXABC".repeat(40));
        let eps = eps_of(&["A", "AB", "ABC", "ZQ", "QZ", "BCA", "AA", "ABA", "X"]);
        let c = CompiledCandidates::compile(26, &eps);
        let expected = count_episodes_naive(&db, &eps);
        for chunks in [1usize, 2, 3, 4, eps.len()] {
            let size = eps.len().div_ceil(chunks);
            let mut got = Vec::new();
            let mut lo = 0;
            while lo < eps.len() {
                let hi = (lo + size).min(eps.len());
                got.extend(c.chunk_scan(db.symbols(), lo..hi));
                lo = hi;
            }
            assert_eq!(got, expected, "chunks={chunks}");
        }
        // Empty chunk touches nothing.
        assert!(c.chunk_scan(db.symbols(), 3..3).is_empty());
    }

    #[test]
    fn arc_native_sharded_count_matches_borrowed() {
        let text: String = (0..8192u32)
            .map(|i| char::from(b'A' + ((i.wrapping_mul(2654435761) >> 5) % 26) as u8))
            .collect();
        let db = db_of(&text);
        let eps = eps_of(&["AB", "BA", "A", "QXZ", "ABA"]);
        let c = Arc::new(CompiledCandidates::compile(26, &eps));
        let stream: Arc<[u8]> = Arc::from(db.symbols());
        let expected = count_episodes_naive(&db, &eps);
        for workers in [1usize, 2, 4, 8] {
            assert_eq!(
                CompiledCandidates::count_sharded_arc(&c, &stream, workers),
                expected,
                "workers={workers}"
            );
        }
        // Short streams fall back to the sequential scan, same counts.
        let short: Arc<[u8]> = Arc::from(&db.symbols()[..100]);
        let short_db = EventDb::new(Alphabet::latin26(), short.to_vec()).unwrap();
        assert_eq!(
            CompiledCandidates::count_sharded_arc(&c, &short, 4),
            count_episodes_naive(&short_db, &eps)
        );
    }

    #[test]
    fn union_dedups_and_maps_every_source() {
        let a = eps_of(&["AB", "BC", "CA"]);
        let b = eps_of(&["BC", "AB", "XY"]);
        let c = eps_of(&["Q"]);
        let u = CandidateUnion::build(&[&a, &b, &c]);
        assert_eq!(u.sources(), 3);
        assert_eq!(u.len(), 5); // AB BC CA XY Q
        assert_eq!(u.map(0), &[0, 1, 2]);
        assert_eq!(u.map(1), &[1, 0, 3]);
        assert_eq!(u.map(2), &[4]);
        // First-appearance order.
        assert_eq!(u.episodes()[3], b[2]);
        assert_eq!(u.episodes()[4], c[0]);
    }

    #[test]
    fn union_handles_empty_and_duplicate_sources() {
        let a = eps_of(&["AB", "AB"]); // repeated inside one source
        let empty: Vec<Episode> = Vec::new();
        let u = CandidateUnion::build(&[&a, &empty, &a]);
        assert_eq!(u.len(), 1);
        assert_eq!(u.map(0), &[0, 0]);
        assert!(u.map(1).is_empty());
        assert_eq!(u.map(2), &[0, 0]);
        assert_eq!(u.demux(1, &[7]), Vec::<u64>::new());
        assert_eq!(u.demux(2, &[7]), vec![7, 7]);
        let none = CandidateUnion::build(&[]);
        assert!(none.is_empty());
        assert_eq!(none.sources(), 0);
    }

    #[test]
    fn union_rebuild_reuses_buffers() {
        let big: Vec<Episode> = permutations(&Alphabet::latin26(), 2);
        let mut u = CandidateUnion::build(&[&big, &big]);
        assert_eq!(u.len(), big.len());
        let caps = (u.episodes.capacity(), u.map_items.capacity());
        let small = eps_of(&["AB"]);
        u.rebuild(&[&small]);
        assert_eq!(u.len(), 1);
        assert_eq!(u.sources(), 1);
        assert_eq!(caps, (u.episodes.capacity(), u.map_items.capacity()));
    }

    #[test]
    fn union_demux_equals_solo_counts() {
        let db = db_of(&"ABCABZQXABC".repeat(40));
        let sets = [
            eps_of(&["A", "AB", "ABC", "AA"]),
            eps_of(&["AB", "ZQ", "QZ", "ABA"]),
            eps_of(&["X", "ABC", "BCA"]),
        ];
        let refs: Vec<&[Episode]> = sets.iter().map(|s| s.as_slice()).collect();
        let u = CandidateUnion::build(&refs);
        let compiled = CompiledCandidates::compile(26, u.episodes());
        let mut scratch = CountScratch::new();
        let union_counts = compiled.count(db.symbols(), &mut scratch);
        for (s, set) in sets.iter().enumerate() {
            assert_eq!(
                u.demux(s, &union_counts),
                count_episodes_naive(&db, set),
                "source {s}"
            );
        }
    }

    #[test]
    fn shard_scan_plus_merge_equals_sequential() {
        let text: String = (0..6000u32)
            .map(|i| char::from(b'A' + ((i.wrapping_mul(2654435761) >> 9) % 26) as u8))
            .collect();
        let db = db_of(&text);
        let eps = eps_of(&["AB", "BA", "QXZ", "A", "ABA"]);
        let c = CompiledCandidates::compile(26, &eps);
        let mut scratch = CountScratch::new();
        let expected = c.count(db.symbols(), &mut scratch);
        for parts in [2usize, 3, 5] {
            let bounds = crate::segment::even_bounds(db.len(), parts);
            let shards: Vec<(Vec<u64>, Vec<u8>)> =
                crate::segment::segment_ranges(db.len(), &bounds)
                    .into_iter()
                    .map(|r| c.shard_scan(db.symbols(), r))
                    .collect();
            assert_eq!(
                c.merge_shard_counts(db.symbols(), &bounds, &shards),
                expected,
                "parts={parts}"
            );
        }
    }

    proptest! {
        /// Arbitrary cut positions (the adversarial segmentations a sharded run
        /// could produce) preserve counts for arbitrary episode sets — repeats
        /// included, thanks to the exact-composition fallback.
        #[test]
        fn bounded_count_equals_naive(
            data in proptest::collection::vec(0u8..6, 0..400),
            eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..5), 1..25),
            cuts in proptest::collection::vec(0usize..400, 0..8),
        ) {
            let ab = Alphabet::numbered(6).unwrap();
            let n = data.len();
            let db = EventDb::new(ab, data).unwrap();
            let episodes: Vec<Episode> =
                eps.into_iter().map(|v| Episode::new(v).unwrap()).collect();
            let c = CompiledCandidates::compile(6, &episodes);
            let mut bounds: Vec<usize> = cuts.into_iter().map(|x| x % (n + 1)).collect();
            bounds.sort_unstable();
            let mut scratch = CountScratch::new();
            prop_assert_eq!(
                c.count_with_bounds(db.symbols(), &bounds, &mut scratch),
                count_episodes_naive(&db, &episodes)
            );
        }

        /// Chunked (candidate-sharded) scans concatenate to the full count for
        /// arbitrary inputs and arbitrary chunk granularity — repeats included
        /// (the chunk guard is per-chunk).
        #[test]
        fn chunked_scan_equals_naive(
            data in proptest::collection::vec(0u8..6, 0..300),
            eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..5), 1..20),
            size in 1usize..8,
        ) {
            let ab = Alphabet::numbered(6).unwrap();
            let db = EventDb::new(ab, data).unwrap();
            let episodes: Vec<Episode> =
                eps.into_iter().map(|v| Episode::new(v).unwrap()).collect();
            let c = CompiledCandidates::compile(6, &episodes);
            let mut got = Vec::new();
            let mut lo = 0;
            while lo < episodes.len() {
                let hi = (lo + size).min(episodes.len());
                got.extend(c.chunk_scan(db.symbols(), lo..hi));
                lo = hi;
            }
            prop_assert_eq!(got, count_episodes_naive(&db, &episodes));
        }

        /// The compiled sequential scan is observationally identical to the
        /// per-episode FSM reference for arbitrary inputs.
        #[test]
        fn compiled_scan_equals_naive(
            data in proptest::collection::vec(0u8..6, 0..400),
            eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..5), 1..25),
        ) {
            let ab = Alphabet::numbered(6).unwrap();
            let db = EventDb::new(ab, data).unwrap();
            let episodes: Vec<Episode> =
                eps.into_iter().map(|v| Episode::new(v).unwrap()).collect();
            let c = CompiledCandidates::compile(6, &episodes);
            let mut scratch = CountScratch::new();
            prop_assert_eq!(
                c.count(db.symbols(), &mut scratch),
                count_episodes_naive(&db, &episodes)
            );
        }
    }
}
