//! The ordered event database `D = {d1, d2, ..., dn}` (paper §3.1).
//!
//! The database is a flat `Vec<u8>` of symbol ids — exactly the representation the
//! paper's kernels stream through texture or shared memory — plus optional
//! per-event timestamps, which the episode-expiry extension (paper §6) requires.

use crate::alphabet::{Alphabet, Symbol};
use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An ordered database of events over an [`Alphabet`].
///
/// The symbol stream lives behind an [`Arc`], so cloning the database — or
/// snapshotting the stream into a mining session — is a refcount bump, never
/// a byte copy.
///
/// The database is **append-only**: [`append`](EventDb::append) /
/// [`extend`](EventDb::extend) grow the stream by allocating a fresh `Arc`
/// buffer and bumping the [`epoch`](EventDb::epoch) counter, so every
/// previously taken [`symbols_shared`](EventDb::symbols_shared) snapshot keeps
/// aliasing the buffer it was taken from — parked sessions stay valid while
/// the live head moves on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EventDb {
    alphabet: Alphabet,
    symbols: Arc<[u8]>,
    /// Optional non-decreasing timestamps, one per symbol.
    times: Option<Vec<u64>>,
    /// Append generation: 0 at construction, +1 per successful append batch.
    epoch: u64,
}

/// Equality is **content** equality (alphabet, symbols, timestamps): two
/// databases that reached the same stream through different append histories
/// compare equal even though their epochs differ.
impl PartialEq for EventDb {
    fn eq(&self, other: &Self) -> bool {
        self.alphabet == other.alphabet
            && self.symbols == other.symbols
            && self.times == other.times
    }
}

impl Eq for EventDb {}

impl EventDb {
    /// Builds a database from raw symbol ids, validating them against the alphabet.
    ///
    /// # Errors
    /// [`CoreError::SymbolOutOfRange`] when an id is not in the alphabet.
    pub fn new(alphabet: Alphabet, symbols: Vec<u8>) -> Result<Self> {
        if let Some(&bad) = symbols.iter().find(|&&s| s as usize >= alphabet.len()) {
            return Err(CoreError::SymbolOutOfRange {
                id: bad,
                alphabet: alphabet.len(),
            });
        }
        Ok(EventDb {
            alphabet,
            symbols: symbols.into(),
            times: None,
            epoch: 0,
        })
    }

    /// Builds a timestamped database. Timestamps must be non-decreasing and one per
    /// symbol.
    ///
    /// # Errors
    /// [`CoreError::LengthMismatch`] or [`CoreError::UnsortedTimestamps`] on invalid
    /// input (plus the validations of [`EventDb::new`]).
    pub fn with_times(alphabet: Alphabet, symbols: Vec<u8>, times: Vec<u64>) -> Result<Self> {
        if symbols.len() != times.len() {
            return Err(CoreError::LengthMismatch {
                symbols: symbols.len(),
                times: times.len(),
            });
        }
        if let Some(at) = times.windows(2).position(|w| w[0] > w[1]) {
            return Err(CoreError::UnsortedTimestamps { at: at + 1 });
        }
        let mut db = EventDb::new(alphabet, symbols)?;
        db.times = Some(times);
        Ok(db)
    }

    /// Parses a string of single-character symbol names (e.g. `"ABCAB"` over
    /// [`Alphabet::latin26`]).
    ///
    /// # Errors
    /// [`CoreError::UnknownSymbol`] for characters outside the alphabet.
    pub fn from_str_symbols(alphabet: &Alphabet, s: &str) -> Result<Self> {
        let mut symbols = Vec::with_capacity(s.len());
        for ch in s.chars() {
            symbols.push(alphabet.symbol(&ch.to_string())?.0);
        }
        EventDb::new(alphabet.clone(), symbols)
    }

    /// The alphabet the events are drawn from.
    #[inline]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The raw symbol stream (one byte per event).
    #[inline]
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// The symbol stream as a shared handle — a refcount bump, not a copy.
    ///
    /// Mining sessions snapshot the stream through this, so a session's
    /// snapshot aliases the database's own buffer for the session's lifetime.
    #[inline]
    pub fn symbols_shared(&self) -> Arc<[u8]> {
        Arc::clone(&self.symbols)
    }

    /// The append generation of this database value: 0 at construction,
    /// incremented once per successful (non-empty) [`append`](EventDb::append)
    /// / [`extend`](EventDb::extend) batch. Snapshot consumers (sessions,
    /// cached occurrence indexes) record the epoch they were built against and
    /// use it to detect that the live stream has moved past them.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Appends one event to an untimed database. See [`extend`](EventDb::extend).
    ///
    /// # Errors
    /// As for [`extend`](EventDb::extend).
    pub fn append(&mut self, symbol: u8) -> Result<u64> {
        self.extend(&[symbol])
    }

    /// Appends a batch of events, producing a fresh epoch-versioned stream
    /// buffer: the old `Arc<[u8]>` is left untouched (any outstanding
    /// [`symbols_shared`](EventDb::symbols_shared) snapshot still aliases it)
    /// and [`epoch`](EventDb::epoch) is bumped. Returns the new epoch. An
    /// empty batch is a no-op and does *not* bump the epoch.
    ///
    /// ```
    /// use tdm_core::{Alphabet, EventDb};
    ///
    /// let mut db = EventDb::from_str_symbols(&Alphabet::latin26(), "ABAB").unwrap();
    /// let snapshot = db.symbols_shared();   // parked at epoch 0
    /// assert_eq!(db.extend(&[0, 1]).unwrap(), 1);
    /// assert_eq!(db.len(), 6);
    /// assert_eq!(&snapshot[..], b"\x00\x01\x00\x01"); // old snapshot intact
    /// ```
    ///
    /// # Errors
    /// [`CoreError::SymbolOutOfRange`] for ids outside the alphabet;
    /// [`CoreError::MissingTimestamps`] when this database is timestamped
    /// (use [`extend_with_times`](EventDb::extend_with_times)).
    pub fn extend(&mut self, suffix: &[u8]) -> Result<u64> {
        if self.times.is_some() {
            return Err(CoreError::MissingTimestamps);
        }
        self.extend_symbols(suffix)
    }

    /// [`extend`](EventDb::extend) for timestamped databases: appends a batch
    /// of events with one timestamp per symbol. Returns the new epoch.
    ///
    /// # Errors
    /// [`CoreError::MissingTimestamps`] when this database has no timestamp
    /// channel; [`CoreError::LengthMismatch`] when `times` and `suffix`
    /// disagree; [`CoreError::UnsortedTimestamps`] when the batch regresses —
    /// including across the append seam; plus the symbol validation of
    /// [`extend`](EventDb::extend).
    pub fn extend_with_times(&mut self, suffix: &[u8], times: &[u64]) -> Result<u64> {
        let Some(existing) = self.times.as_ref() else {
            return Err(CoreError::MissingTimestamps);
        };
        if suffix.len() != times.len() {
            return Err(CoreError::LengthMismatch {
                symbols: suffix.len(),
                times: times.len(),
            });
        }
        if existing
            .last()
            .zip(times.first())
            .is_some_and(|(&head, &first)| first < head)
        {
            // The seam itself regresses: the first appended timestamp is the
            // offender, at the first position past the current stream.
            return Err(CoreError::UnsortedTimestamps {
                at: self.symbols.len(),
            });
        }
        if let Some(at) = times.windows(2).position(|w| w[0] > w[1]) {
            return Err(CoreError::UnsortedTimestamps {
                at: self.symbols.len() + at + 1,
            });
        }
        let epoch = self.extend_symbols(suffix)?;
        if !suffix.is_empty() {
            self.times
                .as_mut()
                .expect("timestamp channel checked above")
                .extend_from_slice(times);
        }
        Ok(epoch)
    }

    /// Shared append tail: validates the suffix, reallocates the stream
    /// buffer, bumps the epoch.
    fn extend_symbols(&mut self, suffix: &[u8]) -> Result<u64> {
        if let Some(&bad) = suffix.iter().find(|&&s| s as usize >= self.alphabet.len()) {
            return Err(CoreError::SymbolOutOfRange {
                id: bad,
                alphabet: self.alphabet.len(),
            });
        }
        if suffix.is_empty() {
            return Ok(self.epoch);
        }
        let mut grown = Vec::with_capacity(self.symbols.len() + suffix.len());
        grown.extend_from_slice(&self.symbols);
        grown.extend_from_slice(suffix);
        self.symbols = grown.into();
        self.epoch += 1;
        Ok(self.epoch)
    }

    /// Optional timestamps (present only for timestamped databases).
    #[inline]
    pub fn times(&self) -> Option<&[u64]> {
        self.times.as_deref()
    }

    /// Timestamps or an error when absent.
    ///
    /// # Errors
    /// [`CoreError::MissingTimestamps`].
    pub fn require_times(&self) -> Result<&[u64]> {
        self.times.as_deref().ok_or(CoreError::MissingTimestamps)
    }

    /// Number of events `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True for an empty database.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The event at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Symbol {
        Symbol(self.symbols[i])
    }

    /// Renders the database back to single-character names (diagnostics/tests).
    pub fn to_display_string(&self) -> String {
        self.symbols
            .iter()
            .map(|&s| self.alphabet.name(Symbol(s)).to_string())
            .collect()
    }

    /// Per-symbol occurrence histogram (length = alphabet size).
    pub fn histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.alphabet.len()];
        for &s in self.symbols.iter() {
            h[s as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_round_trips() {
        let ab = Alphabet::latin26();
        let db = EventDb::from_str_symbols(&ab, "HELLOWORLD").unwrap();
        assert_eq!(db.len(), 10);
        assert_eq!(db.to_display_string(), "HELLOWORLD");
        assert_eq!(db.get(0), Symbol(b'H' - b'A'));
    }

    #[test]
    fn rejects_out_of_alphabet_ids() {
        let ab = Alphabet::numbered(4).unwrap();
        assert!(matches!(
            EventDb::new(ab, vec![0, 1, 7]),
            Err(CoreError::SymbolOutOfRange { id: 7, .. })
        ));
    }

    #[test]
    fn timestamps_validated() {
        let ab = Alphabet::numbered(3).unwrap();
        assert!(matches!(
            EventDb::with_times(ab.clone(), vec![0, 1], vec![5]),
            Err(CoreError::LengthMismatch { .. })
        ));
        assert!(matches!(
            EventDb::with_times(ab.clone(), vec![0, 1, 2], vec![5, 4, 6]),
            Err(CoreError::UnsortedTimestamps { at: 1 })
        ));
        let db = EventDb::with_times(ab, vec![0, 1, 2], vec![5, 5, 6]).unwrap();
        assert_eq!(db.require_times().unwrap(), &[5, 5, 6]);
    }

    #[test]
    fn missing_timestamps_error() {
        let ab = Alphabet::numbered(2).unwrap();
        let db = EventDb::new(ab, vec![0, 1]).unwrap();
        assert!(matches!(
            db.require_times(),
            Err(CoreError::MissingTimestamps)
        ));
    }

    #[test]
    fn histogram_counts_every_symbol() {
        let ab = Alphabet::latin26();
        let db = EventDb::from_str_symbols(&ab, "AABBBZ").unwrap();
        let h = db.histogram();
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 3);
        assert_eq!(h[25], 1);
        assert_eq!(h.iter().sum::<u64>(), 6);
    }

    #[test]
    fn symbols_shared_aliases_the_database_buffer() {
        let ab = Alphabet::latin26();
        let db = EventDb::from_str_symbols(&ab, "ABAB").unwrap();
        let s1 = db.symbols_shared();
        let s2 = db.symbols_shared();
        assert!(Arc::ptr_eq(&s1, &s2), "shared handles must alias");
        assert_eq!(s1.as_ptr(), db.symbols().as_ptr());
        let copy = db.clone();
        assert_eq!(
            copy.symbols().as_ptr(),
            db.symbols().as_ptr(),
            "cloning the database must share the stream, not copy it"
        );
    }

    #[test]
    fn extend_versions_the_stream_and_keeps_snapshots_valid() {
        let ab = Alphabet::latin26();
        let mut db = EventDb::from_str_symbols(&ab, "ABC").unwrap();
        assert_eq!(db.epoch(), 0);
        let parked = db.symbols_shared();
        assert_eq!(db.extend(&[3, 4]).unwrap(), 1);
        assert_eq!(db.append(5).unwrap(), 2);
        assert_eq!(db.to_display_string(), "ABCDEF");
        assert_eq!(db.epoch(), 2);
        // The parked snapshot still reads the epoch-0 buffer, untouched.
        assert_eq!(&parked[..], &[0, 1, 2]);
        assert_ne!(parked.as_ptr(), db.symbols().as_ptr());
        // An empty batch changes nothing, including the epoch.
        assert_eq!(db.extend(&[]).unwrap(), 2);
        assert_eq!(db.epoch(), 2);
    }

    #[test]
    fn extend_validates_symbols_and_timestamp_channel() {
        let ab = Alphabet::numbered(3).unwrap();
        let mut db = EventDb::new(ab.clone(), vec![0, 1]).unwrap();
        assert!(matches!(
            db.extend(&[2, 9]),
            Err(CoreError::SymbolOutOfRange { id: 9, .. })
        ));
        // A failed extend leaves the database (and epoch) untouched.
        assert_eq!(db.len(), 2);
        assert_eq!(db.epoch(), 0);
        let mut timed = EventDb::with_times(ab, vec![0, 1], vec![5, 6]).unwrap();
        assert!(matches!(
            timed.extend(&[2]),
            Err(CoreError::MissingTimestamps)
        ));
        assert!(matches!(
            db.extend_with_times(&[2], &[7]),
            Err(CoreError::MissingTimestamps)
        ));
    }

    #[test]
    fn extend_with_times_checks_the_seam() {
        let ab = Alphabet::numbered(3).unwrap();
        let mut db = EventDb::with_times(ab, vec![0, 1], vec![5, 6]).unwrap();
        assert!(matches!(
            db.extend_with_times(&[2, 2], &[4, 8]),
            Err(CoreError::UnsortedTimestamps { at: 2 })
        ));
        assert!(matches!(
            db.extend_with_times(&[2, 2], &[8, 7]),
            Err(CoreError::UnsortedTimestamps { at: 3 })
        ));
        assert!(matches!(
            db.extend_with_times(&[2], &[7, 8]),
            Err(CoreError::LengthMismatch { .. })
        ));
        assert_eq!(db.extend_with_times(&[2, 0], &[6, 9]).unwrap(), 1);
        assert_eq!(db.require_times().unwrap(), &[5, 6, 6, 9]);
        assert_eq!(db.len(), 4);
    }

    #[test]
    fn equality_ignores_append_history() {
        let ab = Alphabet::numbered(3).unwrap();
        let mut grown = EventDb::new(ab.clone(), vec![0, 1]).unwrap();
        grown.extend(&[2]).unwrap();
        let batch = EventDb::new(ab, vec![0, 1, 2]).unwrap();
        assert_eq!(grown, batch);
        assert_ne!(grown.epoch(), batch.epoch());
    }

    #[test]
    fn empty_database_is_fine() {
        let ab = Alphabet::latin26();
        let db = EventDb::new(ab, vec![]).unwrap();
        assert!(db.is_empty());
        assert_eq!(db.histogram().iter().sum::<u64>(), 0);
    }
}
