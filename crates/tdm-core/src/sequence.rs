//! The ordered event database `D = {d1, d2, ..., dn}` (paper §3.1).
//!
//! The database is a flat `Vec<u8>` of symbol ids — exactly the representation the
//! paper's kernels stream through texture or shared memory — plus optional
//! per-event timestamps, which the episode-expiry extension (paper §6) requires.

use crate::alphabet::{Alphabet, Symbol};
use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// An ordered database of events over an [`Alphabet`].
///
/// The symbol stream lives behind an [`Arc`], so cloning the database — or
/// snapshotting the stream into a mining session — is a refcount bump, never
/// a byte copy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventDb {
    alphabet: Alphabet,
    symbols: Arc<[u8]>,
    /// Optional non-decreasing timestamps, one per symbol.
    times: Option<Vec<u64>>,
}

impl EventDb {
    /// Builds a database from raw symbol ids, validating them against the alphabet.
    ///
    /// # Errors
    /// [`CoreError::SymbolOutOfRange`] when an id is not in the alphabet.
    pub fn new(alphabet: Alphabet, symbols: Vec<u8>) -> Result<Self> {
        if let Some(&bad) = symbols.iter().find(|&&s| s as usize >= alphabet.len()) {
            return Err(CoreError::SymbolOutOfRange {
                id: bad,
                alphabet: alphabet.len(),
            });
        }
        Ok(EventDb {
            alphabet,
            symbols: symbols.into(),
            times: None,
        })
    }

    /// Builds a timestamped database. Timestamps must be non-decreasing and one per
    /// symbol.
    ///
    /// # Errors
    /// [`CoreError::LengthMismatch`] or [`CoreError::UnsortedTimestamps`] on invalid
    /// input (plus the validations of [`EventDb::new`]).
    pub fn with_times(alphabet: Alphabet, symbols: Vec<u8>, times: Vec<u64>) -> Result<Self> {
        if symbols.len() != times.len() {
            return Err(CoreError::LengthMismatch {
                symbols: symbols.len(),
                times: times.len(),
            });
        }
        if let Some(at) = times.windows(2).position(|w| w[0] > w[1]) {
            return Err(CoreError::UnsortedTimestamps { at: at + 1 });
        }
        let mut db = EventDb::new(alphabet, symbols)?;
        db.times = Some(times);
        Ok(db)
    }

    /// Parses a string of single-character symbol names (e.g. `"ABCAB"` over
    /// [`Alphabet::latin26`]).
    ///
    /// # Errors
    /// [`CoreError::UnknownSymbol`] for characters outside the alphabet.
    pub fn from_str_symbols(alphabet: &Alphabet, s: &str) -> Result<Self> {
        let mut symbols = Vec::with_capacity(s.len());
        for ch in s.chars() {
            symbols.push(alphabet.symbol(&ch.to_string())?.0);
        }
        EventDb::new(alphabet.clone(), symbols)
    }

    /// The alphabet the events are drawn from.
    #[inline]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The raw symbol stream (one byte per event).
    #[inline]
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// The symbol stream as a shared handle — a refcount bump, not a copy.
    ///
    /// Mining sessions snapshot the stream through this, so a session's
    /// snapshot aliases the database's own buffer for the session's lifetime.
    #[inline]
    pub fn symbols_shared(&self) -> Arc<[u8]> {
        Arc::clone(&self.symbols)
    }

    /// Optional timestamps (present only for timestamped databases).
    #[inline]
    pub fn times(&self) -> Option<&[u64]> {
        self.times.as_deref()
    }

    /// Timestamps or an error when absent.
    ///
    /// # Errors
    /// [`CoreError::MissingTimestamps`].
    pub fn require_times(&self) -> Result<&[u64]> {
        self.times.as_deref().ok_or(CoreError::MissingTimestamps)
    }

    /// Number of events `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True for an empty database.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The event at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Symbol {
        Symbol(self.symbols[i])
    }

    /// Renders the database back to single-character names (diagnostics/tests).
    pub fn to_display_string(&self) -> String {
        self.symbols
            .iter()
            .map(|&s| self.alphabet.name(Symbol(s)).to_string())
            .collect()
    }

    /// Per-symbol occurrence histogram (length = alphabet size).
    pub fn histogram(&self) -> Vec<u64> {
        let mut h = vec![0u64; self.alphabet.len()];
        for &s in self.symbols.iter() {
            h[s as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_str_round_trips() {
        let ab = Alphabet::latin26();
        let db = EventDb::from_str_symbols(&ab, "HELLOWORLD").unwrap();
        assert_eq!(db.len(), 10);
        assert_eq!(db.to_display_string(), "HELLOWORLD");
        assert_eq!(db.get(0), Symbol(b'H' - b'A'));
    }

    #[test]
    fn rejects_out_of_alphabet_ids() {
        let ab = Alphabet::numbered(4).unwrap();
        assert!(matches!(
            EventDb::new(ab, vec![0, 1, 7]),
            Err(CoreError::SymbolOutOfRange { id: 7, .. })
        ));
    }

    #[test]
    fn timestamps_validated() {
        let ab = Alphabet::numbered(3).unwrap();
        assert!(matches!(
            EventDb::with_times(ab.clone(), vec![0, 1], vec![5]),
            Err(CoreError::LengthMismatch { .. })
        ));
        assert!(matches!(
            EventDb::with_times(ab.clone(), vec![0, 1, 2], vec![5, 4, 6]),
            Err(CoreError::UnsortedTimestamps { at: 1 })
        ));
        let db = EventDb::with_times(ab, vec![0, 1, 2], vec![5, 5, 6]).unwrap();
        assert_eq!(db.require_times().unwrap(), &[5, 5, 6]);
    }

    #[test]
    fn missing_timestamps_error() {
        let ab = Alphabet::numbered(2).unwrap();
        let db = EventDb::new(ab, vec![0, 1]).unwrap();
        assert!(matches!(
            db.require_times(),
            Err(CoreError::MissingTimestamps)
        ));
    }

    #[test]
    fn histogram_counts_every_symbol() {
        let ab = Alphabet::latin26();
        let db = EventDb::from_str_symbols(&ab, "AABBBZ").unwrap();
        let h = db.histogram();
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 3);
        assert_eq!(h[25], 1);
        assert_eq!(h.iter().sum::<u64>(), 6);
    }

    #[test]
    fn symbols_shared_aliases_the_database_buffer() {
        let ab = Alphabet::latin26();
        let db = EventDb::from_str_symbols(&ab, "ABAB").unwrap();
        let s1 = db.symbols_shared();
        let s2 = db.symbols_shared();
        assert!(Arc::ptr_eq(&s1, &s2), "shared handles must alias");
        assert_eq!(s1.as_ptr(), db.symbols().as_ptr());
        let copy = db.clone();
        assert_eq!(
            copy.symbols().as_ptr(),
            db.symbols().as_ptr(),
            "cloning the database must share the stream, not copy it"
        );
    }

    #[test]
    fn empty_database_is_fine() {
        let ab = Alphabet::latin26();
        let db = EventDb::new(ab, vec![]).unwrap();
        assert!(db.is_empty());
        assert_eq!(db.histogram().iter().sum::<u64>(), 0);
    }
}
