//! The level-wise mining loop — the paper's Algorithm 1.
//!
//! ```text
//! k <- 1; candidates <- all level-1 episodes
//! while candidates not empty:
//!     count every candidate                (counting step   — pluggable backend)
//!     keep those with count/n > alpha      (elimination step)
//!     candidates <- join(frequent_k)       (generation step)
//! ```
//!
//! The counting step is behind the [`CountingBackend`] trait so that the same loop
//! can run on the sequential CPU counter, the parallel CPU MapReduce baseline, or
//! any of the four simulated GPU kernels.

use crate::candidate::{apriori_join, level1};
use crate::episode::Episode;
use crate::sequence::EventDb;
use crate::stats::{support, LevelResult, MiningResult};

/// A strategy for the counting step: given the database and the candidate set,
/// produce one appearance count per candidate (same order).
pub trait CountingBackend {
    /// Counts every candidate episode over the database.
    fn count(&mut self, db: &EventDb, candidates: &[Episode]) -> Vec<u64>;

    /// A short human-readable name (used in reports).
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// The built-in sequential backend: the compiled active-set engine from
/// [`crate::engine`], holding its [`CompiledCandidates`] and [`CountScratch`]
/// across levels so the per-level `count` calls reuse every buffer instead of
/// rebuilding the anchor index from scratch.
///
/// [`CompiledCandidates`]: crate::engine::CompiledCandidates
/// [`CountScratch`]: crate::engine::CountScratch
#[derive(Debug, Default, Clone)]
pub struct SequentialBackend {
    compiled: crate::engine::CompiledCandidates,
    scratch: crate::engine::CountScratch,
}

impl CountingBackend for SequentialBackend {
    fn count(&mut self, db: &EventDb, candidates: &[Episode]) -> Vec<u64> {
        self.compiled.recompile(db.alphabet().len(), candidates);
        self.compiled.count(db.symbols(), &mut self.scratch)
    }

    fn name(&self) -> &str {
        "sequential-active-set"
    }
}

/// Mining-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct MinerConfig {
    /// Support threshold α: an episode is frequent when `count / n > alpha`.
    pub alpha: f64,
    /// Stop after this level even if candidates remain (the paper's "limit the
    /// length of A_j from n to q" runtime bound; `None` = unbounded).
    pub max_level: Option<usize>,
    /// Restrict candidates to distinct-item episodes (the paper's permutation
    /// universe). Default true.
    pub distinct_items_only: bool,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            alpha: 0.0,
            max_level: None,
            distinct_items_only: true,
        }
    }
}

/// The level-wise miner.
#[derive(Debug, Clone)]
pub struct Miner {
    config: MinerConfig,
}

impl Miner {
    /// Creates a miner with the given configuration.
    pub fn new(config: MinerConfig) -> Self {
        Miner { config }
    }

    /// Runs the full level-wise loop with the supplied counting backend.
    pub fn mine<B: CountingBackend>(&self, db: &EventDb, backend: &mut B) -> MiningResult {
        let n = db.len();
        let mut result = MiningResult {
            levels: Vec::new(),
            db_len: n,
        };
        let mut candidates = level1(db.alphabet());
        let mut level = 1usize;
        while !candidates.is_empty() {
            if let Some(maxl) = self.config.max_level {
                if level > maxl {
                    break;
                }
            }
            let counts = backend.count(db, &candidates);
            assert_eq!(
                counts.len(),
                candidates.len(),
                "backend returned wrong number of counts"
            );
            let frequent: Vec<(Episode, u64)> = candidates
                .iter()
                .cloned()
                .zip(counts.iter().copied())
                .filter(|(_, c)| support(*c, n) > self.config.alpha)
                .collect();
            let next_seed: Vec<Episode> = frequent.iter().map(|(e, _)| e.clone()).collect();
            result.levels.push(LevelResult {
                level,
                candidates: candidates.len(),
                frequent,
            });
            if next_seed.is_empty() {
                break;
            }
            candidates = apriori_join(&next_seed, self.config.distinct_items_only);
            level += 1;
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn db_of(s: &str) -> EventDb {
        EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap()
    }

    #[test]
    fn mines_planted_chain() {
        // "ABC" repeated: every level up to 3 should surface the chain.
        let db = db_of(&"ABC".repeat(50));
        let miner = Miner::new(MinerConfig {
            alpha: 0.1,
            ..Default::default()
        });
        let res = miner.mine(&db, &mut SequentialBackend::default());
        let ab = Alphabet::latin26();
        assert_eq!(res.levels[0].len(), 3); // A, B, C each support 1/3
        assert!(res
            .count_of(&Episode::from_str(&ab, "AB").unwrap())
            .is_some());
        assert!(res
            .count_of(&Episode::from_str(&ab, "ABC").unwrap())
            .is_some());
        // Nothing of level 4 exists in a 3-letter alphabet of distinct items that
        // passes 10% support.
        assert!(res.levels.len() <= 4);
    }

    #[test]
    fn high_threshold_stops_immediately() {
        let db = db_of("ABCDEFG");
        let miner = Miner::new(MinerConfig {
            alpha: 0.9,
            ..Default::default()
        });
        let res = miner.mine(&db, &mut SequentialBackend::default());
        assert_eq!(res.levels.len(), 1);
        assert!(res.levels[0].is_empty());
        assert_eq!(res.total_frequent(), 0);
    }

    #[test]
    fn max_level_bounds_the_loop() {
        let db = db_of(&"AB".repeat(100));
        let miner = Miner::new(MinerConfig {
            alpha: 0.01,
            max_level: Some(1),
            ..Default::default()
        });
        let res = miner.mine(&db, &mut SequentialBackend::default());
        assert_eq!(res.levels.len(), 1);
        assert_eq!(res.levels[0].level, 1);
    }

    #[test]
    fn level_candidate_counts_match_paper_shape() {
        // With alpha = 0 every singleton present keeps the space permutation-like.
        let db = db_of(&"ABCD".repeat(30));
        let miner = Miner::new(MinerConfig {
            alpha: 0.0,
            max_level: Some(2),
            ..Default::default()
        });
        let res = miner.mine(&db, &mut SequentialBackend::default());
        assert_eq!(res.levels[0].candidates, 26);
        // Only A..D are frequent, so level 2 candidates = 4*3 ordered pairs.
        assert_eq!(res.levels[1].candidates, 12);
    }

    #[test]
    fn empty_database_yields_single_empty_level() {
        let ab = Alphabet::latin26();
        let db = EventDb::new(ab, vec![]).unwrap();
        let res = Miner::new(MinerConfig::default()).mine(&db, &mut SequentialBackend::default());
        assert_eq!(res.total_frequent(), 0);
    }
}
