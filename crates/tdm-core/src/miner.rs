//! The level-wise mining loop — the paper's Algorithm 1.
//!
//! ```text
//! k <- 1; candidates <- all level-1 episodes
//! while candidates not empty:
//!     count every candidate                (counting step   — pluggable executor)
//!     keep those with count/n > alpha      (elimination step)
//!     candidates <- join(frequent_k)       (generation step)
//! ```
//!
//! The counting step is behind the [`Executor`] trait of the plan/execute API
//! ([`crate::session`]): a [`MiningSession`] compiles each level's candidate
//! set exactly once and hands executors a borrowed [`CountRequest`] — so the
//! same loop runs on the sequential CPU counter, the parallel CPU backends,
//! or any of the four simulated GPU kernels without recompiling or cloning
//! anything per backend. [`Miner`] is the thin convenience driver over a
//! fresh session.
//!
//! [`CountRequest`]: crate::session::CountRequest
//! [`MiningSession`]: crate::session::MiningSession

use crate::engine::{with_thread_scratch, BitmaskNfa, CountStrategy};
use crate::episode::Episode;
use crate::segment::segment_ranges;
use crate::sequence::EventDb;
use crate::session::{BackendError, CountRequest, Counts, Executor, MineError, MiningSession};
use crate::stats::{LevelResult, MiningResult};
use std::sync::Arc;

/// The legacy counting-step strategy: given the database and raw candidate
/// episodes, produce one appearance count per candidate.
///
/// Superseded by the plan/execute split of [`crate::session`]: implement
/// [`Executor`] instead and drive it with a [`MiningSession`] (or
/// [`Miner::mine`]), which compiles the candidate set once per level and
/// lends backends a [`CountRequest`] view. Every [`Executor`] still
/// implements this trait through a blanket shim, so old call sites keep
/// working (each `count` call plans a throwaway session).
///
/// [`CountRequest`]: crate::session::CountRequest
/// [`MiningSession`]: crate::session::MiningSession
#[deprecated(
    since = "0.2.0",
    note = "implement tdm_core::session::Executor and drive it with a MiningSession (or Miner::mine)"
)]
pub trait CountingBackend {
    /// Counts every candidate episode over the database.
    fn count(&mut self, db: &EventDb, candidates: &[Episode]) -> Vec<u64>;

    /// A short human-readable name (used in reports).
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// Every new-style [`Executor`] still serves the deprecated trait: one
/// throwaway [`MiningSession`] per call (compile + execute). Migration shim
/// only — the session API amortizes the plan step across levels.
#[allow(deprecated)]
impl<E: Executor> CountingBackend for E {
    fn count(&mut self, db: &EventDb, candidates: &[Episode]) -> Vec<u64> {
        let mut session = MiningSession::builder(db).build();
        session
            .count_candidates(candidates, self)
            .expect("counting backend failed")
    }

    fn name(&self) -> &str {
        Executor::name(self)
    }
}

/// The built-in sequential executor: one active-set pass over the request's
/// compiled layout, holding only its [`CountScratch`] across levels (the
/// compiled candidates live in the session).
///
/// [`CountScratch`]: crate::engine::CountScratch
#[derive(Debug, Default, Clone)]
pub struct SequentialBackend {
    scratch: crate::engine::CountScratch,
}

impl Executor for SequentialBackend {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        Ok(req.compiled().count(req.stream(), &mut self.scratch))
    }

    fn name(&self) -> &str {
        "sequential-active-set"
    }
}

/// Candidate sets smaller than this are counted on one thread even when the
/// vertical strategy could chunk them — per-chunk dispatch would dominate.
const MIN_VERTICAL_PARALLEL: usize = 256;

/// The engine's **strategy-dispatching** executor: per level, asks
/// [`CompiledCandidates::choose_strategy`] for the estimated-cheapest
/// counting strategy over the session's cached [`OccurrenceIndex`], then runs
/// it — parallelized over the session pool when the session planned more than
/// one worker:
///
/// * **vertical** counts chunk the *candidate set* (occurrence-list probes
///   never walk the stream, so candidate chunking is exact with zero
///   boundary work);
/// * **bitmask** scans shard the *database* along the session's planned
///   bounds and merge through the engine's Fig. 5 reducer
///   ([`CompiledCandidates::merge_shard_counts`]), exactly like the
///   active-set sharded backend.
///
/// Counts are bit-identical to [`SequentialBackend`] for every episode set,
/// worker count, and stream — the workspace differential suite pins this.
///
/// ```
/// use tdm_core::miner::{AutoBackend, MinerConfig, SequentialBackend};
/// use tdm_core::session::MiningSession;
/// use tdm_core::{Alphabet, EventDb};
///
/// let db = EventDb::from_str_symbols(&Alphabet::latin26(), &"ABC".repeat(50)).unwrap();
/// let config = MinerConfig { alpha: 0.1, ..Default::default() };
/// let auto = MiningSession::builder(&db).config(config).build()
///     .mine(&mut AutoBackend).unwrap();
/// let seq = MiningSession::builder(&db).config(config).build()
///     .mine(&mut SequentialBackend::default()).unwrap();
/// assert_eq!(auto, seq);
/// ```
///
/// [`CompiledCandidates::choose_strategy`]: crate::engine::CompiledCandidates::choose_strategy
/// [`CompiledCandidates::merge_shard_counts`]: crate::engine::CompiledCandidates::merge_shard_counts
/// [`OccurrenceIndex`]: crate::engine::OccurrenceIndex
#[derive(Debug, Default, Clone, Copy)]
pub struct AutoBackend;

impl Executor for AutoBackend {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        let compiled = req.compiled();
        let stream = req.stream();
        let index = req.occurrence_index();
        match compiled.choose_strategy(index) {
            CountStrategy::ActiveSet => Ok(with_thread_scratch(|s| compiled.count(stream, s))),
            CountStrategy::Vertical => {
                let workers = req.workers();
                if workers <= 1 || compiled.len() < MIN_VERTICAL_PARALLEL {
                    return Ok(compiled.count_vertical(stream, index));
                }
                let chunks = req.chunk_ranges(workers);
                let shared_compiled = req.compiled_shared();
                let shared_stream = req.stream_shared();
                let shared_index = req.occurrence_index_shared();
                let parts = req.pool().map_move_prio(req.priority(), chunks, move |r| {
                    let mut counts = vec![0u64; r.len()];
                    shared_compiled.count_vertical_range(
                        &shared_stream,
                        &shared_index,
                        r,
                        &mut counts,
                    );
                    counts
                });
                Ok(parts.into_iter().flatten().collect())
            }
            CountStrategy::Bitmask => {
                let Some(nfa) = BitmaskNfa::build(compiled) else {
                    // max_level > 64 never chooses Bitmask, but stay total.
                    return Ok(compiled.count_vertical(stream, index));
                };
                let bounds = req.shard_bounds();
                if bounds.is_empty() {
                    return Ok(nfa.count(stream));
                }
                let nfa = Arc::new(nfa);
                let shared_stream = req.stream_shared();
                let ranges = segment_ranges(stream.len(), bounds);
                let shards = req.pool().map_move_prio(req.priority(), ranges, move |r| {
                    nfa.shard_scan(&shared_stream, r)
                });
                Ok(compiled.merge_shard_counts(stream, bounds, &shards))
            }
        }
    }

    fn name(&self) -> &str {
        "engine-auto"
    }
}

/// Mining-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct MinerConfig {
    /// Support threshold α: an episode is frequent when `count / n > alpha`.
    pub alpha: f64,
    /// Stop after this level even if candidates remain (the paper's "limit the
    /// length of A_j from n to q" runtime bound; `None` = unbounded).
    pub max_level: Option<usize>,
    /// Restrict candidates to distinct-item episodes (the paper's permutation
    /// universe). Default true.
    pub distinct_items_only: bool,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            alpha: 0.0,
            max_level: None,
            distinct_items_only: true,
        }
    }
}

/// The level-wise miner: a thin driver that plans a fresh [`MiningSession`]
/// per run. Hold a session directly to amortize the plan state across runs or
/// to stream per-level results.
#[derive(Debug, Clone)]
pub struct Miner {
    config: MinerConfig,
}

impl Miner {
    /// Creates a miner with the given configuration.
    pub fn new(config: MinerConfig) -> Self {
        Miner { config }
    }

    /// Runs the full level-wise loop with the supplied executor.
    ///
    /// # Errors
    /// [`MineError`] when the executor fails or returns malformed counts.
    pub fn mine<E: Executor + ?Sized>(
        &self,
        db: &EventDb,
        executor: &mut E,
    ) -> Result<MiningResult, MineError> {
        MiningSession::builder(db)
            .config(self.config)
            .build()
            .mine(executor)
    }

    /// Like [`mine`], but invokes `on_level` as each level completes (the
    /// streaming hook for serving use-cases).
    ///
    /// # Errors
    /// [`MineError`] when the executor fails or returns malformed counts.
    ///
    /// [`mine`]: Miner::mine
    pub fn mine_streaming<E: Executor + ?Sized>(
        &self,
        db: &EventDb,
        executor: &mut E,
        on_level: impl FnMut(&LevelResult),
    ) -> Result<MiningResult, MineError> {
        MiningSession::builder(db)
            .config(self.config)
            .build()
            .mine_with(executor, on_level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn db_of(s: &str) -> EventDb {
        EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap()
    }

    #[test]
    fn mines_planted_chain() {
        // "ABC" repeated: every level up to 3 should surface the chain.
        let db = db_of(&"ABC".repeat(50));
        let miner = Miner::new(MinerConfig {
            alpha: 0.1,
            ..Default::default()
        });
        let res = miner.mine(&db, &mut SequentialBackend::default()).unwrap();
        let ab = Alphabet::latin26();
        assert_eq!(res.levels[0].len(), 3); // A, B, C each support 1/3
        assert!(res
            .count_of(&Episode::from_str(&ab, "AB").unwrap())
            .is_some());
        assert!(res
            .count_of(&Episode::from_str(&ab, "ABC").unwrap())
            .is_some());
        // Nothing of level 4 exists in a 3-letter alphabet of distinct items that
        // passes 10% support.
        assert!(res.levels.len() <= 4);
    }

    #[test]
    fn high_threshold_stops_immediately() {
        let db = db_of("ABCDEFG");
        let miner = Miner::new(MinerConfig {
            alpha: 0.9,
            ..Default::default()
        });
        let res = miner.mine(&db, &mut SequentialBackend::default()).unwrap();
        assert_eq!(res.levels.len(), 1);
        assert!(res.levels[0].is_empty());
        assert_eq!(res.total_frequent(), 0);
    }

    #[test]
    fn max_level_bounds_the_loop() {
        let db = db_of(&"AB".repeat(100));
        let miner = Miner::new(MinerConfig {
            alpha: 0.01,
            max_level: Some(1),
            ..Default::default()
        });
        let res = miner.mine(&db, &mut SequentialBackend::default()).unwrap();
        assert_eq!(res.levels.len(), 1);
        assert_eq!(res.levels[0].level, 1);
    }

    #[test]
    fn level_candidate_counts_match_paper_shape() {
        // With alpha = 0 every singleton present keeps the space permutation-like.
        let db = db_of(&"ABCD".repeat(30));
        let miner = Miner::new(MinerConfig {
            alpha: 0.0,
            max_level: Some(2),
            ..Default::default()
        });
        let res = miner.mine(&db, &mut SequentialBackend::default()).unwrap();
        assert_eq!(res.levels[0].candidates, 26);
        // Only A..D are frequent, so level 2 candidates = 4*3 ordered pairs.
        assert_eq!(res.levels[1].candidates, 12);
    }

    #[test]
    fn empty_database_yields_single_empty_level() {
        let ab = Alphabet::latin26();
        let db = EventDb::new(ab, vec![]).unwrap();
        let res = Miner::new(MinerConfig::default())
            .mine(&db, &mut SequentialBackend::default())
            .unwrap();
        assert_eq!(res.total_frequent(), 0);
    }

    #[test]
    fn streaming_levels_arrive_in_order() {
        let db = db_of(&"ABC".repeat(60));
        let miner = Miner::new(MinerConfig {
            alpha: 0.05,
            max_level: Some(3),
            ..Default::default()
        });
        let mut seen: Vec<usize> = Vec::new();
        let res = miner
            .mine_streaming(&db, &mut SequentialBackend::default(), |l| {
                seen.push(l.level);
            })
            .unwrap();
        assert_eq!(seen, (1..=res.levels.len()).collect::<Vec<_>>());
    }

    #[test]
    fn auto_backend_matches_sequential_across_worker_counts() {
        let db = db_of(&"ABCABZQXABC".repeat(500)); // > MIN_SHARD_STREAM
        let cfg = MinerConfig {
            alpha: 0.001,
            max_level: Some(3),
            distinct_items_only: false,
        };
        let reference = Miner::new(cfg)
            .mine(&db, &mut SequentialBackend::default())
            .unwrap();
        for workers in [1usize, 2, 4, 8] {
            let mut session = MiningSession::builder(&db)
                .config(cfg)
                .workers(workers)
                .build();
            let got = session.mine(&mut AutoBackend).unwrap();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn legacy_trait_shim_still_counts() {
        #[allow(deprecated)]
        fn old_style<B: CountingBackend>(db: &EventDb, b: &mut B) -> Vec<u64> {
            let ab = Alphabet::latin26();
            let eps = vec![
                Episode::from_str(&ab, "AB").unwrap(),
                Episode::from_str(&ab, "C").unwrap(),
            ];
            b.count(db, &eps)
        }
        let db = db_of("ABCABC");
        assert_eq!(
            old_style(&db, &mut SequentialBackend::default()),
            vec![2, 2]
        );
    }
}
