//! Episode expiration — the paper's §6 future-work feature, implemented.
//!
//! > "One feature is episode expiration where A ⇒ B iff B.time() − A.time() <
//! > Threshold. Currently, there is no expiration on the episodes which makes
//! > spanning boundaries likely. With episode expiration, we expect the reduce
//! > phase in Algorithms 3 and 4 will be decreased as less episodes will span
//! > boundaries."
//!
//! We implement the consecutive-gap interpretation: each *advance* of the FSM must
//! happen within `threshold` time units of the previously matched item, otherwise
//! the partial match has expired — the incoming character is then re-evaluated as
//! a fresh anchor. Expiry also bounds how far a partial match can span a segment
//! boundary, which [`max_span_window`] quantifies for the block-level kernels.

use crate::episode::Episode;
use crate::sequence::EventDb;
use crate::{CoreError, Result};

/// A Figure-3 FSM with a consecutive-gap expiry threshold.
#[derive(Debug, Clone)]
pub struct ExpiringFsm<'a> {
    items: &'a [u8],
    threshold: u64,
    state: u8,
    last_match_time: u64,
    count: u64,
}

impl<'a> ExpiringFsm<'a> {
    /// Creates the machine. `threshold` is the maximum allowed gap between the
    /// timestamps of consecutively matched items.
    pub fn new(episode: &'a Episode, threshold: u64) -> Self {
        ExpiringFsm {
            items: episode.items(),
            threshold,
            state: 0,
            last_match_time: 0,
            count: 0,
        }
    }

    /// Current state.
    #[inline]
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Completions so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one timestamped character.
    pub fn step(&mut self, c: u8, t: u64) {
        // Expire a stale partial before interpreting the character.
        if self.state > 0 && t.saturating_sub(self.last_match_time) >= self.threshold {
            self.state = 0;
        }
        let j = self.state as usize;
        if c == self.items[j] {
            self.last_match_time = t;
            if j + 1 == self.items.len() {
                self.count += 1;
                self.state = 0;
            } else {
                self.state += 1;
            }
        } else if self.state == 0 {
            // idle
        } else if c == self.items[0] {
            self.state = 1;
            self.last_match_time = t;
        } else {
            self.state = 0;
        }
    }
}

/// Counts an episode with expiry over a timestamped database.
///
/// # Errors
/// [`CoreError::MissingTimestamps`] when the database has no timestamps.
pub fn count_with_expiry(db: &EventDb, episode: &Episode, threshold: u64) -> Result<u64> {
    let times = db.require_times()?;
    let mut fsm = ExpiringFsm::new(episode, threshold);
    for (&c, &t) in db.symbols().iter().zip(times) {
        fsm.step(c, t);
    }
    Ok(fsm.count())
}

/// Upper bound on how many events past a segment boundary a live partial match
/// can still complete within, given the expiry threshold and the minimum
/// inter-event time `min_dt` (> 0). The paper's prediction that expiry shrinks
/// the Algorithms-3/4 reduce phase follows from this bound: the continuation
/// window becomes `O(threshold / min_dt)` instead of unbounded.
pub fn max_span_window(threshold: u64, min_dt: u64) -> Result<u64> {
    if min_dt == 0 {
        return Err(CoreError::UnsortedTimestamps { at: 0 });
    }
    Ok(threshold / min_dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn timed(sym: &str, times: Vec<u64>) -> EventDb {
        let ab = Alphabet::latin26();
        let symbols: Vec<u8> = sym.bytes().map(|b| b - b'A').collect();
        EventDb::with_times(ab, symbols, times).unwrap()
    }

    fn ep(s: &str) -> Episode {
        Episode::from_str(&Alphabet::latin26(), s).unwrap()
    }

    #[test]
    fn within_threshold_counts() {
        let db = timed("AB", vec![0, 5]);
        assert_eq!(count_with_expiry(&db, &ep("AB"), 10).unwrap(), 1);
    }

    #[test]
    fn expired_gap_discards_partial() {
        let db = timed("AB", vec![0, 50]);
        assert_eq!(count_with_expiry(&db, &ep("AB"), 10).unwrap(), 0);
    }

    #[test]
    fn expiry_reanchors_on_first_item() {
        // A at t=0 expires; the A at t=100 anchors a fresh match completing at 105.
        let db = timed("AAB", vec![0, 100, 105]);
        assert_eq!(count_with_expiry(&db, &ep("AB"), 10).unwrap(), 1);
    }

    #[test]
    fn consecutive_gaps_each_checked() {
        // Each hop is within threshold even though the total span exceeds it.
        let db = timed("ABC", vec![0, 9, 18]);
        assert_eq!(count_with_expiry(&db, &ep("ABC"), 10).unwrap(), 1);
        // One oversized hop in the middle kills it.
        let db = timed("ABC", vec![0, 9, 40]);
        assert_eq!(count_with_expiry(&db, &ep("ABC"), 10).unwrap(), 0);
    }

    #[test]
    fn zero_threshold_only_simultaneous() {
        // threshold 0 means "strictly less than 0 apart" is impossible -> only
        // level-1 anchors count.
        let db = timed("AB", vec![0, 0]);
        assert_eq!(count_with_expiry(&db, &ep("AB"), 0).unwrap(), 0);
        assert_eq!(count_with_expiry(&db, &ep("A"), 0).unwrap(), 1);
    }

    #[test]
    fn requires_timestamps() {
        let ab = Alphabet::latin26();
        let db = EventDb::from_str_symbols(&ab, "AB").unwrap();
        assert!(matches!(
            count_with_expiry(&db, &ep("AB"), 10),
            Err(CoreError::MissingTimestamps)
        ));
    }

    #[test]
    fn span_window_bound() {
        assert_eq!(max_span_window(100, 10).unwrap(), 10);
        assert_eq!(max_span_window(5, 10).unwrap(), 0);
        assert!(max_span_window(5, 0).is_err());
    }

    #[test]
    fn no_expiry_matches_plain_fsm_when_threshold_huge() {
        let db = timed("ABCABCAB", vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let plain = {
            let ab = Alphabet::latin26();
            let plain_db = EventDb::from_str_symbols(&ab, "ABCABCAB").unwrap();
            crate::count::count_episode(&plain_db, &ep("ABC"))
        };
        assert_eq!(count_with_expiry(&db, &ep("ABC"), u64::MAX).unwrap(), plain);
    }
}
