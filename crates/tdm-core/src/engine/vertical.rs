//! Vertical occurrence-list counting — counting by list probes instead of
//! stream scans.
//!
//! The active-set scan ([`CompiledCandidates::count`]) touches every stream
//! character once per level; its cost is `O(stream)` even when the episodes
//! are rare. Vertical mining (Kocheturov et al., arXiv:1804.10025) inverts
//! the layout: build a per-symbol **occurrence index** once per database,
//! then count an episode by probing the occurrence list of its *rarest*
//! symbol — `O(min occurrences)` per episode, independent of the stream
//! length.
//!
//! This is exact because of a structural fact about the paper's Fig. 3
//! counting FSM: for a **distinct-item** episode (the paper's whole candidate
//! universe), the greedy FSM count equals the number of *contiguous substring
//! occurrences* of the episode's item word in the stream. Sketch: the FSM in
//! state `j` has matched exactly the last `j` characters against the prefix
//! of length `j`; a word with no repeated letters has no borders, so at most
//! one non-zero prefix length can match at any position, and occurrences of a
//! border-free word can never overlap — so the greedy scan can neither miss
//! an occurrence nor double-count one. Repeated-item episodes break this
//! (`"AAB"` over `"AAAB"`: the FSM counts 0, the substring occurs once), so
//! they take the exact per-episode FSM fallback instead — the same division
//! of labour as the sharded scan's exact-composition fallback.
//!
//! Because a vertical count never walks the stream sequentially, it needs no
//! shard-boundary continuations at all: the occurrence list enumerates every
//! match site directly, so splitting the *candidate set* across workers is an
//! exact parallel decomposition with zero boundary work.

use super::CompiledCandidates;
use crate::segment::scan_segment_items;

/// A per-symbol occurrence index over one symbol stream (CSR layout): the
/// positions at which each alphabet symbol occurs, in ascending order.
///
/// Build once per [`EventDb`](crate::EventDb) snapshot (one `O(stream)`
/// counting sort) and reuse it for every level's
/// [`CompiledCandidates::count_vertical`] — the sessions cache one behind a
/// `OnceLock` on their shared stream snapshot, so co-mined batches and cached
/// serving sessions build it exactly once.
///
/// ```
/// use tdm_core::engine::OccurrenceIndex;
///
/// // Stream "ABAB" over a 2-symbol alphabet.
/// let index = OccurrenceIndex::build(2, &[0, 1, 0, 1]);
/// assert_eq!(index.occurrences(0), &[0, 2]);
/// assert_eq!(index.occurrences(1), &[1, 3]);
/// assert_eq!(index.occ_len(1), 2);
/// assert_eq!(index.stream_len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct OccurrenceIndex {
    /// CSR offsets, one slot per symbol plus the terminator.
    offsets: Vec<u32>,
    /// Stream positions grouped by symbol, ascending within each group.
    positions: Vec<u32>,
    stream_len: usize,
}

impl OccurrenceIndex {
    /// Builds the index over `stream` for an alphabet of `alphabet_len`
    /// symbols (one counting-sort pass).
    ///
    /// # Panics
    /// When the stream is longer than `u32::MAX` symbols (positions are
    /// stored as `u32`, matching the compiled candidate layout) or contains a
    /// symbol `>= alphabet_len`.
    pub fn build(alphabet_len: usize, stream: &[u8]) -> Self {
        assert!(
            u32::try_from(stream.len()).is_ok(),
            "stream of {} symbols exceeds the u32-indexed occurrence layout",
            stream.len()
        );
        let mut offsets = vec![0u32; alphabet_len + 1];
        for &c in stream {
            assert!(
                (c as usize) < alphabet_len,
                "symbol {c} out of range for alphabet of {alphabet_len}"
            );
            offsets[c as usize + 1] += 1;
        }
        for c in 0..alphabet_len {
            offsets[c + 1] += offsets[c];
        }
        let mut cursor: Vec<u32> = offsets[..alphabet_len].to_vec();
        let mut positions = vec![0u32; stream.len()];
        for (p, &c) in stream.iter().enumerate() {
            positions[cursor[c as usize] as usize] = p as u32;
            cursor[c as usize] += 1;
        }
        OccurrenceIndex {
            offsets,
            positions,
            stream_len: stream.len(),
        }
    }

    /// Extends the index in place for symbols appended past the indexed
    /// prefix: `suffix` is the stream content from position
    /// [`stream_len`](OccurrenceIndex::stream_len) onward. Per-symbol
    /// occurrence lists only ever grow under append, so the extension is one
    /// counting pass over the suffix plus a gather into the widened CSR — no
    /// per-symbol re-sort, and no walk of the already-indexed prefix stream.
    ///
    /// ```
    /// use tdm_core::engine::OccurrenceIndex;
    ///
    /// let mut grown = OccurrenceIndex::build(2, &[0, 1]);
    /// grown.extend(&[1, 0]);
    /// let batch = OccurrenceIndex::build(2, &[0, 1, 1, 0]);
    /// assert_eq!(grown.occurrences(0), batch.occurrences(0));
    /// assert_eq!(grown.occurrences(1), batch.occurrences(1));
    /// assert_eq!(grown.stream_len(), 4);
    /// ```
    ///
    /// # Panics
    /// As for [`build`](OccurrenceIndex::build): on out-of-range symbols or a
    /// grown stream longer than `u32::MAX`.
    pub fn extend(&mut self, suffix: &[u8]) {
        if suffix.is_empty() {
            return;
        }
        let alphabet_len = self.alphabet_len();
        let grown_len = self.stream_len + suffix.len();
        assert!(
            u32::try_from(grown_len).is_ok(),
            "stream of {grown_len} symbols exceeds the u32-indexed occurrence layout"
        );
        let mut added = vec![0u32; alphabet_len];
        for &c in suffix {
            assert!(
                (c as usize) < alphabet_len,
                "symbol {c} out of range for alphabet of {alphabet_len}"
            );
            added[c as usize] += 1;
        }
        let mut offsets = vec![0u32; alphabet_len + 1];
        for c in 0..alphabet_len {
            let old_run = self.offsets[c + 1] - self.offsets[c];
            offsets[c + 1] = offsets[c] + old_run + added[c];
        }
        // Widen the CSR: each old per-symbol run moves once, then the suffix
        // occurrences land at their run's tail (ascending by construction —
        // every appended position is past everything already indexed).
        let mut positions = vec![0u32; grown_len];
        let mut cursor = Vec::with_capacity(alphabet_len);
        for (c, run) in self.offsets.windows(2).enumerate() {
            let old = run[0] as usize..run[1] as usize;
            let dst = offsets[c] as usize;
            positions[dst..dst + old.len()].copy_from_slice(&self.positions[old.clone()]);
            cursor.push((dst + old.len()) as u32);
        }
        for (i, &c) in suffix.iter().enumerate() {
            positions[cursor[c as usize] as usize] = (self.stream_len + i) as u32;
            cursor[c as usize] += 1;
        }
        self.offsets = offsets;
        self.positions = positions;
        self.stream_len = grown_len;
    }

    /// Alphabet size the index was built for.
    #[inline]
    pub fn alphabet_len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Length of the indexed stream.
    #[inline]
    pub fn stream_len(&self) -> usize {
        self.stream_len
    }

    /// Ascending positions at which symbol `c` occurs.
    #[inline]
    pub fn occurrences(&self, c: u8) -> &[u32] {
        let c = c as usize;
        &self.positions[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Number of occurrences of symbol `c` (a level-1 count, for free).
    #[inline]
    pub fn occ_len(&self, c: u8) -> usize {
        let c = c as usize;
        (self.offsets[c + 1] - self.offsets[c]) as usize
    }
}

impl CompiledCandidates {
    /// True when episode `e` has a repeated item (needs the exact FSM
    /// fallback in the occurrence-probing strategies).
    #[inline]
    pub(crate) fn is_repeated(&self, e: usize) -> bool {
        self.repeated.binary_search(&(e as u32)).is_ok()
    }

    /// Counts every compiled episode with the **vertical occurrence-list
    /// strategy**: level-1 episodes read their symbol's list length, longer
    /// distinct-item episodes probe the occurrence list of their rarest
    /// symbol and verify the surrounding window, and repeated-item episodes
    /// fall back to their exact per-episode FSM scan. Bit-identical to
    /// [`count`](CompiledCandidates::count) for every episode set.
    ///
    /// `index` must have been built over this `stream` (same content, same
    /// alphabet) — the sessions guarantee this by caching the index on the
    /// stream snapshot.
    ///
    /// ```
    /// use tdm_core::engine::{CompiledCandidates, CountScratch, OccurrenceIndex};
    /// use tdm_core::{Alphabet, Episode};
    ///
    /// let ab = Alphabet::latin26();
    /// let eps = vec![
    ///     Episode::from_str(&ab, "AB").unwrap(),
    ///     Episode::from_str(&ab, "BA").unwrap(),
    ///     Episode::from_str(&ab, "ABA").unwrap(), // repeated item: FSM fallback
    /// ];
    /// let compiled = CompiledCandidates::compile(ab.len(), &eps);
    /// let stream: Vec<u8> = b"ABABAB".iter().map(|c| c - b'A').collect();
    /// let index = OccurrenceIndex::build(ab.len(), &stream);
    /// assert_eq!(
    ///     compiled.count_vertical(&stream, &index),
    ///     compiled.count(&stream, &mut CountScratch::new()),
    /// );
    /// ```
    pub fn count_vertical(&self, stream: &[u8], index: &OccurrenceIndex) -> Vec<u64> {
        let mut counts = vec![0u64; self.len()];
        self.count_vertical_range(stream, index, 0..self.len(), &mut counts);
        counts
    }

    /// The candidate-chunked form of
    /// [`count_vertical`](CompiledCandidates::count_vertical): counts only the
    /// compiled episodes in `episodes`, writing into the chunk-local `counts`
    /// (`counts.len() == episodes.len()`, index `e - episodes.start`).
    ///
    /// Because vertical counting never walks the stream sequentially, chunking
    /// the candidate set is an *exact* parallel decomposition — no shard
    /// boundaries exist, so no continuation fix-up is needed (contrast the
    /// database-sharded scan's Fig. 5 machinery).
    pub fn count_vertical_range(
        &self,
        stream: &[u8],
        index: &OccurrenceIndex,
        episodes: std::ops::Range<usize>,
        counts: &mut [u64],
    ) {
        debug_assert_eq!(counts.len(), episodes.len());
        debug_assert!(episodes.end <= self.len());
        debug_assert_eq!(index.stream_len(), stream.len());
        let n = stream.len();
        for e in episodes.clone() {
            let slot = e - episodes.start;
            let items = self.items_of(e);
            if self.is_repeated(e) {
                counts[slot] = scan_segment_items(stream, items, 0..n).count;
                continue;
            }
            let l = items.len();
            if l == 1 {
                counts[slot] = index.occ_len(items[0]) as u64;
                continue;
            }
            // Probe the rarest symbol's occurrence list; each hit pins the
            // whole candidate window, which one direct comparison verifies.
            let (k, _) = items
                .iter()
                .enumerate()
                .min_by_key(|&(_, &c)| index.occ_len(c))
                .expect("episodes are non-empty");
            let mut count = 0u64;
            for &p in index.occurrences(items[k]) {
                let p = p as usize;
                if p < k || p - k + l > n {
                    continue;
                }
                let start = p - k;
                let window = &stream[start..start + l];
                if window
                    .iter()
                    .zip(items.iter())
                    .all(|(&have, &want)| have == want)
                {
                    count += 1;
                }
            }
            counts[slot] = count;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::candidate::permutations;
    use crate::count::count_episodes_naive;
    use crate::engine::CountScratch;
    use crate::episode::Episode;
    use crate::sequence::EventDb;
    use proptest::prelude::*;

    fn eps_of(specs: &[&str]) -> Vec<Episode> {
        let ab = Alphabet::latin26();
        specs
            .iter()
            .map(|s| Episode::from_str(&ab, s).unwrap())
            .collect()
    }

    #[test]
    fn index_layout_round_trips() {
        let stream = [2u8, 0, 1, 0, 2, 2];
        let idx = OccurrenceIndex::build(4, &stream);
        assert_eq!(idx.alphabet_len(), 4);
        assert_eq!(idx.stream_len(), 6);
        assert_eq!(idx.occurrences(0), &[1, 3]);
        assert_eq!(idx.occurrences(1), &[2]);
        assert_eq!(idx.occurrences(2), &[0, 4, 5]);
        assert_eq!(idx.occurrences(3), &[] as &[u32]);
        assert_eq!(idx.occ_len(3), 0);
    }

    #[test]
    fn vertical_matches_active_set_with_repeats_and_absent_symbols() {
        let db =
            EventDb::from_str_symbols(&Alphabet::latin26(), &"ABCABZQXABC".repeat(40)).unwrap();
        let eps = eps_of(&[
            "A", "AB", "ABC", "CBA", "ZQ", "QZ", "AA", "ABA", "AAB", "KLM",
        ]);
        let c = CompiledCandidates::compile(26, &eps);
        let idx = OccurrenceIndex::build(26, db.symbols());
        assert_eq!(
            c.count_vertical(db.symbols(), &idx),
            c.count(db.symbols(), &mut CountScratch::new())
        );
    }

    #[test]
    fn repeated_item_counterexample_uses_fsm_semantics() {
        // The FSM counts 0 for "AAB" over "AAAB" (the third A restarts the
        // match); a naive substring count would say 1. The vertical strategy
        // must agree with the FSM.
        let stream: Vec<u8> = b"AAAB".iter().map(|c| c - b'A').collect();
        let c = CompiledCandidates::compile(26, &eps_of(&["AAB"]));
        let idx = OccurrenceIndex::build(26, &stream);
        assert_eq!(c.count_vertical(&stream, &idx), vec![0]);
    }

    #[test]
    fn chunked_vertical_concatenates_to_full() {
        let db = EventDb::from_str_symbols(&Alphabet::latin26(), &"ABCDEF".repeat(100)).unwrap();
        let eps = permutations(&Alphabet::latin26(), 2);
        let c = CompiledCandidates::compile(26, &eps);
        let idx = OccurrenceIndex::build(26, db.symbols());
        let expected = c.count_vertical(db.symbols(), &idx);
        for chunk in [1usize, 7, 100, eps.len()] {
            let mut got = Vec::new();
            let mut lo = 0;
            while lo < eps.len() {
                let hi = (lo + chunk).min(eps.len());
                let mut part = vec![0u64; hi - lo];
                c.count_vertical_range(db.symbols(), &idx, lo..hi, &mut part);
                got.extend(part);
                lo = hi;
            }
            assert_eq!(got, expected, "chunk={chunk}");
        }
    }

    #[test]
    fn extend_matches_batch_build() {
        let stream = [2u8, 0, 1, 0, 2, 2];
        let mut idx = OccurrenceIndex::build(4, &stream[..2]);
        idx.extend(&stream[2..5]);
        idx.extend(&[]); // no-op
        idx.extend(&stream[5..]);
        let batch = OccurrenceIndex::build(4, &stream);
        assert_eq!(idx.stream_len(), batch.stream_len());
        for c in 0..4u8 {
            assert_eq!(idx.occurrences(c), batch.occurrences(c), "symbol {c}");
        }
        // Growing from empty also works.
        let mut from_empty = OccurrenceIndex::build(4, &[]);
        from_empty.extend(&stream);
        assert_eq!(from_empty.occurrences(2), batch.occurrences(2));
    }

    #[test]
    fn empty_stream_and_empty_set() {
        let idx = OccurrenceIndex::build(26, &[]);
        assert_eq!(idx.stream_len(), 0);
        let none = CompiledCandidates::compile(26, &[]);
        assert!(none.count_vertical(&[], &idx).is_empty());
        let c = CompiledCandidates::compile(26, &eps_of(&["AB"]));
        assert_eq!(c.count_vertical(&[], &idx), vec![0]);
    }

    proptest! {
        /// Incrementally extending an index over any chunk schedule yields the
        /// same layout as one batch build of the concatenated stream.
        #[test]
        fn extend_equals_batch_for_any_chunking(
            data in proptest::collection::vec(0u8..5, 0..300),
            cuts in proptest::collection::vec(0usize..300, 0..6),
        ) {
            let n = data.len();
            let mut bounds: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
            bounds.sort_unstable();
            let mut grown = OccurrenceIndex::build(5, &[]);
            let mut start = 0usize;
            for b in bounds.into_iter().chain(std::iter::once(n)) {
                grown.extend(&data[start..b]);
                start = b;
            }
            let batch = OccurrenceIndex::build(5, &data);
            prop_assert_eq!(grown.stream_len(), batch.stream_len());
            for c in 0..5u8 {
                prop_assert_eq!(grown.occurrences(c), batch.occurrences(c));
            }
        }

        /// Vertical counting is observationally identical to the per-episode
        /// FSM reference for arbitrary streams and episode sets — repeated
        /// items, absent symbols, single-symbol alphabets included.
        #[test]
        fn vertical_equals_naive(
            data in proptest::collection::vec(0u8..6, 0..400),
            eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..5), 1..25),
        ) {
            let ab = Alphabet::numbered(6).unwrap();
            let db = EventDb::new(ab, data).unwrap();
            let episodes: Vec<Episode> =
                eps.into_iter().map(|v| Episode::new(v).unwrap()).collect();
            let c = CompiledCandidates::compile(6, &episodes);
            let idx = OccurrenceIndex::build(6, db.symbols());
            prop_assert_eq!(
                c.count_vertical(db.symbols(), &idx),
                count_episodes_naive(&db, &episodes)
            );
        }
    }
}
