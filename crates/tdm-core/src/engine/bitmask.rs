//! Word-packed multi-episode NFA advancement (bitmask Shift-And).
//!
//! The active-set scan advances one episode per scalar step. For a compiled
//! level all candidates share the same length `L`, so their FSM states fit
//! uniform `L`-bit *lanes* packed into `u64` words — `⌊64 / L⌋` episodes per
//! word — and one branch-free Shift-And step advances every lane of a word at
//! once:
//!
//! ```text
//! word (L = 3, lanes "CAB", "BAC", … anchored at C, B, …):
//!   bit:   … | 8 7 6 | 5 4 3 | 2 1 0 |
//!   lane:  … |  ep 2 |  ep 1 |  ep 0 |
//!   step:  D = ((D << 1) | starts) & B[c]      // advance/anchor every lane
//!          completions = D & tops; D &= !tops  // count and reset finished lanes
//! ```
//!
//! `starts` holds each lane's bit 0 (a candidate anchor at every step),
//! `B[c]` is the word's per-symbol mask (bit `lane·L + j` set iff that lane's
//! `items[j] == c` — so the `&` both advances genuine matches and filters
//! anchor attempts), and `tops` holds each lane's completion bit (cleared
//! every step, which is exactly the Fig. 3 FSM's reset-after-completion).
//!
//! For **distinct-item** episodes the Shift-And register provably carries at
//! most one set bit per lane and coincides with the Fig. 3 FSM state
//! (bit `j` ⟺ FSM state `j + 1`) — see the equivalence argument in
//! [`super::vertical`] — so lane states compose with the Fig. 5
//! shard-boundary continuation machinery unchanged. Words are grouped by
//! **anchor symbol** (every lane of a word shares `items[0]`), so the scan
//! only steps words that are live or whose anchor is the current character —
//! the word-level analogue of the active set. Repeated-item episodes fall
//! back to their exact per-episode FSM scan, mirroring the sharded engine's
//! exact-composition fallback.

use super::CompiledCandidates;
use crate::segment::scan_segment_items;

/// A compiled candidate set re-packed for word-parallel Shift-And
/// advancement: up to `⌊64 / max_level⌋` distinct-item episodes per `u64`
/// word, grouped by anchor symbol, plus the repeated-item episodes kept aside
/// for the exact FSM fallback.
///
/// Self-contained (owns its masks and fallback items), so an `Arc<BitmaskNfa>`
/// ships to pool workers without borrowing the compiled set.
///
/// ```
/// use tdm_core::engine::{BitmaskNfa, CompiledCandidates, CountScratch};
/// use tdm_core::{Alphabet, Episode};
///
/// let ab = Alphabet::latin26();
/// let eps = vec![
///     Episode::from_str(&ab, "AB").unwrap(),
///     Episode::from_str(&ab, "BA").unwrap(),
///     Episode::from_str(&ab, "ABA").unwrap(), // repeated item: FSM fallback
/// ];
/// let compiled = CompiledCandidates::compile(ab.len(), &eps);
/// let nfa = BitmaskNfa::build(&compiled).unwrap();
/// let stream: Vec<u8> = b"ABABAB".iter().map(|c| c - b'A').collect();
/// assert_eq!(
///     nfa.count(&stream),
///     compiled.count(&stream, &mut CountScratch::new()),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct BitmaskNfa {
    /// Uniform lane width in bits (the set's max level, ≥ 1).
    lane_width: usize,
    /// Lanes per word (`64 / lane_width`).
    lanes_per_word: usize,
    /// Number of packed words.
    words: usize,
    alphabet_len: usize,
    /// Total episodes of the source set (packed + fallback).
    n_episodes: usize,
    /// Per-word, per-symbol advance masks: `masks[w * alphabet_len + c]`.
    masks: Vec<u64>,
    /// Per-word completion bits (each occupied lane's own top bit).
    tops: Vec<u64>,
    /// Every lane's bit 0 (anchor injection mask, uniform across words).
    starts: u64,
    /// Episode index per lane slot (`words * lanes_per_word`, `u32::MAX` =
    /// unoccupied lane).
    lane_eps: Vec<u32>,
    /// Per-symbol contiguous word range whose lanes anchor at that symbol.
    anchor_words: Vec<(u32, u32)>,
    /// Repeated-item episodes (exact FSM fallback) and their items (CSR).
    fallback: Vec<u32>,
    fallback_items: Vec<u8>,
    fallback_offsets: Vec<u32>,
}

impl BitmaskNfa {
    /// Packs `compiled` into words. Returns `None` when a lane cannot hold an
    /// episode (`max_level > 64`) — callers fall back to another strategy.
    pub fn build(compiled: &CompiledCandidates) -> Option<Self> {
        let lane_width = compiled.max_level().max(1);
        if lane_width > 64 {
            return None;
        }
        let lanes_per_word = 64 / lane_width;
        let alphabet_len = compiled.alphabet_len();
        let n_episodes = compiled.len();

        let mut nfa = BitmaskNfa {
            lane_width,
            lanes_per_word,
            words: 0,
            alphabet_len,
            n_episodes,
            masks: Vec::new(),
            tops: Vec::new(),
            starts: {
                let mut s = 0u64;
                for l in 0..lanes_per_word {
                    s |= 1u64 << (l * lane_width);
                }
                s
            },
            lane_eps: Vec::new(),
            anchor_words: Vec::with_capacity(alphabet_len),
            fallback: Vec::new(),
            fallback_items: Vec::new(),
            fallback_offsets: vec![0],
        };

        // Pack words anchor symbol by anchor symbol so each symbol's words
        // are one contiguous range (anchor buckets are ascending episode
        // indices, preserving compiled order within a word).
        for c in 0..alphabet_len {
            let word_lo = nfa.words as u32;
            let mut lane = nfa.lanes_per_word; // forces a fresh word on first use
            for &ei in compiled.anchored_at(c as u8) {
                let e = ei as usize;
                if compiled.is_repeated(e) {
                    nfa.fallback.push(ei);
                    nfa.fallback_items.extend_from_slice(compiled.items_of(e));
                    nfa.fallback_offsets.push(nfa.fallback_items.len() as u32);
                    continue;
                }
                if lane == nfa.lanes_per_word {
                    nfa.words += 1;
                    nfa.masks.extend(std::iter::repeat_n(0u64, alphabet_len));
                    nfa.tops.push(0);
                    nfa.lane_eps
                        .extend(std::iter::repeat_n(u32::MAX, nfa.lanes_per_word));
                    lane = 0;
                }
                let w = nfa.words - 1;
                let base = lane * lane_width;
                let items = compiled.items_of(e);
                for (j, &item) in items.iter().enumerate() {
                    nfa.masks[w * alphabet_len + item as usize] |= 1u64 << (base + j);
                }
                nfa.tops[w] |= 1u64 << (base + items.len() - 1);
                nfa.lane_eps[w * nfa.lanes_per_word + lane] = ei;
                lane += 1;
            }
            nfa.anchor_words.push((word_lo, nfa.words as u32));
        }
        // Fallback episodes were emitted in anchor-bucket order; the scan
        // indexes counts by episode id, but `fallback` must be sorted for the
        // deterministic ordering tests expect. Sort the ids with their items.
        let mut order: Vec<usize> = (0..nfa.fallback.len()).collect();
        order.sort_unstable_by_key(|&i| nfa.fallback[i]);
        if order.iter().enumerate().any(|(a, &b)| a != b) {
            let items: Vec<Vec<u8>> = order
                .iter()
                .map(|&i| nfa.fallback_item_slice(i).to_vec())
                .collect();
            nfa.fallback = order.iter().map(|&i| nfa.fallback[i]).collect();
            nfa.fallback_items.clear();
            nfa.fallback_offsets.clear();
            nfa.fallback_offsets.push(0);
            for it in items {
                nfa.fallback_items.extend_from_slice(&it);
                nfa.fallback_offsets.push(nfa.fallback_items.len() as u32);
            }
        }
        Some(nfa)
    }

    /// Number of episodes the NFA counts (packed lanes plus fallbacks).
    #[inline]
    pub fn len(&self) -> usize {
        self.n_episodes
    }

    /// True when the NFA holds no episode.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_episodes == 0
    }

    /// Number of packed `u64` words.
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Lane width in bits (the packed set's max level).
    #[inline]
    pub fn lane_width(&self) -> usize {
        self.lane_width
    }

    /// Episodes that take the exact FSM fallback (repeated items).
    #[inline]
    pub fn fallback_episodes(&self) -> &[u32] {
        &self.fallback
    }

    #[inline]
    fn fallback_item_slice(&self, i: usize) -> &[u8] {
        &self.fallback_items
            [self.fallback_offsets[i] as usize..self.fallback_offsets[i + 1] as usize]
    }

    /// Credits completions in `comp` (a word's `D & tops`) to their episodes.
    #[inline]
    fn credit(&self, w: usize, mut comp: u64, counts: &mut [u64]) {
        while comp != 0 {
            let bit = comp.trailing_zeros() as usize;
            let lane = bit / self.lane_width;
            counts[self.lane_eps[w * self.lanes_per_word + lane] as usize] += 1;
            comp &= comp - 1;
        }
    }

    /// Counts every episode over the whole stream — bit-identical to
    /// [`CompiledCandidates::count`] of the source set.
    pub fn count(&self, stream: &[u8]) -> Vec<u64> {
        self.shard_scan(stream, 0..stream.len()).0
    }

    /// One database shard's map step in the word-packed layout: scans
    /// `stream[range]` from the start state and returns `(partial counts, FSM
    /// end states)` — the same shape as
    /// [`CompiledCandidates::shard_scan`], so
    /// [`CompiledCandidates::merge_shard_counts`] composes the shards with
    /// the existing Fig. 5 boundary continuations (and replaces the
    /// fallback episodes' counts with the exact composition, exactly as for
    /// the active-set scan).
    ///
    /// End states decode from the lane bits: for a distinct-item episode the
    /// Shift-And register holds at most one bit, and bit `j` corresponds to
    /// FSM state `j + 1`.
    pub fn shard_scan(&self, stream: &[u8], range: std::ops::Range<usize>) -> (Vec<u64>, Vec<u8>) {
        let mut counts = vec![0u64; self.n_episodes];
        let mut end_states = vec![0u8; self.n_episodes];
        if self.n_episodes == 0 || range.is_empty() {
            return (counts, end_states);
        }

        let mut d = vec![0u64; self.words];
        let mut live: Vec<u32> = Vec::new();
        let mut is_live = vec![false; self.words];

        for &c in &stream[range.clone()] {
            let ci = c as usize;
            // Step live words (words with any in-progress lane). `& B[c]`
            // performs advance, restart, reset, and anchor filtering at once.
            let mut i = 0;
            while i < live.len() {
                let w = live[i] as usize;
                let mask = self.masks[w * self.alphabet_len + ci];
                let mut dd = ((d[w] << 1) | self.starts) & mask;
                let comp = dd & self.tops[w];
                if comp != 0 {
                    dd &= !comp;
                    self.credit(w, comp, &mut counts);
                }
                d[w] = dd;
                if dd == 0 {
                    is_live[w] = false;
                    live.swap_remove(i); // re-examine the swapped-in entry
                } else {
                    i += 1;
                }
            }
            // Anchor idle words whose lanes start with `c`.
            let (lo, hi) = self.anchor_words[ci];
            for w in lo..hi {
                let w = w as usize;
                if is_live[w] {
                    continue;
                }
                let mask = self.masks[w * self.alphabet_len + ci];
                let mut dd = self.starts & mask;
                let comp = dd & self.tops[w];
                if comp != 0 {
                    dd &= !comp;
                    self.credit(w, comp, &mut counts);
                }
                if dd != 0 {
                    d[w] = dd;
                    is_live[w] = true;
                    live.push(w as u32);
                }
            }
        }

        // Decode end states from the surviving lane bits.
        for &wi in &live {
            let w = wi as usize;
            let mut bits = d[w];
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                let lane = bit / self.lane_width;
                let e = self.lane_eps[w * self.lanes_per_word + lane] as usize;
                end_states[e] = (bit - lane * self.lane_width + 1) as u8;
                bits &= bits - 1;
            }
        }

        // Fallback episodes: exact per-episode FSM scan of the same segment,
        // yielding the same (count, end state) the active-set shard reports.
        for (i, &ei) in self.fallback.iter().enumerate() {
            let scan = scan_segment_items(stream, self.fallback_item_slice(i), range.clone());
            counts[ei as usize] = scan.count;
            end_states[ei as usize] = scan.end_state;
        }
        (counts, end_states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::candidate::permutations;
    use crate::count::count_episodes_naive;
    use crate::engine::CountScratch;
    use crate::episode::Episode;
    use crate::segment::{even_bounds, segment_ranges};
    use crate::sequence::EventDb;
    use proptest::prelude::*;

    fn eps_of(specs: &[&str]) -> Vec<Episode> {
        let ab = Alphabet::latin26();
        specs
            .iter()
            .map(|s| Episode::from_str(&ab, s).unwrap())
            .collect()
    }

    #[test]
    fn packs_by_anchor_and_counts_like_the_engine() {
        let db =
            EventDb::from_str_symbols(&Alphabet::latin26(), &"ABCABZQXABC".repeat(40)).unwrap();
        let eps = eps_of(&[
            "A", "AB", "ABC", "CBA", "ZQ", "QZ", "AA", "ABA", "AAB", "KLM",
        ]);
        let c = CompiledCandidates::compile(26, &eps);
        let nfa = BitmaskNfa::build(&c).unwrap();
        assert_eq!(nfa.len(), eps.len());
        assert_eq!(nfa.fallback_episodes(), &[6, 7, 8]); // AA, ABA, AAB
        assert_eq!(
            nfa.count(db.symbols()),
            c.count(db.symbols(), &mut CountScratch::new())
        );
    }

    #[test]
    fn level2_universe_packs_many_lanes_per_word() {
        let db =
            EventDb::from_str_symbols(&Alphabet::latin26(), &"THEQUICKBROWNFX".repeat(60)).unwrap();
        let eps = permutations(&Alphabet::latin26(), 2);
        let c = CompiledCandidates::compile(26, &eps);
        let nfa = BitmaskNfa::build(&c).unwrap();
        assert_eq!(nfa.lane_width(), 2);
        // 25 episodes per anchor, 32 lanes per word: one word per symbol.
        assert_eq!(nfa.words(), 26);
        assert_eq!(
            nfa.count(db.symbols()),
            c.count(db.symbols(), &mut CountScratch::new())
        );
    }

    #[test]
    fn shard_scans_merge_through_the_engine_reducer() {
        let text: String = (0..6000u32)
            .map(|i| char::from(b'A' + ((i.wrapping_mul(2654435761) >> 9) % 26) as u8))
            .collect();
        let db = EventDb::from_str_symbols(&Alphabet::latin26(), &text).unwrap();
        let eps = eps_of(&["AB", "BA", "QXZ", "A", "ABA", "AAB"]);
        let c = CompiledCandidates::compile(26, &eps);
        let nfa = BitmaskNfa::build(&c).unwrap();
        let expected = c.count(db.symbols(), &mut CountScratch::new());
        for parts in [2usize, 3, 5, 8] {
            let bounds = even_bounds(db.len(), parts);
            let shards: Vec<(Vec<u64>, Vec<u8>)> = segment_ranges(db.len(), &bounds)
                .into_iter()
                .map(|r| nfa.shard_scan(db.symbols(), r))
                .collect();
            assert_eq!(
                c.merge_shard_counts(db.symbols(), &bounds, &shards),
                expected,
                "parts={parts}"
            );
        }
    }

    #[test]
    fn end_states_match_the_active_set_scan() {
        // Cut mid-match so live partials exist at the boundary.
        let stream: Vec<u8> = b"QABQAB".iter().map(|c| c - b'A').collect();
        let eps = eps_of(&["QAB", "ABQ", "BQA"]);
        let c = CompiledCandidates::compile(26, &eps);
        let nfa = BitmaskNfa::build(&c).unwrap();
        for cut in 0..=stream.len() {
            let mut scratch = CountScratch::new();
            let mut counts = vec![0u64; c.len()];
            c.scan_range(&stream, 0..cut, &mut scratch, &mut counts);
            let (bm_counts, bm_states) = nfa.shard_scan(&stream, 0..cut);
            assert_eq!(bm_counts, counts, "cut={cut}");
            assert_eq!(bm_states, scratch.end_states(), "cut={cut}");
        }
    }

    #[test]
    fn oversized_levels_refuse_to_pack() {
        let items: Vec<u8> = (0..65u8).collect();
        let ep = Episode::new(items).unwrap();
        let c = CompiledCandidates::compile(80, &[ep]);
        assert!(BitmaskNfa::build(&c).is_none());
        // 64 items exactly still packs (one lane per word).
        let ep64 = Episode::new((0..64u8).collect::<Vec<_>>()).unwrap();
        let c64 = CompiledCandidates::compile(80, &[ep64]);
        let nfa = BitmaskNfa::build(&c64).unwrap();
        assert_eq!(nfa.lane_width(), 64);
        let stream: Vec<u8> = (0..64u8).chain(0..64u8).collect();
        assert_eq!(nfa.count(&stream), vec![2]);
    }

    #[test]
    fn empty_set_and_empty_stream() {
        let none = CompiledCandidates::compile(26, &[]);
        let nfa = BitmaskNfa::build(&none).unwrap();
        assert!(nfa.is_empty());
        assert!(nfa.count(&[1, 2, 3]).is_empty());
        let c = CompiledCandidates::compile(26, &eps_of(&["AB"]));
        let nfa = BitmaskNfa::build(&c).unwrap();
        assert_eq!(nfa.count(&[]), vec![0]);
    }

    proptest! {
        /// The word-packed scan is observationally identical to the
        /// per-episode FSM reference for arbitrary inputs — repeated items,
        /// absent symbols, single-symbol alphabets included.
        #[test]
        fn bitmask_equals_naive(
            data in proptest::collection::vec(0u8..6, 0..400),
            eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..5), 1..25),
        ) {
            let ab = Alphabet::numbered(6).unwrap();
            let db = EventDb::new(ab, data).unwrap();
            let episodes: Vec<Episode> =
                eps.into_iter().map(|v| Episode::new(v).unwrap()).collect();
            let c = CompiledCandidates::compile(6, &episodes);
            let nfa = BitmaskNfa::build(&c).unwrap();
            prop_assert_eq!(nfa.count(db.symbols()), count_episodes_naive(&db, &episodes));
        }

        /// Sharded word-packed scans merged by the engine reducer equal the
        /// sequential count under adversarial boundaries.
        #[test]
        fn sharded_bitmask_equals_naive(
            data in proptest::collection::vec(0u8..6, 0..400),
            eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..5), 1..20),
            cuts in proptest::collection::vec(0usize..400, 0..8),
        ) {
            let ab = Alphabet::numbered(6).unwrap();
            let n = data.len();
            let db = EventDb::new(ab, data).unwrap();
            let episodes: Vec<Episode> =
                eps.into_iter().map(|v| Episode::new(v).unwrap()).collect();
            let c = CompiledCandidates::compile(6, &episodes);
            let nfa = BitmaskNfa::build(&c).unwrap();
            let mut bounds: Vec<usize> = cuts.into_iter().map(|x| x % (n + 1)).collect();
            bounds.sort_unstable();
            bounds.dedup();
            let shards: Vec<(Vec<u64>, Vec<u8>)> = segment_ranges(n, &bounds)
                .into_iter()
                .map(|r| nfa.shard_scan(db.symbols(), r))
                .collect();
            prop_assert_eq!(
                c.merge_shard_counts(db.symbols(), &bounds, &shards),
                count_episodes_naive(&db, &episodes)
            );
        }
    }
}
