//! Sequential counters — the "counting step" of the paper's Algorithm 1.
//!
//! Two implementations are provided:
//!
//! * [`count_episode`] / [`count_episodes_naive`]: one full database scan per
//!   episode — exactly what each GPU thread (Algorithms 1/2) or block (3/4) does.
//! * [`count_episodes`]: a single-pass *active-set* counter that advances every
//!   candidate's FSM simultaneously, exploiting the fact that in realistic data
//!   almost every FSM sits at the start state almost all the time. This is the
//!   fast CPU ground truth used to validate the simulated kernels and to drive the
//!   level-wise miner at scale.

use crate::engine::{CompiledCandidates, CountScratch};
use crate::episode::Episode;
use crate::fsm::EpisodeFsm;
use crate::sequence::EventDb;

/// Counts a single episode with the paper's FSM over the whole database.
pub fn count_episode(db: &EventDb, episode: &Episode) -> u64 {
    let mut fsm = EpisodeFsm::new(episode);
    fsm.run(db.symbols())
}

/// Counts every episode by independent full scans (the per-thread work of the
/// paper's kernels; also the obviously-correct reference for tests).
pub fn count_episodes_naive(db: &EventDb, episodes: &[Episode]) -> Vec<u64> {
    episodes.iter().map(|e| count_episode(db, e)).collect()
}

/// [`count_episodes_naive`] over a compiled candidate set: one independent
/// full FSM scan per compiled episode, deliberately *not* the active-set
/// engine — the serial baseline backend and the GPU validators share this so
/// engine bugs cannot self-validate.
pub fn count_compiled_naive(stream: &[u8], compiled: &CompiledCandidates) -> Vec<u64> {
    (0..compiled.len())
        .map(|i| {
            crate::segment::scan_segment_items(stream, compiled.items_of(i), 0..stream.len()).count
        })
        .collect()
}

/// Single-pass multi-episode counter.
///
/// Compiles the candidate set into the flat CSR layout of
/// [`crate::engine::CompiledCandidates`] and runs one active-set scan: per
/// database character, work is proportional to the number of *in-progress*
/// matches plus the number of episodes anchored at that character, instead of
/// the total candidate count. Callers that count repeatedly (the level-wise
/// miner, the sharded engine) should hold a [`CompiledCandidates`] +
/// [`CountScratch`] directly to skip the per-call compilation.
pub fn count_episodes(db: &EventDb, episodes: &[Episode]) -> Vec<u64> {
    if episodes.is_empty() || db.is_empty() {
        return vec![0u64; episodes.len()];
    }
    let compiled = CompiledCandidates::compile(db.alphabet().len(), episodes);
    let mut scratch = CountScratch::new();
    compiled.count(db.symbols(), &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::candidate::permutations;
    use proptest::prelude::*;

    fn db_of(s: &str) -> EventDb {
        EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap()
    }

    #[test]
    fn active_set_matches_naive_on_small_inputs() {
        let ab = Alphabet::latin26();
        let db = db_of("ABCABCABZZQABC");
        let eps: Vec<Episode> = ["A", "AB", "ABC", "CBA", "ZQ", "QZ", "BCA", "AA", "ABA"]
            .iter()
            .map(|s| Episode::from_str(&ab, s).unwrap())
            .collect();
        assert_eq!(count_episodes(&db, &eps), count_episodes_naive(&db, &eps));
    }

    #[test]
    fn empty_inputs() {
        let ab = Alphabet::latin26();
        let db = EventDb::new(ab.clone(), vec![]).unwrap();
        let ep = Episode::from_str(&ab, "AB").unwrap();
        assert_eq!(count_episode(&db, &ep), 0);
        assert_eq!(count_episodes(&db, &[ep]), vec![0]);
        let db2 = db_of("ABC");
        assert_eq!(count_episodes(&db2, &[]), Vec::<u64>::new());
    }

    #[test]
    fn level2_permutation_space_consistency() {
        // All 650 ordered pairs over a modest random-ish text.
        let ab = Alphabet::latin26();
        let text: String = (0..2000u32)
            .map(|i| char::from(b'A' + ((i.wrapping_mul(2654435761) >> 7) % 26) as u8))
            .collect();
        let db = db_of(&text);
        let eps = permutations(&ab, 2);
        assert_eq!(eps.len(), 650);
        assert_eq!(count_episodes(&db, &eps), count_episodes_naive(&db, &eps));
    }

    #[test]
    fn level1_counts_equal_histogram() {
        let ab = Alphabet::latin26();
        let db = db_of("AAKXYZKKA");
        let eps = permutations(&ab, 1);
        let counts = count_episodes(&db, &eps);
        assert_eq!(counts, db.histogram());
    }

    proptest! {
        /// The single-pass active-set counter is observationally identical to
        /// running each episode's FSM independently, for arbitrary data and
        /// arbitrary (possibly repeated-item) episodes.
        #[test]
        fn active_set_equals_naive(
            data in proptest::collection::vec(0u8..6, 0..400),
            eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..5), 1..25),
        ) {
            let ab = Alphabet::numbered(6).unwrap();
            let db = EventDb::new(ab, data).unwrap();
            let episodes: Vec<Episode> =
                eps.into_iter().map(|v| Episode::new(v).unwrap()).collect();
            prop_assert_eq!(
                count_episodes(&db, &episodes),
                count_episodes_naive(&db, &episodes)
            );
        }

        /// FSM counts never exceed the distinct-starts reference for
        /// distinct-item episodes (each completion consumes a distinct anchor).
        #[test]
        fn fsm_bounded_by_distinct_starts(
            data in proptest::collection::vec(0u8..5, 0..300),
        ) {
            let ab = Alphabet::numbered(5).unwrap();
            let db = EventDb::new(ab, data).unwrap();
            let ep = Episode::new(vec![0, 1, 2]).unwrap();
            let fsm = count_episode(&db, &ep);
            let starts = crate::semantics::count_distinct_starts(db.symbols(), ep.items());
            prop_assert!(fsm <= starts);
        }
    }
}
