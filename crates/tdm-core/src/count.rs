//! Sequential counters — the "counting step" of the paper's Algorithm 1.
//!
//! Two implementations are provided:
//!
//! * [`count_episode`] / [`count_episodes_naive`]: one full database scan per
//!   episode — exactly what each GPU thread (Algorithms 1/2) or block (3/4) does.
//! * [`count_episodes`]: a single-pass *active-set* counter that advances every
//!   candidate's FSM simultaneously, exploiting the fact that in realistic data
//!   almost every FSM sits at the start state almost all the time. This is the
//!   fast CPU ground truth used to validate the simulated kernels and to drive the
//!   level-wise miner at scale.

use crate::episode::Episode;
use crate::fsm::EpisodeFsm;
use crate::sequence::EventDb;

/// Counts a single episode with the paper's FSM over the whole database.
pub fn count_episode(db: &EventDb, episode: &Episode) -> u64 {
    let mut fsm = EpisodeFsm::new(episode);
    fsm.run(db.symbols())
}

/// Counts every episode by independent full scans (the per-thread work of the
/// paper's kernels; also the obviously-correct reference for tests).
pub fn count_episodes_naive(db: &EventDb, episodes: &[Episode]) -> Vec<u64> {
    episodes.iter().map(|e| count_episode(db, e)).collect()
}

/// Single-pass multi-episode counter.
///
/// Maintains the invariant that `active` holds exactly the episode indices whose
/// FSM state is non-zero. For each database character `c`:
///
/// 1. every active episode steps its FSM (advance / restart / reset / complete);
/// 2. every episode whose first item is `c` and whose state is 0 is activated
///    (single-item episodes complete immediately and stay inactive).
///
/// Per-character work is proportional to the number of *in-progress* matches plus
/// the number of episodes anchored at `c`, instead of the total candidate count.
pub fn count_episodes(db: &EventDb, episodes: &[Episode]) -> Vec<u64> {
    let n_eps = episodes.len();
    let mut counts = vec![0u64; n_eps];
    if n_eps == 0 || db.is_empty() {
        return counts;
    }

    // Episode items flattened for cache-friendly access.
    let items: Vec<&[u8]> = episodes.iter().map(|e| e.items()).collect();
    let mut state = vec![0u8; n_eps];
    // Position at which an episode last took a phase-1 step. The sequential FSM
    // consumes the character it steps on, so an episode that completed or reset in
    // phase 1 must not re-anchor on the very same character in phase 2.
    let mut last_step = vec![u64::MAX; n_eps];

    // by_first[c] = indices of episodes with a1 == c.
    let mut by_first: Vec<Vec<u32>> = vec![Vec::new(); db.alphabet().len()];
    for (i, it) in items.iter().enumerate() {
        by_first[it[0] as usize].push(i as u32);
    }

    let mut active: Vec<u32> = Vec::new();
    let mut next_active: Vec<u32> = Vec::new();

    for (pos, &c) in db.symbols().iter().enumerate() {
        let pos = pos as u64;
        // Phase 1: step in-progress matches.
        for &ei in &active {
            let e = ei as usize;
            let it = items[e];
            let j = state[e] as usize;
            last_step[e] = pos;
            if c == it[j] {
                if j + 1 == it.len() {
                    counts[e] += 1;
                    state[e] = 0; // completed: leaves the active set
                } else {
                    state[e] += 1;
                    next_active.push(ei);
                }
            } else if c == it[0] {
                state[e] = 1; // restart, stays active
                next_active.push(ei);
            } else {
                state[e] = 0; // reset: leaves the active set
            }
        }
        std::mem::swap(&mut active, &mut next_active);
        next_active.clear();

        // Phase 2: anchor fresh matches. Only episodes at state 0 (i.e. not in the
        // active set) are eligible, so no duplicates can enter `active`; episodes
        // that already consumed this character in phase 1 are skipped.
        for &ei in &by_first[c as usize] {
            let e = ei as usize;
            if state[e] == 0 && last_step[e] != pos {
                if items[e].len() == 1 {
                    counts[e] += 1; // level-1 episodes complete on their anchor
                } else {
                    state[e] = 1;
                    active.push(ei);
                }
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::candidate::permutations;
    use proptest::prelude::*;

    fn db_of(s: &str) -> EventDb {
        EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap()
    }

    #[test]
    fn active_set_matches_naive_on_small_inputs() {
        let ab = Alphabet::latin26();
        let db = db_of("ABCABCABZZQABC");
        let eps: Vec<Episode> = ["A", "AB", "ABC", "CBA", "ZQ", "QZ", "BCA", "AA", "ABA"]
            .iter()
            .map(|s| Episode::from_str(&ab, s).unwrap())
            .collect();
        assert_eq!(count_episodes(&db, &eps), count_episodes_naive(&db, &eps));
    }

    #[test]
    fn empty_inputs() {
        let ab = Alphabet::latin26();
        let db = EventDb::new(ab.clone(), vec![]).unwrap();
        let ep = Episode::from_str(&ab, "AB").unwrap();
        assert_eq!(count_episode(&db, &ep), 0);
        assert_eq!(count_episodes(&db, &[ep]), vec![0]);
        let db2 = db_of("ABC");
        assert_eq!(count_episodes(&db2, &[]), Vec::<u64>::new());
    }

    #[test]
    fn level2_permutation_space_consistency() {
        // All 650 ordered pairs over a modest random-ish text.
        let ab = Alphabet::latin26();
        let text: String = (0..2000u32)
            .map(|i| char::from(b'A' + ((i.wrapping_mul(2654435761) >> 7) % 26) as u8))
            .collect();
        let db = db_of(&text);
        let eps = permutations(&ab, 2);
        assert_eq!(eps.len(), 650);
        assert_eq!(count_episodes(&db, &eps), count_episodes_naive(&db, &eps));
    }

    #[test]
    fn level1_counts_equal_histogram() {
        let ab = Alphabet::latin26();
        let db = db_of("AAKXYZKKA");
        let eps = permutations(&ab, 1);
        let counts = count_episodes(&db, &eps);
        assert_eq!(counts, db.histogram());
    }

    proptest! {
        /// The single-pass active-set counter is observationally identical to
        /// running each episode's FSM independently, for arbitrary data and
        /// arbitrary (possibly repeated-item) episodes.
        #[test]
        fn active_set_equals_naive(
            data in proptest::collection::vec(0u8..6, 0..400),
            eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..5), 1..25),
        ) {
            let ab = Alphabet::numbered(6).unwrap();
            let db = EventDb::new(ab, data).unwrap();
            let episodes: Vec<Episode> =
                eps.into_iter().map(|v| Episode::new(v).unwrap()).collect();
            prop_assert_eq!(
                count_episodes(&db, &episodes),
                count_episodes_naive(&db, &episodes)
            );
        }

        /// FSM counts never exceed the distinct-starts reference for
        /// distinct-item episodes (each completion consumes a distinct anchor).
        #[test]
        fn fsm_bounded_by_distinct_starts(
            data in proptest::collection::vec(0u8..5, 0..300),
        ) {
            let ab = Alphabet::numbered(5).unwrap();
            let db = EventDb::new(ab, data).unwrap();
            let ep = Episode::new(vec![0, 1, 2]).unwrap();
            let fsm = count_episode(&db, &ep);
            let starts = crate::semantics::count_distinct_starts(db.symbols(), ep.items());
            prop_assert!(fsm <= starts);
        }
    }
}
