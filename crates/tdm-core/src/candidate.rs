//! Candidate episode generation — the "generation step" of the paper's
//! Algorithm 1, and the combinatorics of Table 1.
//!
//! The paper's candidate space at level `L` is the set of ordered `L`-tuples of
//! *distinct* symbols: `N! / (N - L)!` episodes (Table 1), giving 26 / 650 /
//! 15,600 candidates at levels 1–3 over the Latin alphabet. [`permutations`]
//! enumerates that space directly; [`apriori_join`] grows candidates
//! level-by-level from the surviving frequent set, which is what the mining loop
//! uses once elimination starts pruning.

use crate::alphabet::{Alphabet, Symbol};
use crate::episode::Episode;

/// The number of distinct-item episodes of length `level` over an alphabet of
/// `n` symbols: `n! / (n - level)!` (paper Table 1). Returns `None` on overflow
/// or when `level > n`.
pub fn permutation_count(n: usize, level: usize) -> Option<u64> {
    if level > n {
        return Some(0);
    }
    let mut acc: u64 = 1;
    for k in 0..level {
        acc = acc.checked_mul((n - k) as u64)?;
    }
    Some(acc)
}

/// Enumerates every distinct-item episode of length `level` over the alphabet, in
/// lexicographic order — the paper's level-`L` candidate space.
///
/// # Panics
/// Panics when `level == 0` (episodes are non-empty by definition).
pub fn permutations(alphabet: &Alphabet, level: usize) -> Vec<Episode> {
    assert!(level > 0, "episode level must be at least 1");
    let n = alphabet.len();
    let expected =
        permutation_count(n, level).expect("candidate space too large to materialize") as usize;
    let mut out = Vec::with_capacity(expected);
    let mut current = Vec::with_capacity(level);
    let mut used = vec![false; n];
    fn rec(
        n: usize,
        level: usize,
        current: &mut Vec<u8>,
        used: &mut [bool],
        out: &mut Vec<Episode>,
    ) {
        if current.len() == level {
            out.push(Episode::new(current.clone()).expect("non-empty by construction"));
            return;
        }
        for s in 0..n {
            if !used[s] {
                used[s] = true;
                current.push(s as u8);
                rec(n, level, current, used, out);
                current.pop();
                used[s] = false;
            }
        }
    }
    rec(n, level, &mut current, &mut used, &mut out);
    debug_assert_eq!(out.len(), expected);
    out
}

/// All level-1 candidates (one per symbol).
pub fn level1(alphabet: &Alphabet) -> Vec<Episode> {
    alphabet
        .symbols()
        .map(|s| Episode::new(vec![s.0]).unwrap())
        .collect()
}

/// Apriori-style join: builds level `k+1` candidates from frequent level-`k`
/// episodes. `alpha = <a1..ak>` joins `beta = <b1..bk>` when `alpha`'s suffix
/// equals `beta`'s prefix, producing `<a1..ak, bk>`. With `distinct_only`, items
/// already in `alpha` are not appended (keeps the space inside the paper's
/// permutation universe).
///
/// The join includes the standard contiguous-subepisode prune: a candidate is
/// emitted only when both its prefix and suffix are frequent (which the join
/// guarantees by construction for serial episodes).
pub fn apriori_join(frequent: &[Episode], distinct_only: bool) -> Vec<Episode> {
    if frequent.is_empty() {
        return Vec::new();
    }
    let k = frequent[0].level();
    debug_assert!(frequent.iter().all(|e| e.level() == k));

    if k == 1 {
        // Level 1 -> 2: all ordered pairs of frequent singletons.
        let mut out = Vec::new();
        for a in frequent {
            for b in frequent {
                if distinct_only && a.items()[0] == b.items()[0] {
                    continue;
                }
                out.push(a.extended(Symbol(b.items()[0])));
            }
        }
        return out;
    }

    // Index by (k-1)-prefix for the suffix == prefix join.
    use std::collections::HashMap;
    let mut by_prefix: HashMap<&[u8], Vec<&Episode>> = HashMap::new();
    for e in frequent {
        by_prefix.entry(e.prefix().unwrap()).or_default().push(e);
    }

    let mut out = Vec::new();
    for a in frequent {
        let suffix = a.suffix().unwrap();
        if let Some(matches) = by_prefix.get(suffix) {
            for b in matches {
                let new_item = *b.items().last().unwrap();
                if distinct_only && a.items().contains(&new_item) {
                    continue;
                }
                out.push(a.extended(Symbol(new_item)));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table1_counts_for_latin26() {
        // Paper Table 1 / §5: 26, 650, 15600 candidates at levels 1..3.
        assert_eq!(permutation_count(26, 1), Some(26));
        assert_eq!(permutation_count(26, 2), Some(650));
        assert_eq!(permutation_count(26, 3), Some(15_600));
        assert_eq!(permutation_count(26, 4), Some(358_800));
        assert_eq!(permutation_count(26, 27), Some(0));
    }

    #[test]
    fn permutation_enumeration_matches_formula() {
        let ab = Alphabet::numbered(5).unwrap();
        for level in 1..=5 {
            let eps = permutations(&ab, level);
            assert_eq!(eps.len() as u64, permutation_count(5, level).unwrap());
            // All distinct items, all unique episodes.
            assert!(eps.iter().all(|e| e.has_distinct_items()));
            let mut dedup = eps.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), eps.len());
        }
    }

    #[test]
    fn latin26_level_sizes() {
        let ab = Alphabet::latin26();
        assert_eq!(permutations(&ab, 1).len(), 26);
        assert_eq!(permutations(&ab, 2).len(), 650);
        assert_eq!(level1(&ab).len(), 26);
    }

    #[test]
    fn join_from_level1_gives_ordered_pairs() {
        let ab = Alphabet::numbered(4).unwrap();
        let l1 = level1(&ab);
        let joined = apriori_join(&l1, true);
        assert_eq!(joined.len(), 4 * 3);
        let with_repeats = apriori_join(&l1, false);
        assert_eq!(with_repeats.len(), 4 * 4);
    }

    #[test]
    fn join_uses_suffix_prefix_overlap() {
        let ab = Alphabet::numbered(5).unwrap();
        let freq: Vec<Episode> = [[0u8, 1], [1, 2], [2, 3]]
            .iter()
            .map(|v| Episode::new(v.to_vec()).unwrap())
            .collect();
        let joined = apriori_join(&freq, true);
        // <0,1>+<1,2> -> <0,1,2>; <1,2>+<2,3> -> <1,2,3>; <2,3> has no continuation.
        let expect: Vec<Episode> = [[0u8, 1, 2], [1, 2, 3]]
            .iter()
            .map(|v| Episode::new(v.to_vec()).unwrap())
            .collect();
        assert_eq!(joined, expect);
        drop(ab);
    }

    #[test]
    fn join_empty_is_empty() {
        assert!(apriori_join(&[], true).is_empty());
    }

    proptest! {
        /// Joining the FULL distinct permutation space at level k yields exactly
        /// the full space at level k+1 (the join is complete, not just sound).
        #[test]
        fn join_of_full_space_is_full_space(n in 2usize..6, k in 1usize..3) {
            prop_assume!(k < n);
            let ab = Alphabet::numbered(n).unwrap();
            let full_k = permutations(&ab, k);
            let mut joined = apriori_join(&full_k, true);
            joined.sort();
            let mut expected = permutations(&ab, k + 1);
            expected.sort();
            prop_assert_eq!(joined, expected);
        }
    }
}
