//! Episodes: ordered sequences of items (paper §3.1).
//!
//! An episode `A = <a1, a2, ..., aL>` appears in the database whenever its items
//! occur in order (under the counting semantics of [`crate::semantics`]). The
//! *level* of an episode is its length `L`.

use crate::alphabet::{Alphabet, Symbol};
use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// An ordered sequence of items to search for.
///
/// Stored as raw symbol ids for the same streaming-efficiency reason as
/// [`crate::EventDb`]. Episodes of the paper's candidate spaces never repeat an
/// item ([`Episode::has_distinct_items`] is true), but the type permits repeats so
/// the general semantics can be expressed and tested.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Episode {
    items: Vec<u8>,
}

impl Episode {
    /// Builds an episode from raw symbol ids.
    ///
    /// # Errors
    /// [`CoreError::EmptyEpisode`] when `items` is empty.
    pub fn new(items: Vec<u8>) -> Result<Self> {
        if items.is_empty() {
            return Err(CoreError::EmptyEpisode);
        }
        Ok(Episode { items })
    }

    /// Builds and validates an episode against an alphabet.
    ///
    /// # Errors
    /// [`CoreError::EmptyEpisode`] or [`CoreError::SymbolOutOfRange`].
    pub fn checked(alphabet: &Alphabet, items: Vec<u8>) -> Result<Self> {
        for &i in &items {
            alphabet.check(i)?;
        }
        Episode::new(items)
    }

    /// Parses single-character symbol names, e.g. `Episode::from_str(&ab, "ABC")`.
    ///
    /// # Errors
    /// [`CoreError::UnknownSymbol`] or [`CoreError::EmptyEpisode`].
    pub fn from_str(alphabet: &Alphabet, s: &str) -> Result<Self> {
        let mut items = Vec::with_capacity(s.len());
        for ch in s.chars() {
            items.push(alphabet.symbol(&ch.to_string())?.0);
        }
        Episode::new(items)
    }

    /// The episode's items as raw symbol ids.
    #[inline]
    pub fn items(&self) -> &[u8] {
        &self.items
    }

    /// The episode level `L` (its length).
    #[inline]
    pub fn level(&self) -> usize {
        self.items.len()
    }

    /// First item `a1` (always present).
    #[inline]
    pub fn first(&self) -> Symbol {
        Symbol(self.items[0])
    }

    /// Last item `aL` (always present).
    #[inline]
    pub fn last(&self) -> Symbol {
        Symbol(self.items[self.items.len() - 1])
    }

    /// True when no item repeats — the paper's candidate spaces (permutations of
    /// distinct letters) always satisfy this. Segmented counting is exactly
    /// consistent with sequential counting for such episodes (see
    /// [`crate::segment`]).
    pub fn has_distinct_items(&self) -> bool {
        let mut seen = [false; 256];
        for &i in &self.items {
            if seen[i as usize] {
                return false;
            }
            seen[i as usize] = true;
        }
        true
    }

    /// Renders the episode with an alphabet, e.g. `<A,B,C>`.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        let names: Vec<&str> = self
            .items
            .iter()
            .map(|&i| alphabet.name(Symbol(i)))
            .collect();
        format!("<{}>", names.join(","))
    }

    /// The prefix of length `level - 1` (`None` for level-1 episodes).
    pub fn prefix(&self) -> Option<&[u8]> {
        if self.items.len() > 1 {
            Some(&self.items[..self.items.len() - 1])
        } else {
            None
        }
    }

    /// The suffix of length `level - 1` (`None` for level-1 episodes).
    pub fn suffix(&self) -> Option<&[u8]> {
        if self.items.len() > 1 {
            Some(&self.items[1..])
        } else {
            None
        }
    }

    /// Extends this episode by one item, producing a level `L+1` candidate.
    pub fn extended(&self, item: Symbol) -> Episode {
        let mut items = Vec::with_capacity(self.items.len() + 1);
        items.extend_from_slice(&self.items);
        items.push(item.0);
        Episode { items }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ab() -> Alphabet {
        Alphabet::latin26()
    }

    #[test]
    fn from_str_and_display_round_trip() {
        let ep = Episode::from_str(&ab(), "CAB").unwrap();
        assert_eq!(ep.level(), 3);
        assert_eq!(ep.items(), &[2, 0, 1]);
        assert_eq!(ep.display(&ab()), "<C,A,B>");
        assert_eq!(ep.first(), Symbol(2));
        assert_eq!(ep.last(), Symbol(1));
    }

    #[test]
    fn empty_episode_rejected() {
        assert!(matches!(Episode::new(vec![]), Err(CoreError::EmptyEpisode)));
        assert!(matches!(
            Episode::from_str(&ab(), ""),
            Err(CoreError::EmptyEpisode)
        ));
    }

    #[test]
    fn checked_validates_alphabet() {
        let small = Alphabet::numbered(3).unwrap();
        assert!(Episode::checked(&small, vec![0, 2]).is_ok());
        assert!(matches!(
            Episode::checked(&small, vec![0, 3]),
            Err(CoreError::SymbolOutOfRange { id: 3, .. })
        ));
    }

    #[test]
    fn distinctness_detection() {
        assert!(Episode::from_str(&ab(), "ABC")
            .unwrap()
            .has_distinct_items());
        assert!(!Episode::from_str(&ab(), "ABA")
            .unwrap()
            .has_distinct_items());
        assert!(Episode::from_str(&ab(), "Z").unwrap().has_distinct_items());
    }

    #[test]
    fn prefix_suffix_extension() {
        let ep = Episode::from_str(&ab(), "ABC").unwrap();
        assert_eq!(ep.prefix().unwrap(), &[0, 1]);
        assert_eq!(ep.suffix().unwrap(), &[1, 2]);
        let one = Episode::from_str(&ab(), "A").unwrap();
        assert!(one.prefix().is_none());
        assert!(one.suffix().is_none());
        assert_eq!(one.extended(Symbol(1)).items(), &[0, 1]);
    }

    #[test]
    fn ordering_is_lexicographic_on_items() {
        let a = Episode::from_str(&ab(), "AB").unwrap();
        let b = Episode::from_str(&ab(), "AC").unwrap();
        let c = Episode::from_str(&ab(), "B").unwrap();
        assert!(a < b);
        assert!(a < c);
    }
}
