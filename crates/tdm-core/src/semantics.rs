//! Counting semantics.
//!
//! The paper counts appearances with the Figure-3 FSM (see [`crate::fsm`]), which
//! is *greedy* and consumes matched characters. Temporal-data-mining literature
//! also uses other occurrence notions; we provide two useful alternatives so that
//! library users can choose, and so that the FSM semantics can be tested against
//! independent references:
//!
//! * [`CountSemantics::PaperFsm`] — the paper's machine (default everywhere);
//! * [`CountSemantics::NonOverlapping`] — greedy *subsequence* matching with no
//!   resets on foreign characters: counts non-overlapped occurrences in the
//!   Laxman sense (each occurrence completes before the next one begins);
//! * [`CountSemantics::DistinctStarts`] — counts database positions at which an
//!   occurrence of the episode *starts* (a non-greedy reference that upper-bounds
//!   the FSM count for distinct-item episodes).

use crate::episode::Episode;
use crate::fsm::EpisodeFsm;
use crate::sequence::EventDb;
use serde::{Deserialize, Serialize};

/// Which notion of "appearance" a counter uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CountSemantics {
    /// The paper's Figure-3 FSM: advance / restart-on-`a1` / reset.
    #[default]
    PaperFsm,
    /// Greedy non-overlapped subsequence occurrences (foreign characters are
    /// skipped instead of resetting the match).
    NonOverlapping,
    /// Number of positions where an occurrence (as a subsequence) begins.
    DistinctStarts,
}

/// Counts one episode under the chosen semantics (sequential reference).
pub fn count_with(db: &EventDb, episode: &Episode, semantics: CountSemantics) -> u64 {
    match semantics {
        CountSemantics::PaperFsm => {
            let mut fsm = EpisodeFsm::new(episode);
            fsm.run(db.symbols())
        }
        CountSemantics::NonOverlapping => count_non_overlapping(db.symbols(), episode.items()),
        CountSemantics::DistinctStarts => count_distinct_starts(db.symbols(), episode.items()),
    }
}

/// Greedy non-overlapped subsequence count: scan left to right, matching episode
/// items in order and restarting only after each completion. Foreign characters
/// are ignored (no reset) — the standard non-overlapped occurrence semantics for
/// serial episodes (each counted occurrence ends before the next begins).
pub fn count_non_overlapping(stream: &[u8], items: &[u8]) -> u64 {
    let mut next = 0usize;
    let mut count = 0u64;
    for &c in stream {
        if c == items[next] {
            next += 1;
            if next == items.len() {
                count += 1;
                next = 0;
            }
        }
    }
    count
}

/// Counts stream positions at which an occurrence of the episode starts, i.e.
/// positions `p` with `stream[p] == a1` and the remaining items appearing in order
/// somewhere after `p`.
pub fn count_distinct_starts(stream: &[u8], items: &[u8]) -> u64 {
    // For each position, the earliest index >= p at which each next item occurs is
    // found by scanning from the back with successor tables; a simple O(n * L)
    // two-pointer is clear and fast enough for a reference implementation.
    //
    // matched[k] = number of stream positions where items[k..] occurs as a
    // subsequence starting with items[k] at that position. Computed right-to-left.
    let n = stream.len();
    let l = items.len();
    // seen_suffix = can items[k+1..] be matched strictly after position i?
    // We sweep i from n-1 down to 0 maintaining, for each k, whether a full match
    // of items[k..] starts at or after i+1. Represent as the minimal start position
    // of a match of items[k..] within stream[i..].
    const INF: usize = usize::MAX;
    let mut earliest: Vec<usize> = vec![INF; l + 1]; // earliest[k] = min start of items[k..] in current suffix
    earliest[l] = 0; // empty suffix matches anywhere (sentinel, not positional)
    let mut count = 0u64;
    for i in (0..n).rev() {
        // Update from the deepest item backwards so this position can chain.
        for k in (0..l).rev() {
            if stream[i] == items[k] {
                let need_rest = if k + 1 == l {
                    true
                } else {
                    earliest[k + 1] != INF && earliest[k + 1] > i
                };
                if need_rest {
                    earliest[k] = i;
                }
            }
        }
        if earliest[0] == i {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn setup(db: &str, ep: &str) -> (EventDb, Episode) {
        let ab = Alphabet::latin26();
        (
            EventDb::from_str_symbols(&ab, db).unwrap(),
            Episode::from_str(&ab, ep).unwrap(),
        )
    }

    #[test]
    fn paper_fsm_resets_on_foreign_characters() {
        let (db, ep) = setup("AXB", "AB");
        assert_eq!(count_with(&db, &ep, CountSemantics::PaperFsm), 0);
        assert_eq!(count_with(&db, &ep, CountSemantics::NonOverlapping), 1);
    }

    #[test]
    fn non_overlapping_takes_sequential_occurrences() {
        let (db, ep) = setup("AABB", "AB");
        // Laxman-style non-overlapped: A@0..B@2 completes, then only B@3 remains.
        assert_eq!(count_with(&db, &ep, CountSemantics::NonOverlapping), 1);
        // It tolerates foreign characters where the FSM resets:
        let (db2, ep2) = setup("AXBAXB", "AB");
        assert_eq!(count_with(&db2, &ep2, CountSemantics::NonOverlapping), 2);
        assert_eq!(count_with(&db2, &ep2, CountSemantics::PaperFsm), 0);
    }

    #[test]
    fn distinct_starts_counts_anchor_positions() {
        let (db, ep) = setup("AAB", "AB");
        // Both A positions can start an occurrence.
        assert_eq!(count_with(&db, &ep, CountSemantics::DistinctStarts), 2);
        let (db, ep) = setup("ABA", "AB");
        assert_eq!(count_with(&db, &ep, CountSemantics::DistinctStarts), 1);
        let (db, ep) = setup("BBB", "AB");
        assert_eq!(count_with(&db, &ep, CountSemantics::DistinctStarts), 0);
    }

    #[test]
    fn single_item_episodes_agree_across_semantics() {
        let (db, ep) = setup("ABABZA", "A");
        for s in [
            CountSemantics::PaperFsm,
            CountSemantics::NonOverlapping,
            CountSemantics::DistinctStarts,
        ] {
            assert_eq!(count_with(&db, &ep, s), 3, "{s:?}");
        }
    }

    #[test]
    fn distinct_starts_upper_bounds_fsm_for_distinct_items() {
        // A hand-rolled spread of cases; the property test in count.rs covers more.
        for (db, ep) in [
            ("ABCABC", "ABC"),
            ("AABBCC", "ABC"),
            ("ABABAB", "AB"),
            ("CBACBA", "ABC"),
        ] {
            let (db, ep) = setup(db, ep);
            let fsm = count_with(&db, &ep, CountSemantics::PaperFsm);
            let starts = count_with(&db, &ep, CountSemantics::DistinctStarts);
            assert!(fsm <= starts, "fsm={fsm} starts={starts}");
        }
    }

    #[test]
    fn default_semantics_is_paper_fsm() {
        assert_eq!(CountSemantics::default(), CountSemantics::PaperFsm);
    }
}
