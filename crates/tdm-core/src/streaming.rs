//! Streaming ingestion — incremental episode counting over an append-only
//! [`EventDb`].
//!
//! Batch mining rescans the whole stream every time it runs; a live stream
//! that grows by a few hundred symbols between queries makes that O(stream)
//! cost per append absurd. This module applies the paper's Fig. 5
//! boundary-continuation machinery (built for *spatial* shard boundaries) to
//! the **temporal** boundary at the stream head: a [`StreamingSession`] parks
//! one FSM continuation state per episode at the head and, when symbols
//! arrive, does O(new symbols) work —
//!
//! 1. one compiled active-set pass over **just the appended chunk** (the same
//!    map step a database shard runs, [`CompiledCandidates::shard_scan`]);
//! 2. the seam fix: every parked partial match is resumed into the chunk with
//!    the advance-only continuation rule
//!    ([`continuation_advance_items`]) — completing, dying, or parking again
//!    at the new head if the chunk was too short to resolve it;
//! 3. for the few repeated-item episodes (where the greedy continuation is
//!    not exact) the exact [`SegmentEffect`] state-composition runs over the
//!    appended chunk only, composed onto a running effect — the exact
//!    fallback confined to the seam window instead of the paper-merge's full
//!    rescan.
//!
//! The result is bit-identical to a one-shot batch count of the concatenated
//! stream for **every** episode set and chunk schedule (the workspace
//! differential suite pins this), while the per-append cost tracks the chunk,
//! not the stream.
//!
//! [`continuation_advance_items`]: crate::segment::continuation_advance_items
//! [`CompiledCandidates::shard_scan`]: crate::engine::CompiledCandidates::shard_scan

use crate::engine::{CompiledCandidates, OccurrenceIndex};
use crate::episode::Episode;
use crate::segment::{continuation_advance_items, Continuation, SegmentEffect};
use crate::sequence::EventDb;
use crate::stats::support;
use crate::{CoreError, Result};

/// An incremental counter over an append-only event stream: owns the evolving
/// [`EventDb`], a candidate set compiled once, and per-episode continuation
/// state parked at the stream head. [`append`](StreamingSession::append)
/// updates every count in O(appended symbols); [`counts`](StreamingSession::counts)
/// always equals what a from-scratch batch count of the current stream would
/// return.
///
/// ```
/// use tdm_core::engine::{CompiledCandidates, CountScratch};
/// use tdm_core::{Alphabet, Episode, EventDb, StreamingSession};
///
/// let ab = Alphabet::latin26();
/// let db = EventDb::from_str_symbols(&ab, "ABXAB").unwrap();
/// let eps = vec![Episode::from_str(&ab, "AB").unwrap()];
/// let mut live = StreamingSession::new(&db, &eps).unwrap();
/// assert_eq!(live.counts(), &[2]);
///
/// // "A" arrives, then "B" — the occurrence spans two append seams.
/// live.append(&[0]).unwrap();
/// live.append(&[1]).unwrap();
/// assert_eq!(live.counts(), &[3]);
///
/// // Bit-identical to a batch count of the concatenated stream.
/// let batch = CompiledCandidates::compile(ab.len(), &eps)
///     .count(live.db().symbols(), &mut CountScratch::new());
/// assert_eq!(live.counts(), &batch[..]);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingSession {
    db: EventDb,
    episodes: Vec<Episode>,
    compiled: CompiledCandidates,
    /// Exact serial count of each episode over the current stream.
    counts: Vec<u64>,
    /// Parked continuation state per episode at the stream head (0 = no live
    /// partial). Only distinct-item episodes park here; repeated-item
    /// episodes live in `effects`.
    cont: Vec<u8>,
    /// Running exact state-composition per repeated-item episode: composing
    /// each appended chunk's [`SegmentEffect`] keeps these episodes exact
    /// while still touching only the appended window.
    effects: Vec<(usize, SegmentEffect)>,
    /// Lazily built vertical index, extended in place on every append once
    /// materialized.
    index: Option<OccurrenceIndex>,
    appends: u64,
    appended_symbols: u64,
}

impl StreamingSession {
    /// Builds a streaming session over the database's current content for a
    /// fixed episode set (compiled once; `counts` stays aligned to
    /// `episodes` order). The base stream is counted through the same ingest
    /// path later appends take.
    ///
    /// # Errors
    /// [`CoreError::SymbolOutOfRange`] when an episode uses a symbol outside
    /// the database's alphabet.
    ///
    /// # Panics
    /// When the episode set exceeds the compiled layout's `u32` index range
    /// (as [`CompiledCandidates::compile`]).
    pub fn new(db: &EventDb, episodes: &[Episode]) -> Result<Self> {
        let alphabet = db.alphabet().len();
        for ep in episodes {
            if let Some(&bad) = ep.items().iter().find(|&&i| (i as usize) >= alphabet) {
                return Err(CoreError::SymbolOutOfRange { id: bad, alphabet });
            }
        }
        let compiled = CompiledCandidates::compile(alphabet, episodes);
        let effects = (0..compiled.len())
            .filter(|&e| compiled.is_repeated(e))
            .map(|e| {
                // The empty-segment effect: zero completions, identity exits.
                (
                    e,
                    SegmentEffect::compute_items(&[], compiled.items_of(e), 0..0),
                )
            })
            .collect();
        let mut session = StreamingSession {
            db: db.clone(),
            episodes: episodes.to_vec(),
            counts: vec![0; compiled.len()],
            cont: vec![0; compiled.len()],
            effects,
            compiled,
            index: None,
            appends: 0,
            appended_symbols: 0,
        };
        let base = session.db.symbols_shared();
        session.ingest(&base);
        session.appends = 0;
        session.appended_symbols = 0;
        Ok(session)
    }

    /// Appends a batch of events to the owned database (epoch bump, fresh
    /// stream buffer — parked external snapshots stay valid) and updates
    /// every count with O(batch) work. Returns the updated counts.
    ///
    /// # Errors
    /// As [`EventDb::extend`]; on error nothing changes.
    pub fn append(&mut self, suffix: &[u8]) -> Result<&[u64]> {
        self.db.extend(suffix)?;
        self.ingest(suffix);
        Ok(&self.counts)
    }

    /// [`append`](StreamingSession::append) for timestamped databases.
    ///
    /// # Errors
    /// As [`EventDb::extend_with_times`]; on error nothing changes.
    pub fn append_with_times(&mut self, suffix: &[u8], times: &[u64]) -> Result<&[u64]> {
        self.db.extend_with_times(suffix, times)?;
        self.ingest(suffix);
        Ok(&self.counts)
    }

    /// The incremental counting step: one fresh compiled scan of the chunk,
    /// the continuation seam fix for parked partials, and the exact
    /// state-composition update for repeated-item episodes.
    fn ingest(&mut self, suffix: &[u8]) {
        if suffix.is_empty() {
            return;
        }
        self.appends += 1;
        self.appended_symbols += suffix.len() as u64;
        // Map step over the chunk only — identical to one database shard's
        // scan, with the seam at the old stream head playing the role of the
        // shard boundary.
        let (fresh_counts, fresh_states) = self.compiled.shard_scan(suffix, 0..suffix.len());
        for e in 0..self.compiled.len() {
            if self.compiled.is_repeated(e) {
                continue;
            }
            let resolved = match self.cont[e] {
                0 => true,
                parked => {
                    match continuation_advance_items(suffix, self.compiled.items_of(e), parked) {
                        Continuation::Completed => {
                            self.counts[e] += 1;
                            true
                        }
                        Continuation::Died => true,
                        Continuation::Pending(s) => {
                            self.cont[e] = s;
                            false
                        }
                    }
                }
            };
            self.counts[e] += fresh_counts[e];
            if resolved {
                // The freshest seam's live partial (if any) is the one to
                // park at the new head.
                self.cont[e] = fresh_states[e];
            } else {
                // A partial still pending after the whole chunk means every
                // chunk symbol fed it — for a distinct-item episode none of
                // them can be the anchor, so the fresh scan saw nothing.
                debug_assert_eq!(fresh_counts[e], 0);
                debug_assert_eq!(fresh_states[e], 0);
            }
        }
        for (e, eff) in self.effects.iter_mut() {
            let chunk =
                SegmentEffect::compute_items(suffix, self.compiled.items_of(*e), 0..suffix.len());
            *eff = eff.then(&chunk);
            self.counts[*e] = eff.completions[0];
        }
        if let Some(index) = self.index.as_mut() {
            index.extend(suffix);
        }
    }

    /// Exact per-episode counts over the current stream, aligned to the
    /// episode order given at construction. Always equals a from-scratch
    /// batch count of [`db`](StreamingSession::db)'s current content.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The owned, evolving database. Clone it (an `Arc` bump) to snapshot the
    /// current epoch for a batch re-mine; later appends leave the snapshot's
    /// buffer untouched.
    #[inline]
    pub fn db(&self) -> &EventDb {
        &self.db
    }

    /// The episode set the session counts, in `counts` order.
    #[inline]
    pub fn episodes(&self) -> &[Episode] {
        &self.episodes
    }

    /// Current append epoch of the owned database.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// Indices of episodes currently frequent at support threshold `alpha`
    /// (the mining loop's elimination rule, `support(count, n) > alpha`).
    pub fn frequent(&self, alpha: f64) -> Vec<usize> {
        let n = self.db.len();
        (0..self.counts.len())
            .filter(|&e| support(self.counts[e], n) > alpha)
            .collect()
    }

    /// The vertical occurrence index over the current stream — built on first
    /// use, then **extended in place** on every append
    /// ([`OccurrenceIndex::extend`]), so the vertical counting strategy stays
    /// usable on a live stream without per-append rebuilds.
    pub fn occurrence_index(&mut self) -> &OccurrenceIndex {
        if self.index.is_none() {
            self.index = Some(OccurrenceIndex::build(
                self.db.alphabet().len(),
                self.db.symbols(),
            ));
        }
        self.index.as_ref().expect("index built above")
    }

    /// Episodes with a live partial match parked at the stream head.
    pub fn parked_partials(&self) -> usize {
        self.cont.iter().filter(|&&s| s != 0).count()
    }

    /// Append batches ingested since construction.
    #[inline]
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Symbols ingested through appends since construction (excludes the base
    /// stream).
    #[inline]
    pub fn appended_symbols(&self) -> u64 {
        self.appended_symbols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::engine::CountScratch;

    fn eps_of(specs: &[&str]) -> Vec<Episode> {
        let ab = Alphabet::latin26();
        specs
            .iter()
            .map(|s| Episode::from_str(&ab, s).unwrap())
            .collect()
    }

    fn batch_counts(db: &EventDb, eps: &[Episode]) -> Vec<u64> {
        CompiledCandidates::compile(db.alphabet().len(), eps)
            .count(db.symbols(), &mut CountScratch::new())
    }

    #[test]
    fn single_symbol_appends_match_batch() {
        let ab = Alphabet::latin26();
        let eps = eps_of(&["A", "AB", "ABC", "CBA", "BAC", "AA", "ABA"]);
        let text: Vec<u8> = b"ABCABCBACABBBACCA".iter().map(|c| c - b'A').collect();
        let db = EventDb::new(ab, vec![]).unwrap();
        let mut live = StreamingSession::new(&db, &eps).unwrap();
        for &c in &text {
            live.append(&[c]).unwrap();
            assert_eq!(live.counts(), &batch_counts(live.db(), &eps)[..]);
        }
        assert_eq!(live.appends(), text.len() as u64);
        assert_eq!(live.appended_symbols(), text.len() as u64);
    }

    #[test]
    fn spanning_occurrence_crosses_many_seams() {
        let ab = Alphabet::latin26();
        let eps = eps_of(&["ABCDE"]);
        let db = EventDb::from_str_symbols(&ab, "A").unwrap();
        let mut live = StreamingSession::new(&db, &eps).unwrap();
        assert_eq!(live.parked_partials(), 1);
        for c in [1u8, 2, 3] {
            live.append(&[c]).unwrap();
            assert_eq!(live.counts(), &[0]);
            assert_eq!(live.parked_partials(), 1);
        }
        live.append(&[4]).unwrap();
        assert_eq!(live.counts(), &[1]);
        assert_eq!(live.parked_partials(), 0);
    }

    #[test]
    fn repeated_item_episode_stays_exact_across_the_seam() {
        // The adversarial case for the greedy continuation: "AAB" over
        // "AAAB" counts 0 sequentially. Split anywhere.
        let ab = Alphabet::latin26();
        let eps = eps_of(&["AAB", "AA"]);
        for cut in 0..4 {
            let text: Vec<u8> = b"AAAB".iter().map(|c| c - b'A').collect();
            let db = EventDb::new(ab.clone(), text[..cut].to_vec()).unwrap();
            let mut live = StreamingSession::new(&db, &eps).unwrap();
            live.append(&text[cut..]).unwrap();
            assert_eq!(
                live.counts(),
                &batch_counts(live.db(), &eps)[..],
                "cut={cut}"
            );
        }
    }

    #[test]
    fn frequent_mirrors_the_elimination_rule() {
        let ab = Alphabet::latin26();
        let eps = eps_of(&["A", "AB", "QZ"]);
        let db = EventDb::from_str_symbols(&ab, "ABABAB").unwrap();
        let mut live = StreamingSession::new(&db, &eps).unwrap();
        assert_eq!(live.frequent(0.1), vec![0, 1]);
        live.append(&[16, 25]).unwrap(); // "QZ"
        assert_eq!(live.frequent(0.1), vec![0, 1, 2]);
    }

    #[test]
    fn occurrence_index_extends_with_the_stream() {
        let ab = Alphabet::latin26();
        let eps = eps_of(&["AB"]);
        let db = EventDb::from_str_symbols(&ab, "ABAB").unwrap();
        let mut live = StreamingSession::new(&db, &eps).unwrap();
        assert_eq!(live.occurrence_index().occ_len(0), 2);
        live.append(&[0, 0]).unwrap();
        let idx = live.occurrence_index();
        assert_eq!(idx.stream_len(), 6);
        assert_eq!(idx.occurrences(0), &[0, 2, 4, 5]);
    }

    #[test]
    fn rejects_out_of_alphabet_episodes_and_bad_appends() {
        let ab = Alphabet::numbered(3).unwrap();
        let db = EventDb::new(ab, vec![0, 1]).unwrap();
        let bad = vec![Episode::new(vec![0, 7]).unwrap()];
        assert!(matches!(
            StreamingSession::new(&db, &bad),
            Err(CoreError::SymbolOutOfRange { id: 7, .. })
        ));
        let eps = vec![Episode::new(vec![0, 1]).unwrap()];
        let mut live = StreamingSession::new(&db, &eps).unwrap();
        assert!(live.append(&[9]).is_err());
        // The failed append left counts and the stream untouched.
        assert_eq!(live.counts(), &[1]);
        assert_eq!(live.db().len(), 2);
    }

    #[test]
    fn snapshots_survive_appends() {
        let ab = Alphabet::latin26();
        let eps = eps_of(&["AB"]);
        let db = EventDb::from_str_symbols(&ab, "AB").unwrap();
        let mut live = StreamingSession::new(&db, &eps).unwrap();
        let snapshot = live.db().clone();
        live.append(&[0, 1]).unwrap();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(live.db().len(), 4);
        assert_eq!(snapshot.epoch(), 0);
        assert_eq!(live.epoch(), 1);
    }
}
