//! The paper's Figure-3 finite state machine.
//!
//! For an episode `A = <a1, ..., aL>`, the FSM is in state `j` after matching the
//! prefix `a1..aj` (state 0 = start). Reading character `c`:
//!
//! 1. **advance** when `c == a[j]` (0-indexed: the next expected item). Reaching
//!    state `L` *completes* an appearance: the counter increments and the machine
//!    resets to the start (the figure's `final -> start` behaviour).
//! 2. otherwise **restart** when `c == a1` and `j >= 1`: the machine re-anchors at
//!    state 1 (the figure's edges back to the `a1` state);
//! 3. otherwise **reset** to the start (the figure's `c != a1,2,...` edges).
//!
//! Advance has priority over restart when `a[j] == a1` (only possible for episodes
//! with repeated items). At the start state, characters other than `a1` self-loop.
//!
//! The machine is deliberately tiny — a `u8` state and one branch per character —
//! because the paper's GPU kernels execute exactly this per thread per character,
//! and our simulator charges instruction costs for precisely these branches.

use crate::episode::Episode;

/// Outcome of a single FSM step (used by the simulator to attribute instruction
/// costs to divergent branch paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// `c` matched the next expected item (includes the completing step).
    Advance,
    /// `c` completed the episode (a special advance; counter incremented).
    Complete,
    /// `c == a1` while mid-match: re-anchor at state 1.
    Restart,
    /// `c` neither advanced nor re-anchored: back to start.
    Reset,
    /// At the start state and `c != a1`: stay (the cheap self-loop).
    Idle,
}

/// A running instance of the Figure-3 FSM for one episode.
#[derive(Debug, Clone)]
pub struct EpisodeFsm<'a> {
    items: &'a [u8],
    state: u8,
    count: u64,
}

impl<'a> EpisodeFsm<'a> {
    /// Creates the machine at the start state with a zero counter.
    pub fn new(episode: &'a Episode) -> Self {
        EpisodeFsm {
            items: episode.items(),
            state: 0,
            count: 0,
        }
    }

    /// Creates the machine directly over raw items (internal fast path; the items
    /// slice must be non-empty).
    pub fn from_items(items: &'a [u8]) -> Self {
        debug_assert!(!items.is_empty());
        EpisodeFsm {
            items,
            state: 0,
            count: 0,
        }
    }

    /// Current state (0 = start, `j` = prefix of length `j` matched).
    #[inline]
    pub fn state(&self) -> u8 {
        self.state
    }

    /// Forces the state (used by segmented counting to replay continuations).
    #[inline]
    pub fn set_state(&mut self, state: u8) {
        debug_assert!((state as usize) < self.items.len() + 1);
        self.state = state;
    }

    /// Appearances counted so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feeds one character; returns what kind of transition happened.
    #[inline]
    pub fn step(&mut self, c: u8) -> StepKind {
        let j = self.state as usize;
        if c == self.items[j] {
            // Advance (has priority over restart when a[j] == a1).
            if j + 1 == self.items.len() {
                self.count += 1;
                self.state = 0;
                StepKind::Complete
            } else {
                self.state += 1;
                StepKind::Advance
            }
        } else if self.state == 0 {
            StepKind::Idle
        } else if c == self.items[0] {
            self.state = 1;
            StepKind::Restart
        } else {
            self.state = 0;
            StepKind::Reset
        }
    }

    /// Feeds a whole character slice, returning the number of completions within
    /// it. State persists across calls (this is how buffered kernels process
    /// consecutive buffer epochs).
    pub fn run(&mut self, chars: &[u8]) -> u64 {
        let before = self.count;
        for &c in chars {
            self.step(c);
        }
        self.count - before
    }

    /// Resets state and counter.
    pub fn reset(&mut self) {
        self.state = 0;
        self.count = 0;
    }
}

/// One step of the pure transition function: `(state, c) -> (state', completed)`.
///
/// Identical semantics to [`EpisodeFsm::step`] but without any carried counter —
/// the form used by the state-composition (exact parallel) counter and by property
/// tests.
#[inline]
pub fn fsm_step(items: &[u8], state: u8, c: u8) -> (u8, bool) {
    let j = state as usize;
    if c == items[j] {
        if j + 1 == items.len() {
            (0, true)
        } else {
            (state + 1, false)
        }
    } else if state == 0 {
        (0, false)
    } else if c == items[0] {
        (1, false)
    } else {
        (0, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn ep(s: &str) -> Episode {
        Episode::from_str(&Alphabet::latin26(), s).unwrap()
    }

    fn run_str(episode: &Episode, s: &str) -> u64 {
        let ab = Alphabet::latin26();
        let db = crate::sequence::EventDb::from_str_symbols(&ab, s).unwrap();
        let mut fsm = EpisodeFsm::new(episode);
        fsm.run(db.symbols())
    }

    #[test]
    fn single_item_counts_every_occurrence() {
        assert_eq!(run_str(&ep("A"), "AABAZA"), 4);
        assert_eq!(run_str(&ep("Z"), "AABA"), 0);
    }

    #[test]
    fn simple_pair_counts() {
        // A then B, with resets on other characters.
        assert_eq!(run_str(&ep("AB"), "AB"), 1);
        assert_eq!(run_str(&ep("AB"), "ABAB"), 2);
        assert_eq!(run_str(&ep("AB"), "AXB"), 0); // X resets the partial match
        assert_eq!(run_str(&ep("AB"), "AAB"), 1); // second A restarts, then completes
        assert_eq!(run_str(&ep("AB"), "BA"), 0);
    }

    #[test]
    fn restart_on_first_item_mid_match() {
        // After matching "AB" of "ABC", seeing 'A' re-anchors rather than resets.
        assert_eq!(run_str(&ep("ABC"), "ABABC"), 1);
        // ...whereas a foreign character resets and the tail alone cannot match.
        assert_eq!(run_str(&ep("ABC"), "ABXBC"), 0);
    }

    #[test]
    fn completion_resets_to_start() {
        // Back-to-back appearances are both counted.
        assert_eq!(run_str(&ep("ABC"), "ABCABC"), 2);
        // The completing character is consumed: no overlap re-use.
        assert_eq!(run_str(&ep("AA"), "AAA"), 1); // greedy: (AA) then lone A
        assert_eq!(run_str(&ep("AA"), "AAAA"), 2);
    }

    #[test]
    fn advance_beats_restart_for_repeated_first_item() {
        // Episode "AAB": after one A (state 1), another A must ADVANCE to state 2,
        // not restart to state 1.
        assert_eq!(run_str(&ep("AAB"), "AAB"), 1);
        // "AAAB": A,A -> state 2; third A is neither a3 (B) nor... it IS a1, so
        // restart to state 1; then B resets (B != a2=A, != a1). Total 0 under the
        // paper's greedy semantics.
        assert_eq!(run_str(&ep("AAB"), "AAAB"), 0);
    }

    #[test]
    fn step_kinds_reported() {
        let e = ep("AB");
        let mut fsm = EpisodeFsm::new(&e);
        assert_eq!(fsm.step(b'C' - b'A'), StepKind::Idle);
        assert_eq!(fsm.step(0), StepKind::Advance); // A
        assert_eq!(fsm.step(0), StepKind::Restart); // A again
        assert_eq!(fsm.step(b'C' - b'A'), StepKind::Reset);
        assert_eq!(fsm.step(0), StepKind::Advance);
        assert_eq!(fsm.step(1), StepKind::Complete);
        assert_eq!(fsm.count(), 1);
        assert_eq!(fsm.state(), 0);
    }

    #[test]
    fn pure_step_agrees_with_fsm() {
        let e = ep("ABC");
        let mut fsm = EpisodeFsm::new(&e);
        let mut state = 0u8;
        let mut count = 0u64;
        for &c in &[0u8, 1, 0, 1, 2, 2, 0, 1, 2] {
            fsm.step(c);
            let (s, done) = fsm_step(e.items(), state, c);
            state = s;
            if done {
                count += 1;
            }
            assert_eq!(state, fsm.state());
            assert_eq!(count, fsm.count());
        }
    }

    #[test]
    fn run_is_incremental_across_chunks() {
        let e = ep("ABC");
        let ab = Alphabet::latin26();
        let db = crate::sequence::EventDb::from_str_symbols(&ab, "ABCABC").unwrap();
        let mut fsm = EpisodeFsm::new(&e);
        let first = fsm.run(&db.symbols()[..4]); // "ABCA"
        let second = fsm.run(&db.symbols()[4..]); // "BC" completes the pending A
        assert_eq!(first, 1);
        assert_eq!(second, 1);
        assert_eq!(fsm.count(), 2);
    }
}
