//! Mining results and support statistics.

use crate::episode::Episode;
use serde::{Deserialize, Serialize};

/// Support of an episode: `count / n` (paper §3.1 defines frequency against the
/// database length `n`).
pub fn support(count: u64, db_len: usize) -> f64 {
    if db_len == 0 {
        0.0
    } else {
        count as f64 / db_len as f64
    }
}

/// One mined level: the surviving (frequent) episodes with their counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelResult {
    /// Episode length at this level.
    pub level: usize,
    /// Number of candidates examined at this level.
    pub candidates: usize,
    /// Frequent episodes (count/n > alpha) with their appearance counts.
    pub frequent: Vec<(Episode, u64)>,
}

impl LevelResult {
    /// The number of frequent episodes at this level.
    pub fn len(&self) -> usize {
        self.frequent.len()
    }

    /// True when no episode survived elimination.
    pub fn is_empty(&self) -> bool {
        self.frequent.is_empty()
    }
}

/// The complete output of a mining run (paper Algorithm 1's `S_A`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MiningResult {
    /// Results per level, in increasing level order.
    pub levels: Vec<LevelResult>,
    /// Database length used for support computation.
    pub db_len: usize,
}

impl MiningResult {
    /// Total number of frequent episodes across all levels.
    pub fn total_frequent(&self) -> usize {
        self.levels.iter().map(|l| l.frequent.len()).sum()
    }

    /// Total number of candidates counted across all levels.
    pub fn total_candidates(&self) -> usize {
        self.levels.iter().map(|l| l.candidates).sum()
    }

    /// Looks up the count of a specific episode, if it was found frequent.
    pub fn count_of(&self, episode: &Episode) -> Option<u64> {
        let lvl = episode.level();
        self.levels
            .iter()
            .find(|l| l.level == lvl)
            .and_then(|l| l.frequent.iter().find(|(e, _)| e == episode))
            .map(|(_, c)| *c)
    }

    /// Iterates over every frequent episode with its count and support.
    pub fn iter(&self) -> impl Iterator<Item = (&Episode, u64, f64)> + '_ {
        let n = self.db_len;
        self.levels
            .iter()
            .flat_map(move |l| l.frequent.iter().map(move |(e, c)| (e, *c, support(*c, n))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    #[test]
    fn support_is_count_over_n() {
        assert_eq!(support(5, 10), 0.5);
        assert_eq!(support(0, 10), 0.0);
        assert_eq!(support(3, 0), 0.0);
    }

    #[test]
    fn result_accessors() {
        let ab = Alphabet::latin26();
        let a = Episode::from_str(&ab, "A").unwrap();
        let abep = Episode::from_str(&ab, "AB").unwrap();
        let res = MiningResult {
            levels: vec![
                LevelResult {
                    level: 1,
                    candidates: 26,
                    frequent: vec![(a.clone(), 7)],
                },
                LevelResult {
                    level: 2,
                    candidates: 650,
                    frequent: vec![(abep.clone(), 3)],
                },
            ],
            db_len: 100,
        };
        assert_eq!(res.total_frequent(), 2);
        assert_eq!(res.total_candidates(), 676);
        assert_eq!(res.count_of(&a), Some(7));
        assert_eq!(res.count_of(&abep), Some(3));
        assert_eq!(res.count_of(&Episode::from_str(&ab, "Z").unwrap()), None);
        let rows: Vec<_> = res.iter().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].2, 0.07);
    }
}
