//! The plan/execute counting API: compile once per level, execute many times.
//!
//! The paper's central systems lesson — echoed by later GPU mining systems
//! like Everest and Mayura — is that counting dominates mining and must be
//! *staged*: candidate layout, launch geometry, and per-level buffer reuse are
//! planning decisions, separate from the backend that executes the scan. This
//! module is that seam:
//!
//! * [`MiningSession`] — the **plan** side. Built from `&EventDb` +
//!   [`MinerConfig`] via [`MiningSession::builder`], it owns the
//!   [`CompiledCandidates`] (recompiled in place once per level), the
//!   database shard bounds, and a persistent [`Pool`] of worker threads that
//!   serves every counting call of the level loop.
//! * [`CountRequest`] — the borrowed view handed to backends: the compiled
//!   CSR buffers and symbol-anchor index, the symbol stream, the shard
//!   bounds, the session pool, and the level metadata. No `&[Episode]`, no
//!   clones, no recompiles on the execute side.
//! * [`Executor`] — the **execute** side: one `execute(&CountRequest) ->
//!   Result<Counts, BackendError>` call per level. CPU backends scan borrowed
//!   chunks; GPU backends derive launch geometry and sampling from the same
//!   compiled layout.
//!
//! The level-wise miner ([`crate::miner::Miner`]) is a thin driver over a
//! session; long-lived services can hold a session directly and stream
//! per-level results via [`MiningSession::mine_with`].
//!
//! Sessions come in two ownership shapes. [`MiningSession::builder`] borrows
//! the database (`MiningSession<'db>`), right for scoped use. A **serving**
//! layer instead wants sessions that outlive any one request and share one
//! machine-sized worker pool across tenants: [`MiningSession::builder_shared`]
//! takes `Arc<EventDb>` and yields a `MiningSession<'static>` that can live in
//! a cache, and [`MiningSessionBuilder::with_pool`] attaches an externally
//! owned `Arc<Pool>` instead of spawning a private one — any number of
//! concurrent sessions multiplex their scan jobs over the same threads (see
//! the `tdm-serve` crate).
//!
//! ```
//! use tdm_core::session::MiningSession;
//! use tdm_core::miner::{MinerConfig, SequentialBackend};
//! use tdm_core::{Alphabet, EventDb};
//!
//! let db = EventDb::from_str_symbols(&Alphabet::latin26(), &"ABC".repeat(50)).unwrap();
//! let mut session = MiningSession::builder(&db)
//!     .config(MinerConfig { alpha: 0.1, ..Default::default() })
//!     .build();
//! let result = session.mine(&mut SequentialBackend::default()).unwrap();
//! assert!(result.total_frequent() > 0);
//! // One compile per level, however many executors ran.
//! assert_eq!(session.compiles(), result.levels.len());
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::candidate::{apriori_join, level1};
use crate::engine::{CandidateUnion, CompiledCandidates, OccurrenceIndex, MIN_SHARD_STREAM};
use crate::episode::Episode;
use crate::miner::MinerConfig;
use crate::segment::even_bounds;
use crate::sequence::EventDb;
use crate::stats::{support, LevelResult, MiningResult};
use crate::CoreError;
use std::sync::OnceLock;
use tdm_mapreduce::pool::{default_workers, Pool, Priority};

/// Appearance counts, one per candidate episode in compiled order.
pub type Counts = Vec<u64>;

/// How a session holds its database: borrowed for scoped use, or shared
/// behind an `Arc` so the session has no borrowed lifetime and can sit in a
/// cache between requests (the serving configuration).
#[derive(Debug, Clone)]
enum DbHandle<'db> {
    Borrowed(&'db EventDb),
    Shared(Arc<EventDb>),
}

impl DbHandle<'_> {
    #[inline]
    fn get(&self) -> &EventDb {
        match self {
            DbHandle::Borrowed(db) => db,
            DbHandle::Shared(db) => db,
        }
    }
}

/// The session's worker pool: spawned lazily and owned by the session, or
/// shared with other sessions through an `Arc` (the multi-tenant serving
/// configuration — one machine-sized pool, many concurrent sessions).
#[derive(Debug)]
enum PoolSlot {
    Owned {
        workers: usize,
        cell: OnceLock<Pool>,
    },
    Shared(Arc<Pool>),
}

impl PoolSlot {
    #[inline]
    fn get(&self) -> &Pool {
        match self {
            PoolSlot::Owned { workers, cell } => cell.get_or_init(|| Pool::with_workers(*workers)),
            PoolSlot::Shared(pool) => pool,
        }
    }
}

/// A cooperative cancellation handle checked by the level loops
/// ([`MiningSession::mine_with`], [`CoSession::co_mine`]) **between** level
/// scans: an abandoned request stops before compiling or counting its next
/// level instead of running the full loop for nobody.
///
/// The flag is shared across clones (an `Arc<AtomicBool>`), so a serving
/// layer can hand one copy to the session and keep another to fire from a
/// watchdog or disconnect handler. The deadline, by contrast, is a plain
/// per-copy value: [`deadline_within`](CancelToken::deadline_within) returns
/// a *tightened* copy without affecting other holders.
///
/// ```
/// use std::time::Duration;
/// use tdm_core::session::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled()); // the flag is shared
///
/// let expired = CancelToken::new().deadline_within(Duration::ZERO);
/// assert!(expired.is_cancelled()); // the deadline already passed
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh token: not cancelled, no deadline.
    pub fn new() -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// A copy of this token whose deadline is at most `timeout` from now
    /// (tightening an earlier deadline, never loosening it). The cancel flag
    /// stays shared with the original.
    pub fn deadline_within(&self, timeout: Duration) -> Self {
        let at = Instant::now()
            .checked_add(timeout)
            .unwrap_or_else(|| Instant::now() + Duration::from_secs(86_400));
        CancelToken {
            flag: Arc::clone(&self.flag),
            deadline: Some(match self.deadline {
                Some(existing) => existing.min(at),
                None => at,
            }),
        }
    }

    /// Fires the shared cancel flag: every clone of this token reports
    /// cancelled from now on.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True when the flag was fired or this copy's deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire) || self.deadline.is_some_and(|at| Instant::now() >= at)
    }

    /// This copy's deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// An error raised by a counting backend's execute phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// The backend returned the wrong number of counts.
    CountLength {
        /// Counts expected (the compiled candidate count).
        expected: usize,
        /// Counts actually returned.
        got: usize,
    },
    /// A kernel/launch configuration was rejected (simulated GPU backends).
    Launch(String),
    /// Any other execution failure, with a human-readable reason.
    Failed(String),
    /// The request's [`CancelToken`] fired (deadline passed or explicitly
    /// cancelled) before this level's scan started; later levels never ran.
    Cancelled,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::CountLength { expected, got } => {
                write!(f, "backend returned {got} counts for {expected} candidates")
            }
            BackendError::Launch(e) => write!(f, "kernel launch failed: {e}"),
            BackendError::Failed(e) => write!(f, "backend execution failed: {e}"),
            BackendError::Cancelled => {
                write!(
                    f,
                    "request cancelled (deadline passed) before the level scan"
                )
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// An error from a mining run: which level failed, which backend, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MineError {
    /// Episode level at which counting failed.
    pub level: usize,
    /// `Executor::name` of the failing backend.
    pub backend: String,
    /// The underlying backend error.
    pub source: BackendError,
}

impl std::fmt::Display for MineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mining failed at level {} in backend {:?}: {}",
            self.level, self.backend, self.source
        )
    }
}

impl std::error::Error for MineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// One level's counting work, as a set of borrowed views: everything a
/// backend needs to execute, nothing it could use to recompile.
///
/// The request borrows from the owning [`MiningSession`]; parallel executors
/// ship work to the session's persistent [`Pool`] by cloning the `Arc`
/// handles ([`CountRequest::compiled_shared`], [`CountRequest::stream_shared`])
/// — a refcount bump, never a buffer copy.
#[derive(Debug, Clone, Copy)]
pub struct CountRequest<'a> {
    db: &'a EventDb,
    stream: &'a Arc<[u8]>,
    compiled: &'a Arc<CompiledCandidates>,
    vertical: &'a OnceLock<Arc<OccurrenceIndex>>,
    shard_bounds: &'a [usize],
    pool: &'a PoolSlot,
    workers: usize,
    priority: Priority,
    level: usize,
}

impl<'a> CountRequest<'a> {
    /// The event database (alphabet + stream + optional timestamps).
    #[inline]
    pub fn db(&self) -> &'a EventDb {
        self.db
    }

    /// The symbol stream to scan.
    #[inline]
    pub fn stream(&self) -> &'a [u8] {
        self.stream
    }

    /// A shareable handle to the stream for `'static` pool jobs (refcount
    /// bump, not a copy).
    #[inline]
    pub fn stream_shared(&self) -> Arc<[u8]> {
        Arc::clone(self.stream)
    }

    /// The compiled candidate set (flat CSR items + symbol-anchor index).
    #[inline]
    pub fn compiled(&self) -> &'a CompiledCandidates {
        self.compiled
    }

    /// A shareable handle to the compiled set for `'static` pool jobs
    /// (refcount bump, not a copy).
    #[inline]
    pub fn compiled_shared(&self) -> Arc<CompiledCandidates> {
        Arc::clone(self.compiled)
    }

    /// Number of candidate episodes in the request.
    #[inline]
    pub fn candidates(&self) -> usize {
        self.compiled.len()
    }

    /// The per-symbol [`OccurrenceIndex`] over this session's stream
    /// snapshot, built lazily on first use and **cached on the session** —
    /// every level of the loop (and, for a [`CoSession`], every member of the
    /// co-mined batch) shares the one build. Vertical-strategy executors and
    /// the per-level dispatch rule
    /// ([`CompiledCandidates::choose_strategy`]) read it from here.
    pub fn occurrence_index(&self) -> &'a OccurrenceIndex {
        self.vertical.get_or_init(|| {
            Arc::new(OccurrenceIndex::build(
                self.db.alphabet().len(),
                self.stream,
            ))
        })
    }

    /// A shareable handle to the occurrence index for `'static` pool jobs
    /// (refcount bump, not a rebuild).
    pub fn occurrence_index_shared(&self) -> Arc<OccurrenceIndex> {
        self.occurrence_index();
        Arc::clone(self.vertical.get().expect("index initialized above"))
    }

    /// The session's database shard bounds (interior cut positions for
    /// database-parallel executors; empty when the stream is too short to
    /// shard or the session runs single-worker).
    #[inline]
    pub fn shard_bounds(&self) -> &'a [usize] {
        self.shard_bounds
    }

    /// The session's persistent worker pool — the session-owned one (spawned
    /// lazily on first use, so sequential executors never pay for idle
    /// threads), or the externally shared pool the session was built with.
    #[inline]
    pub fn pool(&self) -> &'a Pool {
        self.pool.get()
    }

    /// The session's planned worker count, without spawning the pool.
    /// Executors sizing their decomposition (chunk counts, fallback
    /// thresholds) should read this and call [`pool`] only when they actually
    /// dispatch work.
    ///
    /// [`pool`]: CountRequest::pool
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The scheduling class this request's pool jobs should run at
    /// ([`MiningSession::set_job_priority`]). Parallel executors pass it to
    /// [`Pool::map_move_prio`] so high-priority requests overtake queued
    /// normal-priority scans on a shared pool.
    #[inline]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Episode level (item count) of this request's candidates.
    #[inline]
    pub fn level(&self) -> usize {
        self.level
    }

    /// Contiguous candidate-chunk ranges for candidate-sharded executors:
    /// at most `chunks` ranges covering `0..candidates()`.
    pub fn chunk_ranges(&self, chunks: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.candidates();
        if n == 0 {
            return Vec::new();
        }
        let size = n.div_ceil(chunks.max(1));
        (0..n.div_ceil(size))
            .map(|i| i * size..((i + 1) * size).min(n))
            .collect()
    }
}

/// The execute side of the plan/execute counting API.
///
/// Implementations receive a borrowed [`CountRequest`] — compiled candidates,
/// stream, shard bounds, pool — and return one count per candidate. They must
/// not recompile or clone the candidate set; everything needed is in the
/// request.
///
/// A minimal custom executor is a dozen lines:
///
/// ```
/// use tdm_core::engine::CountScratch;
/// use tdm_core::session::{BackendError, CountRequest, Counts, Executor, MiningSession};
/// use tdm_core::{Alphabet, EventDb};
///
/// struct MyBackend(CountScratch);
///
/// impl Executor for MyBackend {
///     fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
///         // One active-set pass over the session-compiled layout; the
///         // request also offers req.pool() / req.shard_bounds() /
///         // req.chunk_ranges(n) for parallel decompositions.
///         Ok(req.compiled().count(req.stream(), &mut self.0))
///     }
///     fn name(&self) -> &str {
///         "my-backend"
///     }
/// }
///
/// let db = EventDb::from_str_symbols(&Alphabet::latin26(), &"AB".repeat(40)).unwrap();
/// let mut session = MiningSession::builder(&db).build();
/// let result = session.mine(&mut MyBackend(CountScratch::new())).unwrap();
/// assert!(result.total_frequent() > 0);
/// ```
pub trait Executor {
    /// Counts every candidate of the request.
    ///
    /// # Errors
    /// [`BackendError`] when the backend cannot execute the request (e.g. a
    /// rejected kernel launch). Length mismatches are caught by the session.
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError>;

    /// A short human-readable name (used in reports and errors).
    fn name(&self) -> &str {
        "unnamed"
    }
}

/// Builder for a [`MiningSession`].
#[derive(Debug)]
pub struct MiningSessionBuilder<'db> {
    db: DbHandle<'db>,
    config: MinerConfig,
    workers: usize,
    pool: Option<Arc<Pool>>,
}

impl<'db> MiningSessionBuilder<'db> {
    /// Sets the mining configuration (support threshold, level bound, …).
    pub fn config(mut self, config: MinerConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the worker-pool size (0 = the machine's available parallelism, or
    /// the shared pool's size when [`with_pool`] was given).
    ///
    /// With a shared pool this only tunes the session's *decomposition* —
    /// shard bounds and default chunk counts — not how many threads exist.
    ///
    /// [`with_pool`]: MiningSessionBuilder::with_pool
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches an externally owned, shared worker pool instead of letting the
    /// session spawn a private one. Every counting call of this session
    /// dispatches to `pool`; any number of concurrent sessions can share the
    /// same `Arc<Pool>` — the multi-tenant serving configuration, where one
    /// machine-sized pool serves every client.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use tdm_core::miner::{MinerConfig, SequentialBackend};
    /// use tdm_core::session::MiningSession;
    /// use tdm_core::{Alphabet, EventDb};
    /// use tdm_mapreduce::pool::Pool;
    ///
    /// let pool = Arc::new(Pool::with_workers(2));
    /// let db = Arc::new(EventDb::from_str_symbols(&Alphabet::latin26(), &"ABC".repeat(30)).unwrap());
    ///
    /// // An owned session (no borrowed lifetime) over a shared pool: what a
    /// // serving layer caches between requests.
    /// let mut session = MiningSession::builder_shared(Arc::clone(&db))
    ///     .config(MinerConfig { alpha: 0.1, ..Default::default() })
    ///     .with_pool(Arc::clone(&pool))
    ///     .build();
    /// let result = session.mine(&mut SequentialBackend::default()).unwrap();
    /// assert!(result.total_frequent() > 0);
    /// assert_eq!(session.pool().workers(), 2);
    /// ```
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Builds the session: snapshots the stream (a refcount bump on the
    /// database's own shared buffer, never a byte copy) and fixes the
    /// database shard bounds. Without [`with_pool`], the persistent pool is
    /// spawned lazily the first time an executor (or [`MiningSession::pool`])
    /// asks for it.
    ///
    /// [`with_pool`]: MiningSessionBuilder::with_pool
    pub fn build(self) -> MiningSession<'db> {
        let workers = if self.workers != 0 {
            self.workers
        } else if let Some(pool) = &self.pool {
            pool.workers()
        } else {
            default_workers()
        };
        let n = self.db.get().len();
        let shard_bounds = if workers > 1 && n >= MIN_SHARD_STREAM {
            even_bounds(n, workers)
        } else {
            Vec::new()
        };
        let stream = self.db.get().symbols_shared();
        let pool = match self.pool {
            Some(pool) => PoolSlot::Shared(pool),
            None => PoolSlot::Owned {
                workers,
                cell: OnceLock::new(),
            },
        };
        let epoch = self.db.get().epoch();
        MiningSession {
            db: self.db,
            stream,
            epoch,
            config: self.config,
            compiled: Arc::new(CompiledCandidates::default()),
            vertical: OnceLock::new(),
            shard_bounds,
            workers,
            pool,
            priority: Priority::Normal,
            cancel: None,
            compiles: 0,
        }
    }
}

/// The plan side of the counting API: owns everything that should be built
/// once and reused across the level loop — the compiled candidate layout, the
/// database shard bounds, and the persistent worker pool.
///
/// One session serves any number of executors; the compiled buffers are
/// recompiled **in place** exactly once per level (`Arc::make_mut` — workers
/// drop their handles at the end of each execute, so the steady state never
/// copies). See the [module docs](self) for the full picture.
pub struct MiningSession<'db> {
    db: DbHandle<'db>,
    stream: Arc<[u8]>,
    /// Append epoch of the database at the moment `stream` was snapshotted
    /// ([`EventDb::epoch`]); the cached occurrence index is only ever valid
    /// for this snapshot, and [`rebase`](MiningSession::rebase) refuses
    /// databases that are not append-descendants of it.
    epoch: u64,
    config: MinerConfig,
    compiled: Arc<CompiledCandidates>,
    /// Per-symbol occurrence index over `stream`, built lazily by the first
    /// vertical-strategy execute and reused for the session's whole lifetime
    /// (levels recompile, the stream never changes).
    vertical: OnceLock<Arc<OccurrenceIndex>>,
    shard_bounds: Vec<usize>,
    workers: usize,
    pool: PoolSlot,
    priority: Priority,
    /// Cooperative cancellation for the level loop; checked before each
    /// level's compile+scan. `None` (the default) never cancels.
    cancel: Option<CancelToken>,
    compiles: usize,
}

impl std::fmt::Debug for MiningSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiningSession")
            .field("db_len", &self.db.get().len())
            .field("workers", &self.workers)
            .field("compiles", &self.compiles)
            .finish()
    }
}

impl<'db> MiningSession<'db> {
    /// Starts building a session over a borrowed `db` (default config, auto
    /// workers). For a session with no borrowed lifetime — one a cache or
    /// another thread can own — see [`MiningSession::builder_shared`].
    pub fn builder(db: &'db EventDb) -> MiningSessionBuilder<'db> {
        MiningSessionBuilder {
            db: DbHandle::Borrowed(db),
            config: MinerConfig::default(),
            workers: 0,
            pool: None,
        }
    }

    /// Starts building a `MiningSession<'static>` that *shares ownership* of
    /// the database. Because nothing is borrowed, the built session can be
    /// stored, sent to another thread, or parked in a session cache between
    /// requests — the serving configuration (`tdm-serve`). Combine with
    /// [`MiningSessionBuilder::with_pool`] to run many such sessions over one
    /// machine-sized pool.
    pub fn builder_shared(db: Arc<EventDb>) -> MiningSessionBuilder<'static> {
        MiningSessionBuilder {
            db: DbHandle::Shared(db),
            config: MinerConfig::default(),
            workers: 0,
            pool: None,
        }
    }

    /// The database this session mines.
    pub fn db(&self) -> &EventDb {
        self.db.get()
    }

    /// The session's persistent worker pool (the owned one, spawned on first
    /// call, or the shared pool the session was built with).
    pub fn pool(&self) -> &Pool {
        self.pool.get()
    }

    /// The mining configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// The session's planned worker count (decomposition width: shard bounds
    /// and default chunk counts are sized to this).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Sets the scheduling class for this session's pool jobs: subsequent
    /// counting calls stamp their [`CountRequest`] with `priority`, and the
    /// parallel executors submit their scans on that lane
    /// ([`Pool::map_move_prio`]). On a *shared* pool this is how one
    /// session's request overtakes queued scans of other sessions; on a
    /// session-owned pool it is a no-op in effect (no competing jobs).
    pub fn set_job_priority(&mut self, priority: Priority) {
        self.priority = priority;
    }

    /// The scheduling class new counting calls run at.
    pub fn job_priority(&self) -> Priority {
        self.priority
    }

    /// Installs (or clears) the cooperative cancellation token the level loop
    /// checks before each level's compile+scan. A serving layer sets a fresh
    /// token per request — including `None` for requests without deadlines,
    /// so a parked, reused session never inherits a stale token.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// How many candidate sets this session has compiled — exactly one per
    /// counted level, regardless of how many executors ran against each.
    pub fn compiles(&self) -> usize {
        self.compiles
    }

    /// The current compiled candidate set (the last compiled level).
    pub fn compiled(&self) -> &CompiledCandidates {
        &self.compiled
    }

    /// The append epoch of the stream snapshot this session counts against
    /// (see [`EventDb::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-points a cached session at a **grown** database — the streaming
    /// handoff: a serving layer appends to its db, then rebases the parked
    /// session instead of rebuilding it. The stream snapshot is replaced (a
    /// refcount bump on the new buffer), shard bounds are recut for the new
    /// length, and a cached [`OccurrenceIndex`] is **extended in place** over
    /// the appended suffix ([`OccurrenceIndex::extend`]) rather than rebuilt
    /// — so the epoch-N index is never consulted against epoch-N+1 data, and
    /// never thrown away either.
    ///
    /// The session takes shared ownership of `db` (as with
    /// [`builder_shared`](MiningSession::builder_shared)).
    ///
    /// # Errors
    /// [`CoreError::StaleSnapshot`] when `db` is not an append-descendant of
    /// the session's snapshot (older epoch, or a shorter stream at the same
    /// alphabet) — the session is left untouched.
    pub fn rebase(&mut self, db: Arc<EventDb>) -> Result<(), CoreError> {
        let new_stream = rebase_snapshot(
            &db,
            self.epoch,
            &self.stream,
            &mut self.vertical,
            &mut self.shard_bounds,
            self.workers,
        )?;
        self.stream = new_stream;
        self.epoch = db.epoch();
        self.db = DbHandle::Shared(db);
        Ok(())
    }

    /// Compiles `candidates` into the session's reusable buffers (the plan
    /// step) and returns the request for the given level.
    fn plan(&mut self, level: usize, candidates: &[Episode]) -> CountRequest<'_> {
        guard_vertical_cache(&mut self.vertical, self.stream.len());
        let alphabet_len = self.db.get().alphabet().len();
        Arc::make_mut(&mut self.compiled).recompile(alphabet_len, candidates);
        self.compiles += 1;
        CountRequest {
            db: self.db.get(),
            stream: &self.stream,
            compiled: &self.compiled,
            vertical: &self.vertical,
            shard_bounds: &self.shard_bounds,
            pool: &self.pool,
            workers: self.workers,
            priority: self.priority,
            level,
        }
    }

    /// The plan step alone: compiles `candidates` into the session's reusable
    /// buffers and returns the borrowed request, so callers can run *many*
    /// executes against one compile (benchmarks, backend comparisons,
    /// serving). [`count_candidates`] is the plan+execute convenience.
    ///
    /// [`count_candidates`]: MiningSession::count_candidates
    pub fn plan_candidates(&mut self, candidates: &[Episode]) -> CountRequest<'_> {
        let level = candidates.iter().map(|e| e.level()).max().unwrap_or(1);
        self.plan(level, candidates)
    }

    /// Compiles `candidates` once and executes `executor` against them.
    ///
    /// # Errors
    /// [`MineError`] when the executor fails or returns the wrong number of
    /// counts.
    pub fn count_candidates<E: Executor + ?Sized>(
        &mut self,
        candidates: &[Episode],
        executor: &mut E,
    ) -> Result<Counts, MineError> {
        let level = candidates.iter().map(|e| e.level()).max().unwrap_or(1);
        self.count_level(level, candidates, executor)
    }

    fn count_level<E: Executor + ?Sized>(
        &mut self,
        level: usize,
        candidates: &[Episode],
        executor: &mut E,
    ) -> Result<Counts, MineError> {
        let req = self.plan(level, candidates);
        let counts = executor.execute(&req).map_err(|source| MineError {
            level,
            backend: executor.name().to_string(),
            source,
        })?;
        if counts.len() != candidates.len() {
            return Err(MineError {
                level,
                backend: executor.name().to_string(),
                source: BackendError::CountLength {
                    expected: candidates.len(),
                    got: counts.len(),
                },
            });
        }
        Ok(counts)
    }

    /// Runs the full level-wise mining loop (paper Algorithm 1) with
    /// `executor` as the counting step.
    ///
    /// # Errors
    /// [`MineError`] from the first failing level.
    pub fn mine<E: Executor + ?Sized>(
        &mut self,
        executor: &mut E,
    ) -> Result<MiningResult, MineError> {
        self.mine_with(executor, |_| {})
    }

    /// Like [`mine`], but invokes `on_level` with each level's result as
    /// soon as that level's elimination step finishes — the streaming hook
    /// serving use-cases want (emit level-1 frequent episodes while level 2
    /// counts).
    ///
    /// # Errors
    /// [`MineError`] from the first failing level.
    ///
    /// [`mine`]: MiningSession::mine
    pub fn mine_with<E: Executor + ?Sized>(
        &mut self,
        executor: &mut E,
        mut on_level: impl FnMut(&LevelResult),
    ) -> Result<MiningResult, MineError> {
        let n = self.db.get().len();
        let mut result = MiningResult {
            levels: Vec::new(),
            db_len: n,
        };
        let mut candidates = level1(self.db.get().alphabet());
        let mut level = 1usize;
        while !candidates.is_empty() {
            if let Some(maxl) = self.config.max_level {
                if level > maxl {
                    break;
                }
            }
            // Cooperative cancellation: an abandoned request (deadline passed,
            // client gone) stops here, before compiling or scanning the next
            // level — completed levels are simply discarded with the error.
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Err(MineError {
                    level,
                    backend: executor.name().to_string(),
                    source: BackendError::Cancelled,
                });
            }
            let counts = self.count_level(level, &candidates, executor)?;
            let frequent: Vec<(Episode, u64)> = candidates
                .iter()
                .cloned()
                .zip(counts.iter().copied())
                .filter(|(_, c)| support(*c, n) > self.config.alpha)
                .collect();
            let next_seed: Vec<Episode> = frequent.iter().map(|(e, _)| e.clone()).collect();
            let level_result = LevelResult {
                level,
                candidates: candidates.len(),
                frequent,
            };
            on_level(&level_result);
            result.levels.push(level_result);
            if next_seed.is_empty() {
                break;
            }
            candidates = apriori_join(&next_seed, self.config.distinct_items_only);
            level += 1;
        }
        Ok(result)
    }
}

/// The shared rebase step for [`MiningSession::rebase`] and
/// [`CoSession::rebase`]: validates that `db` descends from the session's
/// snapshot by appends, extends the cached occurrence index over the new
/// suffix, recuts the shard bounds, and returns the new snapshot.
fn rebase_snapshot(
    db: &EventDb,
    epoch: u64,
    stream: &Arc<[u8]>,
    vertical: &mut OnceLock<Arc<OccurrenceIndex>>,
    shard_bounds: &mut Vec<usize>,
    workers: usize,
) -> Result<Arc<[u8]>, CoreError> {
    if db.epoch() < epoch || db.len() < stream.len() {
        return Err(CoreError::StaleSnapshot {
            session_epoch: epoch,
            db_epoch: db.epoch(),
        });
    }
    let new_stream = db.symbols_shared();
    debug_assert_eq!(
        &new_stream[..stream.len()],
        &stream[..],
        "rebase target must be an append-descendant of the session snapshot"
    );
    if let Some(mut index) = vertical.take() {
        Arc::make_mut(&mut index).extend(&new_stream[stream.len()..]);
        let _ = vertical.set(index);
    }
    let n = new_stream.len();
    *shard_bounds = if workers > 1 && n >= MIN_SHARD_STREAM {
        even_bounds(n, workers)
    } else {
        Vec::new()
    };
    Ok(new_stream)
}

/// The plan-time epoch guard on the lazily cached occurrence index: an
/// append-only stream never changes in place, so a cached index describes the
/// current snapshot iff their lengths agree. A mismatch (a caller swapped the
/// snapshot without going through [`rebase_snapshot`]) drops the cache; the
/// next vertical execute transparently rebuilds it — an epoch-N index is
/// never consulted against epoch-N+1 data.
fn guard_vertical_cache(vertical: &mut OnceLock<Arc<OccurrenceIndex>>, stream_len: usize) {
    if vertical
        .get()
        .is_some_and(|ix| ix.stream_len() != stream_len)
    {
        vertical.take();
    }
}

/// Builder for a [`CoSession`]. Obtained from [`CoSession::builder`]; add one
/// [`config`](CoSessionBuilder::config) per member request, then
/// [`build`](CoSessionBuilder::build).
#[derive(Debug)]
pub struct CoSessionBuilder {
    db: Arc<EventDb>,
    configs: Vec<MinerConfig>,
    workers: usize,
    pool: Option<Arc<Pool>>,
}

impl CoSessionBuilder {
    /// Adds one member: a mining configuration to co-mine alongside the
    /// others. Member results come back in the order configs were added.
    pub fn config(mut self, config: MinerConfig) -> Self {
        self.configs.push(config);
        self
    }

    /// Adds several members at once (see [`config`](CoSessionBuilder::config)).
    pub fn configs(mut self, configs: impl IntoIterator<Item = MinerConfig>) -> Self {
        self.configs.extend(configs);
        self
    }

    /// Sets the decomposition width (0 = the machine's available parallelism,
    /// or the shared pool's size when [`with_pool`] was given) — same
    /// semantics as [`MiningSessionBuilder::workers`].
    ///
    /// [`with_pool`]: CoSessionBuilder::with_pool
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches an externally owned shared worker pool — the serving
    /// configuration, where every batch's union scans multiplex over the one
    /// machine-sized pool (same semantics as
    /// [`MiningSessionBuilder::with_pool`]).
    pub fn with_pool(mut self, pool: Arc<Pool>) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Builds the group session: snapshots the stream **once** for every
    /// member (a refcount bump on the database's shared buffer) and fixes the
    /// shard bounds, exactly like a solo session — K members cost one
    /// snapshot, not K.
    pub fn build(self) -> CoSession {
        let workers = if self.workers != 0 {
            self.workers
        } else if let Some(pool) = &self.pool {
            pool.workers()
        } else {
            default_workers()
        };
        let n = self.db.len();
        let shard_bounds = if workers > 1 && n >= MIN_SHARD_STREAM {
            even_bounds(n, workers)
        } else {
            Vec::new()
        };
        let stream = self.db.symbols_shared();
        let pool = match self.pool {
            Some(pool) => PoolSlot::Shared(pool),
            None => PoolSlot::Owned {
                workers,
                cell: OnceLock::new(),
            },
        };
        let epoch = self.db.epoch();
        CoSession {
            db: self.db,
            stream,
            epoch,
            configs: self.configs,
            union: CandidateUnion::default(),
            compiled: Arc::new(CompiledCandidates::default()),
            vertical: OnceLock::new(),
            shard_bounds,
            workers,
            pool,
            priority: Priority::Normal,
            cancel: None,
            compiles: 0,
        }
    }
}

/// Plan equality for [`CoSession::member_permutation`]: exact `alpha` bit
/// pattern (a cached plan must only answer requests with the *identical*
/// threshold, not an approximately equal one), plus level bound and
/// generation rule.
fn same_plan(a: &MinerConfig, b: &MinerConfig) -> bool {
    a.alpha.to_bits() == b.alpha.to_bits()
        && a.max_level == b.max_level
        && a.distinct_items_only == b.distinct_items_only
}

/// Per-member progress inside [`CoSession::co_mine`].
struct CoMember {
    candidates: Vec<Episode>,
    result: MiningResult,
    active: bool,
}

/// A **co-mining** session: the group-planning side of cross-request
/// co-mining (Mayura-style). One database, one stream snapshot, one worker
/// pool — and *K* mining configurations whose level loops advance in
/// lockstep. At each level the members' candidate sets are merged into one
/// deduplicated [`CandidateUnion`], compiled once into the session's reusable
/// buffers, and counted with a **single** executor scan; the union counts are
/// then demultiplexed back into each member's own candidate ordering for its
/// elimination step. K concurrent requests over one database cost ~1 scan per
/// level instead of K.
///
/// Results are **bit-identical** to mining each configuration serially with
/// its own [`MiningSession`] (or [`crate::miner::Miner`]): the engine's count
/// of an episode never depends on what else is compiled alongside it, so
/// demuxed union counts equal solo counts — the workspace differential suite
/// (`tests/comining.rs`) proves this under adversarial overlap.
///
/// ```
/// use std::sync::Arc;
/// use tdm_core::miner::{Miner, MinerConfig, SequentialBackend};
/// use tdm_core::session::CoSession;
/// use tdm_core::{Alphabet, EventDb};
///
/// let db = Arc::new(EventDb::from_str_symbols(&Alphabet::latin26(), &"ABCD".repeat(60)).unwrap());
/// let fast = MinerConfig { alpha: 0.01, max_level: Some(2), ..Default::default() };
/// let deep = MinerConfig { alpha: 0.001, max_level: Some(3), ..Default::default() };
///
/// // Two configurations, one shared scan per level.
/// let mut group = CoSession::builder(Arc::clone(&db)).config(fast).config(deep).build();
/// let results = group.co_mine(&mut SequentialBackend::default()).unwrap();
///
/// // Bit-identical to mining each request on its own.
/// for (cfg, got) in [fast, deep].into_iter().zip(&results) {
///     let solo = Miner::new(cfg).mine(&db, &mut SequentialBackend::default()).unwrap();
///     assert_eq!(*got, solo);
/// }
/// // Three levels deep at most, and exactly one union compile+scan per level.
/// assert_eq!(group.compiles(), results.iter().map(|r| r.levels.len()).max().unwrap());
/// ```
pub struct CoSession {
    db: Arc<EventDb>,
    stream: Arc<[u8]>,
    /// Append epoch of `db` when `stream` was snapshotted — the epoch the
    /// cached occurrence index is valid for (see [`MiningSession::epoch`]).
    epoch: u64,
    configs: Vec<MinerConfig>,
    union: CandidateUnion,
    compiled: Arc<CompiledCandidates>,
    /// Per-symbol occurrence index over the batch's one stream snapshot —
    /// built at most once for the whole co-mined batch, however many members
    /// and levels ride it.
    vertical: OnceLock<Arc<OccurrenceIndex>>,
    shard_bounds: Vec<usize>,
    workers: usize,
    pool: PoolSlot,
    priority: Priority,
    /// Cooperative cancellation for the lockstep loop; checked before each
    /// union compile+scan. `None` (the default) never cancels.
    cancel: Option<CancelToken>,
    compiles: usize,
}

impl std::fmt::Debug for CoSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoSession")
            .field("db_len", &self.db.len())
            .field("members", &self.configs.len())
            .field("workers", &self.workers)
            .field("compiles", &self.compiles)
            .finish()
    }
}

impl CoSession {
    /// Starts building a co-mining session over a shared database handle.
    /// Like [`MiningSession::builder_shared`], the built session owns no
    /// borrow, so a serving layer can assemble one per batch and run it
    /// anywhere.
    pub fn builder(db: Arc<EventDb>) -> CoSessionBuilder {
        CoSessionBuilder {
            db,
            configs: Vec::new(),
            workers: 0,
            pool: None,
        }
    }

    /// The database this group mines.
    pub fn db(&self) -> &EventDb {
        &self.db
    }

    /// The member configurations, in result order.
    pub fn configs(&self) -> &[MinerConfig] {
        &self.configs
    }

    /// Number of member requests in the group.
    pub fn members(&self) -> usize {
        self.configs.len()
    }

    /// The session's planned worker count (decomposition width).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The session's worker pool (owned-lazy or shared; see
    /// [`MiningSession::pool`]).
    pub fn pool(&self) -> &Pool {
        self.pool.get()
    }

    /// Sets the scheduling class the union scans run at (see
    /// [`MiningSession::set_job_priority`]). A batch typically runs at the
    /// *highest* class among its members, so fusing never deprioritizes
    /// anyone's work.
    pub fn set_job_priority(&mut self, priority: Priority) {
        self.priority = priority;
    }

    /// The scheduling class union scans run at.
    pub fn job_priority(&self) -> Priority {
        self.priority
    }

    /// Installs (or clears) the cooperative cancellation token the lockstep
    /// loop checks before each union compile+scan (see
    /// [`MiningSession::set_cancel_token`]). Cancelling fails the whole
    /// batch — every member shares the union scan, so every member shares the
    /// cancellation.
    pub fn set_cancel_token(&mut self, token: Option<CancelToken>) {
        self.cancel = token;
    }

    /// The installed cancellation token, if any.
    pub fn cancel_token(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// How many union candidate sets this session has compiled — exactly one
    /// per counted level (the number of shared scans issued), regardless of
    /// how many members rode each. Accumulates across [`co_mine`] calls when
    /// the session is reused (e.g. parked in a serving cache).
    ///
    /// [`co_mine`]: CoSession::co_mine
    pub fn compiles(&self) -> usize {
        self.compiles
    }

    /// The append epoch of the stream snapshot this group counts against
    /// (see [`EventDb::epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Re-points a parked group session at a grown database — the co-mining
    /// form of [`MiningSession::rebase`]: the cached batch plan (and a cached
    /// occurrence index, extended in place) survives the append, so a serving
    /// cache keyed by config fingerprint can reuse the session across stream
    /// epochs.
    ///
    /// # Errors
    /// [`CoreError::StaleSnapshot`] when `db` is not an append-descendant of
    /// the session's snapshot — the session is left untouched.
    pub fn rebase(&mut self, db: Arc<EventDb>) -> Result<(), CoreError> {
        let new_stream = rebase_snapshot(
            &db,
            self.epoch,
            &self.stream,
            &mut self.vertical,
            &mut self.shard_bounds,
            self.workers,
        )?;
        self.stream = new_stream;
        self.epoch = db.epoch();
        self.db = db;
        Ok(())
    }

    /// Maps each requested config to a **distinct** member of this session (a
    /// multiset matching): `perm[i]` is the member index whose result answers
    /// request `i`. Returns `None` unless the requested configs are exactly
    /// this session's members (same multiset, any order).
    ///
    /// This is what lets a serving layer park a `CoSession` in a cache keyed
    /// by its *sorted* config-set fingerprint and reuse it for a batch whose
    /// members arrived in a different order: [`co_mine`] rebuilds per-member
    /// state from `configs` on every call, so a reused session re-mines
    /// correctly — callers only need this permutation to route each member's
    /// result back to the right requester.
    ///
    /// [`co_mine`]: CoSession::co_mine
    pub fn member_permutation(&self, configs: &[MinerConfig]) -> Option<Vec<usize>> {
        if configs.len() != self.configs.len() {
            return None;
        }
        let mut used = vec![false; self.configs.len()];
        let mut perm = Vec::with_capacity(configs.len());
        for want in configs {
            let j =
                (0..self.configs.len()).find(|&j| !used[j] && same_plan(&self.configs[j], want))?;
            used[j] = true;
            perm.push(j);
        }
        Some(perm)
    }

    /// Runs every member's level-wise mining loop in lockstep, issuing **one**
    /// union scan per level. Returns one [`MiningResult`] per member, in the
    /// order their configs were added — each bit-identical to a solo run of
    /// that config.
    ///
    /// # Errors
    /// [`MineError`] from the first failing union scan (the whole batch shares
    /// the scan, so the whole batch shares the failure).
    pub fn co_mine<E: Executor + ?Sized>(
        &mut self,
        executor: &mut E,
    ) -> Result<Vec<MiningResult>, MineError> {
        guard_vertical_cache(&mut self.vertical, self.stream.len());
        let n = self.db.len();
        let alphabet_len = self.db.alphabet().len();
        let mut members: Vec<CoMember> = self
            .configs
            .iter()
            .map(|_| CoMember {
                candidates: level1(self.db.alphabet()),
                result: MiningResult {
                    levels: Vec::new(),
                    db_len: n,
                },
                active: true,
            })
            .collect();
        let mut level = 1usize;
        loop {
            // Retire members that are out of candidates or past their level
            // bound — the same exits the solo loop takes before counting.
            for (m, cfg) in members.iter_mut().zip(&self.configs) {
                if m.active
                    && (m.candidates.is_empty() || cfg.max_level.is_some_and(|maxl| level > maxl))
                {
                    m.active = false;
                }
            }
            let sets: Vec<&[Episode]> = members
                .iter()
                .filter(|m| m.active)
                .map(|m| m.candidates.as_slice())
                .collect();
            if sets.is_empty() {
                break;
            }
            // Cooperative cancellation, before the union compile+scan (the
            // same seam as the solo loop's check).
            if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                return Err(MineError {
                    level,
                    backend: executor.name().to_string(),
                    source: BackendError::Cancelled,
                });
            }

            // Plan: one union, one in-place compile — however many members.
            self.union.rebuild(&sets);
            Arc::make_mut(&mut self.compiled).recompile(alphabet_len, self.union.episodes());
            self.compiles += 1;
            let req = CountRequest {
                db: &self.db,
                stream: &self.stream,
                compiled: &self.compiled,
                vertical: &self.vertical,
                shard_bounds: &self.shard_bounds,
                pool: &self.pool,
                workers: self.workers,
                priority: self.priority,
                level,
            };

            // Execute: the single shared scan of this level.
            let union_counts = executor.execute(&req).map_err(|source| MineError {
                level,
                backend: executor.name().to_string(),
                source,
            })?;
            if union_counts.len() != self.union.len() {
                return Err(MineError {
                    level,
                    backend: executor.name().to_string(),
                    source: BackendError::CountLength {
                        expected: self.union.len(),
                        got: union_counts.len(),
                    },
                });
            }

            // Demux + per-member elimination and generation.
            let mut slot = 0usize;
            for (m, cfg) in members.iter_mut().zip(&self.configs) {
                if !m.active {
                    continue;
                }
                let counts = self.union.demux(slot, &union_counts);
                slot += 1;
                let frequent: Vec<(Episode, u64)> = m
                    .candidates
                    .iter()
                    .cloned()
                    .zip(counts.iter().copied())
                    .filter(|(_, c)| support(*c, n) > cfg.alpha)
                    .collect();
                let next_seed: Vec<Episode> = frequent.iter().map(|(e, _)| e.clone()).collect();
                m.result.levels.push(LevelResult {
                    level,
                    candidates: m.candidates.len(),
                    frequent,
                });
                if next_seed.is_empty() {
                    m.active = false;
                    m.candidates.clear();
                } else {
                    m.candidates = apriori_join(&next_seed, cfg.distinct_items_only);
                }
            }
            level += 1;
        }
        Ok(members.into_iter().map(|m| m.result).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Alphabet;

    /// Counts executes so tests can prove which levels ran.
    struct SpyBackend {
        executes: usize,
    }

    impl Executor for SpyBackend {
        fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
            self.executes += 1;
            Ok(req
                .compiled()
                .count(req.stream(), &mut crate::engine::CountScratch::new()))
        }
        fn name(&self) -> &str {
            "spy"
        }
    }

    fn db() -> EventDb {
        EventDb::from_str_symbols(&Alphabet::latin26(), &"ABCABC".repeat(30)).unwrap()
    }

    #[test]
    fn pre_cancelled_token_stops_before_the_first_scan() {
        let db = db();
        let mut session = MiningSession::builder(&db).build();
        let token = CancelToken::new();
        token.cancel();
        session.set_cancel_token(Some(token));
        let mut spy = SpyBackend { executes: 0 };
        let err = session.mine(&mut spy).unwrap_err();
        assert_eq!(err.level, 1);
        assert_eq!(err.source, BackendError::Cancelled);
        assert_eq!(spy.executes, 0, "no level may scan after cancellation");
        assert_eq!(session.compiles(), 0);
    }

    #[test]
    fn cancelling_between_levels_stops_the_loop_mid_way() {
        let db = db();
        let mut session = MiningSession::builder(&db)
            .config(MinerConfig {
                alpha: 0.0001,
                ..Default::default()
            })
            .build();
        let token = CancelToken::new();
        session.set_cancel_token(Some(token.clone()));
        let mut spy = SpyBackend { executes: 0 };
        // Fire the shared flag from the per-level hook: level 1 completes,
        // level 2 must never execute.
        let err = session
            .mine_with(&mut spy, |lr| {
                if lr.level == 1 {
                    token.cancel();
                }
            })
            .unwrap_err();
        assert_eq!(err.level, 2);
        assert_eq!(err.source, BackendError::Cancelled);
        assert_eq!(spy.executes, 1, "only level 1 may have scanned");
    }

    #[test]
    fn expired_deadline_cancels_and_clearing_the_token_recovers() {
        let db = db();
        let mut session = MiningSession::builder(&db).build();
        session.set_cancel_token(Some(CancelToken::new().deadline_within(Duration::ZERO)));
        let err = session.mine(&mut SpyBackend { executes: 0 }).unwrap_err();
        assert_eq!(err.source, BackendError::Cancelled);
        // The session is not poisoned: clearing the token mines normally.
        session.set_cancel_token(None);
        let result = session.mine(&mut SpyBackend { executes: 0 }).unwrap();
        assert!(result.total_frequent() > 0);
    }

    #[test]
    fn deadline_within_tightens_but_never_loosens() {
        let tight = CancelToken::new().deadline_within(Duration::ZERO);
        let still_tight = tight.deadline_within(Duration::from_secs(3600));
        assert!(
            still_tight.is_cancelled(),
            "a later deadline must not loosen"
        );
        let loose = CancelToken::new().deadline_within(Duration::from_secs(3600));
        assert!(!loose.is_cancelled());
        assert!(loose.deadline().is_some());
    }

    #[test]
    fn co_session_cancellation_fails_the_whole_batch() {
        let shared = Arc::new(db());
        let fast = MinerConfig {
            alpha: 0.01,
            max_level: Some(2),
            ..Default::default()
        };
        let deep = MinerConfig {
            alpha: 0.001,
            max_level: Some(3),
            ..Default::default()
        };
        let mut group = CoSession::builder(Arc::clone(&shared))
            .config(fast)
            .config(deep)
            .build();
        let token = CancelToken::new();
        token.cancel();
        group.set_cancel_token(Some(token));
        let mut spy = SpyBackend { executes: 0 };
        let err = group.co_mine(&mut spy).unwrap_err();
        assert_eq!(err.source, BackendError::Cancelled);
        assert_eq!(spy.executes, 0);
        // Clearing recovers the parked batch plan.
        group.set_cancel_token(None);
        let results = group.co_mine(&mut spy).unwrap();
        assert_eq!(results.len(), 2);
    }
}
