//! Symbols and alphabets.
//!
//! The paper's evaluation uses the 26 upper-case Latin letters as its item alphabet
//! (paper §5). This module generalizes that to any alphabet of up to 256 named
//! symbols so that other event sources (neuron ids, market-basket products) can be
//! mapped onto the same mining machinery.

use crate::{CoreError, Result};
use serde::{Deserialize, Serialize};

/// A single item (event type) in an [`Alphabet`], stored as a compact `u8` id.
///
/// The compact representation matters: the mining kernels stream millions of
/// symbols, and one byte per event is what the paper's GPU kernels used for their
/// letter database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(pub u8);

impl Symbol {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u8> for Symbol {
    fn from(v: u8) -> Self {
        Symbol(v)
    }
}

/// A finite, ordered set of named symbols (at most 256).
///
/// Symbol ids are dense: `0..len()`. Names are unique.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alphabet {
    names: Vec<String>,
}

impl Alphabet {
    /// Builds an alphabet from unique symbol names.
    ///
    /// # Errors
    /// Returns [`CoreError::AlphabetTooLarge`] for more than 256 names.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Result<Self> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.len() > 256 {
            return Err(CoreError::AlphabetTooLarge(names.len()));
        }
        Ok(Alphabet { names })
    }

    /// The paper's alphabet: the 26 upper-case Latin letters `A..=Z`.
    pub fn latin26() -> Self {
        Alphabet {
            names: (b'A'..=b'Z').map(|c| (c as char).to_string()).collect(),
        }
    }

    /// An alphabet of `n` numbered symbols `s0..s{n-1}` (useful for neuron ids).
    ///
    /// # Errors
    /// Returns [`CoreError::AlphabetTooLarge`] when `n > 256`.
    pub fn numbered(n: usize) -> Result<Self> {
        if n > 256 {
            return Err(CoreError::AlphabetTooLarge(n));
        }
        Ok(Alphabet {
            names: (0..n).map(|i| format!("s{i}")).collect(),
        })
    }

    /// Number of symbols.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the alphabet has no symbols.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All symbols in id order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len() as u16).map(|i| Symbol(i as u8))
    }

    /// The name of a symbol.
    ///
    /// # Panics
    /// Panics when the symbol id is outside the alphabet (programming error).
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.index()]
    }

    /// Looks a symbol up by name.
    ///
    /// # Errors
    /// Returns [`CoreError::UnknownSymbol`] when absent.
    pub fn symbol(&self, name: &str) -> Result<Symbol> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Symbol(i as u8))
            .ok_or_else(|| CoreError::UnknownSymbol(name.to_string()))
    }

    /// Validates that a raw id belongs to this alphabet.
    ///
    /// # Errors
    /// Returns [`CoreError::SymbolOutOfRange`] otherwise.
    pub fn check(&self, id: u8) -> Result<Symbol> {
        if (id as usize) < self.names.len() {
            Ok(Symbol(id))
        } else {
            Err(CoreError::SymbolOutOfRange {
                id,
                alphabet: self.names.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latin26_has_26_letters_in_order() {
        let ab = Alphabet::latin26();
        assert_eq!(ab.len(), 26);
        assert_eq!(ab.name(Symbol(0)), "A");
        assert_eq!(ab.name(Symbol(25)), "Z");
        assert_eq!(ab.symbol("Q").unwrap(), Symbol(16));
    }

    #[test]
    fn numbered_alphabet_round_trips() {
        let ab = Alphabet::numbered(100).unwrap();
        assert_eq!(ab.len(), 100);
        assert_eq!(ab.symbol("s42").unwrap(), Symbol(42));
        assert_eq!(ab.name(Symbol(99)), "s99");
    }

    #[test]
    fn oversized_alphabet_rejected() {
        assert!(matches!(
            Alphabet::numbered(257),
            Err(CoreError::AlphabetTooLarge(257))
        ));
    }

    #[test]
    fn unknown_symbol_rejected() {
        let ab = Alphabet::latin26();
        assert!(matches!(
            ab.symbol("nope"),
            Err(CoreError::UnknownSymbol(_))
        ));
        assert!(matches!(
            ab.check(26),
            Err(CoreError::SymbolOutOfRange { id: 26, .. })
        ));
        assert_eq!(ab.check(25).unwrap(), Symbol(25));
    }

    #[test]
    fn symbols_iterator_is_dense() {
        let ab = Alphabet::numbered(7).unwrap();
        let ids: Vec<u8> = ab.symbols().map(|s| s.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn full_256_symbol_alphabet_is_allowed() {
        let ab = Alphabet::numbered(256).unwrap();
        assert_eq!(ab.len(), 256);
        assert_eq!(ab.check(255).unwrap(), Symbol(255));
    }
}
