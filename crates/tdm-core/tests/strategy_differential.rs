//! Differential suite: the two new counting strategies — vertical
//! occurrence-list probing ([`CompiledCandidates::count_vertical`]) and
//! word-packed Shift-And advancement ([`BitmaskNfa`]) — pitted against a
//! **frozen copy of the seed scanner's active-set counter**, byte-for-byte
//! the implementation the benchmark baselines against. Every strategy, every
//! dispatch path, and every parallel decomposition must be bit-identical to
//! that reference on adversarial inputs:
//!
//! * repeated-item episodes (greedy-FSM ≠ substring counting: "AAB" over
//!   "AAAB" counts 0, not 1);
//! * absent symbols (empty occurrence lists, dead bitmask lanes);
//! * shard boundaries straddling partial matches;
//! * a single-symbol alphabet;
//! * worker counts 1..=8 through real [`MiningSession`]s;
//! * [`CandidateUnion`] demultiplexing over the new strategies.

use proptest::prelude::*;
use tdm_core::engine::{BitmaskNfa, CandidateUnion, CompiledCandidates, OccurrenceIndex};
use tdm_core::miner::AutoBackend;
use tdm_core::segment::even_bounds;
use tdm_core::session::MiningSession;
use tdm_core::{Alphabet, Episode, EventDb};

/// The seed repository's multi-episode active-set counter, frozen verbatim
/// (modulo operating on a raw stream instead of an `EventDb`). This is the
/// reference implementation `tdm-bench` times as `seed-active-set`; the whole
/// point of the suite is that it is *independent* of the engine under test.
fn seed_count_episodes(alphabet_len: usize, stream: &[u8], episodes: &[Episode]) -> Vec<u64> {
    let n_eps = episodes.len();
    let mut counts = vec![0u64; n_eps];
    if n_eps == 0 || stream.is_empty() {
        return counts;
    }
    let items: Vec<&[u8]> = episodes.iter().map(|e| e.items()).collect();
    let mut state = vec![0u8; n_eps];
    let mut last_step = vec![u64::MAX; n_eps];
    let mut by_first: Vec<Vec<u32>> = vec![Vec::new(); alphabet_len];
    for (i, it) in items.iter().enumerate() {
        by_first[it[0] as usize].push(i as u32);
    }
    let mut active: Vec<u32> = Vec::new();
    let mut next_active: Vec<u32> = Vec::new();
    for (pos, &c) in stream.iter().enumerate() {
        let pos = pos as u64;
        for &ei in &active {
            let e = ei as usize;
            let it = items[e];
            let j = state[e] as usize;
            last_step[e] = pos;
            if c == it[j] {
                if j + 1 == it.len() {
                    counts[e] += 1;
                    state[e] = 0;
                } else {
                    state[e] += 1;
                    next_active.push(ei);
                }
            } else if c == it[0] {
                state[e] = 1;
                next_active.push(ei);
            } else {
                state[e] = 0;
            }
        }
        std::mem::swap(&mut active, &mut next_active);
        next_active.clear();
        for &ei in &by_first[c as usize] {
            let e = ei as usize;
            if state[e] == 0 && last_step[e] != pos {
                if items[e].len() == 1 {
                    counts[e] += 1;
                } else {
                    state[e] = 1;
                    active.push(ei);
                }
            }
        }
    }
    counts
}

/// Builds episodes from letter strings, mapping `'A'..` onto symbol ids
/// `0..` so small synthetic alphabets index correctly.
fn episodes_of(items: &[&[u8]]) -> Vec<Episode> {
    items
        .iter()
        .map(|it| Episode::new(it.iter().map(|c| c - b'A').collect()).expect("non-empty episode"))
        .collect()
}

/// A letter-string stream as symbol ids (`'A'..` onto `0..`).
fn stream_of(s: &[u8]) -> Vec<u8> {
    s.iter().map(|c| c - b'A').collect()
}

/// Runs every strategy over the same input and asserts each one matches the
/// frozen seed counter exactly.
fn assert_all_strategies_match(alphabet_len: usize, stream: &[u8], episodes: &[Episode]) {
    let reference = seed_count_episodes(alphabet_len, stream, episodes);
    let compiled = CompiledCandidates::compile(alphabet_len, episodes);
    let index = OccurrenceIndex::build(alphabet_len.max(1), stream);

    let vertical = compiled.count_vertical(stream, &index);
    assert_eq!(vertical, reference, "vertical vs seed");

    if let Some(nfa) = BitmaskNfa::build(&compiled) {
        let bitmask = nfa.count(stream);
        assert_eq!(bitmask, reference, "bitmask vs seed");
    }

    let dispatched = compiled.count_best_with_index(stream, &index);
    assert_eq!(dispatched, reference, "dispatch vs seed");
}

// ---------------------------------------------------------------------------
// Deterministic adversarial cases
// ---------------------------------------------------------------------------

#[test]
fn repeated_item_episodes_follow_fsm_not_substring_semantics() {
    // "AAB" over "AAAB": the greedy FSM is at state 2 ("AA" matched) when the
    // third 'A' arrives; advance fails, restart puts it at state 1, and the
    // final 'B' finds it mid-prefix — count 0. Substring counting would say 1.
    let episodes = episodes_of(&[b"AAB", b"AA", b"ABA", b"AAAB"]);
    assert_all_strategies_match(2, &stream_of(b"AAAB"), &episodes);
    assert_all_strategies_match(2, &stream_of(b"AABAABAA"), &episodes);
    assert_all_strategies_match(2, &stream_of(b"AAAAAAAA"), &episodes);
}

#[test]
fn single_symbol_alphabet() {
    let episodes = episodes_of(&[b"A", b"AA", b"AAA", b"AAAAA"]);
    for n in 0..12 {
        let stream = vec![0u8; n];
        assert_all_strategies_match(1, &stream, &episodes);
    }
}

#[test]
fn absent_symbols_give_empty_lists_and_dead_lanes() {
    // Episodes over a 26-symbol alphabet, stream drawn from 3 of them: most
    // occurrence lists are empty and most bitmask lanes can never fire.
    let episodes = episodes_of(&[b"AB", b"XY", b"BZ", b"Z", b"ABC"]);
    assert_all_strategies_match(26, &stream_of(b"ABCABCCBA"), &episodes);
}

#[test]
fn shard_boundaries_straddling_partial_matches_merge_exactly() {
    // "ABC" matches straddle every cut of this stream somewhere; sweep all
    // worker counts and all single-cut positions.
    let ab = Alphabet::latin26();
    let stream: Vec<u8> = "ABCABZQXABCABCAB"
        .repeat(8)
        .bytes()
        .map(|c| c - b'A')
        .collect();
    let episodes: Vec<Episode> = ["ABC", "AB", "BC", "CA", "ZQ", "ABCA", "AA"]
        .iter()
        .map(|s| Episode::from_str(&ab, s).unwrap())
        .collect();
    let reference = seed_count_episodes(ab.len(), &stream, &episodes);
    let compiled = CompiledCandidates::compile(ab.len(), &episodes);
    let nfa = BitmaskNfa::build(&compiled).expect("levels fit in 64-bit lanes");

    for workers in 1..=8 {
        let bounds = even_bounds(stream.len(), workers);
        let shards: Vec<(Vec<u64>, Vec<u8>)> =
            tdm_core::segment::segment_ranges(stream.len(), &bounds)
                .into_iter()
                .map(|r| nfa.shard_scan(&stream, r))
                .collect();
        let merged = compiled.merge_shard_counts(&stream, &bounds, &shards);
        assert_eq!(merged, reference, "bitmask sharded over {workers} workers");
    }
    // Every single-cut position, including cuts inside a partial "ABCA" match.
    for cut in 1..stream.len() {
        let bounds = [cut];
        let shards = vec![
            nfa.shard_scan(&stream, 0..cut),
            nfa.shard_scan(&stream, cut..stream.len()),
        ];
        let merged = compiled.merge_shard_counts(&stream, &bounds, &shards);
        assert_eq!(merged, reference, "bitmask cut at {cut}");
    }
}

#[test]
fn sessions_dispatch_identically_for_workers_1_through_8() {
    let ab = Alphabet::latin26();
    let db = EventDb::from_str_symbols(&ab, &"ABCABZQXABCAACAB".repeat(64)).unwrap();
    let episodes: Vec<Episode> = ["A", "AB", "ABC", "AAC", "QXA", "ZZZ", "CABA"]
        .iter()
        .map(|s| Episode::from_str(&ab, s).unwrap())
        .collect();
    let reference = seed_count_episodes(ab.len(), db.symbols(), &episodes);
    for workers in 1..=8 {
        let mut session = MiningSession::builder(&db).workers(workers).build();
        let counts = session
            .count_candidates(&episodes, &mut AutoBackend)
            .expect("auto backend never fails");
        assert_eq!(counts, reference, "session with {workers} workers");
    }
}

#[test]
fn candidate_union_demux_over_the_new_strategies() {
    let ab = Alphabet::latin26();
    let stream: Vec<u8> = "ABCABZQXABCAACAB"
        .repeat(16)
        .bytes()
        .map(|c| c - b'A')
        .collect();
    let source_a: Vec<Episode> = ["AB", "ABC", "AA"]
        .iter()
        .map(|s| Episode::from_str(&ab, s).unwrap())
        .collect();
    let source_b: Vec<Episode> = ["ABC", "CA", "AB", "QXA"]
        .iter()
        .map(|s| Episode::from_str(&ab, s).unwrap())
        .collect();
    let union = CandidateUnion::build(&[&source_a, &source_b]);
    let compiled = CompiledCandidates::compile(ab.len(), union.episodes());
    let index = OccurrenceIndex::build(ab.len(), &stream);

    let union_vertical = compiled.count_vertical(&stream, &index);
    let union_bitmask = BitmaskNfa::build(&compiled)
        .expect("small levels pack")
        .count(&stream);
    let union_dispatch = compiled.count_best_with_index(&stream, &index);

    for (s, source) in [&source_a, &source_b].into_iter().enumerate() {
        let expected = seed_count_episodes(ab.len(), &stream, source);
        assert_eq!(union.demux(s, &union_vertical), expected, "vertical demux");
        assert_eq!(union.demux(s, &union_bitmask), expected, "bitmask demux");
        assert_eq!(union.demux(s, &union_dispatch), expected, "dispatch demux");
    }
}

// ---------------------------------------------------------------------------
// Serve-time dispatch: StrategyCosts and the CPU-vs-GPU class table
// ---------------------------------------------------------------------------

#[test]
fn backend_class_table_is_consistent_with_strategy_costs() {
    use tdm_core::engine::{CountStrategy, DispatchClass, GpuDispatchModel};

    let ab = Alphabet::latin26();
    let stream: Vec<u8> = "ABCABZQXABCAACAB"
        .repeat(64)
        .bytes()
        .map(|c| c - b'A')
        .collect();
    let index = OccurrenceIndex::build(ab.len(), &stream);

    // Empty set: active-set trivially, on any model.
    let empty = CompiledCandidates::compile(ab.len(), &[]);
    assert_eq!(
        empty.choose_backend_class(&index, &GpuDispatchModel::default()),
        DispatchClass::CpuActiveSet
    );

    let episodes = episodes_of(&[b"AB", b"ABC", b"CA", b"QXA"]);
    let compiled = CompiledCandidates::compile(ab.len(), &episodes);
    let costs = compiled.strategy_costs(&index);
    assert!(costs.cpu_best() <= costs.vertical && costs.cpu_best() <= costs.bitmask);

    // A free, infinitely fast device always wins a non-empty level; a device
    // with a prohibitive advance cost never does — and the CPU class it falls
    // back to is exactly choose_strategy's pick.
    let free_gpu = GpuDispatchModel {
        advance_ops: 0.0,
        speedup: 1e9,
    };
    assert_eq!(
        compiled.choose_backend_class(&index, &free_gpu),
        DispatchClass::GpuPipeline
    );
    let dead_gpu = GpuDispatchModel {
        advance_ops: f64::INFINITY,
        speedup: 8.0,
    };
    let cpu_class = compiled.choose_backend_class(&index, &dead_gpu);
    match compiled.choose_strategy(&index) {
        CountStrategy::Vertical => assert_eq!(cpu_class, DispatchClass::CpuVertical),
        CountStrategy::Bitmask => assert_eq!(cpu_class, DispatchClass::CpuBitmask),
        CountStrategy::ActiveSet => assert_eq!(cpu_class, DispatchClass::CpuActiveSet),
    }

    // Episodes too long to word-pack price the bitmask out entirely.
    let long: Vec<Episode> = vec![Episode::new([0, 1].repeat(40)).unwrap()];
    let long_compiled = CompiledCandidates::compile(ab.len(), &long);
    assert_eq!(long_compiled.strategy_costs(&index).bitmask, f64::INFINITY);
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

/// Folds raw generated bytes into a concrete alphabet: every symbol taken
/// mod `alpha`, so small alphabets force collisions, repeats, and (for the
/// larger declared alphabet) absent symbols.
fn fold_inputs(alpha: usize, raw_stream: &[u8], raw_eps: &[Vec<u8>]) -> (Vec<u8>, Vec<Episode>) {
    let stream: Vec<u8> = raw_stream.iter().map(|&c| c % alpha as u8).collect();
    let episodes: Vec<Episode> = raw_eps
        .iter()
        .map(|it| Episode::new(it.iter().map(|&c| c % alpha as u8).collect()).expect("non-empty"))
        .collect();
    (stream, episodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_strategy_matches_the_frozen_seed_counter(
        alpha in 1usize..=6,
        raw_stream in proptest::collection::vec(0u8..6, 0..300),
        raw_eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..6), 1..20),
    ) {
        let (stream, episodes) = fold_inputs(alpha, &raw_stream, &raw_eps);
        assert_all_strategies_match(alpha, &stream, &episodes);
    }

    #[test]
    fn sharded_bitmask_matches_the_frozen_seed_counter(
        alpha in 1usize..=6,
        raw_stream in proptest::collection::vec(0u8..6, 0..300),
        raw_eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..6), 1..20),
        workers in 1usize..=8,
    ) {
        let (stream, episodes) = fold_inputs(alpha, &raw_stream, &raw_eps);
        let reference = seed_count_episodes(alpha, &stream, &episodes);
        let compiled = CompiledCandidates::compile(alpha, &episodes);
        if let Some(nfa) = BitmaskNfa::build(&compiled) {
            let bounds = even_bounds(stream.len(), workers);
            let shards: Vec<(Vec<u64>, Vec<u8>)> =
                tdm_core::segment::segment_ranges(stream.len(), &bounds)
                    .into_iter()
                    .map(|r| nfa.shard_scan(&stream, r))
                    .collect();
            let merged = compiled.merge_shard_counts(&stream, &bounds, &shards);
            prop_assert_eq!(merged, reference);
        }
    }

    #[test]
    fn union_demux_matches_per_source_seed_counts(
        alpha in 1usize..=6,
        raw_stream in proptest::collection::vec(0u8..6, 0..300),
        raw_eps in proptest::collection::vec(proptest::collection::vec(0u8..6, 1..6), 1..20),
        split in 0usize..20,
    ) {
        let (stream, episodes) = fold_inputs(alpha, &raw_stream, &raw_eps);
        let cut = split.min(episodes.len());
        let (a, b) = episodes.split_at(cut);
        let union = CandidateUnion::build(&[a, b]);
        prop_assume!(!union.is_empty());
        let compiled = CompiledCandidates::compile(alpha, union.episodes());
        let index = OccurrenceIndex::build(alpha.max(1), &stream);
        let union_counts = compiled.count_best_with_index(&stream, &index);
        for (s, source) in [a, b].into_iter().enumerate() {
            let expected = seed_count_episodes(alpha, &stream, source);
            prop_assert_eq!(union.demux(s, &union_counts), expected);
        }
    }
}
