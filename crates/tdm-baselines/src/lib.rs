//! # tdm-baselines — CPU mining baselines
//!
//! The paper motivates its GPU work against "current technology, like GMiner …
//! limited to a single CPU" (§1). This crate provides that comparison point and
//! the parallel CPU contenders, all built on the compiled counting engine of
//! [`tdm_core::engine`]:
//!
//! * [`SerialScanBackend`] — one full database scan per episode on one core:
//!   the direct CPU analogue of what each GPU thread does, and the GMiner-class
//!   single-CPU baseline;
//! * [`ActiveSetBackend`] — the optimized single-core counter (one database
//!   pass for all candidates over the compiled CSR layout), holding its
//!   [`CompiledCandidates`] and [`CountScratch`] across calls so the level-wise
//!   miner pays no per-level index reconstruction;
//! * [`ShardedScanBackend`] — **database-sharded** parallel counting: the
//!   symbol stream is split into per-worker segments, each worker runs the
//!   active-set scan over its segment, and boundary spans are fixed up — the
//!   CPU analogue of the paper's block-level Algorithms 3/4 (§3.3.3, Fig. 5),
//!   and the fastest configuration when candidates are few and the stream is
//!   long (levels 1–2);
//! * [`MapReduceBackend`] — candidate chunks fanned out over a scoped-thread
//!   worker pool via the `tdm-mapreduce` framework (map = compile + count one
//!   chunk of candidates, reduce = identity), mirroring the paper's MapReduce
//!   framing on a multicore host — the right shape once candidates are
//!   plentiful (level 3+).
//!
//! All four implement [`tdm_core::CountingBackend`], so the level-wise miner
//! runs unchanged on any of them, and their counts are interchangeable — which
//! the tests assert.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use tdm_core::count::count_episode;
use tdm_core::engine::{CompiledCandidates, CountScratch};
use tdm_core::{CountingBackend, Episode, EventDb};
use tdm_mapreduce::pool::{default_workers, map_items};
use tdm_mapreduce::{run_parallel, IdentityReducer, Mapper};

/// Single-core, one-scan-per-episode baseline (GMiner-class).
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialScanBackend;

impl CountingBackend for SerialScanBackend {
    fn count(&mut self, db: &EventDb, candidates: &[Episode]) -> Vec<u64> {
        candidates.iter().map(|e| count_episode(db, e)).collect()
    }

    fn name(&self) -> &str {
        "cpu-serial-scan"
    }
}

/// Single-core active-set counter (one pass over the database for all
/// candidates) — the fast CPU ground truth. The compiled candidate layout and
/// scan scratch persist across `count` calls, so repeated counting (the miner's
/// level loop) reuses every buffer.
#[derive(Debug, Default, Clone)]
pub struct ActiveSetBackend {
    compiled: CompiledCandidates,
    scratch: CountScratch,
}

impl CountingBackend for ActiveSetBackend {
    fn count(&mut self, db: &EventDb, candidates: &[Episode]) -> Vec<u64> {
        self.compiled.recompile(db.alphabet().len(), candidates);
        self.compiled.count(db.symbols(), &mut self.scratch)
    }

    fn name(&self) -> &str {
        "cpu-active-set"
    }
}

/// Database-sharded parallel backend: splits the *stream* (not the candidate
/// set) across workers and fixes up boundary spans, like the paper's
/// block-level kernels. Counts are bit-identical to the sequential reference
/// for any candidate set and worker count.
#[derive(Debug, Default, Clone)]
pub struct ShardedScanBackend {
    workers: usize,
    compiled: CompiledCandidates,
}

impl ShardedScanBackend {
    /// Backend with an explicit worker count (0 is clamped to 1).
    pub fn new(workers: usize) -> Self {
        ShardedScanBackend {
            workers: workers.max(1),
            compiled: CompiledCandidates::default(),
        }
    }

    /// Backend sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(default_workers())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl CountingBackend for ShardedScanBackend {
    fn count(&mut self, db: &EventDb, candidates: &[Episode]) -> Vec<u64> {
        self.compiled.recompile(db.alphabet().len(), candidates);
        self.compiled.count_sharded(db.symbols(), self.workers)
    }

    fn name(&self) -> &str {
        "cpu-sharded-scan"
    }
}

/// Parallel CPU backend on the MapReduce framework: map(candidate chunk) →
/// (chunk index, counts) via a per-chunk compiled active-set scan; identity
/// reduce; workers = threads.
pub struct MapReduceBackend {
    workers: usize,
}

impl MapReduceBackend {
    /// Backend with an explicit worker count.
    pub fn new(workers: usize) -> Self {
        MapReduceBackend {
            workers: workers.max(1),
        }
    }

    /// Backend sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(default_workers())
    }
}

struct ChunkCountMapper<'a> {
    db: &'a EventDb,
}

impl Mapper for ChunkCountMapper<'_> {
    type Input = (usize, Vec<Episode>);
    type Key = usize;
    type Value = Vec<u64>;

    fn map(&self, (idx, chunk): &(usize, Vec<Episode>), emit: &mut dyn FnMut(usize, Vec<u64>)) {
        let compiled = CompiledCandidates::compile(self.db.alphabet().len(), chunk);
        let mut scratch = CountScratch::new();
        emit(*idx, compiled.count(self.db.symbols(), &mut scratch));
    }
}

impl CountingBackend for MapReduceBackend {
    fn count(&mut self, db: &EventDb, candidates: &[Episode]) -> Vec<u64> {
        if candidates.is_empty() {
            return Vec::new();
        }
        let chunk = candidates.len().div_ceil(self.workers);
        let inputs: Vec<(usize, Vec<Episode>)> = candidates
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| (i, c.to_vec()))
            .collect();
        let out = run_parallel(
            &ChunkCountMapper { db },
            &IdentityReducer::default(),
            &inputs,
            self.workers,
        );
        // Keys are chunk indices 0..k sorted; concatenation restores candidate
        // order.
        debug_assert!(out.iter().enumerate().all(|(i, (k, _))| i == *k));
        out.into_iter().flat_map(|(_, c)| c).collect()
    }

    fn name(&self) -> &str {
        "cpu-mapreduce"
    }
}

/// Chunked **candidate-sharded** parallel counting without the MapReduce
/// framing: each worker compiles and scans a contiguous slice of the candidate
/// set. Complementary to [`ShardedScanBackend`]: candidate-sharding pays one
/// full stream pass *per worker*, so it only wins once the per-pass candidate
/// work dominates (large level-3+ sets); with few candidates over a long
/// stream, database-sharding is strictly better (paper Characterizations 5–6).
pub fn count_parallel_chunks(db: &EventDb, candidates: &[Episode], workers: usize) -> Vec<u64> {
    if candidates.len() < 64 || workers <= 1 {
        return tdm_core::count::count_episodes(db, candidates);
    }
    let chunk = candidates.len().div_ceil(workers);
    let chunks: Vec<&[Episode]> = candidates.chunks(chunk).collect();
    map_items(&chunks, workers, |c| {
        let compiled = CompiledCandidates::compile(db.alphabet().len(), c);
        let mut scratch = CountScratch::new();
        compiled.count(db.symbols(), &mut scratch)
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::candidate::permutations;
    use tdm_core::{Alphabet, Miner, MinerConfig};
    use tdm_workloads::uniform_letters;

    #[test]
    fn all_backends_agree() {
        let db = uniform_letters(20_000, 17);
        let eps = permutations(&Alphabet::latin26(), 2);
        let mut serial = SerialScanBackend;
        let mut active = ActiveSetBackend::default();
        let mut sharded = ShardedScanBackend::new(4);
        let mut mr = MapReduceBackend::new(3);
        let a = serial.count(&db, &eps);
        let b = active.count(&db, &eps);
        let c = mr.count(&db, &eps);
        let d = sharded.count(&db, &eps);
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
        assert_eq!(a, count_parallel_chunks(&db, &eps, 4));
    }

    #[test]
    fn sharded_backend_agrees_for_every_worker_count() {
        let db = uniform_letters(30_000, 23);
        let eps = permutations(&Alphabet::latin26(), 2);
        let reference = ActiveSetBackend::default().count(&db, &eps);
        for workers in [1usize, 2, 3, 5, 8] {
            assert_eq!(
                ShardedScanBackend::new(workers).count(&db, &eps),
                reference,
                "workers={workers}"
            );
        }
        assert_eq!(ShardedScanBackend::auto().count(&db, &eps), reference);
    }

    #[test]
    fn miner_runs_on_every_backend() {
        let db = uniform_letters(5_000, 3);
        let miner = Miner::new(MinerConfig {
            alpha: 0.0005,
            max_level: Some(2),
            ..Default::default()
        });
        let r1 = miner.mine(&db, &mut SerialScanBackend);
        let r2 = miner.mine(&db, &mut ActiveSetBackend::default());
        let r3 = miner.mine(&db, &mut MapReduceBackend::new(2));
        let r4 = miner.mine(&db, &mut ShardedScanBackend::new(3));
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        assert_eq!(r1, r4);
        assert!(r1.total_frequent() > 0);
    }

    #[test]
    fn backend_names() {
        use tdm_core::CountingBackend as _;
        assert_eq!(SerialScanBackend.name(), "cpu-serial-scan");
        assert_eq!(ActiveSetBackend::default().name(), "cpu-active-set");
        assert_eq!(MapReduceBackend::auto().name(), "cpu-mapreduce");
        assert_eq!(ShardedScanBackend::auto().name(), "cpu-sharded-scan");
        assert!(ShardedScanBackend::new(0).workers() == 1);
    }

    #[test]
    fn parallel_chunks_small_input_falls_back() {
        let db = uniform_letters(1_000, 5);
        let eps = permutations(&Alphabet::latin26(), 1);
        assert_eq!(
            count_parallel_chunks(&db, &eps, 8),
            tdm_core::count::count_episodes(&db, &eps)
        );
    }
}

/// Data-parallel counting of a **single** episode: the database is split into
/// contiguous chunks, each worker computes the chunk's FSM
/// [`tdm_core::segment::SegmentEffect`] (the transition function for every
/// possible entry state), and the effects compose left-to-right — exact for
/// *any* episode, including repeated-item ones where the paper's continuation
/// scheme is only approximate. This is the classic parallel-FSM decomposition,
/// complementary to the multi-candidate backends above: it accelerates the case
/// of one watched episode over a huge stream (the real-time monitoring setting
/// of the paper's introduction).
pub fn count_episode_parallel(db: &EventDb, episode: &Episode, workers: usize) -> u64 {
    use tdm_core::segment::SegmentEffect;
    let n = db.len();
    let workers = workers.max(1);
    if n < 4096 || workers == 1 {
        return count_episode(db, episode);
    }
    let bounds: Vec<usize> = (0..workers).map(|w| w * n / workers).collect();
    let ranges: Vec<std::ops::Range<usize>> = bounds
        .iter()
        .enumerate()
        .map(|(i, &start)| {
            let end = if i + 1 < workers { bounds[i + 1] } else { n };
            start..end
        })
        .collect();
    let effects = map_items(&ranges, workers, |r| {
        SegmentEffect::compute(db.symbols(), episode, r.clone())
    });
    let mut acc: Option<SegmentEffect> = None;
    for eff in effects {
        acc = Some(match acc {
            None => eff,
            Some(prev) => prev.then(&eff),
        });
    }
    acc.map(|e| e.completions[0]).unwrap_or(0)
}

#[cfg(test)]
mod parallel_fsm_tests {
    use super::*;
    use tdm_core::{Alphabet, Episode};
    use tdm_workloads::{markov_letters, uniform_letters};

    #[test]
    fn parallel_single_episode_matches_sequential() {
        let ab = Alphabet::latin26();
        for (db, name) in [
            (uniform_letters(50_000, 21), "uniform"),
            (markov_letters(50_000, 22, 0.8), "markov"),
        ] {
            for ep_str in ["A", "AB", "ABC", "ABA", "AAB"] {
                let ep = Episode::from_str(&ab, ep_str).unwrap();
                let seq = count_episode(&db, &ep);
                for workers in [2usize, 3, 8] {
                    assert_eq!(
                        count_episode_parallel(&db, &ep, workers),
                        seq,
                        "{name}/{ep_str}/{workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_small_input_falls_back() {
        let ab = Alphabet::latin26();
        let db = uniform_letters(100, 3);
        let ep = Episode::from_str(&ab, "AB").unwrap();
        assert_eq!(count_episode_parallel(&db, &ep, 8), count_episode(&db, &ep));
    }
}
