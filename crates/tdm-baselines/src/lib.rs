//! # tdm-baselines — CPU mining baselines
//!
//! The paper motivates its GPU work against "current technology, like GMiner …
//! limited to a single CPU" (§1). This crate provides that comparison point and
//! the parallel CPU contenders, all as **executors** of the plan/execute
//! counting API ([`tdm_core::session`]): each backend receives a borrowed
//! [`CountRequest`] — the compiled CSR candidate layout, the symbol stream,
//! the database shard bounds, and the session's persistent worker pool — and
//! never recompiles, clones, or even sees a raw `&[Episode]`:
//!
//! * [`SerialScanBackend`] — one full database scan per episode on one core:
//!   the direct CPU analogue of what each GPU thread does, and the
//!   GMiner-class single-CPU baseline;
//! * [`ActiveSetBackend`] — the optimized single-core counter (one database
//!   pass for all candidates over the request's compiled layout), holding
//!   only its [`CountScratch`] across calls;
//! * [`ShardedScanBackend`] — **database-sharded** parallel counting: the
//!   symbol stream is split into per-worker segments, each segment is scanned
//!   by a persistent pool worker, and boundary spans are fixed up — the CPU
//!   analogue of the paper's block-level Algorithms 3/4 (§3.3.3, Fig. 5), and
//!   the fastest configuration when candidates are few and the stream is long
//!   (levels 1–2);
//! * [`MapReduceBackend`] — **candidate-sharded** parallel counting in the
//!   MapReduce shape: map = scan one borrowed chunk (a compiled episode
//!   range) of the candidate set, reduce = concatenate chunk counts in order.
//!   Chunks are `CountRequest` slices — index ranges into the shared compiled
//!   layout — so nothing is copied per chunk. The right shape once candidates
//!   are plentiful (level 3+).
//!
//! All four implement [`tdm_core::session::Executor`], so the level-wise
//! miner runs unchanged on any of them, and their counts are bit-identical —
//! which the tests (and the workspace conformance suite) assert.
//!
//! [`CountRequest`]: tdm_core::session::CountRequest
//! [`CountScratch`]: tdm_core::engine::CountScratch

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use tdm_core::count::{count_compiled_naive, count_episode};
use tdm_core::engine::{with_thread_scratch, CompiledCandidates, CountScratch, MIN_SHARD_STREAM};
use tdm_core::segment::{even_bounds, segment_ranges};
use tdm_core::session::{BackendError, CountRequest, Counts, Executor};
use tdm_core::{Episode, EventDb};
use tdm_mapreduce::pool::{default_workers, map_items};

/// Single-core, one-scan-per-episode baseline (GMiner-class).
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialScanBackend;

impl Executor for SerialScanBackend {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        Ok(count_compiled_naive(req.stream(), req.compiled()))
    }

    fn name(&self) -> &str {
        "cpu-serial-scan"
    }
}

/// Single-core active-set counter (one pass over the database for all
/// candidates) — the fast CPU ground truth. The compiled layout lives in the
/// session; only the scan scratch persists here, so repeated counting (the
/// miner's level loop) reuses every buffer.
#[derive(Debug, Default, Clone)]
pub struct ActiveSetBackend {
    scratch: CountScratch,
}

impl Executor for ActiveSetBackend {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        Ok(req.compiled().count(req.stream(), &mut self.scratch))
    }

    fn name(&self) -> &str {
        "cpu-active-set"
    }
}

/// Database-sharded parallel backend: splits the *stream* (not the candidate
/// set) across the session's persistent pool workers and fixes up boundary
/// spans, like the paper's block-level kernels. Counts are bit-identical to
/// the sequential reference for any candidate set and worker count.
#[derive(Debug, Default, Clone)]
pub struct ShardedScanBackend {
    /// `Some(w)` = explicit segmentation into `w` shards; `None` = follow the
    /// session's planned shard bounds.
    workers: Option<usize>,
}

impl ShardedScanBackend {
    /// Backend with an explicit shard count (0 is clamped to 1).
    pub fn new(workers: usize) -> Self {
        ShardedScanBackend {
            workers: Some(workers.max(1)),
        }
    }

    /// Backend that follows the session's planned shard bounds (sized to the
    /// session pool).
    pub fn auto() -> Self {
        ShardedScanBackend { workers: None }
    }

    /// The configured shard count (the machine's parallelism for
    /// [`ShardedScanBackend::auto`]).
    pub fn workers(&self) -> usize {
        self.workers.unwrap_or_else(default_workers)
    }
}

impl Executor for ShardedScanBackend {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        let stream = req.stream();
        let n = stream.len();
        // Explicit worker counts cut their own bounds; auto follows the plan.
        // Either way, never cut more shards than hardware threads exist to
        // scan them — on a 1-core host the snapshot + dispatch + merge
        // machinery is pure overhead and the plain sequential scan wins.
        let owned_bounds;
        let bounds: &[usize] = match self.workers {
            Some(w) if w.min(default_workers()) > 1 && n >= MIN_SHARD_STREAM => {
                owned_bounds = even_bounds(n, w.min(default_workers()));
                &owned_bounds
            }
            Some(_) => &[],
            None => req.shard_bounds(),
        };
        if bounds.is_empty() || req.compiled().is_empty() {
            return Ok(with_thread_scratch(|scratch| {
                req.compiled().count(stream, scratch)
            }));
        }
        let ranges = segment_ranges(n, bounds);
        // Map on the persistent pool: workers borrow nothing — they share the
        // stream and compiled layout through Arc handles (refcount bumps).
        // The jobs ride the request's scheduling lane, so a high-priority
        // session's scans overtake queued normal ones on a shared pool.
        let compiled = req.compiled_shared();
        let shared_stream = req.stream_shared();
        let shards = req.pool().map_move_prio(req.priority(), ranges, move |r| {
            compiled.shard_scan(&shared_stream, r)
        });
        Ok(req.compiled().merge_shard_counts(stream, bounds, &shards))
    }

    fn name(&self) -> &str {
        "cpu-sharded-scan"
    }
}

/// Candidate-sharded parallel backend in the MapReduce shape: map = scan one
/// borrowed chunk (compiled episode range) over the whole stream on a pool
/// worker, reduce = concatenate the chunk counts in order. No per-chunk
/// compile, no owned candidate copies — chunks are index ranges into the
/// request's shared compiled layout.
#[derive(Debug, Default, Clone)]
pub struct MapReduceBackend {
    /// `Some(w)` = split into `w` chunks; `None` = one chunk per pool worker.
    workers: Option<usize>,
}

impl MapReduceBackend {
    /// Backend with an explicit chunk count (0 is clamped to 1).
    pub fn new(workers: usize) -> Self {
        MapReduceBackend {
            workers: Some(workers.max(1)),
        }
    }

    /// Backend sized to the session pool (one chunk per worker).
    pub fn auto() -> Self {
        MapReduceBackend { workers: None }
    }
}

impl Executor for MapReduceBackend {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        let chunks = req.chunk_ranges(self.workers.unwrap_or_else(|| req.workers()));
        if chunks.is_empty() {
            return Ok(Vec::new());
        }
        if chunks.len() == 1 {
            return Ok(req
                .compiled()
                .chunk_scan(req.stream(), chunks.into_iter().next().expect("one chunk")));
        }
        let compiled = req.compiled_shared();
        let shared_stream = req.stream_shared();
        let per_chunk = req.pool().map_move_prio(req.priority(), chunks, move |c| {
            compiled.chunk_scan(&shared_stream, c)
        });
        Ok(per_chunk.into_iter().flatten().collect())
    }

    fn name(&self) -> &str {
        "cpu-mapreduce"
    }
}

/// Chunked **candidate-sharded** parallel counting without the session
/// framing: each scoped worker compiles and scans a contiguous slice of the
/// candidate set. Complementary to [`ShardedScanBackend`]: candidate-sharding
/// pays one full stream pass *per worker*, so it only wins once the per-pass
/// candidate work dominates (large level-3+ sets); with few candidates over a
/// long stream, database-sharding is strictly better (paper
/// Characterizations 5–6).
pub fn count_parallel_chunks(db: &EventDb, candidates: &[Episode], workers: usize) -> Vec<u64> {
    if candidates.len() < 64 || workers <= 1 {
        return tdm_core::count::count_episodes(db, candidates);
    }
    let chunk = candidates.len().div_ceil(workers);
    let chunks: Vec<&[Episode]> = candidates.chunks(chunk).collect();
    map_items(&chunks, workers, |c| {
        let compiled = CompiledCandidates::compile(db.alphabet().len(), c);
        with_thread_scratch(|scratch| compiled.count(db.symbols(), scratch))
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::candidate::permutations;
    use tdm_core::session::MiningSession;
    use tdm_core::{Alphabet, Miner, MinerConfig};
    use tdm_workloads::uniform_letters;

    fn counts_of(
        session: &mut MiningSession<'_>,
        eps: &[Episode],
        ex: &mut impl Executor,
    ) -> Vec<u64> {
        session.count_candidates(eps, ex).unwrap()
    }

    #[test]
    fn all_backends_agree() {
        let db = uniform_letters(20_000, 17);
        let eps = permutations(&Alphabet::latin26(), 2);
        let mut session = MiningSession::builder(&db).workers(4).build();
        let a = counts_of(&mut session, &eps, &mut SerialScanBackend);
        let b = counts_of(&mut session, &eps, &mut ActiveSetBackend::default());
        let c = counts_of(&mut session, &eps, &mut MapReduceBackend::new(3));
        let d = counts_of(&mut session, &eps, &mut ShardedScanBackend::new(4));
        let e = counts_of(&mut session, &eps, &mut ShardedScanBackend::auto());
        let f = counts_of(&mut session, &eps, &mut MapReduceBackend::auto());
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
        assert_eq!(a, e);
        assert_eq!(a, f);
        assert_eq!(a, count_parallel_chunks(&db, &eps, 4));
        // One compile per candidate set handed to count_candidates, however
        // many executors ran against it.
        assert_eq!(session.compiles(), 6);
    }

    #[test]
    fn sharded_backend_agrees_for_every_worker_count() {
        let db = uniform_letters(30_000, 23);
        let eps = permutations(&Alphabet::latin26(), 2);
        let mut session = MiningSession::builder(&db).workers(3).build();
        let reference = counts_of(&mut session, &eps, &mut ActiveSetBackend::default());
        for workers in [1usize, 2, 3, 5, 8] {
            assert_eq!(
                counts_of(&mut session, &eps, &mut ShardedScanBackend::new(workers)),
                reference,
                "workers={workers}"
            );
        }
        assert!(ShardedScanBackend::auto().workers() >= 1);
        assert!(ShardedScanBackend::new(0).workers() == 1);
    }

    #[test]
    fn miner_runs_on_every_backend() {
        let db = uniform_letters(5_000, 3);
        let miner = Miner::new(MinerConfig {
            alpha: 0.0005,
            max_level: Some(2),
            ..Default::default()
        });
        let r1 = miner.mine(&db, &mut SerialScanBackend).unwrap();
        let r2 = miner.mine(&db, &mut ActiveSetBackend::default()).unwrap();
        let r3 = miner.mine(&db, &mut MapReduceBackend::new(2)).unwrap();
        let r4 = miner.mine(&db, &mut ShardedScanBackend::new(3)).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(r1, r3);
        assert_eq!(r1, r4);
        assert!(r1.total_frequent() > 0);
    }

    #[test]
    fn backend_names() {
        use tdm_core::session::Executor as _;
        assert_eq!(SerialScanBackend.name(), "cpu-serial-scan");
        assert_eq!(ActiveSetBackend::default().name(), "cpu-active-set");
        assert_eq!(MapReduceBackend::auto().name(), "cpu-mapreduce");
        assert_eq!(ShardedScanBackend::auto().name(), "cpu-sharded-scan");
    }

    #[test]
    fn empty_candidate_sets_yield_empty_counts() {
        let db = uniform_letters(6_000, 9);
        let mut session = MiningSession::builder(&db).workers(2).build();
        let none: Vec<Episode> = Vec::new();
        assert!(counts_of(&mut session, &none, &mut SerialScanBackend).is_empty());
        assert!(counts_of(&mut session, &none, &mut ActiveSetBackend::default()).is_empty());
        assert!(counts_of(&mut session, &none, &mut ShardedScanBackend::new(4)).is_empty());
        assert!(counts_of(&mut session, &none, &mut MapReduceBackend::new(4)).is_empty());
    }

    #[test]
    fn parallel_chunks_small_input_falls_back() {
        let db = uniform_letters(1_000, 5);
        let eps = permutations(&Alphabet::latin26(), 1);
        assert_eq!(
            count_parallel_chunks(&db, &eps, 8),
            tdm_core::count::count_episodes(&db, &eps)
        );
    }
}

/// Data-parallel counting of a **single** episode: the database is split into
/// contiguous chunks, each worker computes the chunk's FSM
/// [`tdm_core::segment::SegmentEffect`] (the transition function for every
/// possible entry state), and the effects compose left-to-right — exact for
/// *any* episode, including repeated-item ones where the paper's continuation
/// scheme is only approximate. This is the classic parallel-FSM decomposition,
/// complementary to the multi-candidate backends above: it accelerates the case
/// of one watched episode over a huge stream (the real-time monitoring setting
/// of the paper's introduction).
pub fn count_episode_parallel(db: &EventDb, episode: &Episode, workers: usize) -> u64 {
    use tdm_core::segment::SegmentEffect;
    let n = db.len();
    let workers = workers.max(1);
    if n < 4096 || workers == 1 {
        return count_episode(db, episode);
    }
    let bounds: Vec<usize> = (0..workers).map(|w| w * n / workers).collect();
    let ranges: Vec<std::ops::Range<usize>> = bounds
        .iter()
        .enumerate()
        .map(|(i, &start)| {
            let end = if i + 1 < workers { bounds[i + 1] } else { n };
            start..end
        })
        .collect();
    let effects = map_items(&ranges, workers, |r| {
        SegmentEffect::compute(db.symbols(), episode, r.clone())
    });
    let mut acc: Option<SegmentEffect> = None;
    for eff in effects {
        acc = Some(match acc {
            None => eff,
            Some(prev) => prev.then(&eff),
        });
    }
    acc.map(|e| e.completions[0]).unwrap_or(0)
}

#[cfg(test)]
mod parallel_fsm_tests {
    use super::*;
    use tdm_core::{Alphabet, Episode};
    use tdm_workloads::{markov_letters, uniform_letters};

    #[test]
    fn parallel_single_episode_matches_sequential() {
        let ab = Alphabet::latin26();
        for (db, name) in [
            (uniform_letters(50_000, 21), "uniform"),
            (markov_letters(50_000, 22, 0.8), "markov"),
        ] {
            for ep_str in ["A", "AB", "ABC", "ABA", "AAB"] {
                let ep = Episode::from_str(&ab, ep_str).unwrap();
                let seq = count_episode(&db, &ep);
                for workers in [2usize, 3, 8] {
                    assert_eq!(
                        count_episode_parallel(&db, &ep, workers),
                        seq,
                        "{name}/{ep_str}/{workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_small_input_falls_back() {
        let ab = Alphabet::latin26();
        let db = uniform_letters(100, 3);
        let ep = Episode::from_str(&ab, "AB").unwrap();
        assert_eq!(count_episode_parallel(&db, &ep, 8), count_episode(&db, &ep));
    }
}
