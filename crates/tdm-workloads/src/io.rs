//! Dataset (de)serialization: a tiny, self-describing binary format.
//!
//! Keeps the reproduction self-contained without pulling in a serde format
//! crate. Layout (little-endian):
//!
//! ```text
//! magic  "TDMDB1\0\0"            (8 bytes)
//! n_symbols: u32                  alphabet size
//! n_symbols x { len: u16, utf8 }  symbol names
//! n_events: u64
//! has_times: u8                   0 | 1
//! n_events bytes                  symbol stream
//! [n_events x u64]                timestamps (when has_times = 1)
//! ```

use std::io::{self, Read, Write};
use tdm_core::{Alphabet, EventDb};

const MAGIC: &[u8; 8] = b"TDMDB1\0\0";

/// Writes a database to any writer.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_db<W: Write>(db: &EventDb, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    let ab = db.alphabet();
    w.write_all(&(ab.len() as u32).to_le_bytes())?;
    for s in ab.symbols() {
        let name = ab.name(s).as_bytes();
        w.write_all(&(name.len() as u16).to_le_bytes())?;
        w.write_all(name)?;
    }
    w.write_all(&(db.len() as u64).to_le_bytes())?;
    w.write_all(&[db.times().is_some() as u8])?;
    w.write_all(db.symbols())?;
    if let Some(times) = db.times() {
        for &t in times {
            w.write_all(&t.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a database written by [`write_db`].
///
/// # Errors
/// I/O errors, bad magic, or validation failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_db<R: Read>(mut r: R) -> io::Result<EventDb> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad("not a TDMDB1 file"));
    }
    let mut b4 = [0u8; 4];
    r.read_exact(&mut b4)?;
    let n_symbols = u32::from_le_bytes(b4) as usize;
    let mut names = Vec::with_capacity(n_symbols);
    for _ in 0..n_symbols {
        let mut b2 = [0u8; 2];
        r.read_exact(&mut b2)?;
        let len = u16::from_le_bytes(b2) as usize;
        let mut name = vec![0u8; len];
        r.read_exact(&mut name)?;
        names.push(String::from_utf8(name).map_err(|_| bad("symbol name not UTF-8"))?);
    }
    let alphabet = Alphabet::new(names).map_err(|e| bad(&e.to_string()))?;
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b8)?;
    let n_events = u64::from_le_bytes(b8) as usize;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let mut symbols = vec![0u8; n_events];
    r.read_exact(&mut symbols)?;
    if flag[0] == 1 {
        let mut times = Vec::with_capacity(n_events);
        for _ in 0..n_events {
            r.read_exact(&mut b8)?;
            times.push(u64::from_le_bytes(b8));
        }
        EventDb::with_times(alphabet, symbols, times).map_err(|e| bad(&e.to_string()))
    } else {
        EventDb::new(alphabet, symbols).map_err(|e| bad(&e.to_string()))
    }
}

/// Writes a database to a file path.
///
/// # Errors
/// Propagates I/O errors.
pub fn save(db: &EventDb, path: &std::path::Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_db(db, io::BufWriter::new(f))
}

/// Loads a database from a file path.
///
/// # Errors
/// Propagates I/O errors and format violations.
pub fn load(path: &std::path::Path) -> io::Result<EventDb> {
    let f = std::fs::File::open(path)?;
    read_db(io::BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{market_basket, uniform_letters, BasketConfig};

    #[test]
    fn round_trip_plain() {
        let db = uniform_letters(10_000, 5);
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        let back = read_db(&buf[..]).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn round_trip_timestamped_with_names() {
        let db = market_basket(&BasketConfig {
            events: 500,
            ..Default::default()
        });
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        let back = read_db(&buf[..]).unwrap();
        assert_eq!(db, back);
        assert_eq!(back.alphabet().name(tdm_core::Symbol(2)), "jelly");
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_db(&b"not a database"[..]).is_err());
        // Truncated stream.
        let db = uniform_letters(100, 1);
        let mut buf = Vec::new();
        write_db(&db, &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(read_db(&buf[..]).is_err());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("tdm_workloads_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.tdmdb");
        let db = uniform_letters(1_000, 9);
        save(&db, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }
}
