//! Synthetic multi-neuron spike trains — the neuroscience workload of the
//! paper's motivation (§1: "neuroscientists can capture the timing of hundreds
//! of neurons"; GMiner's frequent-episode setting).
//!
//! Each neuron fires as an independent Poisson process; *causal chains* inject
//! correlated firing sequences (neuron A fires, then B `delay_ms` later, then C,
//! …) — exactly the connectivity structure frequent episode mining is used to
//! recover ("stimulating one area of the brain and observing which other areas
//! light up"). The output is a timestamped [`EventDb`] whose alphabet maps one
//! symbol per neuron, so the episode-expiry semantics of `tdm_core::expiry` can
//! be exercised with physically meaningful thresholds.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tdm_core::{Alphabet, Episode, EventDb};

/// One injected causal chain: `neurons[0] -> neurons[1] -> ...`, each hop firing
/// `delay_ms` (± `jitter_ms`) after the previous one.
#[derive(Debug, Clone)]
pub struct CausalChain {
    /// Neuron ids along the chain, in firing order.
    pub neurons: Vec<u8>,
    /// Mean inter-neuron delay in milliseconds.
    pub delay_ms: f64,
    /// Uniform jitter applied to each delay, in milliseconds.
    pub jitter_ms: f64,
    /// Chain triggering rate in Hz.
    pub rate_hz: f64,
}

impl CausalChain {
    /// The episode (in neuron symbols) this chain should make frequent.
    pub fn episode(&self) -> Episode {
        Episode::new(self.neurons.clone()).expect("chains are non-empty")
    }
}

/// Configuration of a synthetic recording session.
#[derive(Debug, Clone)]
pub struct SpikeTrainConfig {
    /// Number of recorded neurons (≤ 256; each becomes one alphabet symbol).
    pub neurons: usize,
    /// Recording duration in milliseconds.
    pub duration_ms: f64,
    /// Background firing rate per neuron, in Hz.
    pub base_rate_hz: f64,
    /// Injected causal chains.
    pub chains: Vec<CausalChain>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpikeTrainConfig {
    fn default() -> Self {
        SpikeTrainConfig {
            neurons: 26,
            duration_ms: 60_000.0,
            base_rate_hz: 5.0,
            chains: Vec::new(),
            seed: 42,
        }
    }
}

/// Generates the recording: a timestamped event database (times in
/// microseconds) sorted by firing time.
///
/// # Panics
/// Panics when `neurons` is 0 or exceeds 256, or when a chain references a
/// neuron outside the range.
pub fn spike_trains(config: &SpikeTrainConfig) -> EventDb {
    assert!(
        config.neurons > 0 && config.neurons <= 256,
        "1..=256 neurons"
    );
    for chain in &config.chains {
        assert!(
            chain.neurons.iter().all(|&n| (n as usize) < config.neurons),
            "chain references unknown neuron"
        );
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut events: Vec<(u64, u8)> = Vec::new();

    // Background Poisson firing per neuron: exponential inter-arrival times.
    for neuron in 0..config.neurons as u16 {
        let mut t = 0.0f64;
        if config.base_rate_hz > 0.0 {
            loop {
                // Inverse-CDF exponential sample.
                let u: f64 = rng.random::<f64>().max(1e-12);
                t += -u.ln() / config.base_rate_hz * 1_000.0; // ms
                if t >= config.duration_ms {
                    break;
                }
                events.push(((t * 1_000.0) as u64, neuron as u8));
            }
        }
    }

    // Injected chains.
    for chain in &config.chains {
        if chain.rate_hz <= 0.0 || chain.neurons.is_empty() {
            continue;
        }
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.random::<f64>().max(1e-12);
            t += -u.ln() / chain.rate_hz * 1_000.0;
            if t >= config.duration_ms {
                break;
            }
            let mut fire = t;
            for &n in &chain.neurons {
                if fire >= config.duration_ms {
                    break;
                }
                events.push(((fire * 1_000.0) as u64, n));
                let jitter = if chain.jitter_ms > 0.0 {
                    rng.random_range(-chain.jitter_ms..chain.jitter_ms)
                } else {
                    0.0
                };
                fire += (chain.delay_ms + jitter).max(0.001);
            }
        }
    }

    events.sort_unstable();
    let (times, symbols): (Vec<u64>, Vec<u8>) = events.into_iter().unzip();
    let alphabet = Alphabet::numbered(config.neurons).expect("validated above");
    EventDb::with_times(alphabet, symbols, times).expect("sorted by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::expiry::count_with_expiry;

    #[test]
    fn background_rate_roughly_matches() {
        let db = spike_trains(&SpikeTrainConfig {
            neurons: 10,
            duration_ms: 10_000.0,
            base_rate_hz: 20.0,
            chains: vec![],
            seed: 1,
        });
        // Expected 10 neurons * 20 Hz * 10 s = 2000 spikes.
        let n = db.len() as f64;
        assert!((n - 2000.0).abs() < 300.0, "spikes = {n}");
        // Timestamps sorted, all neurons present.
        assert!(db.times().is_some());
        assert!(db.histogram().iter().all(|&c| c > 100));
    }

    #[test]
    fn injected_chain_is_detectable_with_expiry() {
        let chain = CausalChain {
            neurons: vec![0, 1, 2],
            delay_ms: 2.0,
            jitter_ms: 0.5,
            rate_hz: 5.0,
        };
        let db = spike_trains(&SpikeTrainConfig {
            neurons: 20,
            duration_ms: 20_000.0,
            base_rate_hz: 1.0,
            chains: vec![chain.clone()],
            seed: 7,
        });
        let ep = chain.episode();
        // ~100 chain firings; expiry window 10ms (10_000 us) keeps hops alive.
        let with_chain = count_with_expiry(&db, &ep, 10_000).unwrap();
        assert!(with_chain > 20, "found {with_chain}");
        // The reverse ordering is not injected and should be much rarer.
        let rev = Episode::new(vec![2, 1, 0]).unwrap();
        let reversed = count_with_expiry(&db, &rev, 10_000).unwrap();
        assert!(
            with_chain > 3 * (reversed + 1),
            "chain {with_chain} vs reversed {reversed}"
        );
    }

    #[test]
    fn determinism() {
        let cfg = SpikeTrainConfig::default();
        assert_eq!(spike_trains(&cfg), spike_trains(&cfg));
    }

    #[test]
    #[should_panic(expected = "unknown neuron")]
    fn bad_chain_rejected() {
        let _ = spike_trains(&SpikeTrainConfig {
            neurons: 4,
            chains: vec![CausalChain {
                neurons: vec![9],
                delay_ms: 1.0,
                jitter_ms: 0.0,
                rate_hz: 1.0,
            }],
            ..Default::default()
        });
    }

    #[test]
    fn zero_background_only_chains() {
        let db = spike_trains(&SpikeTrainConfig {
            neurons: 3,
            duration_ms: 5_000.0,
            base_rate_hz: 0.0,
            chains: vec![CausalChain {
                neurons: vec![0, 1],
                delay_ms: 1.0,
                jitter_ms: 0.0,
                rate_hz: 10.0,
            }],
            seed: 3,
        });
        assert!(db.len() > 50);
        // Only neurons 0 and 1 fire.
        let h = db.histogram();
        assert_eq!(h[2], 0);
        assert!(h[0] > 0 && h[1] > 0);
    }
}
