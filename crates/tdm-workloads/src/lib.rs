//! # tdm-workloads — event-stream generators for the reproduction
//!
//! The paper's evaluation database is 393,019 letters over the 26-letter Latin
//! alphabet (§5). This crate regenerates that workload deterministically
//! ([`paper_database`]) and provides the richer sources that the paper's
//! motivation calls for but does not publish:
//!
//! * [`uniform_letters`] / [`markov_letters`] — background streams with
//!   controllable symbol statistics;
//! * [`planted`] — streams with known injected episodes (ground truth for
//!   correctness and recall tests);
//! * [`spike_trains`] — a Poisson-ensemble neuronal recording with injected
//!   causal chains, standing in for the multi-electrode data of the paper's
//!   neuroscience motivation (§1, GMiner's setting);
//! * [`market_basket`] — a timestamped purchase stream with seeded temporal
//!   motifs (the paper's §3.1 example).
//!
//! All generators are seeded and reproducible.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod basket;
pub mod io;
pub mod spikes;

pub use basket::{market_basket, BasketConfig};
pub use spikes::{spike_trains, CausalChain, SpikeTrainConfig};

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tdm_core::{Alphabet, Episode, EventDb};

/// Length of the paper's evaluation database (§5: "the database contains
/// 393,019 letters").
pub const PAPER_DB_LEN: usize = 393_019;

/// Default seed used by [`paper_database`]; the publication year.
pub const PAPER_SEED: u64 = 2009;

/// A uniform random letter stream over `A..=Z` with the paper's length and the
/// default seed — the reproduction's stand-in for the paper's (unpublished)
/// database.
pub fn paper_database() -> EventDb {
    uniform_letters(PAPER_DB_LEN, PAPER_SEED)
}

/// A scaled version of [`paper_database`]: `scale` ∈ (0, 1] shrinks the stream
/// proportionally (quick runs keep the same alphabet statistics).
///
/// # Panics
/// Panics when `scale` is not in `(0, 1]`.
pub fn paper_database_scaled(scale: f64) -> EventDb {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    uniform_letters(
        (PAPER_DB_LEN as f64 * scale).round().max(1.0) as usize,
        PAPER_SEED,
    )
}

/// Uniform i.i.d. letters over the Latin alphabet.
pub fn uniform_letters(n: usize, seed: u64) -> EventDb {
    let ab = Alphabet::latin26();
    let mut rng = SmallRng::seed_from_u64(seed);
    let symbols: Vec<u8> = (0..n).map(|_| rng.random_range(0..26u32) as u8).collect();
    EventDb::new(ab, symbols).expect("symbols in range by construction")
}

/// A first-order Markov letter stream: with probability `persistence` the next
/// symbol repeats the current one, otherwise it is drawn uniformly. Higher
/// persistence produces the bursty, autocorrelated streams typical of real event
/// logs.
///
/// # Panics
/// Panics when `persistence` is not in `[0, 1)`.
pub fn markov_letters(n: usize, seed: u64, persistence: f64) -> EventDb {
    assert!(
        (0.0..1.0).contains(&persistence),
        "persistence must be in [0, 1)"
    );
    let ab = Alphabet::latin26();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut symbols = Vec::with_capacity(n);
    let mut current = rng.random_range(0..26u32) as u8;
    for _ in 0..n {
        if !rng.random_bool(persistence) {
            current = rng.random_range(0..26u32) as u8;
        }
        symbols.push(current);
    }
    EventDb::new(ab, symbols).expect("symbols in range by construction")
}

/// A uniform background stream with `injections` full copies of `episode`
/// planted at random positions (contiguously, so every copy is found under the
/// paper's FSM semantics). Returns the stream and the positions where copies
/// start — ground truth for recall tests.
pub fn planted(n: usize, seed: u64, episode: &Episode, injections: usize) -> (EventDb, Vec<usize>) {
    let base = uniform_letters(n, seed);
    let mut symbols = base.symbols().to_vec();
    let l = episode.level();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let mut starts = Vec::with_capacity(injections);
    if n >= l {
        for _ in 0..injections {
            let at = rng.random_range(0..(n - l + 1) as u64) as usize;
            symbols[at..at + l].copy_from_slice(episode.items());
            starts.push(at);
        }
    }
    starts.sort_unstable();
    starts.dedup();
    (
        EventDb::new(Alphabet::latin26(), symbols).expect("valid symbols"),
        starts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::count::count_episode;

    #[test]
    fn paper_database_shape() {
        let db = paper_database();
        assert_eq!(db.len(), PAPER_DB_LEN);
        assert_eq!(db.alphabet().len(), 26);
        // Roughly uniform: every letter within 20% of the mean.
        let h = db.histogram();
        let mean = PAPER_DB_LEN as f64 / 26.0;
        for (i, &c) in h.iter().enumerate() {
            assert!(
                (c as f64 - mean).abs() < 0.2 * mean,
                "letter {i} count {c} vs mean {mean}"
            );
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(paper_database(), paper_database());
        assert_eq!(uniform_letters(100, 7), uniform_letters(100, 7));
        assert_ne!(
            uniform_letters(100, 7).symbols(),
            uniform_letters(100, 8).symbols()
        );
    }

    #[test]
    fn scaled_database() {
        let db = paper_database_scaled(0.1);
        assert_eq!(db.len(), 39_302);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn scale_out_of_range_panics() {
        let _ = paper_database_scaled(1.5);
    }

    #[test]
    fn markov_persistence_creates_runs() {
        let bursty = markov_letters(10_000, 3, 0.9);
        let uniform = markov_letters(10_000, 3, 0.0);
        let runs = |db: &EventDb| db.symbols().windows(2).filter(|w| w[0] == w[1]).count();
        assert!(runs(&bursty) > 5 * runs(&uniform));
    }

    #[test]
    fn planted_episodes_are_found() {
        let ab = Alphabet::latin26();
        let ep = Episode::from_str(&ab, "QZJ").unwrap();
        let (db, starts) = planted(50_000, 11, &ep, 40);
        assert!(!starts.is_empty());
        // Every planted contiguous copy is an FSM appearance; the count is at
        // least the number of surviving (non-overwritten) copies.
        let found = count_episode(&db, &ep);
        assert!(
            found >= starts.len() as u64 / 2,
            "found {found} of {} planted",
            starts.len()
        );
    }

    #[test]
    fn planted_ground_truth_positions_contain_episode() {
        let ab = Alphabet::latin26();
        let ep = Episode::from_str(&ab, "XYZ").unwrap();
        let (db, starts) = planted(10_000, 5, &ep, 10);
        for &s in &starts {
            assert_eq!(&db.symbols()[s..s + 3], ep.items());
        }
    }
}
