//! Temporal market-basket streams — the paper's §3.1 motivating example
//! ("how often {peanut butter, bread} → {jelly}").
//!
//! Products form the alphabet; shoppers generate timestamped purchase events.
//! Seeded *motifs* make selected product sequences occur in order far more often
//! than chance, so a miner should surface them as frequent episodes — and, being
//! temporal, distinguish `<bread, peanut butter> → jelly` from
//! `<peanut butter, bread> → jelly` (the ordering point §3.1 makes).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use tdm_core::{Alphabet, Episode, EventDb};

/// Configuration of a synthetic purchase stream.
#[derive(Debug, Clone)]
pub struct BasketConfig {
    /// Product names (alphabet; ≤ 256).
    pub products: Vec<String>,
    /// Total number of purchase events.
    pub events: usize,
    /// Motifs: (ordered product-index sequence, per-event probability that the
    /// motif fires and is emitted contiguously).
    pub motifs: Vec<(Vec<u8>, f64)>,
    /// Mean time between purchase events (timestamp units).
    pub mean_gap: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BasketConfig {
    fn default() -> Self {
        BasketConfig {
            products: [
                "peanut-butter",
                "bread",
                "jelly",
                "milk",
                "eggs",
                "coffee",
                "tea",
                "butter",
                "cheese",
                "apples",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            events: 20_000,
            motifs: vec![(vec![0, 1, 2], 0.05)], // peanut-butter, bread -> jelly
            mean_gap: 10,
            seed: 1234,
        }
    }
}

/// Generates the stream as a timestamped [`EventDb`] over the product alphabet.
///
/// # Panics
/// Panics when the product list is empty/oversized or a motif references an
/// unknown product.
pub fn market_basket(config: &BasketConfig) -> EventDb {
    assert!(
        !config.products.is_empty() && config.products.len() <= 256,
        "1..=256 products"
    );
    let n_products = config.products.len();
    for (motif, p) in &config.motifs {
        assert!(
            motif.iter().all(|&m| (m as usize) < n_products),
            "motif references unknown product"
        );
        assert!((0.0..=1.0).contains(p), "motif probability in [0,1]");
    }
    let alphabet = Alphabet::new(config.products.clone()).expect("validated size");
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let mut symbols = Vec::with_capacity(config.events);
    let mut times = Vec::with_capacity(config.events);
    let mut t = 0u64;

    while symbols.len() < config.events {
        t += rng.random_range(1..=config.mean_gap.max(1) * 2);
        // Maybe fire a motif (contiguous, in order — a shopper's basket sequence).
        let mut fired = false;
        for (motif, p) in &config.motifs {
            if rng.random_bool(*p) {
                for &item in motif {
                    if symbols.len() >= config.events {
                        break;
                    }
                    symbols.push(item);
                    times.push(t);
                    t += rng.random_range(1..=config.mean_gap.max(1));
                }
                fired = true;
                break;
            }
        }
        if !fired {
            symbols.push(rng.random_range(0..n_products as u32) as u8);
            times.push(t);
        }
    }

    EventDb::with_times(alphabet, symbols, times).expect("times monotone by construction")
}

/// The default motif as an [`Episode`] (peanut-butter, bread → jelly).
pub fn default_motif_episode(db: &EventDb) -> Episode {
    Episode::checked(db.alphabet(), vec![0, 1, 2]).expect("default alphabet has 10 products")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::count::count_episode;

    #[test]
    fn motif_is_much_more_frequent_than_reversed() {
        let db = market_basket(&BasketConfig::default());
        assert_eq!(db.len(), 20_000);
        let motif = default_motif_episode(&db);
        let reversed = Episode::new(vec![2, 1, 0]).unwrap();
        let m = count_episode(&db, &motif);
        let r = count_episode(&db, &reversed);
        assert!(m > 5 * (r + 1), "motif {m} vs reversed {r}");
    }

    #[test]
    fn timestamps_are_monotone() {
        let db = market_basket(&BasketConfig::default());
        let times = db.times().unwrap();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn determinism_and_seeding() {
        let a = market_basket(&BasketConfig::default());
        let b = market_basket(&BasketConfig::default());
        assert_eq!(a, b);
        let c = market_basket(&BasketConfig {
            seed: 99,
            ..Default::default()
        });
        assert_ne!(a.symbols(), c.symbols());
    }

    #[test]
    #[should_panic(expected = "unknown product")]
    fn bad_motif_rejected() {
        let _ = market_basket(&BasketConfig {
            motifs: vec![(vec![200], 0.1)],
            ..Default::default()
        });
    }

    #[test]
    fn alphabet_names_preserved() {
        let db = market_basket(&BasketConfig::default());
        assert_eq!(db.alphabet().name(tdm_core::Symbol(0)), "peanut-butter");
        assert_eq!(db.alphabet().name(tdm_core::Symbol(2)), "jelly");
    }
}
