//! The TCP front-end: an acceptor thread plus a bounded pool of
//! connection-handler threads over one shared [`MiningService`].
//!
//! ## Lifecycle of a request
//!
//! 1. The acceptor hands the connection to a handler thread (or answers an
//!    `"overloaded"` error itself when every handler is busy and the
//!    hand-off queue is full — connection-level backpressure).
//! 2. The handler reads frames in a loop. Each frame is parsed, dispatched,
//!    and answered with exactly one response frame; malformed JSON or a bad
//!    request shape gets a typed `"error"` and the connection *stays open*
//!    (framing is self-synchronizing). An oversized length prefix gets a
//!    typed error and then the connection closes (the stream position is
//!    unrecoverable).
//! 3. A `"mine"` request passes the tenant gates in order — API key,
//!    in-flight quota, token bucket (quota first, so a refusal at the
//!    quota burns no rate-limit token) — then enters the shared service
//!    through the
//!    same pre-admission batch board in-process callers use, so wire
//!    requests fuse with each other (and with in-process requests) whenever
//!    they share a database. `"deadline_ms"` becomes a [`CancelToken`]
//!    deadline checked inside the level loop.
//! 4. The handler decrements the active-connection gauge on the way out —
//!    the robustness suite asserts this returns to zero, so handler leaks
//!    are test failures, not slow deaths.
//!
//! [`CancelToken`]: tdm_core::CancelToken

use std::io;
use std::net::{Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use tdm_core::session::Executor;
use tdm_core::{Alphabet, EventDb};
use tdm_serve::{
    AppendOutcome, IngestError, IngestTriggers, MiningRequest, MiningService, Priority,
    ServiceConfig, StreamIngest,
};

use crate::json::{self, Value};
use crate::tenant::{TenantConfig, TenantRegistry};
use crate::wire::{self, codes, FrameError};

/// Builds the executor a handler mines with. `None` on [`ServerConfig`]
/// means requests run their declared [`BackendChoice`] through
/// [`MiningService::submit`] (and may vote in fused batches); tests inject
/// spy executors here to observe the level loop from outside the socket.
///
/// [`BackendChoice`]: tdm_serve::BackendChoice
pub type ExecutorFactory = Arc<dyn Fn() -> Box<dyn Executor> + Send + Sync>;

/// Server sizing and policy.
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (the tests' loopback
    /// harness relies on this).
    pub addr: String,
    /// Connection-handler threads. Connections beyond
    /// `handler_threads + backlog` are answered `"overloaded"` and closed.
    pub handler_threads: usize,
    /// Accepted connections that may wait for a free handler.
    pub backlog: usize,
    /// Per-frame payload cap in bytes.
    pub max_frame: usize,
    /// Socket read timeout; doubles as the shutdown poll interval for idle
    /// connections.
    pub read_timeout: Duration,
    /// Sizing for the in-process [`MiningService`] underneath.
    pub service: ServiceConfig,
    /// The tenants this server will authenticate.
    pub tenants: Vec<TenantConfig>,
    /// Optional executor override for every mine request (tests/benches).
    pub executor_factory: Option<ExecutorFactory>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            handler_threads: 4,
            backlog: 16,
            max_frame: wire::MAX_FRAME,
            read_timeout: Duration::from_millis(100),
            service: ServiceConfig::default(),
            tenants: Vec::new(),
            executor_factory: None,
        }
    }
}

/// Monotonic connection/frame counters (a [`Server::counters`] snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerCounters {
    /// Connections accepted and handed to a handler.
    pub connections: u64,
    /// Connections refused at the hand-off queue (answered `"overloaded"`).
    pub refused: u64,
    /// Request frames served (every frame gets exactly one response).
    pub frames: u64,
    /// Frames that failed framing or parsing (oversized, malformed JSON,
    /// bad request shape, unknown type).
    pub protocol_errors: u64,
}

struct ServerState {
    service: Arc<MiningService>,
    ingest: StreamIngest,
    tenants: TenantRegistry,
    alphabet: Alphabet,
    executor_factory: Option<ExecutorFactory>,
    max_frame: usize,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    connections: AtomicU64,
    refused: AtomicU64,
    frames: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A running server: an acceptor thread, `handler_threads` connection
/// handlers, and the shared state. Dropping it (or calling
/// [`Server::shutdown`]) stops the acceptor, drains in-flight connections,
/// and joins every thread.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and handler pool, and returns immediately.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(MiningService::new(config.service));
        let state = Arc::new(ServerState {
            ingest: StreamIngest::new(Arc::clone(&service)),
            service,
            tenants: TenantRegistry::new(config.tenants),
            alphabet: Alphabet::latin26(),
            executor_factory: config.executor_factory,
            max_frame: config.max_frame,
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            connections: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
        });

        let (tx, rx) = sync_channel::<TcpStream>(config.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let handlers = (0..config.handler_threads.max(1))
            .map(|_| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || handler_loop(&state, &rx))
            })
            .collect();
        let acceptor = {
            let state = Arc::clone(&state);
            let read_timeout = config.read_timeout;
            std::thread::spawn(move || accept_loop(&listener, &state, &tx, read_timeout))
        };

        Ok(Server {
            addr,
            state,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service underneath — e.g. to compare wire responses against
    /// in-process submissions of the same requests.
    pub fn service(&self) -> &Arc<MiningService> {
        &self.state.service
    }

    /// The streaming front door underneath.
    pub fn ingest(&self) -> &StreamIngest {
        &self.state.ingest
    }

    /// Connections currently inside a handler. Returns to 0 when every
    /// client has disconnected — the leak-accounting hook.
    pub fn active_connections(&self) -> usize {
        self.state.active_connections.load(Ordering::Acquire)
    }

    /// In-flight quota slots currently held across all tenants; 0 when idle.
    pub fn tenant_in_flight(&self) -> usize {
        self.state.tenants.total_in_flight()
    }

    /// Connection/frame counters since start.
    pub fn counters(&self) -> ServerCounters {
        ServerCounters {
            connections: self.state.connections.load(Ordering::Relaxed),
            refused: self.state.refused.load(Ordering::Relaxed),
            frames: self.state.frames.load(Ordering::Relaxed),
            protocol_errors: self.state.protocol_errors.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, drains in-flight connections, joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor's blocking `accept` with a wake-up
        // connection; it observes the flag and exits, dropping the sender.
        // The bound address may be unspecified (0.0.0.0/::) — which some
        // platforms refuse to connect to — so aim at loopback on the bound
        // port first, falling back to the literal address for listeners
        // bound to a specific non-loopback interface.
        let wake_timeout = Duration::from_millis(250);
        let loopback: SocketAddr = if self.addr.is_ipv6() {
            (Ipv6Addr::LOCALHOST, self.addr.port()).into()
        } else {
            (Ipv4Addr::LOCALHOST, self.addr.port()).into()
        };
        if TcpStream::connect_timeout(&loopback, wake_timeout).is_err() && loopback != self.addr {
            let _ = TcpStream::connect_timeout(&self.addr, wake_timeout);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServerState>,
    tx: &SyncSender<TcpStream>,
    read_timeout: Duration,
) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(read_timeout));
        let _ = stream.set_nodelay(true);
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Every handler is busy and the backlog is full: refuse at
                // the door with a typed error instead of queueing unbounded.
                state.refused.fetch_add(1, Ordering::Relaxed);
                let reply = wire::error_value(
                    codes::OVERLOADED,
                    "no connection handler available; retry after backoff",
                );
                let _ = wire::write_frame(&mut stream, reply.encode().as_bytes());
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` (by returning) disconnects the handler pool.
}

fn handler_loop(state: &Arc<ServerState>, rx: &Arc<Mutex<Receiver<TcpStream>>>) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let stream = match rx.lock().expect("connection queue").recv() {
            Ok(stream) => stream,
            Err(_) => return, // acceptor gone and queue drained
        };
        state.connections.fetch_add(1, Ordering::Relaxed);
        state.active_connections.fetch_add(1, Ordering::AcqRel);
        // A panic must not kill the handler thread (it would shrink the pool
        // for the rest of the process lifetime); the robustness suite feeds
        // this path hostile bytes on purpose.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle_connection(state, stream);
        }));
        state.active_connections.fetch_sub(1, Ordering::AcqRel);
        if outcome.is_err() {
            state.protocol_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn handle_connection(state: &ServerState, mut stream: TcpStream) {
    loop {
        match wire::read_frame(&mut stream, state.max_frame) {
            Ok(payload) => {
                state.frames.fetch_add(1, Ordering::Relaxed);
                let reply = dispatch_bytes(state, &payload);
                if wire::write_frame(&mut stream, reply.encode().as_bytes()).is_err() {
                    return;
                }
            }
            Err(FrameError::Idle) => {
                if state.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(FrameError::Oversized { declared, max }) => {
                // The stream position is unrecoverable (we won't skip
                // `declared` bytes); answer, then close.
                state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let reply = wire::error_value(
                    codes::OVERSIZED_FRAME,
                    format!("declared frame of {declared} bytes exceeds the {max}-byte cap"),
                );
                let _ = wire::write_frame(&mut stream, reply.encode().as_bytes());
                return;
            }
            Err(FrameError::Closed) => return,
            Err(FrameError::Truncated | FrameError::Io(_)) => {
                state.protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Parses and serves one frame; infallible — every failure is a typed
/// `"error"` value.
fn dispatch_bytes(state: &ServerState, payload: &[u8]) -> Value {
    let text = match std::str::from_utf8(payload) {
        Ok(text) => text,
        Err(_) => {
            state.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return wire::error_value(codes::BAD_REQUEST, "frame is not UTF-8");
        }
    };
    let request = match json::parse(text) {
        Ok(v) => v,
        Err(e) => {
            state.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return wire::error_value(codes::BAD_REQUEST, e.to_string());
        }
    };
    match dispatch(state, &request) {
        Ok(reply) => reply,
        Err(reply) => {
            state.protocol_errors.fetch_add(1, Ordering::Relaxed);
            reply
        }
    }
}

/// `Err` carries protocol-level refusals (counted as protocol errors);
/// `Ok` covers served requests *and* domain errors like overload or
/// deadline, which are healthy protocol exchanges.
fn dispatch(state: &ServerState, request: &Value) -> Result<Value, Value> {
    let kind = request
        .get("type")
        .and_then(Value::as_str)
        .ok_or_else(|| wire::error_value(codes::BAD_REQUEST, "missing \"type\""))?;

    // Uniform authentication: every request type names its tenant.
    let tenant = request
        .get("tenant")
        .and_then(Value::as_str)
        .ok_or_else(|| wire::error_value(codes::BAD_REQUEST, "missing \"tenant\""))?;
    let api_key = request
        .get("api_key")
        .and_then(Value::as_str)
        .ok_or_else(|| wire::error_value(codes::BAD_REQUEST, "missing \"api_key\""))?;
    if let Err(denial) = state.tenants.authenticate(tenant, api_key) {
        return Err(denial.to_value());
    }

    match kind {
        "mine" => serve_mine(state, tenant, request),
        "stats" => Ok(serve_stats(state)),
        "register" => serve_register(state, tenant, request),
        "ingest" => serve_ingest(state, tenant, request),
        _ => Err(wire::error_value(
            codes::BAD_REQUEST,
            format!("unknown request type {kind:?}"),
        )),
    }
}

fn serve_mine(state: &ServerState, tenant: &str, request: &Value) -> Result<Value, Value> {
    // Quota before token bucket: a tenant at its quota is refused without
    // burning a rate-limit token (otherwise sustained quota pressure would
    // drain the bucket and rate-limit the client just as capacity frees
    // up). A rate-limited request pins its quota slot only for the bucket
    // check — the permit drops on the early return.
    let _quota = match state.tenants.take_quota(tenant) {
        Ok(permit) => permit,
        Err(denial) => return Ok(denial.to_value()),
    };
    if let Err(denial) = state.tenants.take_token(tenant) {
        return Ok(denial.to_value());
    }

    let db = Arc::new(request_db(state, request)?);
    let config =
        wire::config_from(request).map_err(|msg| wire::error_value(codes::BAD_REQUEST, msg))?;
    let backend = match request.get("backend").and_then(Value::as_str) {
        None => tdm_serve::BackendChoice::default(),
        Some("sharded") => tdm_serve::BackendChoice::Sharded,
        Some("mapreduce") => tdm_serve::BackendChoice::MapReduce,
        Some("activeset") => tdm_serve::BackendChoice::ActiveSet,
        Some("sequential") => tdm_serve::BackendChoice::Sequential,
        Some("serialscan") => tdm_serve::BackendChoice::SerialScan,
        Some(other) => {
            return Err(wire::error_value(
                codes::BAD_REQUEST,
                format!("unknown backend {other:?}"),
            ))
        }
    };
    let priority = match request.get("priority").and_then(Value::as_str) {
        None | Some("normal") => Priority::Normal,
        Some("high") => Priority::High,
        Some(other) => {
            return Err(wire::error_value(
                codes::BAD_REQUEST,
                format!("unknown priority {other:?}"),
            ))
        }
    };

    let mut mining_request = MiningRequest::new(db, config)
        .backend(backend)
        .priority(priority);
    if let Some(deadline) = request.get("deadline_ms") {
        let ms = deadline.as_u64().ok_or_else(|| {
            wire::error_value(codes::BAD_REQUEST, "\"deadline_ms\" must be an integer")
        })?;
        mining_request = mining_request.deadline(Duration::from_millis(ms));
    }

    let outcome = match &state.executor_factory {
        None => state.service.submit(&mining_request),
        Some(factory) => {
            let mut executor = factory();
            state
                .service
                .submit_with(&mining_request, executor.as_mut())
        }
    };
    Ok(match outcome {
        Ok(response) => wire::mine_response_value(&response, &state.alphabet),
        Err(e) => wire::serve_error_value(&e),
    })
}

/// Upper bound on a generated workload's `"n"`. Inline `"events"` are
/// bounded by the frame cap (~1M letters); this keeps a named `"workload"`
/// in the same ballpark — the field is attacker-controlled, and an
/// unbounded `n` would let one authenticated frame demand a petabyte-scale
/// allocation and OOM the whole server.
pub const MAX_WORKLOAD_N: u64 = 4_000_000;

/// Materializes the database a mine request names: inline `"events"`
/// letters, or a named `"workload"` from the paper's generators. Generator
/// preconditions (`n` bounded, `scale` in (0, 1], `persistence` in [0, 1))
/// are enforced here as typed errors — the generators assert them, and a
/// panic would drop the connection without a response.
fn request_db(state: &ServerState, request: &Value) -> Result<EventDb, Value> {
    match (request.get("events"), request.get("workload")) {
        (Some(events), None) => {
            let text = events.as_str().ok_or_else(|| {
                wire::error_value(codes::BAD_REQUEST, "\"events\" must be a string")
            })?;
            EventDb::from_str_symbols(&state.alphabet, text)
                .map_err(|e| wire::error_value(codes::BAD_REQUEST, e.to_string()))
        }
        (None, Some(spec)) => {
            let kind = spec
                .get("kind")
                .and_then(Value::as_str)
                .ok_or_else(|| wire::error_value(codes::BAD_REQUEST, "workload needs \"kind\""))?;
            let n = spec.get("n").and_then(Value::as_u64).unwrap_or(10_000);
            if n > MAX_WORKLOAD_N {
                return Err(wire::error_value(
                    codes::BAD_REQUEST,
                    format!("workload \"n\" of {n} exceeds the {MAX_WORKLOAD_N}-event cap"),
                ));
            }
            let n = n as usize;
            let seed = spec.get("seed").and_then(Value::as_u64).unwrap_or(2009);
            match kind {
                "paper" => {
                    let scale = spec.get("scale").and_then(Value::as_f64).unwrap_or(1.0);
                    // Negated comparison so NaN is refused too.
                    if !(scale > 0.0 && scale <= 1.0) {
                        return Err(wire::error_value(
                            codes::BAD_REQUEST,
                            format!("workload \"scale\" must be in (0, 1], got {scale}"),
                        ));
                    }
                    Ok(tdm_workloads::paper_database_scaled(scale))
                }
                "uniform" => Ok(tdm_workloads::uniform_letters(n, seed)),
                "markov" => {
                    let persistence = spec
                        .get("persistence")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.6);
                    if !(0.0..1.0).contains(&persistence) {
                        return Err(wire::error_value(
                            codes::BAD_REQUEST,
                            format!(
                                "workload \"persistence\" must be in [0, 1), got {persistence}"
                            ),
                        ));
                    }
                    Ok(tdm_workloads::markov_letters(n, seed, persistence))
                }
                other => Err(wire::error_value(
                    codes::BAD_REQUEST,
                    format!("unknown workload kind {other:?}"),
                )),
            }
        }
        _ => Err(wire::error_value(
            codes::BAD_REQUEST,
            "exactly one of \"events\" or \"workload\" is required",
        )),
    }
}

fn serve_stats(state: &ServerState) -> Value {
    let mut v = wire::stats_value(&state.service.stats(), &state.ingest.stats());
    if let Value::Object(pairs) = &mut v {
        pairs.insert(0, ("type".into(), Value::str("stats")));
        pairs.push((
            "server".into(),
            Value::Object(vec![
                (
                    "active_connections".into(),
                    Value::u64(state.active_connections.load(Ordering::Acquire) as u64),
                ),
                (
                    "tenant_in_flight".into(),
                    Value::u64(state.tenants.total_in_flight() as u64),
                ),
                (
                    "connections".into(),
                    Value::u64(state.connections.load(Ordering::Relaxed)),
                ),
                (
                    "refused".into(),
                    Value::u64(state.refused.load(Ordering::Relaxed)),
                ),
                (
                    "frames".into(),
                    Value::u64(state.frames.load(Ordering::Relaxed)),
                ),
                (
                    "protocol_errors".into(),
                    Value::u64(state.protocol_errors.load(Ordering::Relaxed)),
                ),
            ]),
        ));
    }
    v
}

fn serve_register(state: &ServerState, tenant: &str, request: &Value) -> Result<Value, Value> {
    // Registration mutates shared service state (it seeds a stream and its
    // CoSession), so it is metered like `ingest`; only `mine` work takes a
    // quota slot.
    if let Err(denial) = state.tenants.take_token(tenant) {
        return Ok(denial.to_value());
    }
    let stream = request
        .get("stream")
        .and_then(Value::as_str)
        .ok_or_else(|| wire::error_value(codes::BAD_REQUEST, "missing \"stream\""))?;
    let seed = request
        .get("seed")
        .and_then(Value::as_str)
        .ok_or_else(|| wire::error_value(codes::BAD_REQUEST, "missing \"seed\" events"))?;
    let db = EventDb::from_str_symbols(&state.alphabet, seed)
        .map_err(|e| wire::error_value(codes::BAD_REQUEST, e.to_string()))?;
    let config =
        wire::config_from(request).map_err(|msg| wire::error_value(codes::BAD_REQUEST, msg))?;
    let mut triggers = IngestTriggers::default();
    if let Some(count) = request.get("flush_count") {
        triggers.flush_count = count.as_u64().ok_or_else(|| {
            wire::error_value(codes::BAD_REQUEST, "\"flush_count\" must be an integer")
        })? as usize;
    }
    if let Some(age) = request.get("flush_age_ms") {
        triggers.flush_age = Duration::from_millis(age.as_u64().ok_or_else(|| {
            wire::error_value(codes::BAD_REQUEST, "\"flush_age_ms\" must be an integer")
        })?);
    }
    match state.ingest.register(stream, db, config, triggers) {
        Ok(()) => Ok(Value::Object(vec![
            ("type".into(), Value::str("registered")),
            ("stream".into(), Value::str(stream)),
        ])),
        Err(e) => Err(ingest_error_value(&e)),
    }
}

fn serve_ingest(state: &ServerState, tenant: &str, request: &Value) -> Result<Value, Value> {
    if let Err(denial) = state.tenants.take_token(tenant) {
        return Ok(denial.to_value());
    }
    let stream = request
        .get("stream")
        .and_then(Value::as_str)
        .ok_or_else(|| wire::error_value(codes::BAD_REQUEST, "missing \"stream\""))?;
    let text = request
        .get("symbols")
        .and_then(Value::as_str)
        .ok_or_else(|| wire::error_value(codes::BAD_REQUEST, "missing \"symbols\""))?;
    let symbols = letters_to_symbols(text)
        .map_err(|c| wire::error_value(codes::BAD_REQUEST, format!("symbol {c:?} not in A–Z")))?;
    match state.ingest.append(stream, &symbols) {
        Ok(AppendOutcome::Buffered { pending, deferred }) => Ok(Value::Object(vec![
            ("type".into(), Value::str("ingest")),
            ("outcome".into(), Value::str("buffered")),
            ("pending".into(), Value::u64(pending as u64)),
            ("deferred".into(), Value::Bool(deferred)),
        ])),
        Ok(AppendOutcome::Flushed(report)) => Ok(Value::Object(vec![
            ("type".into(), Value::str("ingest")),
            ("outcome".into(), Value::str("flushed")),
            ("window".into(), Value::u64(report.window)),
            ("epoch".into(), Value::u64(report.epoch)),
            ("symbols".into(), Value::u64(report.symbols as u64)),
            (
                "result".into(),
                wire::mine_response_value(&report.response, &state.alphabet),
            ),
        ])),
        Err(e) => Err(ingest_error_value(&e)),
    }
}

fn ingest_error_value(e: &IngestError) -> Value {
    match e {
        IngestError::UnknownTenant(name) => wire::error_value(
            codes::UNKNOWN_STREAM,
            format!("no stream registered as {name:?}"),
        ),
        IngestError::DuplicateTenant(name) => wire::error_value(
            codes::BAD_REQUEST,
            format!("stream {name:?} is already registered"),
        ),
        IngestError::TimedStream(name) => wire::error_value(
            codes::BAD_REQUEST,
            format!("stream {name:?} carries timestamps; symbol appends cannot grow it"),
        ),
        IngestError::Core(e) => wire::error_value(codes::BAD_REQUEST, e.to_string()),
        IngestError::Serve(e) => wire::serve_error_value(e),
    }
}

/// Maps `A`–`Z` letters to latin26 symbol ids.
fn letters_to_symbols(text: &str) -> Result<Vec<u8>, char> {
    text.chars()
        .map(|c| {
            if c.is_ascii_uppercase() {
                Ok(c as u8 - b'A')
            } else {
                Err(c)
            }
        })
        .collect()
}
