//! # tdm-server — the network front-end
//!
//! The serving layer (`tdm-serve`) made the mining engine concurrent and
//! multi-tenant *in process*; this crate puts it behind a socket. A
//! [`Server`] is a std-only TCP front-end (no async runtime — the workspace
//! is offline and shim-based) speaking a length-prefixed JSON protocol
//! ([`wire`]): an acceptor thread plus a bounded pool of connection-handler
//! threads, all funneling work into one shared
//! [`MiningService`](tdm_serve::MiningService).
//!
//! What the socket path adds over in-process serving:
//!
//! * **tenants** ([`tenant`]) — API keys, token-bucket rate limits, and
//!   per-tenant in-flight quotas (the admission machinery's non-blocking
//!   `try_acquire`, so one tenant's backlog cannot starve another's);
//! * **deadlines** — a request's `deadline_ms` becomes a
//!   [`CancelToken`](tdm_core::CancelToken) checked *inside the level
//!   loop*: an abandoned scan stops at the next level boundary, releases
//!   its in-flight slot, and the client gets a typed `"deadline"` error;
//! * **observability** — a `"stats"` request surfaces the service, cache,
//!   co-mining, ingest, and connection counters as wire-readable JSON;
//! * **streaming** — `"register"`/`"ingest"` requests route appends into
//!   [`StreamIngest`](tdm_serve::StreamIngest), so the trigger/fence
//!   re-mining path is reachable over the wire;
//! * **backpressure you can act on** — overload rejections carry the
//!   observed queue depth and a [`retry_after_hint`]
//!   so closed-loop clients back off proportionally.
//!
//! Everything the in-process path guarantees still holds over the wire:
//! responses are bit-identical to a serial `Miner::mine` of the same
//! request, concurrent same-database requests fuse on the pre-admission
//! batch board, and cached sessions keep their compiled buffers warm across
//! connections. The workspace `tests/server_e2e.rs` suite proves each of
//! those claims against a real loopback listener.
//!
//! ```no_run
//! use tdm_server::{Client, Server, ServerConfig, TenantConfig};
//! use tdm_server::client::{mine_request, stats_request};
//!
//! let server = Server::bind(ServerConfig {
//!     tenants: vec![TenantConfig::new("acme", "secret")],
//!     ..Default::default()
//! }).unwrap();
//!
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.call(&mine_request(
//!     "acme", "secret", &"ABCA".repeat(50), 0.05, Some(2), None, None, None,
//! )).unwrap();
//! assert_eq!(reply.get("type").unwrap().as_str(), Some("mine_result"));
//!
//! let stats = client.call(&stats_request("acme", "secret")).unwrap();
//! assert_eq!(stats.get("type").unwrap().as_str(), Some("stats"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod json;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{Client, ClientError};
pub use json::{JsonError, Value};
pub use server::{ExecutorFactory, Server, ServerConfig, ServerCounters, MAX_WORKLOAD_N};
pub use tenant::{Denial, TenantConfig, TenantRegistry};
pub use wire::{retry_after_hint, FrameError, MAX_FRAME};
