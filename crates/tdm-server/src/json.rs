//! A small, dependency-free JSON document model.
//!
//! The workspace runs offline against shim crates, and the serde shim is a
//! trait stand-in with no serializer behind it — so the wire protocol
//! hand-rolls its JSON here. The parser is written for *hostile* input
//! (it backs a network server): it never panics, never recurses past
//! [`MAX_DEPTH`], and reports typed errors with byte positions.

/// Nesting bound for arrays/objects. Deeper documents are rejected rather
/// than recursed into — parse depth is attacker-controlled input.
pub const MAX_DEPTH: usize = 64;

/// One JSON value. Objects preserve key order (insertion order on build,
/// document order on parse); duplicate keys are kept as-is and [`Value::get`]
/// returns the first.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. Stored as `f64`, which is exact for the integer
    /// counters this protocol carries (all below 2^53).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds a string value (convenience for protocol assembly).
    pub fn str(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// Builds a number value from any unsigned counter.
    pub fn u64(n: u64) -> Value {
        Value::Number(n as f64)
    }

    /// Looks up a key on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer. `None` when the value
    /// is not a number, is negative, or has a fractional part.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write;
    if !n.is_finite() {
        // JSON has no NaN/Infinity; degrade to null rather than emit garbage.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` on f64 prints the shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what was wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What the parser expected or refused.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn literal(&mut self, word: &'static [u8], what: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than MAX_DEPTH"));
        }
        match self.peek() {
            Some(b'n') => self.literal(b"null", "expected null").map(|()| Value::Null),
            Some(b't') => self
                .literal(b"true", "expected true")
                .map(|()| Value::Bool(true)),
            Some(b'f') => self
                .literal(b"false", "expected false")
                .map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes (the input is valid UTF-8 by
            // construction — it arrived as &str).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is utf8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{0008}'),
            b'f' => out.push('\u{000C}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the low half immediately after.
                    self.literal(b"\\u", "expected low surrogate after high surrogate")?;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            _ => return Err(self.err("unknown escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a') as u32 + 10,
                b'A'..=b'F' => (b - b'A') as u32 + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("input is utf8");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => Err(JsonError {
                at: start,
                what: "malformed number",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"type":"mine","alpha":0.05,"max_level":3,"flags":[true,false,null]}"#)
            .unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("mine"));
        assert_eq!(v.get("alpha").unwrap().as_f64(), Some(0.05));
        assert_eq!(v.get("max_level").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("flags").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let original = Value::Object(vec![(
            "s".into(),
            Value::str("a\"b\\c\nd\te\u{0007}é\u{1F600}"),
        )]);
        let text = original.encode();
        assert_eq!(parse(&text).unwrap(), original);
        // Standard escape syntax parses too (incl. a surrogate pair).
        let v = parse(r#""\u0041\u00e9\ud83d\ude00\/""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé\u{1F600}/"));
    }

    #[test]
    fn rejects_malformed_documents_with_positions() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"",
            "{\"a\":}",
            "tru",
            "01x",
            "\"\\q\"",
            "1 2",
            "{\"a\":1,}",
            "[,]",
            "\"unterminated",
            "nul",
            "-",
            "1e",
            "\"\\ud800\"",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn depth_bound_refuses_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(
            parse(&deep).unwrap_err().what,
            "nesting deeper than MAX_DEPTH"
        );
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn integers_encode_without_a_fraction() {
        assert_eq!(Value::u64(393_019).encode(), "393019");
        assert_eq!(Value::Number(0.25).encode(), "0.25");
        assert_eq!(Value::Number(f64::NAN).encode(), "null");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Any byte soup either parses or errors — it must never panic.
        #[test]
        fn parser_total_on_random_input(bytes in proptest::collection::vec(0u8..=255, 0..64)) {
            if let Ok(text) = std::str::from_utf8(&bytes) {
                let _ = parse(text);
            }
        }

        /// Encode → parse is the identity on numbers.
        #[test]
        fn numbers_round_trip(n in -1.0e12f64..1.0e12) {
            let v = parse(&Value::Number(n).encode()).unwrap();
            prop_assert_eq!(v.as_f64().unwrap(), n);
        }
    }
}
