//! The wire protocol: length-prefixed JSON frames and the request/response
//! vocabulary.
//!
//! A frame is a 4-byte big-endian length prefix followed by that many bytes
//! of UTF-8 JSON. Both directions use the same framing; one request frame
//! yields exactly one response frame, and requests on one connection are
//! served in order. The length prefix is attacker-controlled input: frames
//! longer than the server's cap are refused with a typed error before any
//! payload is read.
//!
//! Requests are JSON objects dispatched on `"type"`:
//!
//! * `"mine"` — mine a database (inline `"events"` letters or a named
//!   `"workload"`) under a [`MinerConfig`]; responds
//!   with `"mine_result"`.
//! * `"stats"` — a point-in-time metrics snapshot; responds with `"stats"`.
//! * `"register"` — register a streaming tenant (seed events + config +
//!   triggers); responds with `"registered"`.
//! * `"ingest"` — append symbols to a registered stream; responds with
//!   `"ingest"` (`"buffered"` or `"flushed"` + the re-mine result).
//!
//! Every request carries `"tenant"` and `"api_key"`. Failures of any kind
//! are `"error"` responses with a machine-readable `"code"` (see
//! [`codes`]); an overloaded rejection carries the queue depth it observed
//! and a [`retry_after_hint`] so closed-loop clients back off proportionally
//! to the congestion they caused.

use std::io::{self, Read, Write};
use std::time::Duration;

use tdm_core::{Alphabet, MinerConfig, MiningResult};
use tdm_serve::{
    CacheOutcome, CacheStats, CoMiningStats, IngestStats, MiningResponse, ServeError, ServiceStats,
};

use crate::json::Value;

/// Default cap on a frame's payload length (1 MiB). Covers ~1M inline event
/// letters; anything larger is a protocol error, not a buffer to allocate.
pub const MAX_FRAME: usize = 1 << 20;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// No bytes arrived within the socket's read timeout while waiting for
    /// the *start* of a frame — the connection is idle, not broken. Servers
    /// use this to poll their shutdown flag between requests.
    Idle,
    /// The connection died mid-frame (EOF or timeout inside the prefix or
    /// payload).
    Truncated,
    /// The length prefix exceeded the negotiated cap. Nothing was read past
    /// the prefix.
    Oversized {
        /// The length the prefix declared.
        declared: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// Any other socket error.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "peer closed the connection"),
            FrameError::Idle => write!(f, "no frame within the read timeout"),
            FrameError::Truncated => write!(f, "connection ended mid-frame"),
            FrameError::Oversized { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one frame, distinguishing a clean close and an idle timeout (both
/// only *before* the first prefix byte) from a mid-frame truncation.
pub fn read_frame(stream: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    // The first byte separates Closed/Idle from Truncated.
    loop {
        match stream.read(&mut prefix[..1]) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if is_timeout(&e) => return Err(FrameError::Idle),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    read_exactly(stream, &mut prefix[1..])?;
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max {
        return Err(FrameError::Oversized { declared, max });
    }
    let mut payload = vec![0u8; declared];
    read_exactly(stream, &mut payload)?;
    Ok(payload)
}

/// `read_exact`, but timeouts and EOF mid-frame both map to `Truncated`.
fn read_exactly(stream: &mut impl Read, mut buf: &mut [u8]) -> Result<(), FrameError> {
    while !buf.is_empty() {
        match stream.read(buf) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => buf = &mut buf[n..],
            Err(e) if is_timeout(&e) => return Err(FrameError::Truncated),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Writes one frame (prefix + payload) and flushes.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(payload)?;
    stream.flush()
}

/// The machine-readable `"code"` values an `"error"` response may carry.
pub mod codes {
    /// The frame was not a well-formed request (bad JSON, missing fields,
    /// unknown `"type"`, events outside the alphabet, …).
    pub const BAD_REQUEST: &str = "bad_request";
    /// Unknown tenant or wrong API key.
    pub const UNAUTHORIZED: &str = "unauthorized";
    /// The tenant's token bucket is empty; retry after `retry_after_ms`.
    pub const RATE_LIMITED: &str = "rate_limited";
    /// The tenant's in-flight quota is exhausted; retry after
    /// `retry_after_ms`. Other tenants are unaffected.
    pub const QUOTA: &str = "quota";
    /// The service's waiting room is full; carries `pending`, `limit`, and
    /// `retry_after_ms`.
    pub const OVERLOADED: &str = "overloaded";
    /// The request's deadline passed; the level loop was cancelled at
    /// `level` and the in-flight slot released.
    pub const DEADLINE: &str = "deadline";
    /// The mining backend failed.
    pub const MINE_FAILED: &str = "mine_failed";
    /// An ingest call named an unregistered stream.
    pub const UNKNOWN_STREAM: &str = "unknown_stream";
    /// The declared frame length exceeded the server's cap (sent just
    /// before the server closes the connection).
    pub const OVERSIZED_FRAME: &str = "oversized_frame";
}

/// How long an overloaded/throttled client should wait before retrying.
///
/// The hint scales linearly with the queue depth the rejection observed —
/// the deeper the waiting room, the longer the drain, and under aging
/// admission the queue drains in near-arrival order, so depth is an honest
/// proxy for position. Clamped to [[`RETRY_FLOOR_MS`], [`RETRY_CAP_MS`]]:
/// never zero (a tight retry loop re-rejects instantly) and never so long
/// that a recovered server sits idle.
pub fn retry_after_hint(pending: usize, limit: usize) -> u64 {
    // ~25ms of drain per queued request ahead of this one; an unbounded
    // waiting room (limit 0) still hints from its observed depth.
    let _ = limit;
    let per_slot: u64 = 25;
    (per_slot * (pending as u64 + 1)).clamp(RETRY_FLOOR_MS, RETRY_CAP_MS)
}

/// Minimum retry hint ([`retry_after_hint`]).
pub const RETRY_FLOOR_MS: u64 = 25;
/// Maximum retry hint ([`retry_after_hint`]).
pub const RETRY_CAP_MS: u64 = 5_000;

/// Builds an `"error"` response value.
pub fn error_value(code: &str, message: impl Into<String>) -> Value {
    Value::Object(vec![
        ("type".into(), Value::str("error")),
        ("code".into(), Value::str(code)),
        ("message".into(), Value::String(message.into())),
    ])
}

/// Maps a serving-layer failure to its wire error, attaching the retry-after
/// hint to overload rejections and the cancellation level to deadline
/// errors.
pub fn serve_error_value(e: &ServeError) -> Value {
    match e {
        ServeError::Overloaded { pending, limit } => {
            let mut v = error_value(codes::OVERLOADED, e.to_string());
            push(&mut v, "pending", Value::u64(*pending as u64));
            push(&mut v, "limit", Value::u64(*limit as u64));
            push(
                &mut v,
                "retry_after_ms",
                Value::u64(retry_after_hint(*pending, *limit)),
            );
            v
        }
        ServeError::Cancelled { level } => {
            let mut v = error_value(codes::DEADLINE, e.to_string());
            push(&mut v, "level", Value::u64(*level as u64));
            v
        }
        ServeError::Mine(_) => error_value(codes::MINE_FAILED, e.to_string()),
    }
}

fn push(v: &mut Value, key: &str, item: Value) {
    if let Value::Object(pairs) = v {
        pairs.push((key.into(), item));
    }
}

/// Renders a [`MiningResult`] as wire JSON. Episode items are spelled with
/// the alphabet's symbol names, so the document is bit-reproducible from
/// the result alone — the e2e suite compares serial mining to socket
/// responses *through this same encoding*.
pub fn mining_result_value(result: &MiningResult, alphabet: &Alphabet) -> Value {
    let levels = result
        .levels
        .iter()
        .map(|level| {
            let frequent = level
                .frequent
                .iter()
                .map(|(episode, count)| {
                    let name: String = episode
                        .items()
                        .iter()
                        .map(|&id| alphabet.name(tdm_core::Symbol(id)))
                        .collect();
                    Value::Array(vec![Value::String(name), Value::u64(*count)])
                })
                .collect();
            Value::Object(vec![
                ("level".into(), Value::u64(level.level as u64)),
                ("candidates".into(), Value::u64(level.candidates as u64)),
                ("frequent".into(), Value::Array(frequent)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("db_len".into(), Value::u64(result.db_len as u64)),
        ("levels".into(), Value::Array(levels)),
    ])
}

/// Renders a full `"mine_result"` response (result + serving measurements).
pub fn mine_response_value(response: &MiningResponse, alphabet: &Alphabet) -> Value {
    let cache = match response.stats.cache {
        CacheOutcome::Hit => "hit",
        CacheOutcome::Miss => "miss",
        CacheOutcome::CoMined => "comined",
    };
    Value::Object(vec![
        ("type".into(), Value::str("mine_result")),
        (
            "result".into(),
            mining_result_value(&response.result, alphabet),
        ),
        ("cache".into(), Value::str(cache)),
        (
            "queue_wait_us".into(),
            Value::u64(duration_us(response.stats.queue_wait)),
        ),
        (
            "mine_time_us".into(),
            Value::u64(duration_us(response.stats.mine_time)),
        ),
    ])
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

fn cache_stats_value(stats: &CacheStats) -> Value {
    Value::Object(vec![
        ("hits".into(), Value::u64(stats.hits)),
        ("misses".into(), Value::u64(stats.misses)),
        ("evictions".into(), Value::u64(stats.evictions)),
        ("collisions".into(), Value::u64(stats.collisions)),
    ])
}

fn comining_stats_value(stats: &CoMiningStats) -> Value {
    Value::Object(vec![
        ("batches".into(), Value::u64(stats.batches)),
        ("fused_requests".into(), Value::u64(stats.fused_requests)),
        ("solo_fallbacks".into(), Value::u64(stats.solo_fallbacks)),
        (
            "waiting_room_joins".into(),
            Value::u64(stats.waiting_room_joins),
        ),
        (
            "backend_votes_overridden".into(),
            Value::u64(stats.backend_votes_overridden),
        ),
    ])
}

/// Renders [`ServiceStats`] + [`IngestStats`] as the `"stats"` response
/// body (the server adds its own connection counters alongside).
pub fn stats_value(service: &ServiceStats, ingest: &IngestStats) -> Value {
    Value::Object(vec![
        (
            "service".into(),
            Value::Object(vec![
                ("completed".into(), Value::u64(service.completed)),
                ("failed".into(), Value::u64(service.failed)),
                ("rejected".into(), Value::u64(service.rejected)),
                ("cancelled".into(), Value::u64(service.cancelled)),
                ("cache".into(), cache_stats_value(&service.cache)),
                ("co_cache".into(), cache_stats_value(&service.co_cache)),
                ("comining".into(), comining_stats_value(&service.comining)),
            ]),
        ),
        (
            "ingest".into(),
            Value::Object(vec![
                ("appends".into(), Value::u64(ingest.appends)),
                (
                    "appended_symbols".into(),
                    Value::u64(ingest.appended_symbols),
                ),
                (
                    "deferred_appends".into(),
                    Value::u64(ingest.deferred_appends),
                ),
                ("windows_sealed".into(), Value::u64(ingest.windows_sealed)),
                ("remines".into(), Value::u64(ingest.remines)),
                ("fused_remines".into(), Value::u64(ingest.fused_remines)),
            ]),
        ),
    ])
}

/// Reads the `MinerConfig` fields off a request object (`"alpha"`,
/// `"max_level"`, `"distinct_items_only"`), with the core defaults for
/// absent fields.
pub fn config_from(v: &Value) -> Result<MinerConfig, &'static str> {
    let mut config = MinerConfig::default();
    if let Some(alpha) = v.get("alpha") {
        config.alpha = alpha.as_f64().ok_or("\"alpha\" must be a number")?;
        if !(0.0..=1.0).contains(&config.alpha) {
            return Err("\"alpha\" must be within [0, 1]");
        }
    }
    if let Some(level) = v.get("max_level") {
        let level = level.as_u64().ok_or("\"max_level\" must be an integer")?;
        config.max_level = Some(usize::try_from(level).map_err(|_| "\"max_level\" too large")?);
    }
    if let Some(flag) = v.get("distinct_items_only") {
        config.distinct_items_only = flag
            .as_bool()
            .ok_or("\"distinct_items_only\" must be a boolean")?;
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"type\":\"stats\"}").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cursor = io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap(),
            b"{\"type\":\"stats\"}"
        );
        assert_eq!(read_frame(&mut cursor, MAX_FRAME).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_prefix_is_refused_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_be_bytes());
        wire.extend_from_slice(b"whatever");
        match read_frame(&mut io::Cursor::new(wire), 1024) {
            Err(FrameError::Oversized { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("wrong outcome: {other:?}"),
        }
    }

    #[test]
    fn truncation_is_distinguished_from_clean_close() {
        // A prefix that promises more payload than follows.
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_be_bytes());
        wire.extend_from_slice(b"hi");
        assert!(matches!(
            read_frame(&mut io::Cursor::new(wire), 1024),
            Err(FrameError::Truncated)
        ));
        // A prefix cut mid-way.
        assert!(matches!(
            read_frame(&mut io::Cursor::new(vec![0u8, 0]), 1024),
            Err(FrameError::Truncated)
        ));
        // Nothing at all: clean close.
        assert!(matches!(
            read_frame(&mut io::Cursor::new(Vec::new()), 1024),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn retry_hint_grows_with_depth_and_stays_clamped() {
        // An empty queue still backs off a little.
        assert_eq!(retry_after_hint(0, 8), RETRY_FLOOR_MS);
        // Monotone in observed depth.
        let mut last = 0;
        for pending in 0..64 {
            let hint = retry_after_hint(pending, 8);
            assert!(hint >= last, "hint regressed at depth {pending}");
            last = hint;
        }
        // Deep queues saturate at the cap instead of stranding the client.
        assert_eq!(retry_after_hint(10_000, 8), RETRY_CAP_MS);
        // The unbounded-waiting-room sentinel (limit 0) still maps sanely.
        assert_eq!(retry_after_hint(3, 0), 100);
    }

    #[test]
    fn overloaded_wire_error_carries_depth_and_retry_hint() {
        let v = serve_error_value(&ServeError::Overloaded {
            pending: 7,
            limit: 8,
        });
        assert_eq!(v.get("type").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("code").unwrap().as_str(), Some(codes::OVERLOADED));
        assert_eq!(v.get("pending").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("limit").unwrap().as_u64(), Some(8));
        assert_eq!(
            v.get("retry_after_ms").unwrap().as_u64(),
            Some(retry_after_hint(7, 8))
        );
        // The document survives an encode/parse cycle intact.
        let reparsed = json::parse(&v.encode()).unwrap();
        assert_eq!(reparsed.get("retry_after_ms").unwrap().as_u64(), Some(200));
    }

    #[test]
    fn deadline_wire_error_carries_the_cancellation_level() {
        let v = serve_error_value(&ServeError::Cancelled { level: 3 });
        assert_eq!(v.get("code").unwrap().as_str(), Some(codes::DEADLINE));
        assert_eq!(v.get("level").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn config_parsing_validates_fields() {
        let v = json::parse(r#"{"alpha":0.05,"max_level":3,"distinct_items_only":false}"#).unwrap();
        let config = config_from(&v).unwrap();
        assert_eq!(config.alpha, 0.05);
        assert_eq!(config.max_level, Some(3));
        assert!(!config.distinct_items_only);
        // Defaults apply when absent.
        let defaults = config_from(&json::parse("{}").unwrap()).unwrap();
        assert_eq!(defaults.max_level, None);
        // Out-of-range and mistyped fields are refused.
        assert!(config_from(&json::parse(r#"{"alpha":1.5}"#).unwrap()).is_err());
        assert!(config_from(&json::parse(r#"{"max_level":-1}"#).unwrap()).is_err());
        assert!(config_from(&json::parse(r#"{"distinct_items_only":1}"#).unwrap()).is_err());
    }
}
