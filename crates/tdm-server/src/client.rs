//! A small blocking client for the wire protocol — used by the examples,
//! the socket benchmark, and the e2e suites.

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{self, JsonError, Value};
use crate::wire::{self, FrameError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The response frame could not be read.
    Frame(FrameError),
    /// The response payload was not valid JSON (never expected from this
    /// crate's server).
    Json(JsonError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Json(e) => write!(f, "bad response payload: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection speaking the protocol. Requests on a connection are
/// served strictly in order, so a client is also the unit of serialization.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects; no read timeout (mining replies can take a while).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Connects with a response deadline enforced client-side.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Client> {
        let client = Client::connect(addr)?;
        client.stream.set_read_timeout(Some(timeout))?;
        Ok(client)
    }

    /// Sends one request value and reads its response value.
    pub fn call(&mut self, request: &Value) -> Result<Value, ClientError> {
        wire::write_frame(&mut self.stream, request.encode().as_bytes())?;
        self.read_reply()
    }

    /// Sends one pre-encoded payload in a well-formed frame and reads the
    /// response — for protocol-robustness tests feeding hostile payloads.
    pub fn call_bytes(&mut self, payload: &[u8]) -> Result<Value, ClientError> {
        wire::write_frame(&mut self.stream, payload)?;
        self.read_reply()
    }

    /// Writes raw bytes with **no framing** — for tests that corrupt the
    /// framing layer itself (truncated frames, absurd length prefixes).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one response frame.
    pub fn read_reply(&mut self) -> Result<Value, ClientError> {
        let payload =
            wire::read_frame(&mut self.stream, wire::MAX_FRAME).map_err(ClientError::Frame)?;
        let text = std::str::from_utf8(&payload).map_err(|_| {
            ClientError::Json(JsonError {
                at: 0,
                what: "response is not UTF-8",
            })
        })?;
        json::parse(text).map_err(ClientError::Json)
    }

    /// Half-closes the write side so the server sees a clean EOF.
    pub fn finish(self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}

/// Builds a `"mine"` request value over inline events.
#[allow(clippy::too_many_arguments)]
pub fn mine_request(
    tenant: &str,
    api_key: &str,
    events: &str,
    alpha: f64,
    max_level: Option<usize>,
    backend: Option<&str>,
    priority: Option<&str>,
    deadline_ms: Option<u64>,
) -> Value {
    let mut pairs = vec![
        ("type".into(), Value::str("mine")),
        ("tenant".into(), Value::str(tenant)),
        ("api_key".into(), Value::str(api_key)),
        ("events".into(), Value::str(events)),
        ("alpha".into(), Value::Number(alpha)),
    ];
    if let Some(level) = max_level {
        pairs.push(("max_level".into(), Value::u64(level as u64)));
    }
    if let Some(backend) = backend {
        pairs.push(("backend".into(), Value::str(backend)));
    }
    if let Some(priority) = priority {
        pairs.push(("priority".into(), Value::str(priority)));
    }
    if let Some(ms) = deadline_ms {
        pairs.push(("deadline_ms".into(), Value::u64(ms)));
    }
    Value::Object(pairs)
}

/// Builds a `"stats"` request value.
pub fn stats_request(tenant: &str, api_key: &str) -> Value {
    Value::Object(vec![
        ("type".into(), Value::str("stats")),
        ("tenant".into(), Value::str(tenant)),
        ("api_key".into(), Value::str(api_key)),
    ])
}
