//! Tenants: API keys, token-bucket rate limits, and in-flight quotas.
//!
//! Every wire request names a tenant and presents its API key. Past
//! authentication, two per-tenant gates bound what one tenant can do to the
//! shared service:
//!
//! * a **token bucket** (requests per second with a burst allowance) —
//!   refilled lazily on each check, no background thread;
//! * an **in-flight quota** — a per-tenant [`AdmissionQueue`] consulted with
//!   [`AdmissionQueue::try_acquire`], so a tenant at its quota is refused
//!   *immediately* (with a retry hint) instead of queueing, and can never
//!   occupy more of the service's global waiting room than its quota allows.
//!   Tenant A saturating its own quota therefore cannot starve tenant B:
//!   B's requests reach the global gate regardless of A's backlog.
//!
//! Both gates return typed denials that map 1:1 onto wire error codes.

use std::sync::Mutex;
use std::time::Instant;

use tdm_serve::{AdmissionQueue, Permit};

use crate::wire::{retry_after_hint, RETRY_FLOOR_MS};

/// One tenant's standing configuration.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// The tenant's wire name (`"tenant"` field of every request).
    pub name: String,
    /// The shared secret presented as `"api_key"`.
    pub api_key: String,
    /// Sustained request rate in requests/second; `0.0` disables rate
    /// limiting for this tenant.
    pub rate_per_sec: f64,
    /// Bucket capacity: how many requests may burst after idling. Floored
    /// at 1.0 when rate limiting is on.
    pub burst: f64,
    /// Concurrent in-flight mining requests allowed; `0` means unlimited.
    pub max_in_flight: usize,
}

impl TenantConfig {
    /// A tenant with no rate limit and no quota.
    pub fn new(name: impl Into<String>, api_key: impl Into<String>) -> Self {
        TenantConfig {
            name: name.into(),
            api_key: api_key.into(),
            rate_per_sec: 0.0,
            burst: 0.0,
            max_in_flight: 0,
        }
    }

    /// Sets the token-bucket rate and burst.
    pub fn rate(mut self, per_sec: f64, burst: f64) -> Self {
        self.rate_per_sec = per_sec;
        self.burst = burst;
        self
    }

    /// Sets the in-flight quota.
    pub fn quota(mut self, max_in_flight: usize) -> Self {
        self.max_in_flight = max_in_flight;
        self
    }
}

/// Why a tenant gate refused a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Denial {
    /// No tenant registered under that name.
    UnknownTenant,
    /// The API key did not match.
    BadKey,
    /// The token bucket is empty.
    RateLimited {
        /// When the next token lands, in milliseconds.
        retry_after_ms: u64,
    },
    /// The tenant is at its in-flight quota.
    QuotaExhausted {
        /// Requests this tenant currently has in flight.
        in_flight: usize,
        /// The configured quota.
        quota: usize,
    },
}

/// Constant-time key equality. Ordinary `==` short-circuits at the first
/// mismatching byte — a timing side channel that can leak key prefixes, and
/// that would undercut keeping `UnknownTenant`/`BadKey` indistinguishable
/// on the wire. Both keys are folded into fixed-width FNV-1a lanes and the
/// lanes compared with one XOR-accumulate, so the comparison does the same
/// work wherever (and whether) the keys differ; each key's digest cost
/// depends only on that key's own length.
fn keys_match(expected: &str, presented: &str) -> bool {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    fn digest(key: &str) -> [u64; 4] {
        // Four lanes with distinct offset bases: 256 digest bits, so an
        // accidental lane collision is not a practical concern.
        let mut lanes: [u64; 4] = [
            0xcbf2_9ce4_8422_2325,
            0x9ae1_6a3b_2f90_404f,
            0x6c62_272e_07bb_0142,
            0x27d4_eb2f_1656_67c5,
        ];
        for &byte in key.as_bytes() {
            for lane in &mut lanes {
                *lane = (*lane ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
            }
        }
        // Fold the length in so the digest is not purely byte-stream-based.
        for lane in &mut lanes {
            *lane = (*lane ^ key.len() as u64).wrapping_mul(FNV_PRIME);
        }
        lanes
    }
    let (a, b) = (digest(expected), digest(presented));
    let mut diff = 0u64;
    for i in 0..4 {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

#[derive(Debug)]
struct Tenant {
    config: TenantConfig,
    bucket: Mutex<Bucket>,
    /// The quota gate. Only `try_acquire` is ever called on it: quota
    /// rejections are immediate, and its waiting room stays empty.
    gate: Option<AdmissionQueue>,
}

/// A mining request's hold on its tenant's quota; dropping it releases the
/// slot.
#[derive(Debug)]
pub struct QuotaPermit<'a> {
    _permit: Option<Permit<'a>>,
}

/// The set of tenants a server was configured with.
#[derive(Debug)]
pub struct TenantRegistry {
    tenants: Vec<Tenant>,
}

impl TenantRegistry {
    /// Builds the registry. Later duplicates of a name are unreachable (the
    /// first match wins), mirroring object-key lookup on the wire.
    pub fn new(configs: Vec<TenantConfig>) -> Self {
        let tenants = configs
            .into_iter()
            .map(|config| {
                let gate = (config.max_in_flight > 0)
                    .then(|| AdmissionQueue::new(config.max_in_flight, 1));
                Tenant {
                    bucket: Mutex::new(Bucket {
                        tokens: config.burst.max(1.0),
                        refilled: Instant::now(),
                    }),
                    gate,
                    config,
                }
            })
            .collect();
        TenantRegistry { tenants }
    }

    fn find(&self, name: &str) -> Option<&Tenant> {
        self.tenants.iter().find(|t| t.config.name == name)
    }

    /// Checks the tenant exists and the key matches. No token is consumed.
    pub fn authenticate(&self, name: &str, api_key: &str) -> Result<(), Denial> {
        let tenant = self.find(name).ok_or(Denial::UnknownTenant)?;
        if keys_match(&tenant.config.api_key, api_key) {
            Ok(())
        } else {
            Err(Denial::BadKey)
        }
    }

    /// Consumes one rate-limit token, refilling the bucket from wall time
    /// first. Call only after [`TenantRegistry::authenticate`].
    pub fn take_token(&self, name: &str) -> Result<(), Denial> {
        let tenant = self.find(name).ok_or(Denial::UnknownTenant)?;
        if tenant.config.rate_per_sec <= 0.0 {
            return Ok(());
        }
        let cap = tenant.config.burst.max(1.0);
        let mut bucket = tenant.bucket.lock().expect("token bucket");
        let now = Instant::now();
        let refill = now.duration_since(bucket.refilled).as_secs_f64() * tenant.config.rate_per_sec;
        bucket.tokens = (bucket.tokens + refill).min(cap);
        bucket.refilled = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let wait_ms = (deficit / tenant.config.rate_per_sec * 1_000.0).ceil() as u64;
            Err(Denial::RateLimited {
                retry_after_ms: wait_ms.max(RETRY_FLOOR_MS),
            })
        }
    }

    /// Takes an in-flight quota slot, without ever queueing: a tenant at its
    /// quota is refused on the spot with a depth-scaled retry hint, so its
    /// backlog lives client-side, not in the shared waiting room.
    pub fn take_quota(&self, name: &str) -> Result<QuotaPermit<'_>, Denial> {
        let tenant = self.find(name).ok_or(Denial::UnknownTenant)?;
        match &tenant.gate {
            None => Ok(QuotaPermit { _permit: None }),
            Some(gate) => match gate.try_acquire() {
                Some(permit) => Ok(QuotaPermit {
                    _permit: Some(permit),
                }),
                None => Err(Denial::QuotaExhausted {
                    in_flight: gate.in_flight(),
                    quota: tenant.config.max_in_flight,
                }),
            },
        }
    }

    /// This tenant's current in-flight count (0 for unknown or unlimited
    /// tenants) — the idle-accounting hook the leak tests assert on.
    pub fn in_flight(&self, name: &str) -> usize {
        self.find(name)
            .and_then(|t| t.gate.as_ref())
            .map_or(0, AdmissionQueue::in_flight)
    }

    /// Total in-flight requests across all quota-gated tenants.
    pub fn total_in_flight(&self) -> usize {
        self.tenants
            .iter()
            .filter_map(|t| t.gate.as_ref())
            .map(AdmissionQueue::in_flight)
            .sum()
    }
}

impl Denial {
    /// The wire error code this denial maps to.
    pub fn code(&self) -> &'static str {
        match self {
            Denial::UnknownTenant | Denial::BadKey => crate::wire::codes::UNAUTHORIZED,
            Denial::RateLimited { .. } => crate::wire::codes::RATE_LIMITED,
            Denial::QuotaExhausted { .. } => crate::wire::codes::QUOTA,
        }
    }

    /// Renders the denial as a wire `"error"` value.
    pub fn to_value(&self) -> crate::json::Value {
        use crate::json::Value;
        let mut v = crate::wire::error_value(self.code(), self.message());
        if let Value::Object(pairs) = &mut v {
            match self {
                Denial::RateLimited { retry_after_ms } => {
                    pairs.push(("retry_after_ms".into(), Value::u64(*retry_after_ms)));
                }
                Denial::QuotaExhausted { in_flight, quota } => {
                    pairs.push(("in_flight".into(), Value::u64(*in_flight as u64)));
                    pairs.push(("quota".into(), Value::u64(*quota as u64)));
                    pairs.push((
                        "retry_after_ms".into(),
                        Value::u64(retry_after_hint(*in_flight, *quota)),
                    ));
                }
                _ => {}
            }
        }
        v
    }

    fn message(&self) -> String {
        match self {
            // One message for both auth failures: the wire must not disclose
            // whether a tenant name exists.
            Denial::UnknownTenant | Denial::BadKey => "unknown tenant or bad api_key".into(),
            Denial::RateLimited { retry_after_ms } => {
                format!("rate limit exceeded; retry in {retry_after_ms}ms")
            }
            Denial::QuotaExhausted { in_flight, quota } => {
                format!("in-flight quota exhausted ({in_flight}/{quota})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> TenantRegistry {
        TenantRegistry::new(vec![
            TenantConfig::new("acme", "key-a").rate(10.0, 2.0).quota(2),
            TenantConfig::new("beta", "key-b"),
        ])
    }

    #[test]
    fn authentication_does_not_disclose_which_part_failed() {
        let reg = registry();
        assert_eq!(reg.authenticate("acme", "key-a"), Ok(()));
        let wrong_key = reg.authenticate("acme", "nope").unwrap_err();
        let wrong_tenant = reg.authenticate("ghost", "key-a").unwrap_err();
        assert_eq!(wrong_key.code(), wrong_tenant.code());
        assert_eq!(
            wrong_key.to_value().get("message"),
            wrong_tenant.to_value().get("message")
        );
    }

    #[test]
    fn key_comparison_is_exact_across_lengths_and_prefixes() {
        let reg = TenantRegistry::new(vec![TenantConfig::new("acme", "correct-horse")]);
        assert_eq!(reg.authenticate("acme", "correct-horse"), Ok(()));
        // Prefixes, extensions, near-misses, and the empty key all fail —
        // the digest comparison must not be fooled by shared prefixes.
        for wrong in [
            "",
            "c",
            "correct-hors",
            "correct-horsE",
            "correct-horse ",
            "correct-horse-battery",
            "battery-staple",
        ] {
            assert_eq!(
                reg.authenticate("acme", wrong),
                Err(Denial::BadKey),
                "{wrong:?}"
            );
        }
    }

    #[test]
    fn token_bucket_allows_burst_then_throttles_with_a_hint() {
        let reg = registry();
        // Burst of 2: two immediate requests pass, the third is throttled.
        assert!(reg.take_token("acme").is_ok());
        assert!(reg.take_token("acme").is_ok());
        match reg.take_token("acme").unwrap_err() {
            Denial::RateLimited { retry_after_ms } => {
                // 10 req/s ⇒ the next token is at most 100ms away, and the
                // hint is never below the floor.
                assert!(
                    (RETRY_FLOOR_MS..=100).contains(&retry_after_ms),
                    "{retry_after_ms}"
                );
            }
            other => panic!("wrong denial: {other:?}"),
        }
        // An unlimited tenant is never throttled.
        for _ in 0..100 {
            assert!(reg.take_token("beta").is_ok());
        }
    }

    #[test]
    fn quota_is_per_tenant_and_releases_on_drop() {
        let reg = registry();
        let a1 = reg.take_quota("acme").unwrap();
        let _a2 = reg.take_quota("acme").unwrap();
        assert_eq!(reg.in_flight("acme"), 2);
        // acme is full…
        match reg.take_quota("acme").unwrap_err() {
            Denial::QuotaExhausted { in_flight, quota } => {
                assert_eq!((in_flight, quota), (2, 2));
            }
            other => panic!("wrong denial: {other:?}"),
        }
        // …but beta is untouched by acme's saturation.
        let _b = reg.take_quota("beta").unwrap();
        // Dropping a permit frees the slot.
        drop(a1);
        assert_eq!(reg.in_flight("acme"), 1);
        assert!(reg.take_quota("acme").is_ok());
        assert_eq!(reg.total_in_flight(), 1);
    }
}
