//! The `tdm-server` binary: serve episode mining over TCP.
//!
//! ```text
//! tdm-server [--addr HOST:PORT] [--workers N] [--handlers N]
//!            [--tenant NAME:KEY[:RATE[:QUOTA]]]...
//! ```
//!
//! With no `--tenant`, a single `demo:demo` tenant (no limits) is created.

use std::time::Duration;

use tdm_server::{Server, ServerConfig, TenantConfig};

fn main() {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    let mut tenants: Vec<TenantConfig> = Vec::new();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = expect_value(&mut args, "--addr"),
            "--workers" => {
                config.service.workers = expect_value(&mut args, "--workers")
                    .parse()
                    .unwrap_or_else(|_| usage("--workers takes an integer"))
            }
            "--handlers" => {
                config.handler_threads = expect_value(&mut args, "--handlers")
                    .parse()
                    .unwrap_or_else(|_| usage("--handlers takes an integer"))
            }
            "--tenant" => {
                let spec = expect_value(&mut args, "--tenant");
                tenants.push(parse_tenant(&spec));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    if tenants.is_empty() {
        tenants.push(TenantConfig::new("demo", "demo"));
    }
    config.tenants = tenants;

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tdm-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("tdm-server listening on {}", server.addr());
    // Serve until killed; print a stats line periodically so an operator
    // sees throughput without speaking the protocol.
    loop {
        std::thread::sleep(Duration::from_secs(60));
        let stats = server.service().stats();
        let counters = server.counters();
        println!(
            "served={} failed={} rejected={} cancelled={} connections={} frames={} protocol_errors={}",
            stats.completed,
            stats.failed,
            stats.rejected,
            stats.cancelled,
            counters.connections,
            counters.frames,
            counters.protocol_errors,
        );
    }
}

fn expect_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| usage(&format!("{flag} needs a value")))
}

/// `NAME:KEY[:RATE[:QUOTA]]` — e.g. `acme:s3cret:50:4`.
fn parse_tenant(spec: &str) -> TenantConfig {
    let mut parts = spec.split(':');
    let (Some(name), Some(key)) = (parts.next(), parts.next()) else {
        usage(&format!("--tenant {spec:?} is not NAME:KEY[:RATE[:QUOTA]]"));
    };
    let mut tenant = TenantConfig::new(name, key);
    if let Some(rate) = parts.next() {
        let rate: f64 = rate
            .parse()
            .unwrap_or_else(|_| usage("tenant RATE must be a number"));
        tenant = tenant.rate(rate, (rate / 2.0).max(1.0));
    }
    if let Some(quota) = parts.next() {
        tenant = tenant.quota(
            quota
                .parse()
                .unwrap_or_else(|_| usage("tenant QUOTA must be an integer")),
        );
    }
    tenant
}

fn usage(problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("tdm-server: {problem}");
    }
    eprintln!(
        "usage: tdm-server [--addr HOST:PORT] [--workers N] [--handlers N] \
         [--tenant NAME:KEY[:RATE[:QUOTA]]]..."
    );
    std::process::exit(2);
}
