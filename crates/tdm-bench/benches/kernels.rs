//! Micro-benchmarks of the library primitives: the FSM scan, the counters, the
//! segmented counting machinery, the lockstep executor, and the simulator's
//! building blocks. These are *real* CPU throughput numbers (not simulated
//! times) — the performance of the reproduction itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::texcache::{StreamPattern, TextureCache};
use gpu_sim::{occupancy, CostModel, DeviceConfig, KernelResources};
use std::hint::black_box;
use tdm_core::candidate::permutations;
use tdm_core::count::{count_episode, count_episodes, count_episodes_naive};
use tdm_core::engine::{CompiledCandidates, CountScratch};
use tdm_core::segment::{count_segmented, count_segmented_exact, even_bounds};
use tdm_core::{Alphabet, Episode};
use tdm_gpu::lockstep::{run_broadcast_warp, FsmCosts};
use tdm_workloads::uniform_letters;

fn fsm_scan(c: &mut Criterion) {
    let db = uniform_letters(100_000, 1);
    let ab = Alphabet::latin26();
    let mut g = c.benchmark_group("fsm_scan");
    g.throughput(Throughput::Bytes(db.len() as u64));
    for ep_str in ["A", "AB", "ABC", "ABCDE"] {
        let ep = Episode::from_str(&ab, ep_str).unwrap();
        g.bench_function(
            BenchmarkId::from_parameter(format!("L{}", ep.level())),
            |b| b.iter(|| black_box(count_episode(&db, &ep))),
        );
    }
    g.finish();
}

fn multi_episode_counting(c: &mut Criterion) {
    let db = uniform_letters(20_000, 2);
    let ab = Alphabet::latin26();
    let mut g = c.benchmark_group("multi_episode_counting");
    g.sample_size(10);
    for level in [1usize, 2] {
        let eps = permutations(&ab, level);
        g.bench_function(
            BenchmarkId::from_parameter(format!("active_set_L{level}")),
            |b| b.iter(|| black_box(count_episodes(&db, &eps))),
        );
        g.bench_function(
            BenchmarkId::from_parameter(format!("naive_L{level}")),
            |b| b.iter(|| black_box(count_episodes_naive(&db, &eps))),
        );
        // The compiled engine: index built once, scratch reused per iteration.
        let compiled = CompiledCandidates::compile(ab.len(), &eps);
        let mut scratch = CountScratch::new();
        g.bench_function(
            BenchmarkId::from_parameter(format!("engine_compiled_L{level}")),
            |b| b.iter(|| black_box(compiled.count(db.symbols(), &mut scratch))),
        );
        g.bench_function(
            BenchmarkId::from_parameter(format!("engine_sharded4_L{level}")),
            |b| b.iter(|| black_box(compiled.count_sharded(db.symbols(), 4))),
        );
    }
    g.finish();
}

fn segmented_counting(c: &mut Criterion) {
    let db = uniform_letters(100_000, 3);
    let ab = Alphabet::latin26();
    let ep = Episode::from_str(&ab, "ABC").unwrap();
    let mut g = c.benchmark_group("segmented_counting");
    g.throughput(Throughput::Bytes(db.len() as u64));
    for parts in [64usize, 512] {
        let bounds = even_bounds(db.len(), parts);
        g.bench_function(
            BenchmarkId::from_parameter(format!("continuation_{parts}")),
            |b| b.iter(|| black_box(count_segmented(&db, &ep, &bounds))),
        );
        g.bench_function(
            BenchmarkId::from_parameter(format!("exact_compose_{parts}")),
            |b| b.iter(|| black_box(count_segmented_exact(&db, &ep, &bounds))),
        );
    }
    g.finish();
}

fn lockstep_executor(c: &mut Criterion) {
    let db = uniform_letters(50_000, 4);
    let ab = Alphabet::latin26();
    let eps: Vec<Episode> = permutations(&ab, 2).into_iter().take(32).collect();
    let refs: Vec<&[u8]> = eps.iter().map(|e| e.items()).collect();
    let costs = FsmCosts::default();
    let mut g = c.benchmark_group("lockstep_executor");
    g.throughput(Throughput::Elements(db.len() as u64 * 32));
    g.bench_function("broadcast_warp_32_lanes", |b| {
        b.iter(|| black_box(run_broadcast_warp(db.symbols(), &refs, &costs, true).lane_counts))
    });
    g.finish();
}

fn simulator_primitives(c: &mut Criterion) {
    let cost = CostModel::default();
    let cache = TextureCache::new(16 * 1024, &cost);
    let mut g = c.benchmark_group("simulator_primitives");
    g.bench_function("texcache_stream_scan", |b| {
        b.iter(|| {
            black_box(cache.stream_scan(
                &StreamPattern {
                    concurrent_streams: black_box(1024),
                    accesses: 393_019,
                    unique_bytes: 393_019,
                },
                &cost,
            ))
        })
    });
    let dev = DeviceConfig::geforce_gtx_280();
    g.bench_function("occupancy_calculator", |b| {
        b.iter(|| {
            for tpb in [16u32, 64, 96, 128, 256, 512] {
                black_box(occupancy(
                    &dev,
                    &KernelResources::new(tpb)
                        .with_registers(16)
                        .with_shared_mem(4096),
                ));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fsm_scan,
    multi_episode_counting,
    segmented_counting,
    lockstep_executor,
    simulator_primitives
);
criterion_main!(benches);
