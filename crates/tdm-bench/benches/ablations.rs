//! Ablation benches (DESIGN.md §8): re-run representative figure cells with
//! one timing-model mechanism disabled, demonstrating which characterization
//! each mechanism carries. Criterion reports the *simulated* time moving (the
//! measured wall time is the pipeline; the printed `sim_ms` values are the
//! scientific payload, also asserted in the harness tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{CostModel, DeviceConfig};
use std::hint::black_box;
use tdm_core::candidate::permutations;
use tdm_core::Alphabet;
use tdm_gpu::{Algorithm, MiningProblem, SimOptions};
use tdm_workloads::paper_database_scaled;

const BENCH_SCALE: f64 = 0.02;

fn run_sim(algo: Algorithm, level: usize, tpb: u32, cost: &CostModel, opts: &SimOptions) -> f64 {
    let db = paper_database_scaled(BENCH_SCALE);
    let episodes = permutations(&Alphabet::latin26(), level);
    let problem = MiningProblem::new(&db, &episodes);
    problem
        .run(algo, tpb, &DeviceConfig::geforce_gtx_280(), cost, opts)
        .unwrap()
        .report
        .time_ms
}

/// Texture-cache model on/off: carries Characterization 8 (Algorithm 3's
/// bandwidth sensitivity).
fn ablation_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_cache");
    g.sample_size(10);
    for (name, cost) in [
        ("on", CostModel::default()),
        ("off", CostModel::without_texture_cache()),
    ] {
        g.bench_function(
            BenchmarkId::from_parameter(format!("A3-L2-512tpb-cache_{name}")),
            |b| {
                b.iter(|| {
                    black_box(run_sim(
                        Algorithm::BlockTexture,
                        2,
                        512,
                        &cost,
                        &SimOptions::default(),
                    ))
                })
            },
        );
    }
    g.finish();
}

/// Divergence serialization on/off: carries Algorithm 1's cost structure.
fn ablation_divergence(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_divergence");
    g.sample_size(10);
    for (name, cost) in [
        ("on", CostModel::default()),
        ("off", CostModel::without_divergence()),
    ] {
        g.bench_function(
            BenchmarkId::from_parameter(format!("A1-L2-128tpb-div_{name}")),
            |b| {
                b.iter(|| {
                    black_box(run_sim(
                        Algorithm::ThreadTexture,
                        2,
                        128,
                        &cost,
                        &SimOptions::default(),
                    ))
                })
            },
        );
    }
    g.finish();
}

/// Latency hiding on/off: carries Characterization 4 (the latency-bound
/// small-problem regime).
fn ablation_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_latency");
    g.sample_size(10);
    for (name, cost) in [
        ("on", CostModel::default()),
        ("off", CostModel::without_latency_hiding()),
    ] {
        g.bench_function(
            BenchmarkId::from_parameter(format!("A1-L1-256tpb-hiding_{name}")),
            |b| {
                b.iter(|| {
                    black_box(run_sim(
                        Algorithm::ThreadTexture,
                        1,
                        256,
                        &cost,
                        &SimOptions::default(),
                    ))
                })
            },
        );
    }
    g.finish();
}

/// Bank-conflict model on/off: carries Algorithm 4's slice-stride penalty.
fn ablation_bank_conflicts(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_bank_conflicts");
    g.sample_size(10);
    for (name, cost) in [
        ("on", CostModel::default()),
        ("off", CostModel::without_bank_conflicts()),
    ] {
        g.bench_function(
            BenchmarkId::from_parameter(format!("A4-L2-64tpb-banks_{name}")),
            |b| {
                b.iter(|| {
                    black_box(run_sim(
                        Algorithm::BlockBuffered,
                        2,
                        64,
                        &cost,
                        &SimOptions::default(),
                    ))
                })
            },
        );
    }
    g.finish();
}

/// Buffer-size sweep for the buffered kernels (Characterization 2's knob).
fn ablation_buffer_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_buffer_size");
    g.sample_size(10);
    for buffer in [1024u32, 2048, 4096, 8192] {
        let opts = SimOptions {
            buffer_bytes: buffer,
            ..Default::default()
        };
        g.bench_function(
            BenchmarkId::from_parameter(format!("A2-L1-256tpb-buf{buffer}")),
            |b| {
                b.iter(|| {
                    black_box(run_sim(
                        Algorithm::ThreadBuffered,
                        1,
                        256,
                        &CostModel::default(),
                        &opts,
                    ))
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_cache,
    ablation_divergence,
    ablation_latency,
    ablation_bank_conflicts,
    ablation_buffer_size
);
criterion_main!(benches);
