//! Criterion benches, one group per paper artifact (DESIGN.md §6).
//!
//! Each group regenerates the *data* behind one table or figure at a reduced
//! database scale (the `reproduce` binary emits the full-scale CSVs; these
//! benches time the machinery that produces them and track regressions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{CostModel, DeviceConfig};
use std::hint::black_box;
use tdm_bench::{figures, Grid, GridConfig};
use tdm_core::candidate::permutations;
use tdm_core::Alphabet;
use tdm_gpu::{Algorithm, MiningProblem, SimOptions};
use tdm_workloads::paper_database_scaled;

const BENCH_SCALE: f64 = 0.02; // ~7,860 letters: shapes preserved, benches quick

fn bench_cell(
    c: &mut Criterion,
    group: &str,
    id: String,
    algo: Algorithm,
    level: usize,
    tpb: u32,
    card: &DeviceConfig,
) {
    let db = paper_database_scaled(BENCH_SCALE);
    let episodes = permutations(&Alphabet::latin26(), level);
    let cost = CostModel::default();
    let opts = SimOptions::default();
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function(BenchmarkId::from_parameter(id), |b| {
        b.iter(|| {
            // Fresh problem per iteration: measures the full pipeline
            // (ground-truth counts + warp sampling + timing simulation).
            let problem = MiningProblem::new(&db, &episodes);
            let run = problem.run(algo, tpb, card, &cost, &opts).unwrap();
            black_box(run.report.time_ms)
        })
    });
    g.finish();
}

/// Table 1: candidate-space generation (the paper's combinatorial growth).
fn table1_candidates(c: &mut Criterion) {
    let ab = Alphabet::latin26();
    let mut g = c.benchmark_group("table1_candidates");
    for level in [1usize, 2, 3] {
        g.bench_function(BenchmarkId::from_parameter(format!("L{level}")), |b| {
            b.iter(|| black_box(permutations(&ab, level).len()))
        });
    }
    g.finish();
}

/// Figure 6: impact of level — Algorithm 1 and 4 at the levels' extremes.
fn fig6_level_impact(c: &mut Criterion) {
    let gtx = DeviceConfig::geforce_gtx_280();
    for (algo, level) in [
        (Algorithm::ThreadTexture, 1),
        (Algorithm::ThreadTexture, 3),
        (Algorithm::BlockBuffered, 1),
        (Algorithm::BlockBuffered, 3),
    ] {
        bench_cell(
            c,
            "fig6_level_impact",
            format!("A{}-L{level}-tpb128", algo.number()),
            algo,
            level,
            128,
            &gtx,
        );
    }
}

/// Figure 7: impact of algorithm — all four kernels at level 2 on the GTX 280.
fn fig7_algo_impact(c: &mut Criterion) {
    let gtx = DeviceConfig::geforce_gtx_280();
    for algo in Algorithm::ALL {
        bench_cell(
            c,
            "fig7_algo_impact",
            format!("A{}-L2-tpb64", algo.number()),
            algo,
            2,
            64,
            &gtx,
        );
    }
}

/// Figure 8: impact of card — Algorithm 1 (clock-bound) and Algorithm 3
/// (bandwidth-bound) across the testbed.
fn fig8_card_impact(c: &mut Criterion) {
    for card in DeviceConfig::paper_testbed() {
        let tag = card.name.replace("GeForce ", "").replace(' ', "");
        bench_cell(
            c,
            "fig8_card_impact",
            format!("A1-L2-{tag}"),
            Algorithm::ThreadTexture,
            2,
            128,
            &card,
        );
        bench_cell(
            c,
            "fig8_card_impact",
            format!("A3-L1-{tag}"),
            Algorithm::BlockTexture,
            1,
            128,
            &card,
        );
    }
}

/// Figure 9 / full grid: the whole sweep at bench scale (what `reproduce`
/// does at full scale), including figure rendering.
fn fig9_grid(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_grid");
    g.sample_size(10);
    let cfg = GridConfig {
        scale: BENCH_SCALE,
        tpb_sweep: vec![16, 64, 256, 512],
        ..Default::default()
    };
    g.bench_function("full_sweep_and_render", |b| {
        b.iter(|| {
            let grid = Grid::compute(&cfg);
            let f = figures::fig9(&grid);
            black_box(f.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    table1_candidates,
    fig6_level_impact,
    fig7_algo_impact,
    fig8_card_impact,
    fig9_grid
);
criterion_main!(benches);
