//! The paper's eight performance characterizations (§5), as executable checks.
//!
//! Each check encodes the *claim* of one characterization as a quantitative
//! predicate over the measurement grid, with the acceptance thresholds from
//! DESIGN.md §6. The integration test `tests/characterizations.rs` asserts all
//! eight; the `reproduce` binary renders them as a markdown report.

use crate::grid::Grid;

const GTX: &str = "GeForce GTX 280";
const GTS: &str = "GeForce 8800 GTS 512";
const GX2: &str = "GeForce 9800 GX2";

/// Outcome of one characterization check.
#[derive(Debug, Clone)]
pub struct CharacterizationResult {
    /// 1–8, the paper's numbering.
    pub id: u8,
    /// Short name (the paper's section heading).
    pub name: String,
    /// Did the reproduction exhibit the claimed behaviour?
    pub passed: bool,
    /// Measured evidence.
    pub details: String,
}

fn min_time(grid: &Grid, algo: u8, level: usize, card: &str) -> (u32, f64) {
    grid.tpb_axis()
        .iter()
        .map(|&t| (t, grid.get(algo, level, t, card).time_ms))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty axis")
}

/// C1 — "Thread Parallel Algorithm has O(C) Time Complexity Per Episode":
/// Algorithms 1/2 take nearly the same time for 26, 650, or 15,600 episodes.
pub fn c1(grid: &Grid) -> CharacterizationResult {
    let mut worst: f64 = 0.0;
    let mut details = String::new();
    for algo in [1u8, 2] {
        for &tpb in &[96u32, 256] {
            let t1 = grid.get(algo, 1, tpb, GTX).time_ms;
            let t3 = grid.get(algo, 3, tpb, GTX).time_ms;
            let ratio = t3 / t1;
            worst = worst.max(ratio);
            details.push_str(&format!(
                "A{algo}@{tpb}: T(L3)/T(L1) = {ratio:.2} (600x episodes); "
            ));
        }
    }
    CharacterizationResult {
        id: 1,
        name: "Thread-parallel is constant time per episode".into(),
        passed: worst < 8.0,
        details,
    }
}

/// C2 — "Buffering Penalty in Thread Parallel Can be Amortized": Algorithm 2's
/// time decreases as threads are added.
///
/// The check covers the levels where growing the block does not starve the
/// device of blocks. At L = 2 the paper itself notes the block count shrinks
/// with `tpb` (§5.2.2: "blocks will vary … starting with 650/16 and decreasing
/// to 650/512"); past `tpb ≈ 22` a 30-SM card has fewer blocks than SMs, so on
/// real hardware the grid stops covering the device and the amortization claim
/// cannot hold end-to-end — we report L2 but assert L1 and L3.
pub fn c2(grid: &Grid) -> CharacterizationResult {
    let axis = grid.tpb_axis();
    let lo = *axis.first().unwrap();
    let hi = *axis.last().unwrap();
    let mut passed = true;
    let mut details = String::new();
    for &level in &grid.levels() {
        let t_lo = grid.get(2, level, lo, GTX).time_ms;
        let t_hi = grid.get(2, level, hi, GTX).time_ms;
        if level != 2 {
            passed &= t_hi < t_lo;
        }
        details.push_str(&format!(
            "L{level}{}: {t_lo:.2}ms@{lo} -> {t_hi:.2}ms@{hi}; ",
            if level == 2 { " (reported only)" } else { "" }
        ));
    }
    CharacterizationResult {
        id: 2,
        name: "Algorithm 2's load penalty amortizes with more threads".into(),
        passed,
        details,
    }
}

/// C3 — "Block Parallel Does Not Scale with Block Size": Algorithms 3/4 get
/// slower as threads per block grow (at the larger levels), and the
/// level-to-level time growth accelerates.
pub fn c3(grid: &Grid) -> CharacterizationResult {
    let axis = grid.tpb_axis();
    let hi = *axis.last().unwrap();
    let mut passed = true;
    let mut details = String::new();
    for algo in [3u8, 4] {
        // Rising tail at level 3. Algorithm 3's thrash-driven rise is steep;
        // Algorithm 4's span-bookkeeping rise is shallower in our model than in
        // the paper (see EXPERIMENTS.md), so the asserted bar is direction +5%.
        let (best_tpb, best) = min_time(grid, algo, 3, GTX);
        let t_hi = grid.get(algo, 3, hi, GTX).time_ms;
        let rising = t_hi > 1.05 * best;
        // Accelerating level growth at a mid block size.
        let t1 = grid.get(algo, 1, 256, GTX).time_ms;
        let t2 = grid.get(algo, 2, 256, GTX).time_ms;
        let t3 = grid.get(algo, 3, 256, GTX).time_ms;
        let accelerating = (t3 - t2) > (t2 - t1);
        passed &= rising && accelerating;
        details.push_str(&format!(
            "A{algo}: L3 best {best:.1}ms@{best_tpb} vs {t_hi:.1}ms@{hi}; dL2={:.1} dL3={:.1}; ",
            t2 - t1,
            t3 - t2
        ));
    }
    CharacterizationResult {
        id: 3,
        name: "Block-parallel does not scale with block size".into(),
        passed,
        details,
    }
}

/// C4 — "Thread Level Alone not Sufficient for Small Problem Sizes": at L = 1,
/// block-level beats thread-level by an order of magnitude; Algorithm 4 is
/// sub-millisecond on the GTX 280.
pub fn c4(grid: &Grid) -> CharacterizationResult {
    let best_thread = min_time(grid, 1, 1, GTX).1.min(min_time(grid, 2, 1, GTX).1);
    let best_block = min_time(grid, 3, 1, GTX).1.min(min_time(grid, 4, 1, GTX).1);
    let (a4_tpb, a4_best) = min_time(grid, 4, 1, GTX);
    // Sub-millisecond at full scale. For scaled-down runs only the
    // data-dependent part shrinks with the database; kernel launch overhead
    // and per-block setup do not, so keep a 0.1 ms floor.
    let bound_ms = (0.1 + 0.9 * grid.scale).min(1.0);
    let passed = best_block * 10.0 < best_thread && a4_best < bound_ms;
    CharacterizationResult {
        id: 4,
        name: "Thread level alone insufficient at L=1".into(),
        passed,
        details: format!(
            "best thread-level {best_thread:.2}ms, best block-level {best_block:.3}ms, A4 {a4_best:.3}ms@{a4_tpb}"
        ),
    }
}

/// C5 — "Block Level Depends on Block Size for Medium Problem Sizes": at L = 2
/// Algorithm 3's optimum sits at a small block size and beats Algorithm 4's
/// best.
pub fn c5(grid: &Grid) -> CharacterizationResult {
    let (a3_tpb, a3_best) = min_time(grid, 3, 2, GTX);
    let (a4_tpb, a4_best) = min_time(grid, 4, 2, GTX);
    let passed = a3_tpb <= 128 && a3_best < a4_best;
    CharacterizationResult {
        id: 5,
        name: "Block level depends on block size at L=2".into(),
        passed,
        details: format!("A3 best {a3_best:.2}ms@{a3_tpb}; A4 best {a4_best:.2}ms@{a4_tpb}"),
    }
}

/// C6 — "Thread Level Parallelism is Sufficient for Large Problem Sizes": at
/// L = 3 the best thread-level configuration beats the best block-level one.
pub fn c6(grid: &Grid) -> CharacterizationResult {
    let best_thread = min_time(grid, 1, 3, GTX).1.min(min_time(grid, 2, 3, GTX).1);
    let best_block = min_time(grid, 3, 3, GTX).1.min(min_time(grid, 4, 3, GTX).1);
    CharacterizationResult {
        id: 6,
        name: "Thread level sufficient at L=3".into(),
        passed: best_thread < best_block,
        details: format!(
            "best thread-level {best_thread:.1}ms vs best block-level {best_block:.1}ms"
        ),
    }
}

/// C7 — "Thread Level Dependent on Shader Frequency for Small to Medium
/// Problems": Algorithm 1's card ordering at L ≤ 2 follows the shader clock
/// (8800 GTS 512 fastest, GTX 280 slowest).
pub fn c7(grid: &Grid) -> CharacterizationResult {
    let mut passed = true;
    let mut details = String::new();
    for level in [1usize, 2] {
        let mut ok_level = 0usize;
        let axis = grid.tpb_axis();
        for &tpb in &axis {
            let t_gts = grid.get(1, level, tpb, GTS).time_ms;
            let t_gx2 = grid.get(1, level, tpb, GX2).time_ms;
            let t_gtx = grid.get(1, level, tpb, GTX).time_ms;
            if t_gts <= t_gx2 && t_gx2 <= t_gtx {
                ok_level += 1;
            }
        }
        let frac = ok_level as f64 / axis.len() as f64;
        passed &= frac >= 0.8;
        details.push_str(&format!(
            "L{level}: clock ordering holds at {ok_level}/{} tpb; ",
            axis.len()
        ));
    }
    CharacterizationResult {
        id: 7,
        name: "Thread level scales with shader frequency (L<=2)".into(),
        passed,
        details,
    }
}

/// C8 — "Block Level Algorithms Affected by Memory Bandwidth": Algorithm 3 at
/// L = 1 runs fastest on the GTX 280, by roughly the bandwidth gap.
pub fn c8(grid: &Grid) -> CharacterizationResult {
    let axis = grid.tpb_axis();
    let median = |card: &str| -> f64 {
        let mut v: Vec<f64> = axis
            .iter()
            .map(|&t| grid.get(3, 1, t, card).time_ms)
            .collect();
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };
    let m_gts = median(GTS);
    let m_gx2 = median(GX2);
    let m_gtx = median(GTX);
    let passed = m_gtx * 1.5 < m_gts && m_gtx * 1.5 < m_gx2;
    CharacterizationResult {
        id: 8,
        name: "Block level bound by memory bandwidth (A3, L=1)".into(),
        passed,
        details: format!(
            "median ms: 8800={m_gts:.3}, 9800={m_gx2:.3}, GTX280={m_gtx:.3} (bandwidth 57.6/64/141.7 GBps)"
        ),
    }
}

/// Runs all eight checks.
pub fn all(grid: &Grid) -> Vec<CharacterizationResult> {
    vec![
        c1(grid),
        c2(grid),
        c3(grid),
        c4(grid),
        c5(grid),
        c6(grid),
        c7(grid),
        c8(grid),
    ]
}

/// Renders the checks as a markdown report.
pub fn markdown(results: &[CharacterizationResult], grid: &Grid) -> String {
    let mut out = String::new();
    out.push_str("# Characterizations 1–8 (paper §5) — reproduction check\n\n");
    out.push_str(&format!(
        "Database: {} letters (scale {:.2} of the paper's 393,019). Times are simulated.\n\n",
        grid.db_len, grid.scale
    ));
    out.push_str("| # | Characterization | Result | Evidence |\n|---|---|---|---|\n");
    for r in results {
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            r.id,
            r.name,
            if r.passed { "PASS" } else { "FAIL" },
            r.details
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;

    #[test]
    fn checks_run_on_a_quick_grid() {
        // Shapes are asserted (strictly) in tests/characterizations.rs over a
        // larger grid; here we only verify the checks compute and render.
        let g = Grid::compute(&GridConfig {
            scale: 0.02,
            tpb_sweep: vec![16, 64, 96, 128, 256, 512],
            ..Default::default()
        });
        let results = all(&g);
        assert_eq!(results.len(), 8);
        let md = markdown(&results, &g);
        assert!(md.contains("| 8 |"));
        for r in &results {
            assert!(!r.details.is_empty(), "C{} has no evidence", r.id);
        }
    }
}
