//! Minimal ASCII line charts for terminal previews of the figures.

/// Renders series as an ASCII chart (x = positions of `xs`, y auto-scaled).
/// Each series gets a distinct glyph; a legend line follows the plot.
pub fn ascii_chart(
    title: &str,
    xs: &[u32],
    series: &[(String, Vec<f64>)],
    height: usize,
    log_y: bool,
) -> String {
    const GLYPHS: [char; 8] = ['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let height = height.max(4);
    let width = xs.len();
    if width == 0 || series.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let transform = |v: f64| if log_y { v.max(1e-9).log10() } else { v };
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in ys {
            let t = transform(y);
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return format!("{title}\n(no finite data)\n");
    }
    if (hi - lo).abs() < 1e-12 {
        hi = lo + 1.0;
    }
    let mut rows = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (xi, &y) in ys.iter().enumerate() {
            let t = (transform(y) - lo) / (hi - lo);
            let r = ((1.0 - t) * (height - 1) as f64).round() as usize;
            rows[r.min(height - 1)][xi] = glyph;
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let top = if log_y {
        format!("10^{hi:.2}")
    } else {
        format!("{hi:.3}")
    };
    let bottom = if log_y {
        format!("10^{lo:.2}")
    } else {
        format!("{lo:.3}")
    };
    for (i, row) in rows.iter().enumerate() {
        let label = if i == 0 {
            format!("{top:>10} |")
        } else if i == height - 1 {
            format!("{bottom:>10} |")
        } else {
            format!("{:>10} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>10} +{}\n{:>10}  x: tpb {}..{}\n",
        "",
        "-".repeat(width),
        "",
        xs.first().unwrap(),
        xs.last().unwrap()
    ));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", GLYPHS[i % GLYPHS.len()], name))
        .collect();
    out.push_str(&format!("{:>12}{}\n", "", legend.join("   ")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_basic_chart() {
        let xs = vec![16, 32, 64, 128];
        let series = vec![
            ("up".to_string(), vec![1.0, 2.0, 3.0, 4.0]),
            ("down".to_string(), vec![4.0, 3.0, 2.0, 1.0]),
        ];
        let s = ascii_chart("test", &xs, &series, 6, false);
        assert!(s.contains("test"));
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("up") && s.contains("down"));
    }

    #[test]
    fn log_scale_labels() {
        let xs = vec![1, 2];
        let series = vec![("s".to_string(), vec![1.0, 1000.0])];
        let s = ascii_chart("log", &xs, &series, 5, true);
        assert!(s.contains("10^"));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(ascii_chart("empty", &[], &[], 5, false).contains("no data"));
        let s = ascii_chart(
            "flat",
            &[1, 2],
            &[("f".to_string(), vec![2.0, 2.0])],
            5,
            false,
        );
        assert!(s.contains('*'));
    }
}
