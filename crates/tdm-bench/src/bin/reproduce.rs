//! `reproduce` — regenerates every table and figure of the paper.
//!
//! ```text
//! reproduce [TARGETS..] [--out DIR] [--scale S] [--exact] [--quiet]
//!           [--bench-json PATH] [--serve-bench-json PATH] [--gpu-bench-json PATH]
//!           [--serve-open-loop]
//!
//! TARGETS: table1 table2 fig6 fig7 fig8 fig9 best characterizations grid ext
//!          all (default: all; `ext` also runs the paper's future-work
//!          extensions: level-4 sweep, phase pipelining, hardware discovery)
//! --out DIR          output directory for CSV/markdown files (default: results)
//! --scale S          database scale in (0,1], 1.0 = the paper's 393,019 letters
//! --exact            execute every warp exactly instead of sampling (slow; small S)
//! --quiet            suppress ASCII previews
//! --bench-json PATH  run the real-CPU counting-backend benchmark at --scale and
//!                    write the JSON report (e.g. BENCH_counting.json) to PATH;
//!                    with no TARGETS, only the benchmark runs
//! --serve-bench-json PATH  run the multi-tenant serving benchmark (QPS +
//!                    latency at 1/4/16 concurrent clients, the co-mining
//!                    solo-vs-fused scenario, and the tdm-server socket
//!                    rungs over loopback TCP) at --scale and write the
//!                    JSON report (e.g. BENCH_serve.json) to PATH; with no
//!                    TARGETS, only the benchmark(s) run
//! --gpu-bench-json PATH  run the simulated GPU serving-pipeline benchmark
//!                    (persistent fused pipeline vs per-level launches, and
//!                    the K-tenant union launch vs K solo launches; fully
//!                    deterministic) and write the JSON report (e.g.
//!                    BENCH_gpu.json) to PATH; with no TARGETS, only the
//!                    benchmark(s) run
//! --serve-open-loop  also run the open-loop serving benchmark (deterministic
//!                    Poisson-ish arrivals at a target rate; reports queueing
//!                    delay separately from service time). Folded into the
//!                    --serve-bench-json report when given, printed otherwise
//! ```

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use tdm_bench::figures::{best_config, fig6, fig7, fig8, fig9, grid_csv, Figure};
use tdm_bench::{characterize, tables, Grid, GridConfig};

fn save(fig: &Figure, out_dir: &Path, quiet: bool, written: &mut Vec<String>) {
    let path = out_dir.join(format!("{}.csv", fig.name));
    std::fs::write(&path, &fig.csv).expect("write failed");
    written.push(path.display().to_string());
    if !quiet {
        println!("\n{}", fig.preview);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut targets: BTreeSet<String> = BTreeSet::new();
    let mut out_dir = PathBuf::from("results");
    let mut scale = 1.0f64;
    let mut exact = false;
    let mut quiet = false;
    let mut bench_json: Option<PathBuf> = None;
    let mut serve_bench_json: Option<PathBuf> = None;
    let mut gpu_bench_json: Option<PathBuf> = None;
    let mut serve_open_loop = false;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--scale" => {
                scale = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale must be a number in (0,1]");
            }
            "--exact" => exact = true,
            "--quiet" => quiet = true,
            "--bench-json" => {
                bench_json = Some(PathBuf::from(it.next().expect("--bench-json needs a path")));
            }
            "--serve-bench-json" => {
                serve_bench_json = Some(PathBuf::from(
                    it.next().expect("--serve-bench-json needs a path"),
                ));
            }
            "--gpu-bench-json" => {
                gpu_bench_json = Some(PathBuf::from(
                    it.next().expect("--gpu-bench-json needs a path"),
                ));
            }
            "--serve-open-loop" => serve_open_loop = true,
            t => {
                targets.insert(t.to_string());
            }
        }
    }
    if (targets.is_empty()
        && bench_json.is_none()
        && serve_bench_json.is_none()
        && gpu_bench_json.is_none()
        && !serve_open_loop)
        || targets.contains("all")
    {
        targets = [
            "table1",
            "table2",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "best",
            "characterizations",
            "grid",
            "ext",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    let mut written: Vec<String> = Vec::new();

    // Tables need no simulation.
    if targets.contains("table1") {
        let path = out_dir.join("table1.csv");
        std::fs::write(&path, tables::table1_csv(6)).expect("write failed");
        written.push(path.display().to_string());
        if !quiet {
            println!("Table 1 (episodes per level, N=26):");
            for (l, n) in tables::table1(6) {
                println!("  L={l}: {n}");
            }
        }
    }
    if targets.contains("table2") {
        let path = out_dir.join("table2.csv");
        std::fs::write(&path, tables::table2()).expect("write failed");
        written.push(path.display().to_string());
    }

    let need_grid = [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "best",
        "characterizations",
        "grid",
    ]
    .iter()
    .any(|t| targets.contains(*t));
    if need_grid {
        eprintln!(
            "computing measurement grid (scale {scale}, {} mode)...",
            if exact { "exact" } else { "sampled" }
        );
        let mut cfg = GridConfig {
            scale,
            progress: true,
            ..Default::default()
        };
        cfg.opts.exact = exact;
        let started = std::time::Instant::now();
        let grid = Grid::compute(&cfg);
        eprintln!(
            "grid: {} cells in {:.1}s (db = {} letters)",
            grid.cells.len(),
            started.elapsed().as_secs_f64(),
            grid.db_len
        );

        if targets.contains("fig6") {
            for f in fig6(&grid) {
                save(&f, &out_dir, quiet, &mut written);
            }
        }
        if targets.contains("fig7") {
            for f in fig7(&grid) {
                save(&f, &out_dir, quiet, &mut written);
            }
        }
        if targets.contains("fig8") {
            for f in fig8(&grid) {
                save(&f, &out_dir, quiet, &mut written);
            }
        }
        if targets.contains("fig9") {
            for f in fig9(&grid) {
                save(&f, &out_dir, quiet, &mut written);
            }
        }
        if targets.contains("best") {
            let f = best_config(&grid);
            save(&f, &out_dir, false, &mut written);
        }
        if targets.contains("grid") {
            let f = grid_csv(&grid);
            save(&f, &out_dir, true, &mut written);
        }
        if targets.contains("characterizations") {
            let results = characterize::all(&grid);
            let md = characterize::markdown(&results, &grid);
            let path = out_dir.join("characterizations.md");
            std::fs::write(&path, &md).expect("write failed");
            written.push(path.display().to_string());
            println!("\n{md}");
            let passed = results.iter().filter(|r| r.passed).count();
            eprintln!("characterizations: {passed}/8 reproduced");
        }
    }

    if targets.contains("ext") {
        eprintln!("running extension experiments (level-4 sweep, pipelining, discovery)...");
        let ext_scale = scale.min(0.25); // level-4 ground truth is CPU-heavy
        let fig = tdm_bench::extensions::level4_extension(ext_scale);
        save(&fig, &out_dir, quiet, &mut written);
        let pipeline = tdm_bench::extensions::pipeline_report(scale.min(0.5));
        let discovery = tdm_bench::extensions::discovery_report();
        let path = out_dir.join("extensions.md");
        std::fs::write(&path, format!("{pipeline}\n{discovery}")).expect("write failed");
        written.push(path.display().to_string());
        if !quiet {
            println!("\n{pipeline}\n{discovery}");
        }
    }

    if let Some(path) = bench_json {
        eprintln!("benchmarking counting backends (scale {scale})...");
        let bench = tdm_bench::counting_bench::run(&tdm_bench::counting_bench::BenchConfig {
            scale,
            ..Default::default()
        });
        std::fs::write(&path, bench.to_json()).expect("write failed");
        written.push(path.display().to_string());
        if !quiet {
            println!("\n{}", bench.summary());
        }
    }

    if let Some(path) = gpu_bench_json {
        eprintln!("benchmarking the GPU serving pipeline (simulated, deterministic)...");
        let bench = tdm_bench::gpu_bench::run(&tdm_bench::gpu_bench::GpuBenchConfig::default());
        std::fs::write(&path, bench.to_json()).expect("write failed");
        written.push(path.display().to_string());
        if !quiet {
            println!("\n{}", bench.summary());
        }
    }

    if let Some(path) = serve_bench_json {
        eprintln!(
            "benchmarking the serving layer (scale {scale}, 1/4/16 clients + co-mining + socket)..."
        );
        let mut bench = tdm_bench::serve_bench::run(&tdm_bench::serve_bench::ServeBenchConfig {
            scale,
            ..Default::default()
        });
        if serve_open_loop {
            eprintln!("open-loop serving benchmark (deterministic arrival schedule)...");
            bench.open_loop = Some(tdm_bench::serve_bench::run_open_loop(
                &tdm_bench::serve_bench::OpenLoopConfig {
                    scale,
                    ..Default::default()
                },
            ));
        }
        std::fs::write(&path, bench.to_json()).expect("write failed");
        written.push(path.display().to_string());
        if !quiet {
            println!("\n{}", bench.summary());
        }
    } else if serve_open_loop {
        eprintln!("open-loop serving benchmark (scale {scale}, deterministic arrival schedule)...");
        let report =
            tdm_bench::serve_bench::run_open_loop(&tdm_bench::serve_bench::OpenLoopConfig {
                scale,
                ..Default::default()
            });
        println!(
            "open loop @ {:.1} req/s: {} requests in {:.2}s ({:.1} req/s achieved)\n  \
             queueing delay: mean {:.2} ms, p95 {:.2} ms\n  \
             service time:   mean {:.2} ms, p95 {:.2} ms",
            report.rate_hz,
            report.requests,
            report.wall_s,
            report.achieved_rate_hz,
            report.mean_queue_ms,
            report.p95_queue_ms,
            report.mean_service_ms,
            report.p95_service_ms
        );
    }

    eprintln!("\nwrote {} files:", written.len());
    for w in &written {
        eprintln!("  {w}");
    }
}
