//! # tdm-bench — the reproduction harness
//!
//! Regenerates every table and figure of the paper's evaluation (§5, Appendix A)
//! from the simulated kernels:
//!
//! * Table 1 — candidate-count growth ([`tables::table1`]);
//! * Table 2 — card architectural features ([`tables::table2`]);
//! * Figures 6a–d — impact of problem size (level) per algorithm on the GTX 280;
//! * Figures 7a–c — impact of algorithm per level on the GTX 280;
//! * Figures 8a–b — impact of card (shader clock vs. memory bandwidth);
//! * Figures 9a–l — the full appendix grid;
//! * the conclusion's best-configuration table and the eight characterizations.
//!
//! Everything is driven by one [`grid::Grid`] of simulated measurements; the
//! `reproduce` binary writes CSVs plus ASCII previews, and the criterion benches
//! measure representative cells. [`counting_bench`] additionally measures the
//! *real* CPU throughput of every counting backend (the engine's perf
//! trajectory, `BENCH_counting.json`), and [`serve_bench`] measures the
//! multi-tenant serving layer — QPS and latency percentiles at 1/4/16
//! concurrent clients over one shared pool (`BENCH_serve.json`). The
//! simulated-GPU serving trajectory ([`gpu_bench`], `BENCH_gpu.json`) models
//! what the persistent device pipeline buys: fused advances vs per-level
//! launches, and K-tenant union launches vs K solo ones.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod characterize;
pub mod chart;
pub mod counting_bench;
pub mod extensions;
pub mod figures;
pub mod gpu_bench;
pub mod grid;
pub mod serve_bench;
pub mod tables;

pub use grid::{Grid, GridCell, GridConfig};
