//! Real-CPU throughput benchmark of the counting backends — the perf
//! trajectory of the reproduction itself (not simulated GPU time).
//!
//! Times every CPU counting configuration at the paper's levels 1–3 over the
//! (scaled) paper database and emits a hand-rolled JSON report
//! (`BENCH_counting.json`): milliseconds and Msymbols/s per backend, plus two
//! headline ratios against the frozen seed active-set counter — the
//! database-sharded engine (`level2_sharded_vs_seed`) and the best of the
//! single-threaded strategy rows `engine-vertical` / `engine-bitmask`
//! (`level2_best_vs_seed`, the algorithmic win `tools/bench_guard.sh` holds
//! at ≥ 1.0). The seed counter is reimplemented here verbatim (per-call
//! `Vec<Vec<u32>>` anchor index, no compiled layout) so the ratios keep
//! meaning as the engine evolves.
//!
//! Row semantics worth knowing when comparing artifacts across versions: the
//! `engine-sharded-w*` rows time the standalone convenience path
//! (`count_sharded`), which since the shared-pool rewrite includes its
//! per-call `Arc` snapshot of the compiled set and stream (the price of
//! `'static` pool jobs with borrowed inputs — it no longer spawns threads
//! per call). The `session-sharded-pooled` row is the zero-copy session path
//! a mining service actually runs (Arc-shared buffers, persistent pool) and
//! is the row to read for engine-capability trends.

use std::time::Instant;
use tdm_baselines::{MapReduceBackend, SerialScanBackend, ShardedScanBackend};
use tdm_core::candidate::permutations;
use tdm_core::engine::{BitmaskNfa, CompiledCandidates, CountScratch, OccurrenceIndex};
use tdm_core::miner::AutoBackend;
use tdm_core::session::{Executor, MiningSession};
use tdm_core::{Alphabet, Episode, EventDb};
use tdm_mapreduce::pool::default_workers;
use tdm_workloads::paper_database_scaled;

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Database scale relative to the paper's 393,019 letters.
    pub scale: f64,
    /// Episode levels to measure (paper: 1, 2, 3).
    pub levels: Vec<usize>,
    /// Worker counts for the sharded engine.
    pub shard_workers: Vec<usize>,
    /// Timed repetitions per backend (best-of is reported).
    pub repeats: usize,
    /// Candidate sets larger than this skip the one-scan-per-episode serial
    /// baseline (it is quadratically slow and adds nothing at level 3).
    pub serial_scan_cap: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            scale: 1.0,
            levels: vec![1, 2, 3],
            shard_workers: vec![2, 4, 8],
            repeats: 3,
            serial_scan_cap: 1000,
        }
    }
}

/// One backend's timing at one level.
#[derive(Debug, Clone)]
pub struct BackendTiming {
    /// Backend label.
    pub name: String,
    /// Best per-call wall time, milliseconds (min over samples; each sample
    /// loops the call until it spans at least ~2 ms of wall time, so
    /// sub-millisecond calls are still resolved).
    pub ms: f64,
    /// The same best per-call time in integer nanoseconds — the readable
    /// figure for sub-millisecond rows, where a 3-decimal ms column would
    /// render `0.000` and make every ratio against it absurd.
    pub ns: u64,
    /// Stream throughput, million symbols per second.
    pub msymbols_per_s: f64,
}

/// All timings for one episode level.
#[derive(Debug, Clone)]
pub struct LevelBench {
    /// Episode level (length).
    pub level: usize,
    /// Candidate episodes counted.
    pub episodes: usize,
    /// Sum of all counts (functional checksum; every backend must agree).
    pub checksum: u64,
    /// Per-backend timings.
    pub backends: Vec<BackendTiming>,
    /// `seed ms / sharded ms` at the entry with the most workers ≤ 4 — the
    /// acceptance ratio. Falls back to the fewest-worker sharded entry when
    /// none is ≤ 4, and to 0.0 when no sharded entries are configured, so the
    /// value (and the JSON) stays finite for any `shard_workers` list.
    pub sharded4_vs_seed_speedup: f64,
    /// `seed ms / best new-strategy ms` across the single-threaded
    /// `engine-vertical` and `engine-bitmask` rows — the *algorithmic* win
    /// over the seed scanner, independent of host parallelism. 0.0 when
    /// neither strategy row was produced.
    pub best_vs_seed_speedup: f64,
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct CountingBench {
    /// Database length actually used.
    pub db_len: usize,
    /// Scale relative to the paper's database.
    pub scale: f64,
    /// `std::thread::available_parallelism` of the measuring host — sharded
    /// speedups are bounded by this, so readers can judge the ratios.
    pub available_parallelism: usize,
    /// The acceptance headline: level-2 `sharded4_vs_seed_speedup` (0.0 when
    /// level 2 was not measured), surfaced top-level so the CI artifact
    /// records it without readers digging through the level list.
    pub level2_sharded_vs_seed: f64,
    /// The strategy headline: level-2 `best_vs_seed_speedup` (0.0 when level
    /// 2 was not measured). CI fails when this drops below 1.0 — the new
    /// strategies must beat the seed scanner on one core, not via threads.
    pub level2_best_vs_seed: f64,
    /// Per-level results.
    pub levels: Vec<LevelBench>,
}

/// The seed repository's `count_episodes` (PR 1), frozen: active-set scan with
/// a per-call `Vec<Vec<u32>>` anchor index. The benchmark baseline.
fn seed_count_episodes(db: &EventDb, episodes: &[Episode]) -> Vec<u64> {
    let n_eps = episodes.len();
    let mut counts = vec![0u64; n_eps];
    if n_eps == 0 || db.is_empty() {
        return counts;
    }
    let items: Vec<&[u8]> = episodes.iter().map(|e| e.items()).collect();
    let mut state = vec![0u8; n_eps];
    let mut last_step = vec![u64::MAX; n_eps];
    let mut by_first: Vec<Vec<u32>> = vec![Vec::new(); db.alphabet().len()];
    for (i, it) in items.iter().enumerate() {
        by_first[it[0] as usize].push(i as u32);
    }
    let mut active: Vec<u32> = Vec::new();
    let mut next_active: Vec<u32> = Vec::new();
    for (pos, &c) in db.symbols().iter().enumerate() {
        let pos = pos as u64;
        for &ei in &active {
            let e = ei as usize;
            let it = items[e];
            let j = state[e] as usize;
            last_step[e] = pos;
            if c == it[j] {
                if j + 1 == it.len() {
                    counts[e] += 1;
                    state[e] = 0;
                } else {
                    state[e] += 1;
                    next_active.push(ei);
                }
            } else if c == it[0] {
                state[e] = 1;
                next_active.push(ei);
            } else {
                state[e] = 0;
            }
        }
        std::mem::swap(&mut active, &mut next_active);
        next_active.clear();
        for &ei in &by_first[c as usize] {
            let e = ei as usize;
            if state[e] == 0 && last_step[e] != pos {
                if items[e].len() == 1 {
                    counts[e] += 1;
                } else {
                    state[e] = 1;
                    active.push(ei);
                }
            }
        }
    }
    counts
}

/// Minimum wall time one timed sample must span, milliseconds. Calls cheaper
/// than this are looped inside the timer until the sample crosses it, so a
/// sub-millisecond row reports a per-call time averaged over a meaningful
/// window instead of a single timer quantum (which rounds to `0.000 ms` and
/// turns every ratio against the row into noise).
const MIN_SAMPLE_MS: f64 = 2.0;

/// Upper bound on the calibrated inner iteration count (keeps a pathological
/// sub-nanosecond calibration from looping forever).
const MAX_SAMPLE_ITERS: u32 = 10_000;

/// Times `f` with min-of-N sampling: one untimed-for-scoring calibration call
/// sizes an inner iteration count so that every sample spans at least
/// [`MIN_SAMPLE_MS`], then each of `repeats` samples runs `f` that many times
/// and scores `elapsed / iters`. Returns (best per-call ms, last result).
fn time_best<R>(repeats: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Instant::now();
    let mut out = f();
    let first_ms = t.elapsed().as_secs_f64() * 1e3;
    let iters = if first_ms >= MIN_SAMPLE_MS {
        1
    } else {
        ((MIN_SAMPLE_MS / first_ms.max(1e-7)).ceil() as u32).clamp(1, MAX_SAMPLE_ITERS)
    };
    // The calibration call never scores: a single cheap call can land under
    // one timer quantum and report an impossible best.
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        for _ in 0..iters {
            out = f();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1e3 / iters as f64);
    }
    (best, out)
}

/// Runs the benchmark.
pub fn run(cfg: &BenchConfig) -> CountingBench {
    let db = paper_database_scaled(cfg.scale);
    let ab = Alphabet::latin26();
    let n = db.len();
    let throughput = |ms: f64| n as f64 / 1e6 / (ms / 1e3).max(1e-9);
    let row = |name: String, ms: f64| BackendTiming {
        name,
        ms,
        ns: (ms * 1e6).round() as u64,
        msymbols_per_s: throughput(ms),
    };
    let mut levels = Vec::new();
    // One session for the whole benchmark: persistent pool, reusable compiled
    // buffers — the steady state a mining service would run in.
    let mut session = MiningSession::builder(&db).build();
    // The per-symbol occurrence index is built once per database and shared
    // across every level — exactly how sessions cache it (one build serves
    // all levels of a mining run, and every co-mined batch member).
    let index = OccurrenceIndex::build(ab.len(), db.symbols());

    for &level in &cfg.levels {
        let episodes = permutations(&ab, level);
        let compiled = CompiledCandidates::compile(ab.len(), &episodes);
        let mut backends: Vec<BackendTiming> = Vec::new();

        let (seed_ms, reference) = time_best(cfg.repeats, || seed_count_episodes(&db, &episodes));
        backends.push(row("seed-active-set".into(), seed_ms));
        let checksum: u64 = reference.iter().sum();

        let check = |name: &str, counts: &[u64]| {
            assert_eq!(
                counts,
                &reference[..],
                "{name} disagrees with the seed counter at level {level}"
            );
        };

        let mut scratch = CountScratch::new();
        let (ms, counts) = time_best(cfg.repeats, || compiled.count(db.symbols(), &mut scratch));
        check("engine-compiled", &counts);
        backends.push(row("engine-compiled".into(), ms));

        // The two single-threaded strategies that should beat the seed
        // scanner outright: vertical occurrence-list probing and word-packed
        // Shift-And advancement. Their best time feeds the
        // `best_vs_seed_speedup` ratio — an algorithmic win, not parallelism.
        let (vertical_ms, counts) = time_best(cfg.repeats, || {
            compiled.count_vertical(db.symbols(), &index)
        });
        check("engine-vertical", &counts);
        backends.push(row("engine-vertical".into(), vertical_ms));
        let mut best_strategy_ms = vertical_ms;
        if let Some(nfa) = BitmaskNfa::build(&compiled) {
            let (bitmask_ms, counts) = time_best(cfg.repeats, || nfa.count(db.symbols()));
            check("engine-bitmask", &counts);
            backends.push(row("engine-bitmask".into(), bitmask_ms));
            best_strategy_ms = best_strategy_ms.min(bitmask_ms);
        }

        // Effective worker count 1 must dispatch straight to the sequential
        // compiled scan — this row exists to prove the `engine-sharded-w1`
        // time matches `engine-compiled` instead of paying snapshot + pool
        // dispatch + merge for zero parallelism.
        let (ms, counts) = time_best(cfg.repeats, || compiled.count_sharded(db.symbols(), 1));
        check("engine-sharded-w1", &counts);
        backends.push(row("engine-sharded-w1".into(), ms));

        // The ratio entry: the sharded timing with the most workers ≤ 4, or —
        // when no such entry is configured — the fewest-worker entry, so the
        // ratio stays finite for any shard_workers list.
        let mut sharded4: Option<(usize, f64)> = None;
        for &w in &cfg.shard_workers {
            let (ms, counts) = time_best(cfg.repeats, || compiled.count_sharded(db.symbols(), w));
            check("engine-sharded", &counts);
            sharded4 = Some(match sharded4 {
                None => (w, ms),
                Some((bw, bms)) => {
                    let better = if bw <= 4 {
                        w <= 4 && w > bw
                    } else {
                        w <= 4 || w < bw
                    };
                    if better {
                        (w, ms)
                    } else {
                        (bw, bms)
                    }
                }
            });
            backends.push(row(format!("engine-sharded-w{w}"), ms));
        }

        // The session-driven executors: plan once per level (outside the
        // timers, exactly like the engine-* entries precompile above), then
        // time the execute step alone — like-for-like ms across all rows.
        // Pool threads stay persistent across every call below.
        let req = session.plan_candidates(&episodes);
        let time_executor =
            |name: &str, ex: &mut dyn Executor, backends: &mut Vec<BackendTiming>| {
                let (ms, counts) = time_best(cfg.repeats, || {
                    ex.execute(&req).expect("bench executor failed")
                });
                check(name, &counts);
                backends.push(row(name.into(), ms));
            };

        if episodes.len() <= cfg.serial_scan_cap {
            time_executor("cpu-serial-scan", &mut SerialScanBackend, &mut backends);
        }
        time_executor(
            "cpu-mapreduce",
            &mut MapReduceBackend::auto(),
            &mut backends,
        );
        time_executor(
            "session-sharded-pooled",
            &mut ShardedScanBackend::auto(),
            &mut backends,
        );
        // The per-level cost-dispatched executor a session actually runs:
        // picks vertical / bitmask / scan per candidate set.
        time_executor("session-auto", &mut AutoBackend, &mut backends);

        levels.push(LevelBench {
            level,
            episodes: episodes.len(),
            checksum,
            backends,
            sharded4_vs_seed_speedup: sharded4.map(|(_, ms)| seed_ms / ms).unwrap_or(0.0),
            best_vs_seed_speedup: seed_ms / best_strategy_ms,
        });
    }

    let level2 = levels.iter().find(|l| l.level == 2);
    let level2_sharded_vs_seed = level2.map(|l| l.sharded4_vs_seed_speedup).unwrap_or(0.0);
    let level2_best_vs_seed = level2.map(|l| l.best_vs_seed_speedup).unwrap_or(0.0);
    CountingBench {
        db_len: n,
        scale: cfg.scale,
        available_parallelism: default_workers(),
        level2_sharded_vs_seed,
        level2_best_vs_seed,
        levels,
    }
}

impl CountingBench {
    /// Serializes the report as pretty JSON (hand-rolled; the workspace builds
    /// offline without a JSON crate).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"db_len\": {},\n", self.db_len));
        s.push_str(&format!("  \"scale\": {},\n", self.scale));
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!(
            "  \"level2_sharded_vs_seed\": {:.4},\n",
            self.level2_sharded_vs_seed
        ));
        s.push_str(&format!(
            "  \"level2_best_vs_seed\": {:.4},\n",
            self.level2_best_vs_seed
        ));
        s.push_str("  \"levels\": [\n");
        for (i, l) in self.levels.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"level\": {},\n", l.level));
            s.push_str(&format!("      \"episodes\": {},\n", l.episodes));
            s.push_str(&format!("      \"checksum\": {},\n", l.checksum));
            s.push_str(&format!(
                "      \"sharded4_vs_seed_speedup\": {:.4},\n",
                l.sharded4_vs_seed_speedup
            ));
            s.push_str(&format!(
                "      \"best_vs_seed_speedup\": {:.4},\n",
                l.best_vs_seed_speedup
            ));
            s.push_str("      \"backends\": [\n");
            for (j, b) in l.backends.iter().enumerate() {
                s.push_str(&format!(
                    "        {{\"name\": \"{}\", \"ms\": {:.6}, \"ns\": {}, \"msymbols_per_s\": {:.3}}}{}\n",
                    b.name,
                    b.ms,
                    b.ns,
                    b.msymbols_per_s,
                    if j + 1 < l.backends.len() { "," } else { "" }
                ));
            }
            s.push_str("      ]\n");
            s.push_str(&format!(
                "    }}{}\n",
                if i + 1 < self.levels.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// One-line-per-backend terminal summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "counting throughput (db = {} letters, {} host threads):\n",
            self.db_len, self.available_parallelism
        );
        for l in &self.levels {
            s.push_str(&format!("  level {} ({} episodes):\n", l.level, l.episodes));
            for b in &l.backends {
                s.push_str(&format!(
                    "    {:<22} {:>12.4} ms  {:>12} ns  {:>8.2} Msym/s\n",
                    b.name, b.ms, b.ns, b.msymbols_per_s
                ));
            }
            s.push_str(&format!(
                "    sharded(≤4w) vs seed: {:.2}x\n",
                l.sharded4_vs_seed_speedup
            ));
            s.push_str(&format!(
                "    best strategy vs seed: {:.2}x\n",
                l.best_vs_seed_speedup
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CountingBench {
        run(&BenchConfig {
            scale: 0.02,
            levels: vec![1, 2],
            shard_workers: vec![2, 4],
            repeats: 1,
            serial_scan_cap: 100,
        })
    }

    #[test]
    fn bench_runs_and_reports_all_backends() {
        let b = tiny();
        assert_eq!(b.levels.len(), 2);
        for l in &b.levels {
            // seed, compiled, vertical, bitmask, sharded-w1, sharded x2,
            // mapreduce, pooled, auto (+ serial at level 1 only).
            assert!(l.backends.len() >= 9, "level {}: {:?}", l.level, l.backends);
            // Min-of-N iteration timing: even nanosecond-scale calls must
            // report a strictly positive time (no more 0.000 ms rows and the
            // absurd ratios they produce).
            for t in &l.backends {
                assert!(t.ms > 0.0, "{} reported a zero time", t.name);
                assert!(t.ns > 0, "{} reported zero nanoseconds", t.name);
                let expect_ns = (t.ms * 1e6).round() as u64;
                assert_eq!(t.ns, expect_ns, "{}: ns and ms disagree", t.name);
            }
            assert!(l.sharded4_vs_seed_speedup.is_finite());
            assert!(l.best_vs_seed_speedup.is_finite());
            assert!(l.checksum > 0);
            for required in [
                "engine-vertical",
                "engine-bitmask",
                "engine-sharded-w1",
                "session-sharded-pooled",
                "session-auto",
            ] {
                assert!(
                    l.backends.iter().any(|t| t.name == required),
                    "level {} missing row {required}",
                    l.level
                );
            }
        }
        assert_eq!(
            b.level2_sharded_vs_seed,
            b.levels[1].sharded4_vs_seed_speedup
        );
        assert_eq!(b.level2_best_vs_seed, b.levels[1].best_vs_seed_speedup);
        // Serial scan gated out at level 2 (650 > cap 100).
        assert!(b.levels[1]
            .backends
            .iter()
            .all(|t| t.name != "cpu-serial-scan"));
    }

    #[test]
    fn sub_quantum_calls_time_nonzero() {
        // A call far cheaper than one timer quantum must still report a
        // positive per-call time: the calibration loop spans MIN_SAMPLE_MS.
        let (ms, out) = time_best(2, || std::hint::black_box(3u64) + 4);
        assert_eq!(out, 7);
        assert!(ms > 0.0, "sub-quantum call timed as zero: {ms}");
        assert!(
            ms < MIN_SAMPLE_MS,
            "per-call time must be per call, not per sample: {ms}"
        );
    }

    #[test]
    fn ratio_stays_finite_without_a_4_worker_entry() {
        let b = run(&BenchConfig {
            scale: 0.02,
            levels: vec![1],
            shard_workers: vec![8],
            repeats: 1,
            serial_scan_cap: 0,
        });
        assert!(b.levels[0].sharded4_vs_seed_speedup.is_finite());
        assert!(b.levels[0].sharded4_vs_seed_speedup > 0.0);
        assert!(!b.to_json().contains("NaN"));
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let b = tiny();
        let j = b.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert_eq!(j.matches("\"level\":").count(), 2);
        assert!(j.contains("\"sharded4_vs_seed_speedup\""));
        assert!(j.contains("\"level2_sharded_vs_seed\""));
        assert!(j.contains("engine-sharded-w4"));
        // Balanced braces and brackets (cheap structural check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!b.summary().is_empty());
    }
}
