//! Simulated-time benchmark of the Everest-style GPU serving pipeline
//! (`tdm_gpu::DevicePipeline`): what persistence and batching buy over the
//! paper's launch-per-level discipline.
//!
//! Two scenarios, both fully deterministic (every number comes from the
//! `gpu-sim` cost model, never the host clock), so the committed artifact
//! (`BENCH_gpu.json`) is reproducible bit-for-bit anywhere:
//!
//! * **fused pipeline vs per-level launches** — the same mining run driven
//!   twice on the simulated GTX 280: once through a persistent
//!   [`GpuPipelineBackend`] (stream uploaded once, each level a resident
//!   pipeline advance) and once through a baseline that does what the paper
//!   does — a fresh driver launch per level, re-uploading the stream each
//!   time. The `fused_pipeline_vs_per_level` headline (per-level ms / fused
//!   ms) goes top-level in the JSON and is floor-guarded in CI.
//! * **union launch vs K solo launches** — K tenants with overlapping
//!   level-2 candidate sets, served once as K separate upload+launch cycles
//!   and once as a single [`DevicePipeline::advance_union`] over their
//!   deduplicated [`CandidateUnion`] CSR (per-tenant routing tables widen the
//!   block's shared memory; the count buffer is demultiplexed per member).
//!   Demuxed counts are asserted bit-identical to each tenant's solo launch
//!   before the `union_launch_vs_k_solo` ratio is reported.

use tdm_core::candidate::permutations;
use tdm_core::engine::{CandidateUnion, CompiledCandidates};
use tdm_core::miner::{Miner, MinerConfig};
use tdm_core::session::{BackendError, CountRequest, Counts, Executor};
use tdm_core::Episode;
use tdm_gpu::{Algorithm, DevicePipeline, GpuPipelineBackend};
use tdm_workloads::markov_letters;

use gpu_sim::DeviceConfig;

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct GpuBenchConfig {
    /// Markov stream length, symbols.
    pub symbols: usize,
    /// Support threshold of the mining run.
    pub alpha: f64,
    /// Level cap of the mining run.
    pub max_level: usize,
    /// Tenants sharing the union launch in the batching scenario.
    pub tenants: usize,
    /// Block size of every simulated kernel.
    pub threads_per_block: u32,
}

impl Default for GpuBenchConfig {
    fn default() -> Self {
        GpuBenchConfig {
            symbols: 2_000,
            alpha: 0.001,
            max_level: 4,
            tenants: 4,
            threads_per_block: 64,
        }
    }
}

/// The paper's discipline as an [`Executor`]: every level is a fresh driver
/// launch against a cold device — stream re-uploaded, kernel re-launched.
struct PerLevelLaunch {
    threads_per_block: u32,
    device: DeviceConfig,
    levels: u64,
    simulated_ms: f64,
}

impl Executor for PerLevelLaunch {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        let mut pipeline = DevicePipeline::new(
            Algorithm::BlockTexture,
            self.threads_per_block,
            self.device.clone(),
        );
        pipeline.upload(req.db());
        let run = pipeline
            .advance(req.db(), req.compiled())
            .map_err(|e| BackendError::Failed(e.to_string()))?;
        self.levels += 1;
        self.simulated_ms += pipeline.simulated_ms;
        Ok(run.counts)
    }

    fn name(&self) -> &str {
        "per-level-launch"
    }
}

/// The full GPU-pipeline benchmark report.
#[derive(Debug, Clone)]
pub struct GpuBenchReport {
    /// Markov stream length, symbols.
    pub symbols: usize,
    /// Levels the mining run counted.
    pub levels: usize,
    /// Modeled milliseconds of the launch-per-level baseline (stream
    /// re-uploaded and kernel re-launched every level).
    pub per_level_launch_ms: f64,
    /// Modeled milliseconds of the persistent pipeline (one upload, one
    /// launch, then resident advances).
    pub fused_pipeline_ms: f64,
    /// The headline: per-level ms over fused ms (> 1 = persistence pays).
    pub fused_pipeline_vs_per_level: f64,
    /// Tenants in the batching scenario.
    pub tenants: usize,
    /// Deduplicated union candidates the batched launch counted.
    pub union_candidates: usize,
    /// Modeled milliseconds of K separate upload+launch cycles.
    pub solo_launches_ms: f64,
    /// Modeled milliseconds of the single K-tenant union launch (upload +
    /// fused kernel + per-member demux).
    pub union_launch_ms: f64,
    /// The headline: K-solo ms over union ms (> 1 = batching pays).
    pub union_launch_vs_k_solo: f64,
}

/// Runs both scenarios (see the [module docs](self)).
pub fn run(cfg: &GpuBenchConfig) -> GpuBenchReport {
    let db = markov_letters(cfg.symbols.max(1_000), 7, 0.65);
    let device = DeviceConfig::geforce_gtx_280();
    let mining = MinerConfig {
        alpha: cfg.alpha,
        max_level: Some(cfg.max_level.max(1)),
        ..Default::default()
    };

    // Scenario 1: the same mining run, persistent pipeline vs fresh launches.
    let mut fused_backend = GpuPipelineBackend::new(
        Algorithm::BlockTexture,
        cfg.threads_per_block,
        device.clone(),
    )
    .force_gpu();
    let fused_result = Miner::new(mining)
        .mine(&db, &mut fused_backend)
        .expect("fused pipeline mining failed");
    let mut per_level = PerLevelLaunch {
        threads_per_block: cfg.threads_per_block,
        device: device.clone(),
        levels: 0,
        simulated_ms: 0.0,
    };
    let baseline_result = Miner::new(mining)
        .mine(&db, &mut per_level)
        .expect("per-level baseline mining failed");
    assert_eq!(
        fused_result, baseline_result,
        "persistent pipeline diverged from launch-per-level counting"
    );
    let fused_pipeline_ms = fused_backend.simulated_ms();
    let per_level_launch_ms = per_level.simulated_ms;

    // Scenario 2: K overlapping level-2 tenants, solo launches vs one union.
    let tenants = cfg.tenants.max(2);
    let all_pairs = permutations(db.alphabet(), 2);
    // Overlapping windows over the pair space: every adjacent pair of tenants
    // shares half its candidates — the partial-overlap regime union launches
    // target (disjoint sets would make the union as big as the concatenation).
    let window = (all_pairs.len() / (tenants + 1)).max(2) * 2;
    let sources: Vec<Vec<Episode>> = (0..tenants)
        .map(|t| {
            let start = t * window / 2;
            all_pairs
                .iter()
                .cycle()
                .skip(start)
                .take(window)
                .cloned()
                .collect()
        })
        .collect();
    let source_refs: Vec<&[Episode]> = sources.iter().map(|s| s.as_slice()).collect();
    let union = CandidateUnion::build(&source_refs);
    let union_compiled = CompiledCandidates::compile(db.alphabet().len(), union.episodes());

    let mut solo_launches_ms = 0.0;
    let mut solo_counts: Vec<Vec<u64>> = Vec::with_capacity(tenants);
    for source in &sources {
        let compiled = CompiledCandidates::compile(db.alphabet().len(), source);
        let mut pipeline = DevicePipeline::new(
            Algorithm::BlockTexture,
            cfg.threads_per_block,
            device.clone(),
        );
        pipeline.upload(&db);
        let run = pipeline
            .advance(&db, &compiled)
            .expect("solo tenant launch failed");
        solo_counts.push(run.counts);
        solo_launches_ms += pipeline.simulated_ms;
    }

    let mut union_pipeline = DevicePipeline::new(
        Algorithm::BlockTexture,
        cfg.threads_per_block,
        device.clone(),
    );
    union_pipeline.upload(&db);
    let launch = union_pipeline
        .advance_union(&db, &union_compiled, &union)
        .expect("union launch failed");
    assert_eq!(launch.tenants, tenants);
    for (t, want) in solo_counts.iter().enumerate() {
        assert_eq!(
            &launch.member_counts[t], want,
            "union demux diverged from tenant {t}'s solo launch"
        );
    }
    let union_launch_ms = union_pipeline.simulated_ms;

    GpuBenchReport {
        symbols: db.len(),
        levels: fused_result.levels.len(),
        per_level_launch_ms,
        fused_pipeline_ms,
        fused_pipeline_vs_per_level: per_level_launch_ms / fused_pipeline_ms.max(1e-12),
        tenants,
        union_candidates: union_compiled.len(),
        solo_launches_ms,
        union_launch_ms,
        union_launch_vs_k_solo: solo_launches_ms / union_launch_ms.max(1e-12),
    }
}

impl GpuBenchReport {
    /// Serializes the report as pretty JSON (hand-rolled; the workspace
    /// builds offline without a JSON crate).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"symbols\": {},\n", self.symbols));
        s.push_str(&format!("  \"levels\": {},\n", self.levels));
        s.push_str(&format!(
            "  \"fused_pipeline_vs_per_level\": {:.4},\n",
            self.fused_pipeline_vs_per_level
        ));
        s.push_str(&format!(
            "  \"union_launch_vs_k_solo\": {:.4},\n",
            self.union_launch_vs_k_solo
        ));
        s.push_str(&format!(
            "  \"per_level_launch_ms\": {:.6},\n",
            self.per_level_launch_ms
        ));
        s.push_str(&format!(
            "  \"fused_pipeline_ms\": {:.6},\n",
            self.fused_pipeline_ms
        ));
        s.push_str(&format!("  \"tenants\": {},\n", self.tenants));
        s.push_str(&format!(
            "  \"union_candidates\": {},\n",
            self.union_candidates
        ));
        s.push_str(&format!(
            "  \"solo_launches_ms\": {:.6},\n",
            self.solo_launches_ms
        ));
        s.push_str(&format!(
            "  \"union_launch_ms\": {:.6}\n",
            self.union_launch_ms
        ));
        s.push('}');
        s.push('\n');
        s
    }

    /// Two-line terminal summary.
    pub fn summary(&self) -> String {
        format!(
            "gpu pipeline ({} symbols, {} levels): per-level {:.3} ms vs fused {:.3} ms \
             = {:.2}x\ngpu union ({} tenants, {} union candidates): solo {:.3} ms vs \
             union {:.3} ms = {:.2}x\n",
            self.symbols,
            self.levels,
            self.per_level_launch_ms,
            self.fused_pipeline_ms,
            self.fused_pipeline_vs_per_level,
            self.tenants,
            self.union_candidates,
            self.solo_launches_ms,
            self.union_launch_ms,
            self.union_launch_vs_k_solo
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GpuBenchReport {
        run(&GpuBenchConfig {
            symbols: 1_000,
            alpha: 0.002,
            max_level: 3,
            tenants: 3,
            ..Default::default()
        })
    }

    #[test]
    fn both_headlines_exceed_their_floors() {
        let r = tiny();
        assert!(r.levels >= 2, "want a multi-level run, got {}", r.levels);
        // The acceptance floors guarded by tools/bench_guard.sh — if these
        // fail here, the committed artifact would fail CI too.
        assert!(
            r.fused_pipeline_vs_per_level >= 1.2,
            "fused ratio below floor: {r:?}"
        );
        assert!(
            r.union_launch_vs_k_solo > 1.0,
            "union ratio below floor: {r:?}"
        );
    }

    #[test]
    fn the_report_is_deterministic() {
        let a = tiny();
        let b = tiny();
        // Simulated time only: two runs agree to the last bit, never mind
        // host load.
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let r = tiny();
        let j = r.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"fused_pipeline_vs_per_level\""));
        assert!(j.contains("\"union_launch_vs_k_solo\""));
        assert!(j.contains("\"per_level_launch_ms\""));
        assert!(j.contains("\"union_candidates\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains("NaN"));
        assert!(!r.summary().is_empty());
    }
}
