//! Real-CPU throughput benchmark of the serving layer (`tdm-serve`): QPS and
//! latency percentiles under concurrent clients.
//!
//! The counting benchmark ([`crate::counting_bench`]) measures one scan at a
//! time; this one measures the *service* shape the ROADMAP's north star asks
//! for: many clients submitting full mining requests against one
//! [`MiningService`] — one shared pool, fair admission, the session cache in
//! the loop. Each client-count rung (1, 4, 16 by default) runs a mixed
//! workload (Markov letters, spike trains, market baskets) and reports QPS
//! plus p50/p95 per-request latency; the headline
//! `qps_16_clients_vs_1` ratio — how much total throughput grows when 16
//! tenants share the machine instead of 1 — goes top-level in the JSON
//! artifact (`BENCH_serve.json`). Every response is checked bit-identical to
//! a serial `Miner::mine` of the same request before it counts.
//!
//! Two further scenarios ride along:
//!
//! * **co-mining** ([`CoMinePoint`]) — K clients with distinct configs burst
//!   against *one* database, once with cross-request co-mining disabled and
//!   once fused into a single batch; the `comine_vs_solo_scan_ratio`
//!   headline (solo wall / fused wall) goes top-level in the JSON.
//! * **saturated gate** ([`SaturatedPoint`]) — the same burst pushed through
//!   a one-slot admission gate, serialized vs waiting-room-fused; the
//!   `saturated_fuse_vs_serial` headline (serial wall / fused wall) goes
//!   top-level in the JSON, and the repeat round demonstrates `CoSession`
//!   cache reuse (`co_cache_hits`).
//! * **open loop** ([`run_open_loop`], `reproduce --serve-open-loop`) —
//!   arrivals follow a deterministic Poisson-like schedule at a target rate,
//!   so admission-gate queueing delay is reported separately from service
//!   time (the closed-loop rungs hide queueing by construction: a client
//!   only submits again after its previous request completes).
//! * **streaming ingestion** ([`StreamingPoint`]) — the same LCG machinery
//!   drives an open-loop *append* process: the Markov workload arrives in
//!   small batches against a `tdm_core::StreamingSession`, and each batch is
//!   counted once incrementally and once by a full batch rescan of the grown
//!   prefix. Counts are asserted bit-identical per batch; the
//!   `incremental_vs_rescan_ratio` headline (rescan wall / incremental wall)
//!   goes top-level in the JSON.
//! * **socket path** ([`SocketBench`]) — the same closed-loop load pushed
//!   through a real `tdm-server` TCP listener on loopback: length-prefixed
//!   JSON frames, per-tenant authentication, the whole wire stack. Every
//!   reply is checked byte-identical to the serially mined result encoded
//!   through the same wire serializer. Two headlines go top-level in the
//!   JSON: `socket_qps_16_clients_vs_1` (socket-path scaling, the network
//!   twin of `qps_16_clients_vs_1`) and `socket_vs_inprocess_overhead`
//!   (in-process QPS over socket QPS at 1 client — what the wire costs).

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tdm_core::engine::{CompiledCandidates, CountScratch};
use tdm_core::miner::{Miner, MinerConfig, SequentialBackend};
use tdm_core::stats::MiningResult;
use tdm_core::{Alphabet, Episode, EventDb, StreamingSession};
use tdm_mapreduce::pool::default_workers;
use tdm_serve::{BackendChoice, MiningRequest, MiningService, ServiceConfig};
use tdm_server::client::mine_request;
use tdm_server::json::Value;
use tdm_server::{wire, Client, Server, ServerConfig, TenantConfig};
use tdm_workloads::{
    basket::{market_basket, BasketConfig},
    markov_letters,
    spikes::{spike_trains, SpikeTrainConfig},
};

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Workload scale in (0, 1]: scales every stream length relative to the
    /// full-size mixed workload (≈100k symbols across the three streams).
    pub scale: f64,
    /// Concurrent-client rungs to measure (paper-style sweep: 1, 4, 16).
    pub client_counts: Vec<usize>,
    /// Mining requests each client submits per rung.
    pub requests_per_client: usize,
    /// Shared-pool workers (0 = the machine's available parallelism).
    pub workers: usize,
    /// Mining configuration every request uses.
    pub mining: MinerConfig,
    /// Concurrent same-database clients in the co-mining scenario (each gets
    /// a distinct support threshold, so no two can share a cached session).
    pub comine_clients: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            scale: 1.0,
            client_counts: vec![1, 4, 16],
            requests_per_client: 6,
            workers: 0,
            mining: MinerConfig {
                alpha: 0.001,
                max_level: Some(2),
                ..Default::default()
            },
            comine_clients: 6,
        }
    }
}

/// One client-count rung's measurements.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Concurrent clients.
    pub clients: usize,
    /// Total requests completed.
    pub requests: usize,
    /// Wall time of the whole rung, seconds.
    pub wall_s: f64,
    /// Completed requests per second of wall time.
    pub qps: f64,
    /// Median per-request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-request latency, milliseconds.
    pub p95_ms: f64,
    /// Session-cache hits across the rung.
    pub cache_hits: u64,
    /// Session-cache misses across the rung.
    pub cache_misses: u64,
}

/// The cross-request co-mining scenario: the same K-config, one-database
/// burst served twice — solo (co-mining disabled, K independent scans per
/// level) and fused (one union scan per level) — on otherwise identical
/// services.
#[derive(Debug, Clone)]
pub struct CoMinePoint {
    /// Concurrent same-database clients (each with a distinct config).
    pub clients: usize,
    /// Wall time of the solo burst, seconds.
    pub solo_wall_s: f64,
    /// Wall time of the fused burst, seconds.
    pub fused_wall_s: f64,
    /// The headline: solo wall time over fused wall time (> 1 = co-mining
    /// paid off; ~K is the ideal on a scan-bound workload).
    pub ratio: f64,
    /// Fused batches the co-mining service formed.
    pub batches: u64,
    /// Requests served from a fused scan.
    pub fused_requests: u64,
}

/// The overload-first scenario: the same K-config, one-database burst pushed
/// through a **one-slot** admission gate (`max_in_flight = 1`), twice per
/// service — once with co-mining disabled (the gate serializes K solo runs)
/// and once with pre-admission waiting-room fusion (the K requests fuse
/// behind the leader and are admitted as one unit, one union scan per
/// level). The second round of each service runs with warm caches: on the
/// fused service it reuses the parked `CoSession` (see `co_cache_hits`).
#[derive(Debug, Clone)]
pub struct SaturatedPoint {
    /// Concurrent same-database clients (each with a distinct config).
    pub clients: usize,
    /// Bursts run against each service (the ones after the first hit warm
    /// caches).
    pub rounds: usize,
    /// Wall time of all serialized-solo bursts, seconds.
    pub serial_wall_s: f64,
    /// Wall time of all fused bursts, seconds.
    pub fused_wall_s: f64,
    /// The headline: serial wall over fused wall at `max_in_flight = 1`
    /// (> 1 = the saturated gate admits fused batches instead of K
    /// serialized runs).
    pub ratio: f64,
    /// Fused batches the co-mining service formed.
    pub batches: u64,
    /// Requests served from a fused scan.
    pub fused_requests: u64,
    /// Co-session-cache hits — rounds after the first reuse the parked
    /// `CoSession` of the same (db, config-set) bundle.
    pub co_cache_hits: u64,
}

/// Runs the overload-first scenario (see [`SaturatedPoint`]). Same stepped
/// configs and serial ground truth discipline as [`run_comine`], but both
/// services run a one-slot gate and each is hit `rounds` times so the fused
/// side demonstrates `CoSession` reuse across repeated bundles.
fn run_saturated(cfg: &ServeBenchConfig, db: &Arc<EventDb>) -> SaturatedPoint {
    let clients = cfg.comine_clients.max(2);
    let rounds = 2;
    let configs: Vec<MinerConfig> = (0..clients)
        .map(|i| MinerConfig {
            alpha: cfg.mining.alpha * (1.0 + i as f64 * 0.5),
            ..cfg.mining
        })
        .collect();
    let serial: Vec<MiningResult> = configs
        .iter()
        .map(|c| {
            Miner::new(*c)
                .mine(db.as_ref(), &mut SequentialBackend::default())
                .expect("serial reference mining failed")
        })
        .collect();
    let requests: Vec<MiningRequest> = configs
        .iter()
        .map(|c| {
            let req = MiningRequest::new(Arc::clone(db), *c);
            req.key();
            req
        })
        .collect();

    let service_of = |window: Duration| {
        Arc::new(MiningService::new(ServiceConfig {
            workers: cfg.workers,
            // THE saturated gate: one request mines at a time. Without
            // fusion the burst degrades to K back-to-back solo runs.
            max_in_flight: 1,
            comine_window: window,
            comine_max_batch: clients,
            ..Default::default()
        }))
    };

    let serial_svc = service_of(Duration::ZERO);
    let mut serial_wall_s = 0.0;
    for _ in 0..rounds {
        serial_wall_s += comine_burst(&serial_svc, &requests, &serial, false);
    }

    let fused_svc = service_of(Duration::from_millis(150));
    let mut fused_wall_s = 0.0;
    for _ in 0..rounds {
        // Staged leader: the batch fills to max_batch while the leader holds
        // the only slot, so the whole bundle is admitted as one unit.
        fused_wall_s += comine_burst(&fused_svc, &requests, &serial, true);
    }
    let stats = fused_svc.stats();

    SaturatedPoint {
        clients,
        rounds,
        serial_wall_s,
        fused_wall_s,
        ratio: serial_wall_s / fused_wall_s.max(1e-9),
        batches: stats.comining.batches,
        fused_requests: stats.comining.fused_requests,
        co_cache_hits: stats.co_cache.hits,
    }
}

/// The streaming-ingestion scenario: the Markov workload replayed as an
/// open-loop append process (LCG-sized arrival batches) against a
/// [`StreamingSession`], versus a rescan baseline that recounts the whole
/// grown prefix from scratch after every batch — what a service without an
/// incremental path would do on each re-mine trigger. Every batch's
/// incremental counts are asserted bit-identical to the rescan's before the
/// ratio is reported.
#[derive(Debug, Clone)]
pub struct StreamingPoint {
    /// Append batches the arrival schedule produced.
    pub appends: usize,
    /// Symbols pre-loaded before the first append.
    pub base_symbols: usize,
    /// Symbols appended across all batches.
    pub appended_symbols: usize,
    /// Episodes tracked by the session (pairs and triples over the
    /// workload's busiest symbols, repeated-item shapes included).
    pub episodes: usize,
    /// Wall time of all incremental appends, seconds.
    pub incremental_wall_s: f64,
    /// Wall time of the full-prefix rescans, seconds.
    pub rescan_wall_s: f64,
    /// The headline: rescan wall over incremental wall (> 1 = parking
    /// continuations at the stream head beats recounting history).
    pub ratio: f64,
}

/// Runs the streaming scenario (see [`StreamingPoint`]) over `db`'s symbol
/// stream: the first half is the pre-loaded base, the second half arrives in
/// LCG-sized batches (~150 across the stream, so the append count — and with
/// it the rescan penalty — is scale-independent).
fn run_streaming(db: &Arc<EventDb>) -> StreamingPoint {
    let symbols = db.symbols().to_vec();
    let n = symbols.len();
    let base = n / 2;

    // Episode set: ordered pairs over the six busiest symbols (the diagonal
    // gives repeated-item pairs) plus a few triples — stand-ins for the
    // level-2/3 candidates a re-mine would track.
    let mut hist = [0u64; 256];
    for &c in &symbols {
        hist[c as usize] += 1;
    }
    let mut busiest: Vec<u8> = (0..db.alphabet().len() as u8)
        .filter(|&c| hist[c as usize] > 0)
        .collect();
    busiest.sort_by_key(|&c| std::cmp::Reverse(hist[c as usize]));
    busiest.truncate(6);
    let mut episodes = Vec::new();
    for &a in &busiest {
        for &b in &busiest {
            episodes.push(Episode::new(vec![a, b]).expect("non-empty episode"));
        }
    }
    for w in busiest.windows(3) {
        episodes.push(Episode::new(vec![w[0], w[1], w[2]]).expect("non-empty episode"));
        episodes.push(Episode::new(vec![w[0], w[0], w[1]]).expect("non-empty episode"));
    }

    // The open-loop append process: LCG-sized arrival batches draining the
    // second half of the stream.
    let max_chunk = (n / 300).max(16) as f64;
    let mut state = 0x51AE_A11Du64;
    let mut chunks: Vec<std::ops::Range<usize>> = Vec::new();
    let mut at = base;
    while at < n {
        let size = 1 + (lcg_uniform(&mut state) * max_chunk) as usize;
        let end = (at + size).min(n);
        chunks.push(at..end);
        at = end;
    }

    // Incremental: one StreamingSession, each batch counted by resuming the
    // parked per-episode continuations at the stream head.
    let base_db = EventDb::new(db.alphabet().clone(), symbols[..base].to_vec())
        .expect("base stream rebuild failed");
    let mut live =
        StreamingSession::new(&base_db, &episodes).expect("streaming session build failed");
    let mut incremental_wall_s = 0.0;
    let mut after: Vec<Vec<u64>> = Vec::with_capacity(chunks.len());
    for r in &chunks {
        let t = Instant::now();
        live.append(&symbols[r.clone()])
            .expect("streaming append failed");
        incremental_wall_s += t.elapsed().as_secs_f64();
        after.push(live.counts().to_vec());
    }

    // Rescan baseline: recount the whole grown prefix after every batch
    // (compile hoisted out — the scan, not compilation, is what the
    // incremental path saves). Each rescan doubles as the bit-identical
    // ground truth for the incremental counts above.
    let compiled = CompiledCandidates::compile(db.alphabet().len(), &episodes);
    let mut scratch = CountScratch::new();
    let mut rescan_wall_s = 0.0;
    for (r, want) in chunks.iter().zip(&after) {
        let t = Instant::now();
        let counts = compiled.count(&symbols[..r.end], &mut scratch);
        rescan_wall_s += t.elapsed().as_secs_f64();
        assert_eq!(
            &counts, want,
            "incremental counts diverged from a batch rescan of the same prefix"
        );
    }

    StreamingPoint {
        appends: chunks.len(),
        base_symbols: base,
        appended_symbols: n - base,
        episodes: episodes.len(),
        incremental_wall_s,
        rescan_wall_s,
        ratio: rescan_wall_s / incremental_wall_s.max(1e-9),
    }
}

/// One client-count rung of the socket-path scenario.
#[derive(Debug, Clone)]
pub struct SocketPoint {
    /// Concurrent TCP clients (one persistent connection each).
    pub clients: usize,
    /// Total requests completed.
    pub requests: usize,
    /// Wall time of the whole rung, seconds.
    pub wall_s: f64,
    /// Completed requests per second of wall time.
    pub qps: f64,
    /// Median per-request latency (frame out to reply parsed), milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-request latency, milliseconds.
    pub p95_ms: f64,
}

/// The socket-path scenario: the closed-loop Markov load replayed through a
/// real `tdm-server` TCP listener on loopback — length-prefixed JSON frames,
/// tenant authentication, per-request database decode — next to an
/// in-process baseline submitting the identical request stream straight into
/// a [`MiningService`].
#[derive(Debug, Clone)]
pub struct SocketBench {
    /// Symbols in the Markov stream every request ships inline.
    pub symbols: usize,
    /// In-process baseline QPS at 1 client (same requests, no wire).
    pub inprocess_qps_1: f64,
    /// The scaling headline: socket QPS at the largest rung over socket QPS
    /// at 1 client (0.0 when either rung was not measured).
    pub qps_16_clients_vs_1: f64,
    /// The overhead headline: in-process QPS over socket QPS at 1 client
    /// (> 1 = the wire costs; framing + JSON + per-request database decode).
    pub vs_inprocess_overhead: f64,
    /// Per-rung socket measurements.
    pub points: Vec<SocketPoint>,
}

/// Runs the socket-path scenario (see [`SocketBench`]) on the Markov
/// workload: an in-process 1-client baseline, then the same closed loop
/// through a loopback `tdm-server` at each rung in `cfg.client_counts`.
/// Every reply's `result` object is checked byte-identical to the serial
/// ground truth pushed through the same wire serializer.
fn run_socket(cfg: &ServeBenchConfig, db: &Arc<EventDb>) -> SocketBench {
    let per_client = cfg.requests_per_client.max(1);
    let letters: String = db.symbols().iter().map(|&s| (b'A' + s) as char).collect();
    let serial = Miner::new(cfg.mining)
        .mine(db.as_ref(), &mut SequentialBackend::default())
        .expect("serial reference mining failed");
    // The ground truth, encoded through the very serializer the server uses:
    // replies must match byte for byte.
    let want = wire::mining_result_value(&serial, &Alphabet::latin26()).encode();
    let backends = ["sharded", "mapreduce", "activeset"];

    // In-process baseline: the identical request stream (same db, same
    // config, same backend rotation) submitted straight into a service.
    let inprocess_qps_1 = {
        let service = MiningService::new(ServiceConfig {
            workers: cfg.workers,
            max_in_flight: default_workers(),
            ..Default::default()
        });
        let requests: Vec<MiningRequest> = [
            BackendChoice::Sharded,
            BackendChoice::MapReduce,
            BackendChoice::ActiveSet,
        ]
        .iter()
        .map(|&b| {
            let req = MiningRequest::new(Arc::clone(db), cfg.mining).backend(b);
            req.key();
            req
        })
        .collect();
        let started = Instant::now();
        for round in 0..per_client {
            let resp = service
                .submit(&requests[round % requests.len()])
                .expect("in-process baseline request failed");
            assert_eq!(resp.result, serial, "in-process baseline diverged");
        }
        per_client as f64 / started.elapsed().as_secs_f64().max(1e-9)
    };

    let mut points = Vec::new();
    for &clients in &cfg.client_counts {
        let clients = clients.max(1);
        // Persistent connections pin a handler each for the whole rung, so
        // the handler pool must match the client count.
        let server = Server::bind(ServerConfig {
            handler_threads: clients,
            backlog: clients,
            service: ServiceConfig {
                workers: cfg.workers,
                max_in_flight: clients.max(default_workers()),
                ..Default::default()
            },
            tenants: vec![TenantConfig::new("bench", "bench")],
            ..Default::default()
        })
        .expect("socket bench listener failed to bind");
        let addr = server.addr();
        let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
        let started = Instant::now();
        std::thread::scope(|s| {
            for client in 0..clients {
                let latencies = Arc::clone(&latencies);
                let letters = &letters;
                let want = &want;
                s.spawn(move || {
                    let mut conn =
                        Client::connect(addr).expect("socket bench client failed to connect");
                    let mut local = Vec::with_capacity(per_client);
                    for round in 0..per_client {
                        let request = mine_request(
                            "bench",
                            "bench",
                            letters,
                            cfg.mining.alpha,
                            cfg.mining.max_level,
                            Some(backends[(client + round) % backends.len()]),
                            None,
                            None,
                        );
                        let t = Instant::now();
                        let reply = conn.call(&request).expect("socket bench request failed");
                        local.push(t.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(
                            reply.get("type").and_then(Value::as_str),
                            Some("mine_result"),
                            "socket bench reply was not a result: {}",
                            reply.encode()
                        );
                        let got = reply
                            .get("result")
                            .expect("mine_result without a result object")
                            .encode();
                        assert_eq!(&got, want, "socket reply diverged from serial mining");
                    }
                    latencies.lock().expect("socket latencies").extend(local);
                });
            }
        });
        let wall_s = started.elapsed().as_secs_f64();
        server.shutdown();
        let mut lat = Arc::try_unwrap(latencies)
            .expect("latency collector still shared")
            .into_inner()
            .expect("socket latencies");
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        points.push(SocketPoint {
            clients,
            requests: lat.len(),
            wall_s,
            qps: lat.len() as f64 / wall_s.max(1e-9),
            p50_ms: percentile(&lat, 0.50),
            p95_ms: percentile(&lat, 0.95),
        });
    }

    let qps_of = |n: usize| {
        points
            .iter()
            .find(|p| p.clients == n)
            .map(|p| p.qps)
            .unwrap_or(0.0)
    };
    let qps_16_clients_vs_1 = if qps_of(1) > 0.0 && qps_of(16) > 0.0 {
        qps_of(16) / qps_of(1)
    } else {
        0.0
    };
    let vs_inprocess_overhead = if qps_of(1) > 0.0 {
        inprocess_qps_1 / qps_of(1)
    } else {
        0.0
    };
    SocketBench {
        symbols: db.len(),
        inprocess_qps_1,
        qps_16_clients_vs_1,
        vs_inprocess_overhead,
        points,
    }
}

/// One open-loop run: requests arrive on a deterministic Poisson-like
/// schedule at a target rate (instead of closed-loop resubmission), so
/// queueing delay at the admission gate is visible separately from service
/// time.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Target arrival rate, requests/second.
    pub rate_hz: f64,
    /// Arrivals generated.
    pub requests: usize,
    /// Wall time from first arrival to last completion, seconds.
    pub wall_s: f64,
    /// Completions per second of wall time.
    pub achieved_rate_hz: f64,
    /// Mean admission-gate queueing delay, milliseconds.
    pub mean_queue_ms: f64,
    /// 95th-percentile queueing delay, milliseconds.
    pub p95_queue_ms: f64,
    /// Mean service (mining) time, milliseconds.
    pub mean_service_ms: f64,
    /// 95th-percentile service time, milliseconds.
    pub p95_service_ms: f64,
}

/// The full serving benchmark report.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// `std::thread::available_parallelism` of the measuring host.
    pub available_parallelism: usize,
    /// Shared-pool workers the service ran with.
    pub workers: usize,
    /// The mixed workloads: (name, stream length).
    pub workloads: Vec<(String, usize)>,
    /// The acceptance headline: QPS at 16 clients over QPS at 1 client
    /// (0.0 when either rung was not measured).
    pub qps_16_clients_vs_1: f64,
    /// The co-mining headline: solo wall time over fused wall time for the
    /// same-database burst ([`CoMinePoint::ratio`]).
    pub comine_vs_solo_scan_ratio: f64,
    /// The overload-first headline: serialized-solo wall over fused wall for
    /// the same burst through a one-slot gate ([`SaturatedPoint::ratio`]).
    pub saturated_fuse_vs_serial: f64,
    /// The streaming headline: full-prefix rescan wall over incremental
    /// append wall for the same append schedule ([`StreamingPoint::ratio`]).
    pub incremental_vs_rescan_ratio: f64,
    /// The socket-path scaling headline: socket QPS at 16 clients over
    /// socket QPS at 1 client ([`SocketBench::qps_16_clients_vs_1`]).
    pub socket_qps_16_clients_vs_1: f64,
    /// The socket-path overhead headline: in-process QPS over socket QPS at
    /// 1 client ([`SocketBench::vs_inprocess_overhead`]).
    pub socket_vs_inprocess_overhead: f64,
    /// Per-rung results.
    pub points: Vec<LoadPoint>,
    /// The co-mining scenario measurements.
    pub comine: CoMinePoint,
    /// The saturated-gate scenario measurements.
    pub saturated: SaturatedPoint,
    /// The streaming-ingestion scenario measurements.
    pub streaming: StreamingPoint,
    /// The socket-path scenario measurements.
    pub socket: SocketBench,
    /// Open-loop measurements, when requested (`reproduce
    /// --serve-open-loop`).
    pub open_loop: Option<OpenLoopReport>,
}

/// Nearest-rank percentile of an ascending-sorted sample (0.0 for empty).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn build_workloads(scale: f64) -> Vec<(String, Arc<EventDb>)> {
    let scale = scale.clamp(1e-3, 1.0);
    let markov = markov_letters((40_000.0 * scale) as usize, 11, 0.7);
    let spikes = spike_trains(&SpikeTrainConfig {
        neurons: 26,
        duration_ms: 30_000.0 * scale,
        base_rate_hz: 8.0,
        ..Default::default()
    });
    let basket = market_basket(&BasketConfig {
        events: (25_000.0 * scale) as usize,
        ..Default::default()
    });
    vec![
        ("markov".to_string(), Arc::new(markov)),
        ("spike-train".to_string(), Arc::new(spikes)),
        ("market-basket".to_string(), Arc::new(basket)),
    ]
}

/// One timed burst of the co-mining scenario: `requests` submitted
/// concurrently against `service`, every response verified against its
/// request's serial ground truth. When `stage_leader` is set, the first
/// request is submitted alone and the rest wait for its batch window to open,
/// so the whole burst lands in one batch.
fn comine_burst(
    service: &Arc<MiningService>,
    requests: &[MiningRequest],
    serial: &[MiningResult],
    stage_leader: bool,
) -> f64 {
    let started = Instant::now();
    std::thread::scope(|s| {
        let mut rest = requests.iter().zip(serial).enumerate();
        if stage_leader {
            let (i, (req, want)) = rest.next().expect("at least one co-mining client");
            {
                let service = Arc::clone(service);
                s.spawn(move || {
                    let resp = service.submit(req).expect("co-mining leader failed");
                    assert_eq!(resp.result, *want, "co-mining client {i} diverged");
                });
            }
            while service.open_batches() == 0 {
                std::thread::yield_now();
            }
        }
        for (i, (req, want)) in rest {
            let service = Arc::clone(service);
            s.spawn(move || {
                let resp = service.submit(req).expect("co-mining client failed");
                assert_eq!(resp.result, *want, "co-mining client {i} diverged");
            });
        }
    });
    started.elapsed().as_secs_f64()
}

/// The cross-request co-mining scenario: K clients with K *distinct* configs
/// (stepped support thresholds — no session sharing possible) burst against
/// one database, once on a co-mining-disabled service and once on a fused
/// one. Both services are otherwise identical; both bursts verify every
/// response bit-identical to serial mining.
fn run_comine(cfg: &ServeBenchConfig, db: &Arc<EventDb>) -> CoMinePoint {
    let clients = cfg.comine_clients.max(2);
    let configs: Vec<MinerConfig> = (0..clients)
        .map(|i| MinerConfig {
            // Stepped thresholds: overlapping but distinct candidate
            // survivor sets per level — the partial-overlap regime co-mining
            // targets.
            alpha: cfg.mining.alpha * (1.0 + i as f64 * 0.5),
            ..cfg.mining
        })
        .collect();
    let serial: Vec<MiningResult> = configs
        .iter()
        .map(|c| {
            Miner::new(*c)
                .mine(db.as_ref(), &mut SequentialBackend::default())
                .expect("serial reference mining failed")
        })
        .collect();
    let requests: Vec<MiningRequest> = configs
        .iter()
        .map(|c| {
            let req = MiningRequest::new(Arc::clone(db), *c);
            req.key();
            req
        })
        .collect();

    let service_of = |window: Duration| {
        Arc::new(MiningService::new(ServiceConfig {
            workers: cfg.workers,
            max_in_flight: clients.max(default_workers()),
            comine_window: window,
            comine_max_batch: clients,
            ..Default::default()
        }))
    };

    // Solo: co-mining disabled — K independent sessions, K scans per level.
    let solo = service_of(Duration::ZERO);
    let solo_wall_s = comine_burst(&solo, &requests, &serial, false);

    // Fused: one batch, one union scan per level (closed by max_batch, so
    // the window itself never shows up in the wall time).
    let fused = service_of(Duration::from_secs(2));
    let fused_wall_s = comine_burst(&fused, &requests, &serial, true);
    let stats = fused.stats();

    CoMinePoint {
        clients,
        solo_wall_s,
        fused_wall_s,
        ratio: solo_wall_s / fused_wall_s.max(1e-9),
        batches: stats.comining.batches,
        fused_requests: stats.comining.fused_requests,
    }
}

/// Open-loop benchmark parameters.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Workload scale in (0, 1] (see [`ServeBenchConfig::scale`]).
    pub scale: f64,
    /// Target arrival rate, requests/second.
    pub rate_hz: f64,
    /// Total arrivals to generate.
    pub requests: usize,
    /// Shared-pool workers (0 = available parallelism).
    pub workers: usize,
    /// Concurrency cap at the admission gate — keep it low so an open loop
    /// actually queues (0 = one per worker).
    pub max_in_flight: usize,
    /// Mining configuration every request uses.
    pub mining: MinerConfig,
    /// Seed of the deterministic arrival schedule.
    pub seed: u64,
}

impl Default for OpenLoopConfig {
    fn default() -> Self {
        OpenLoopConfig {
            scale: 1.0,
            rate_hz: 25.0,
            requests: 50,
            workers: 0,
            max_in_flight: 2,
            mining: MinerConfig {
                alpha: 0.001,
                max_level: Some(2),
                ..Default::default()
            },
            seed: 0x5EED_CAFE,
        }
    }
}

/// Deterministic uniform in (0, 1): one LCG step (so the arrival schedule is
/// reproducible across runs and hosts — "Poisson-ish", not sampled).
fn lcg_uniform(state: &mut u64) -> f64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (((*state >> 11) as f64) + 1.0) / ((1u64 << 53) as f64 + 2.0)
}

/// Runs the open-loop benchmark: arrivals follow a deterministic
/// exponential-gap schedule at `rate_hz` (requests fire whether or not
/// earlier ones finished — unlike the closed-loop rungs, which resubmit on
/// completion), and the report separates **queueing delay** (admission-gate
/// wait) from **service time** (the mining loop). Every response is verified
/// against serial ground truth.
pub fn run_open_loop(cfg: &OpenLoopConfig) -> OpenLoopReport {
    let workloads = build_workloads(cfg.scale);
    let serial: Vec<MiningResult> = workloads
        .iter()
        .map(|(_, db)| {
            Miner::new(cfg.mining)
                .mine(db.as_ref(), &mut SequentialBackend::default())
                .expect("serial reference mining failed")
        })
        .collect();
    let requests: Vec<MiningRequest> = workloads
        .iter()
        .map(|(_, db)| {
            let req = MiningRequest::new(Arc::clone(db), cfg.mining);
            req.key();
            req
        })
        .collect();

    // The deterministic arrival schedule: exponential gaps, inverse-CDF over
    // an LCG stream.
    let mut state = cfg.seed;
    let mut at = 0.0f64;
    let arrivals: Vec<f64> = (0..cfg.requests.max(1))
        .map(|_| {
            let u = lcg_uniform(&mut state);
            at += -(1.0 - u).ln() / cfg.rate_hz.max(1e-6);
            at
        })
        .collect();

    let service = Arc::new(MiningService::new(ServiceConfig {
        workers: cfg.workers,
        max_in_flight: cfg.max_in_flight,
        ..Default::default()
    }));
    let samples = Arc::new(Mutex::new(Vec::<(f64, f64)>::new())); // (queue_ms, service_ms)
    let started = Instant::now();
    std::thread::scope(|s| {
        for (i, &arrive_at) in arrivals.iter().enumerate() {
            let service = Arc::clone(&service);
            let samples = Arc::clone(&samples);
            let requests = &requests;
            let serial = &serial;
            s.spawn(move || {
                let now = started.elapsed().as_secs_f64();
                if arrive_at > now {
                    std::thread::sleep(Duration::from_secs_f64(arrive_at - now));
                }
                let which = i % requests.len();
                let resp = service
                    .submit(&requests[which])
                    .expect("open-loop request failed");
                assert_eq!(
                    resp.result, serial[which],
                    "open-loop response diverged from serial mining"
                );
                samples.lock().expect("open-loop samples").push((
                    resp.stats.queue_wait.as_secs_f64() * 1e3,
                    resp.stats.mine_time.as_secs_f64() * 1e3,
                ));
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();
    let samples = Arc::try_unwrap(samples)
        .expect("sample collector still shared")
        .into_inner()
        .expect("open-loop samples");
    let mut queue: Vec<f64> = samples.iter().map(|(q, _)| *q).collect();
    let mut service_ms: Vec<f64> = samples.iter().map(|(_, s)| *s).collect();
    queue.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    service_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    OpenLoopReport {
        rate_hz: cfg.rate_hz,
        requests: samples.len(),
        wall_s,
        achieved_rate_hz: samples.len() as f64 / wall_s.max(1e-9),
        mean_queue_ms: mean(&queue),
        p95_queue_ms: percentile(&queue, 0.95),
        mean_service_ms: mean(&service_ms),
        p95_service_ms: percentile(&service_ms, 0.95),
    }
}

/// Runs the benchmark: for each client rung, a fresh service (cold cache) is
/// hammered by `clients` threads submitting mixed-workload requests; every
/// response is verified against serial ground truth. The co-mining scenario
/// ([`CoMinePoint`]) runs after the rungs, on the first (Markov) workload.
pub fn run(cfg: &ServeBenchConfig) -> ServeBench {
    let workloads = build_workloads(cfg.scale);
    let serial: Vec<MiningResult> = workloads
        .iter()
        .map(|(_, db)| {
            Miner::new(cfg.mining)
                .mine(db.as_ref(), &mut SequentialBackend::default())
                .expect("serial reference mining failed")
        })
        .collect();
    // Mixed backends, mirroring heterogeneous tenants.
    let backends = [
        BackendChoice::Sharded,
        BackendChoice::MapReduce,
        BackendChoice::ActiveSet,
    ];
    // Build (and key-hash) every request value once, outside the timed
    // region: steady-state clients hold their request values across
    // submissions, so the measured latency should not include the one-time
    // content hash.
    let requests: Vec<Vec<MiningRequest>> = workloads
        .iter()
        .map(|(_, db)| {
            backends
                .iter()
                .map(|&b| {
                    let req = MiningRequest::new(Arc::clone(db), cfg.mining).backend(b);
                    req.key(); // warm the memoized session key
                    req
                })
                .collect()
        })
        .collect();

    let mut points = Vec::new();
    for &clients in &cfg.client_counts {
        let clients = clients.max(1);
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: cfg.workers,
            max_in_flight: clients.max(default_workers()),
            ..Default::default()
        }));
        let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
        let started = Instant::now();
        std::thread::scope(|s| {
            for client in 0..clients {
                let service = Arc::clone(&service);
                let latencies = Arc::clone(&latencies);
                let workloads = &workloads;
                let requests = &requests;
                let serial = &serial;
                let per_client = cfg.requests_per_client;
                s.spawn(move || {
                    let mut local = Vec::with_capacity(per_client);
                    for round in 0..per_client {
                        let which = (client + round) % workloads.len();
                        // Decorrelated from `which` (offset advances by round),
                        // so every workload meets every backend over a
                        // client's rounds instead of a fixed pairing.
                        let req = &requests[which][(client + 2 * round) % backends.len()];
                        let t = Instant::now();
                        let resp = service.submit(req).expect("serve request failed");
                        local.push(t.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(
                            resp.result, serial[which],
                            "served result diverged from serial mining ({})",
                            workloads[which].0
                        );
                    }
                    latencies.lock().expect("latencies").extend(local);
                });
            }
        });
        let wall_s = started.elapsed().as_secs_f64();
        let mut lat = Arc::try_unwrap(latencies)
            .expect("latency collector still shared")
            .into_inner()
            .expect("latencies");
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let requests = lat.len();
        let stats = service.stats();
        points.push(LoadPoint {
            clients,
            requests,
            wall_s,
            qps: requests as f64 / wall_s.max(1e-9),
            p50_ms: percentile(&lat, 0.50),
            p95_ms: percentile(&lat, 0.95),
            cache_hits: stats.cache.hits,
            cache_misses: stats.cache.misses,
        });
    }

    let qps_of = |n: usize| {
        points
            .iter()
            .find(|p| p.clients == n)
            .map(|p| p.qps)
            .unwrap_or(0.0)
    };
    let qps_16_clients_vs_1 = if qps_of(1) > 0.0 && qps_of(16) > 0.0 {
        qps_of(16) / qps_of(1)
    } else {
        0.0
    };
    let comine = run_comine(cfg, &workloads[0].1);
    let saturated = run_saturated(cfg, &workloads[0].1);
    let streaming = run_streaming(&workloads[0].1);
    let socket = run_socket(cfg, &workloads[0].1);
    ServeBench {
        available_parallelism: default_workers(),
        workers: if cfg.workers == 0 {
            default_workers()
        } else {
            cfg.workers
        },
        workloads: workloads
            .iter()
            .map(|(name, db)| (name.clone(), db.len()))
            .collect(),
        qps_16_clients_vs_1,
        comine_vs_solo_scan_ratio: comine.ratio,
        saturated_fuse_vs_serial: saturated.ratio,
        incremental_vs_rescan_ratio: streaming.ratio,
        socket_qps_16_clients_vs_1: socket.qps_16_clients_vs_1,
        socket_vs_inprocess_overhead: socket.vs_inprocess_overhead,
        points,
        comine,
        saturated,
        streaming,
        socket,
        open_loop: None,
    }
}

impl ServeBench {
    /// Serializes the report as pretty JSON (hand-rolled; the workspace
    /// builds offline without a JSON crate).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!(
            "  \"qps_16_clients_vs_1\": {:.4},\n",
            self.qps_16_clients_vs_1
        ));
        s.push_str(&format!(
            "  \"comine_vs_solo_scan_ratio\": {:.4},\n",
            self.comine_vs_solo_scan_ratio
        ));
        s.push_str(&format!(
            "  \"saturated_fuse_vs_serial\": {:.4},\n",
            self.saturated_fuse_vs_serial
        ));
        s.push_str(&format!(
            "  \"incremental_vs_rescan_ratio\": {:.4},\n",
            self.incremental_vs_rescan_ratio
        ));
        s.push_str(&format!(
            "  \"socket_qps_16_clients_vs_1\": {:.4},\n",
            self.socket_qps_16_clients_vs_1
        ));
        s.push_str(&format!(
            "  \"socket_vs_inprocess_overhead\": {:.4},\n",
            self.socket_vs_inprocess_overhead
        ));
        s.push_str(&format!(
            "  \"comine\": {{\"clients\": {}, \"solo_wall_s\": {:.4}, \"fused_wall_s\": {:.4}, \
             \"ratio\": {:.4}, \"batches\": {}, \"fused_requests\": {}}},\n",
            self.comine.clients,
            self.comine.solo_wall_s,
            self.comine.fused_wall_s,
            self.comine.ratio,
            self.comine.batches,
            self.comine.fused_requests
        ));
        s.push_str(&format!(
            "  \"saturated\": {{\"clients\": {}, \"rounds\": {}, \"serial_wall_s\": {:.4}, \
             \"fused_wall_s\": {:.4}, \"ratio\": {:.4}, \"batches\": {}, \
             \"fused_requests\": {}, \"co_cache_hits\": {}}},\n",
            self.saturated.clients,
            self.saturated.rounds,
            self.saturated.serial_wall_s,
            self.saturated.fused_wall_s,
            self.saturated.ratio,
            self.saturated.batches,
            self.saturated.fused_requests,
            self.saturated.co_cache_hits
        ));
        s.push_str(&format!(
            "  \"streaming\": {{\"appends\": {}, \"base_symbols\": {}, \
             \"appended_symbols\": {}, \"episodes\": {}, \"incremental_wall_s\": {:.4}, \
             \"rescan_wall_s\": {:.4}, \"ratio\": {:.4}}},\n",
            self.streaming.appends,
            self.streaming.base_symbols,
            self.streaming.appended_symbols,
            self.streaming.episodes,
            self.streaming.incremental_wall_s,
            self.streaming.rescan_wall_s,
            self.streaming.ratio
        ));
        s.push_str(&format!(
            "  \"socket\": {{\"symbols\": {}, \"inprocess_qps_1\": {:.3}, \"points\": [",
            self.socket.symbols, self.socket.inprocess_qps_1
        ));
        for (i, p) in self.socket.points.iter().enumerate() {
            s.push_str(&format!(
                "{}{{\"clients\": {}, \"requests\": {}, \"wall_s\": {:.4}, \"qps\": {:.3}, \
                 \"p50_ms\": {:.3}, \"p95_ms\": {:.3}}}",
                if i == 0 { "" } else { ", " },
                p.clients,
                p.requests,
                p.wall_s,
                p.qps,
                p.p50_ms,
                p.p95_ms
            ));
        }
        s.push_str("]},\n");
        if let Some(ol) = &self.open_loop {
            s.push_str(&format!(
                "  \"open_loop\": {{\"rate_hz\": {:.3}, \"requests\": {}, \"wall_s\": {:.4}, \
                 \"achieved_rate_hz\": {:.3}, \"mean_queue_ms\": {:.3}, \"p95_queue_ms\": {:.3}, \
                 \"mean_service_ms\": {:.3}, \"p95_service_ms\": {:.3}}},\n",
                ol.rate_hz,
                ol.requests,
                ol.wall_s,
                ol.achieved_rate_hz,
                ol.mean_queue_ms,
                ol.p95_queue_ms,
                ol.mean_service_ms,
                ol.p95_service_ms
            ));
        }
        s.push_str("  \"workloads\": [\n");
        for (i, (name, len)) in self.workloads.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{name}\", \"symbols\": {len}}}{}\n",
                if i + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"clients\": {}, \"requests\": {}, \"wall_s\": {:.4}, \"qps\": {:.3}, \
                 \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
                p.clients,
                p.requests,
                p.wall_s,
                p.qps,
                p.p50_ms,
                p.p95_ms,
                p.cache_hits,
                p.cache_misses,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// One-line-per-rung terminal summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "serving throughput ({} host threads, {} pool workers):\n",
            self.available_parallelism, self.workers
        );
        for p in &self.points {
            s.push_str(&format!(
                "  {:>2} clients: {:>7.2} qps  p50 {:>8.2} ms  p95 {:>8.2} ms  \
                 ({} reqs, {} hits / {} misses)\n",
                p.clients, p.qps, p.p50_ms, p.p95_ms, p.requests, p.cache_hits, p.cache_misses
            ));
        }
        s.push_str(&format!(
            "  qps 16-vs-1: {:.2}x\n",
            self.qps_16_clients_vs_1
        ));
        s.push_str(&format!(
            "  co-mining ({} same-db clients): solo {:.1} ms vs fused {:.1} ms = {:.2}x \
             ({} batches, {} fused requests)\n",
            self.comine.clients,
            self.comine.solo_wall_s * 1e3,
            self.comine.fused_wall_s * 1e3,
            self.comine_vs_solo_scan_ratio,
            self.comine.batches,
            self.comine.fused_requests
        ));
        s.push_str(&format!(
            "  saturated gate ({} same-db clients x {} rounds, 1 slot): serial {:.1} ms vs \
             fused {:.1} ms = {:.2}x ({} batches, {} fused requests, {} co-cache hits)\n",
            self.saturated.clients,
            self.saturated.rounds,
            self.saturated.serial_wall_s * 1e3,
            self.saturated.fused_wall_s * 1e3,
            self.saturated_fuse_vs_serial,
            self.saturated.batches,
            self.saturated.fused_requests,
            self.saturated.co_cache_hits
        ));
        s.push_str(&format!(
            "  streaming ({} appends over {} symbols, {} episodes): rescan {:.1} ms vs \
             incremental {:.1} ms = {:.2}x\n",
            self.streaming.appends,
            self.streaming.appended_symbols,
            self.streaming.episodes,
            self.streaming.rescan_wall_s * 1e3,
            self.streaming.incremental_wall_s * 1e3,
            self.incremental_vs_rescan_ratio
        ));
        s.push_str(&format!(
            "  socket path ({} symbols/request): in-process {:.1} qps vs",
            self.socket.symbols, self.socket.inprocess_qps_1
        ));
        for p in &self.socket.points {
            s.push_str(&format!(
                " [{} clients: {:.1} qps p50 {:.2} ms]",
                p.clients, p.qps, p.p50_ms
            ));
        }
        s.push_str(&format!(
            " = {:.2}x overhead, {:.2}x 16-vs-1\n",
            self.socket_vs_inprocess_overhead, self.socket_qps_16_clients_vs_1
        ));
        if let Some(ol) = &self.open_loop {
            s.push_str(&format!(
                "  open loop @ {:.1} req/s: queue mean {:.2} ms p95 {:.2} ms | \
                 service mean {:.2} ms p95 {:.2} ms ({} reqs, {:.1} req/s achieved)\n",
                ol.rate_hz,
                ol.mean_queue_ms,
                ol.p95_queue_ms,
                ol.mean_service_ms,
                ol.p95_service_ms,
                ol.requests,
                ol.achieved_rate_hz
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeBench {
        run(&ServeBenchConfig {
            scale: 0.05,
            client_counts: vec![1, 2],
            requests_per_client: 2,
            workers: 2,
            comine_clients: 3,
            ..Default::default()
        })
    }

    #[test]
    fn bench_runs_all_rungs_and_verifies_results() {
        let b = tiny();
        assert_eq!(b.points.len(), 2);
        for p in &b.points {
            assert_eq!(p.requests, p.clients * 2);
            assert!(p.qps > 0.0);
            assert!(p.p50_ms >= 0.0 && p.p95_ms >= p.p50_ms);
            assert_eq!(p.cache_hits + p.cache_misses, p.requests as u64);
        }
        assert_eq!(b.workloads.len(), 3);
        // No 16-client rung configured: the ratio degrades to 0, not NaN.
        assert_eq!(b.qps_16_clients_vs_1, 0.0);
        // The co-mining scenario fused every client into one batch (results
        // were already verified bit-identical inside the burst).
        assert_eq!(b.comine.clients, 3);
        assert_eq!(b.comine.batches, 1);
        assert_eq!(b.comine.fused_requests, 3);
        assert!(b.comine_vs_solo_scan_ratio > 0.0);
        assert!(b.comine_vs_solo_scan_ratio.is_finite());
        // The saturated-gate scenario: every round formed one full batch
        // behind the one-slot gate, and the repeat round reused the parked
        // CoSession (same db, same config set).
        assert_eq!(b.saturated.clients, 3);
        assert_eq!(b.saturated.rounds, 2);
        assert_eq!(b.saturated.batches, 2);
        assert_eq!(b.saturated.fused_requests, 6);
        assert_eq!(b.saturated.co_cache_hits, 1);
        assert!(b.saturated_fuse_vs_serial > 0.0);
        assert!(b.saturated_fuse_vs_serial.is_finite());
        // The streaming scenario consumed the whole Markov stream (the
        // per-batch bit-identity asserts already ran inside run_streaming).
        assert!(b.streaming.appends > 0);
        assert_eq!(
            b.streaming.base_symbols + b.streaming.appended_symbols,
            b.workloads[0].1
        );
        assert!(b.streaming.episodes > 0);
        assert!(b.incremental_vs_rescan_ratio > 0.0);
        assert!(b.incremental_vs_rescan_ratio.is_finite());
        // The socket scenario ran every rung through a real loopback
        // listener (replies were checked byte-identical inside run_socket).
        assert_eq!(b.socket.points.len(), 2);
        for p in &b.socket.points {
            assert_eq!(p.requests, p.clients * 2);
            assert!(p.qps > 0.0);
            assert!(p.p95_ms >= p.p50_ms);
        }
        assert!(b.socket.inprocess_qps_1 > 0.0);
        assert!(b.socket_vs_inprocess_overhead > 0.0);
        assert!(b.socket_vs_inprocess_overhead.is_finite());
        // No 16-client rung configured: degrades to 0, not NaN.
        assert_eq!(b.socket_qps_16_clients_vs_1, 0.0);
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let mut b = tiny();
        b.open_loop = Some(run_open_loop(&OpenLoopConfig {
            scale: 0.05,
            rate_hz: 200.0,
            requests: 6,
            workers: 2,
            ..Default::default()
        }));
        let j = b.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"qps_16_clients_vs_1\""));
        assert!(j.contains("\"comine_vs_solo_scan_ratio\""));
        assert!(j.contains("\"saturated_fuse_vs_serial\""));
        assert!(j.contains("\"incremental_vs_rescan_ratio\""));
        assert!(j.contains("\"socket_qps_16_clients_vs_1\""));
        assert!(j.contains("\"socket_vs_inprocess_overhead\""));
        assert!(j.contains("\"inprocess_qps_1\""));
        assert!(j.contains("\"rescan_wall_s\""));
        assert!(j.contains("\"co_cache_hits\""));
        assert!(j.contains("\"fused_requests\""));
        assert!(j.contains("\"open_loop\""));
        assert!(j.contains("\"mean_queue_ms\""));
        assert!(j.contains("\"p95_ms\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN"));
        assert!(!b.summary().is_empty());
        assert!(b.summary().contains("open loop"));
    }

    #[test]
    fn open_loop_reports_queue_and_service_separately() {
        // A high arrival rate against a 1-wide admission gate must show
        // queueing delay that closed-loop measurement cannot (the schedule
        // fires arrivals regardless of completions).
        let r = run_open_loop(&OpenLoopConfig {
            scale: 0.05,
            rate_hz: 500.0,
            requests: 8,
            workers: 1,
            max_in_flight: 1,
            ..Default::default()
        });
        assert_eq!(r.requests, 8);
        assert!(r.wall_s > 0.0);
        assert!(r.achieved_rate_hz > 0.0);
        assert!(r.mean_service_ms > 0.0);
        assert!(r.p95_queue_ms >= r.mean_queue_ms * 0.5);
        // With max_in_flight 1 and near-simultaneous arrivals, someone
        // queued behind someone else's full mining run.
        assert!(
            r.p95_queue_ms > 0.0,
            "open loop at 500 req/s over a 1-slot gate must queue: {r:?}"
        );
    }

    #[test]
    fn arrival_schedule_is_deterministic() {
        let mut a = 1u64;
        let mut b = 1u64;
        let xs: Vec<f64> = (0..5).map(|_| lcg_uniform(&mut a)).collect();
        let ys: Vec<f64> = (0..5).map(|_| lcg_uniform(&mut b)).collect();
        assert_eq!(xs, ys);
        for x in xs {
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn percentiles_interpolate_sanely() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.95), 3.0);
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
    }
}
