//! Real-CPU throughput benchmark of the serving layer (`tdm-serve`): QPS and
//! latency percentiles under concurrent clients.
//!
//! The counting benchmark ([`crate::counting_bench`]) measures one scan at a
//! time; this one measures the *service* shape the ROADMAP's north star asks
//! for: many clients submitting full mining requests against one
//! [`MiningService`] — one shared pool, fair admission, the session cache in
//! the loop. Each client-count rung (1, 4, 16 by default) runs a mixed
//! workload (Markov letters, spike trains, market baskets) and reports QPS
//! plus p50/p95 per-request latency; the headline
//! `qps_16_clients_vs_1` ratio — how much total throughput grows when 16
//! tenants share the machine instead of 1 — goes top-level in the JSON
//! artifact (`BENCH_serve.json`). Every response is checked bit-identical to
//! a serial `Miner::mine` of the same request before it counts.

use std::sync::{Arc, Mutex};
use std::time::Instant;

use tdm_core::miner::{Miner, MinerConfig, SequentialBackend};
use tdm_core::stats::MiningResult;
use tdm_core::EventDb;
use tdm_mapreduce::pool::default_workers;
use tdm_serve::{BackendChoice, MiningRequest, MiningService, ServiceConfig};
use tdm_workloads::{
    basket::{market_basket, BasketConfig},
    markov_letters,
    spikes::{spike_trains, SpikeTrainConfig},
};

/// Benchmark parameters.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Workload scale in (0, 1]: scales every stream length relative to the
    /// full-size mixed workload (≈100k symbols across the three streams).
    pub scale: f64,
    /// Concurrent-client rungs to measure (paper-style sweep: 1, 4, 16).
    pub client_counts: Vec<usize>,
    /// Mining requests each client submits per rung.
    pub requests_per_client: usize,
    /// Shared-pool workers (0 = the machine's available parallelism).
    pub workers: usize,
    /// Mining configuration every request uses.
    pub mining: MinerConfig,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            scale: 1.0,
            client_counts: vec![1, 4, 16],
            requests_per_client: 6,
            workers: 0,
            mining: MinerConfig {
                alpha: 0.001,
                max_level: Some(2),
                ..Default::default()
            },
        }
    }
}

/// One client-count rung's measurements.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Concurrent clients.
    pub clients: usize,
    /// Total requests completed.
    pub requests: usize,
    /// Wall time of the whole rung, seconds.
    pub wall_s: f64,
    /// Completed requests per second of wall time.
    pub qps: f64,
    /// Median per-request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-request latency, milliseconds.
    pub p95_ms: f64,
    /// Session-cache hits across the rung.
    pub cache_hits: u64,
    /// Session-cache misses across the rung.
    pub cache_misses: u64,
}

/// The full serving benchmark report.
#[derive(Debug, Clone)]
pub struct ServeBench {
    /// `std::thread::available_parallelism` of the measuring host.
    pub available_parallelism: usize,
    /// Shared-pool workers the service ran with.
    pub workers: usize,
    /// The mixed workloads: (name, stream length).
    pub workloads: Vec<(String, usize)>,
    /// The acceptance headline: QPS at 16 clients over QPS at 1 client
    /// (0.0 when either rung was not measured).
    pub qps_16_clients_vs_1: f64,
    /// Per-rung results.
    pub points: Vec<LoadPoint>,
}

/// Nearest-rank percentile of an ascending-sorted sample (0.0 for empty).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

fn build_workloads(scale: f64) -> Vec<(String, Arc<EventDb>)> {
    let scale = scale.clamp(1e-3, 1.0);
    let markov = markov_letters((40_000.0 * scale) as usize, 11, 0.7);
    let spikes = spike_trains(&SpikeTrainConfig {
        neurons: 26,
        duration_ms: 30_000.0 * scale,
        base_rate_hz: 8.0,
        ..Default::default()
    });
    let basket = market_basket(&BasketConfig {
        events: (25_000.0 * scale) as usize,
        ..Default::default()
    });
    vec![
        ("markov".to_string(), Arc::new(markov)),
        ("spike-train".to_string(), Arc::new(spikes)),
        ("market-basket".to_string(), Arc::new(basket)),
    ]
}

/// Runs the benchmark: for each client rung, a fresh service (cold cache) is
/// hammered by `clients` threads submitting mixed-workload requests; every
/// response is verified against serial ground truth.
pub fn run(cfg: &ServeBenchConfig) -> ServeBench {
    let workloads = build_workloads(cfg.scale);
    let serial: Vec<MiningResult> = workloads
        .iter()
        .map(|(_, db)| {
            Miner::new(cfg.mining)
                .mine(db.as_ref(), &mut SequentialBackend::default())
                .expect("serial reference mining failed")
        })
        .collect();
    // Mixed backends, mirroring heterogeneous tenants.
    let backends = [
        BackendChoice::Sharded,
        BackendChoice::MapReduce,
        BackendChoice::ActiveSet,
    ];
    // Build (and key-hash) every request value once, outside the timed
    // region: steady-state clients hold their request values across
    // submissions, so the measured latency should not include the one-time
    // content hash.
    let requests: Vec<Vec<MiningRequest>> = workloads
        .iter()
        .map(|(_, db)| {
            backends
                .iter()
                .map(|&b| {
                    let req = MiningRequest::new(Arc::clone(db), cfg.mining).backend(b);
                    req.key(); // warm the memoized session key
                    req
                })
                .collect()
        })
        .collect();

    let mut points = Vec::new();
    for &clients in &cfg.client_counts {
        let clients = clients.max(1);
        let service = Arc::new(MiningService::new(ServiceConfig {
            workers: cfg.workers,
            max_in_flight: clients.max(default_workers()),
            ..Default::default()
        }));
        let latencies = Arc::new(Mutex::new(Vec::<f64>::new()));
        let started = Instant::now();
        std::thread::scope(|s| {
            for client in 0..clients {
                let service = Arc::clone(&service);
                let latencies = Arc::clone(&latencies);
                let workloads = &workloads;
                let requests = &requests;
                let serial = &serial;
                let per_client = cfg.requests_per_client;
                s.spawn(move || {
                    let mut local = Vec::with_capacity(per_client);
                    for round in 0..per_client {
                        let which = (client + round) % workloads.len();
                        // Decorrelated from `which` (offset advances by round),
                        // so every workload meets every backend over a
                        // client's rounds instead of a fixed pairing.
                        let req = &requests[which][(client + 2 * round) % backends.len()];
                        let t = Instant::now();
                        let resp = service.submit(req).expect("serve request failed");
                        local.push(t.elapsed().as_secs_f64() * 1e3);
                        assert_eq!(
                            resp.result, serial[which],
                            "served result diverged from serial mining ({})",
                            workloads[which].0
                        );
                    }
                    latencies.lock().expect("latencies").extend(local);
                });
            }
        });
        let wall_s = started.elapsed().as_secs_f64();
        let mut lat = Arc::try_unwrap(latencies)
            .expect("latency collector still shared")
            .into_inner()
            .expect("latencies");
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let requests = lat.len();
        let stats = service.stats();
        points.push(LoadPoint {
            clients,
            requests,
            wall_s,
            qps: requests as f64 / wall_s.max(1e-9),
            p50_ms: percentile(&lat, 0.50),
            p95_ms: percentile(&lat, 0.95),
            cache_hits: stats.cache.hits,
            cache_misses: stats.cache.misses,
        });
    }

    let qps_of = |n: usize| {
        points
            .iter()
            .find(|p| p.clients == n)
            .map(|p| p.qps)
            .unwrap_or(0.0)
    };
    let qps_16_clients_vs_1 = if qps_of(1) > 0.0 && qps_of(16) > 0.0 {
        qps_of(16) / qps_of(1)
    } else {
        0.0
    };
    ServeBench {
        available_parallelism: default_workers(),
        workers: if cfg.workers == 0 {
            default_workers()
        } else {
            cfg.workers
        },
        workloads: workloads
            .iter()
            .map(|(name, db)| (name.clone(), db.len()))
            .collect(),
        qps_16_clients_vs_1,
        points,
    }
}

impl ServeBench {
    /// Serializes the report as pretty JSON (hand-rolled; the workspace
    /// builds offline without a JSON crate).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!(
            "  \"qps_16_clients_vs_1\": {:.4},\n",
            self.qps_16_clients_vs_1
        ));
        s.push_str("  \"workloads\": [\n");
        for (i, (name, len)) in self.workloads.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{name}\", \"symbols\": {len}}}{}\n",
                if i + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"clients\": {}, \"requests\": {}, \"wall_s\": {:.4}, \"qps\": {:.3}, \
                 \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
                p.clients,
                p.requests,
                p.wall_s,
                p.qps,
                p.p50_ms,
                p.p95_ms,
                p.cache_hits,
                p.cache_misses,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// One-line-per-rung terminal summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "serving throughput ({} host threads, {} pool workers):\n",
            self.available_parallelism, self.workers
        );
        for p in &self.points {
            s.push_str(&format!(
                "  {:>2} clients: {:>7.2} qps  p50 {:>8.2} ms  p95 {:>8.2} ms  \
                 ({} reqs, {} hits / {} misses)\n",
                p.clients, p.qps, p.p50_ms, p.p95_ms, p.requests, p.cache_hits, p.cache_misses
            ));
        }
        s.push_str(&format!(
            "  qps 16-vs-1: {:.2}x\n",
            self.qps_16_clients_vs_1
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeBench {
        run(&ServeBenchConfig {
            scale: 0.05,
            client_counts: vec![1, 2],
            requests_per_client: 2,
            workers: 2,
            ..Default::default()
        })
    }

    #[test]
    fn bench_runs_all_rungs_and_verifies_results() {
        let b = tiny();
        assert_eq!(b.points.len(), 2);
        for p in &b.points {
            assert_eq!(p.requests, p.clients * 2);
            assert!(p.qps > 0.0);
            assert!(p.p50_ms >= 0.0 && p.p95_ms >= p.p50_ms);
            assert_eq!(p.cache_hits + p.cache_misses, p.requests as u64);
        }
        assert_eq!(b.workloads.len(), 3);
        // No 16-client rung configured: the ratio degrades to 0, not NaN.
        assert_eq!(b.qps_16_clients_vs_1, 0.0);
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let b = tiny();
        let j = b.to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.trim_end().ends_with('}'));
        assert!(j.contains("\"qps_16_clients_vs_1\""));
        assert!(j.contains("\"p95_ms\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("NaN"));
        assert!(!b.summary().is_empty());
    }

    #[test]
    fn percentiles_interpolate_sanely() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[3.0], 0.95), 3.0);
        let v: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
    }
}
