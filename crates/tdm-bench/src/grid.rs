//! The measurement grid: every (algorithm, level, block size, card) cell of the
//! paper's evaluation, simulated.

use gpu_sim::{CostModel, DeviceConfig};
use serde::Serialize;
use std::collections::HashMap;
use tdm_core::candidate::permutations;
use tdm_core::engine::CompiledCandidates;
use tdm_core::{Alphabet, Episode, EventDb};
use tdm_gpu::{Algorithm, MiningProblem, SimOptions};
use tdm_mapreduce::pool::{default_workers, map_items};
use tdm_workloads::{paper_database_scaled, PAPER_DB_LEN};

/// Grid parameters.
#[derive(Debug, Clone)]
pub struct GridConfig {
    /// Database scale relative to the paper's 393,019 letters (1.0 = full).
    pub scale: f64,
    /// Episode levels to evaluate (paper: 1, 2, 3).
    pub levels: Vec<usize>,
    /// Block-size sweep (paper: 16 and multiples of 32 up to 512).
    pub tpb_sweep: Vec<u32>,
    /// Cards to simulate.
    pub cards: Vec<DeviceConfig>,
    /// Timing-model constants (ablations swap these).
    pub cost: CostModel,
    /// Kernel execution options.
    pub opts: SimOptions,
    /// Which algorithms to run (paper: all four).
    pub algorithms: Vec<Algorithm>,
    /// Emit progress chatter on stderr while computing (off by default so test
    /// output stays clean; the `reproduce` binary turns it on).
    pub progress: bool,
    /// Worker threads for the per-level cell sweep (0 = available
    /// parallelism). Cells of one level share the memoized [`MiningProblem`],
    /// so the algo × tpb × card plane shards cleanly across the pool.
    pub workers: usize,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            scale: 1.0,
            levels: vec![1, 2, 3],
            tpb_sweep: tdm_gpu::launch::paper_tpb_sweep(),
            cards: DeviceConfig::paper_testbed(),
            cost: CostModel::default(),
            opts: SimOptions::default(),
            algorithms: Algorithm::ALL.to_vec(),
            progress: false,
            workers: 0,
        }
    }
}

impl GridConfig {
    /// A fast configuration for tests and smoke runs: 5% database, coarse
    /// sweep.
    pub fn quick() -> Self {
        GridConfig {
            scale: 0.05,
            tpb_sweep: vec![16, 64, 128, 256, 512],
            ..Default::default()
        }
    }
}

/// One simulated measurement.
#[derive(Debug, Clone, Serialize)]
pub struct GridCell {
    /// Algorithm number (1–4).
    pub algo: u8,
    /// Episode level (length).
    pub level: usize,
    /// Threads per block.
    pub tpb: u32,
    /// Card name.
    pub card: String,
    /// Simulated kernel time, milliseconds.
    pub time_ms: f64,
    /// Dominant bottleneck.
    pub bound: String,
    /// Blocks in the launch.
    pub blocks: u32,
    /// Scheduling waves.
    pub waves: u32,
    /// Occupancy fraction (CUDA-calculator style).
    pub occupancy: f64,
    /// DRAM traffic in MB.
    pub dram_mb: f64,
    /// Texture hit rate.
    pub tex_hit_rate: f64,
    /// Candidate episodes counted.
    pub episodes: usize,
    /// Sum of all counts (functional checksum).
    pub total_count: u64,
}

/// The full grid plus its provenance.
#[derive(Debug, Clone, Serialize)]
pub struct Grid {
    /// All measurements.
    pub cells: Vec<GridCell>,
    /// Database length used.
    pub db_len: usize,
    /// Scale relative to the paper's database.
    pub scale: f64,
    /// Lookup index over `(algo, level, tpb, card)`, built once at
    /// construction so the figure/table generators' per-point [`Grid::get`]
    /// calls are O(1) instead of a scan over all cells.
    index: HashMap<(u8, usize, u32, String), usize>,
}

impl Grid {
    /// Builds a grid from computed cells, indexing them for O(1) lookup.
    pub fn new(cells: Vec<GridCell>, db_len: usize, scale: f64) -> Grid {
        let index = cells
            .iter()
            .enumerate()
            .map(|(i, c)| ((c.algo, c.level, c.tpb, c.card.clone()), i))
            .collect();
        Grid {
            cells,
            db_len,
            scale,
            index,
        }
    }

    /// Computes the grid. Sampling work is shared across cards and reused
    /// between Algorithms 1/2 (identical inner loops), and each level's
    /// algo × tpb × card plane is swept in parallel over the worker pool
    /// against the level's shared memoized [`MiningProblem`].
    pub fn compute(cfg: &GridConfig) -> Grid {
        let db = paper_database_scaled(cfg.scale);
        Self::compute_on(cfg, &db)
    }

    /// Computes the grid over a caller-supplied database.
    pub fn compute_on(cfg: &GridConfig, db: &EventDb) -> Grid {
        let alphabet = Alphabet::latin26();
        let workers = if cfg.workers == 0 {
            default_workers()
        } else {
            cfg.workers
        };
        let mut cells = Vec::new();
        for &level in &cfg.levels {
            let episodes: Vec<Episode> = permutations(&alphabet, level);
            // Plan once per level: the compiled layout is shared by every
            // (algo, tpb, card) cell of the plane.
            let compiled = CompiledCandidates::compile(alphabet.len(), &episodes);
            let problem = MiningProblem::from_compiled(db, &compiled);
            // Ground truth once per level (database-sharded internally).
            let total_count: u64 = problem.counts().iter().sum();
            // One work item per cell; contiguous chunking keeps the cards of
            // one (algo, tpb) point on the same worker, so each profile sample
            // is usually computed exactly once and then shared via the
            // problem's cache.
            let mut combos: Vec<(Algorithm, u32, &DeviceConfig)> = Vec::new();
            for &algo in &cfg.algorithms {
                for &tpb in &cfg.tpb_sweep {
                    for card in &cfg.cards {
                        combos.push((algo, tpb, card));
                    }
                }
            }
            let level_cells = map_items(&combos, workers, |&(algo, tpb, card)| {
                let run = problem
                    .run(algo, tpb, card, &cfg.cost, &cfg.opts)
                    .expect("paper-sweep launches are always valid");
                if cfg.progress {
                    eprint!(".");
                }
                GridCell {
                    algo: algo.number(),
                    level,
                    tpb,
                    card: card.name.clone(),
                    time_ms: run.report.time_ms,
                    bound: format!("{:?}", run.report.bound),
                    blocks: run.launch.blocks,
                    waves: run.report.waves,
                    occupancy: run.report.occupancy.occupancy_fraction,
                    dram_mb: run.report.counters.dram_bytes as f64 / 1e6,
                    tex_hit_rate: run.report.counters.tex_hit_rate(),
                    episodes: episodes.len(),
                    total_count,
                }
            });
            cells.extend(level_cells);
            if cfg.progress {
                eprintln!(" level {level} done ({} episodes)", episodes.len());
            }
        }
        let db_len = db.len();
        Grid::new(cells, db_len, db_len as f64 / PAPER_DB_LEN as f64)
    }

    /// Looks a cell up via the prebuilt index (panics if absent — grid cells
    /// are total over the config).
    pub fn get(&self, algo: u8, level: usize, tpb: u32, card: &str) -> &GridCell {
        self.index
            .get(&(algo, level, tpb, card.to_string()))
            .map(|&i| &self.cells[i])
            .unwrap_or_else(|| {
                panic!("missing cell algo={algo} level={level} tpb={tpb} card={card}")
            })
    }

    /// The sorted block-size axis present in the grid.
    pub fn tpb_axis(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.cells.iter().map(|c| c.tpb).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Card names in insertion order.
    pub fn cards(&self) -> Vec<String> {
        let mut v = Vec::new();
        for c in &self.cells {
            if !v.contains(&c.card) {
                v.push(c.card.clone());
            }
        }
        v
    }

    /// Levels present.
    pub fn levels(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.cells.iter().map(|c| c.level).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The fastest time for a level on a card, restricted to a set of
    /// algorithm numbers (e.g. thread-level = `[1, 2]`).
    pub fn best_of_algos(&self, algos: &[u8], level: usize, card: &str) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.level == level && c.card == card && algos.contains(&c.algo))
            .map(|c| c.time_ms)
            .min_by(|a, b| a.total_cmp(b))
            .expect("algorithms present in grid")
    }

    /// The fastest (algo, tpb, time) for a level on a card.
    pub fn best_config(&self, level: usize, card: &str) -> (u8, u32, f64) {
        self.cells
            .iter()
            .filter(|c| c.level == level && c.card == card)
            .min_by(|a, b| a.time_ms.total_cmp(&b.time_ms))
            .map(|c| (c.algo, c.tpb, c.time_ms))
            .expect("level present in grid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> Grid {
        let cfg = GridConfig {
            scale: 0.01,
            levels: vec![1, 2],
            tpb_sweep: vec![64, 256],
            cards: vec![DeviceConfig::geforce_gtx_280()],
            ..Default::default()
        };
        Grid::compute(&cfg)
    }

    #[test]
    fn grid_is_total_over_config() {
        let g = tiny_grid();
        // 2 levels x 4 algos x 2 tpb x 1 card
        assert_eq!(g.cells.len(), 16);
        assert_eq!(g.tpb_axis(), vec![64, 256]);
        assert_eq!(g.levels(), vec![1, 2]);
        assert_eq!(g.cards(), vec!["GeForce GTX 280".to_string()]);
        let c = g.get(3, 2, 64, "GeForce GTX 280");
        assert_eq!(c.blocks, 650);
        assert!(c.time_ms > 0.0);
    }

    #[test]
    fn best_config_returns_minimum() {
        let g = tiny_grid();
        let (algo, tpb, t) = g.best_config(1, "GeForce GTX 280");
        for c in g.cells.iter().filter(|c| c.level == 1) {
            assert!(t <= c.time_ms);
        }
        assert!((1..=4).contains(&algo));
        assert!(tpb == 64 || tpb == 256);
    }

    #[test]
    fn functional_checksums_consistent_across_algos() {
        let g = tiny_grid();
        for level in [1usize, 2] {
            let sums: Vec<u64> = g
                .cells
                .iter()
                .filter(|c| c.level == level)
                .map(|c| c.total_count)
                .collect();
            assert!(sums.windows(2).all(|w| w[0] == w[1]), "level {level}");
        }
    }
}
