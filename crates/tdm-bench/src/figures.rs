//! Figure generators: each returns CSV text (and an ASCII preview) from a
//! computed [`Grid`].

use crate::chart::ascii_chart;
use crate::grid::Grid;

/// A rendered figure: CSV payload plus a terminal preview.
#[derive(Debug, Clone)]
pub struct Figure {
    /// File stem, e.g. `fig6a`.
    pub name: String,
    /// Human title (matches the paper's caption).
    pub title: String,
    /// CSV content.
    pub csv: String,
    /// ASCII preview.
    pub preview: String,
}

const GTX: &str = "GeForce GTX 280";

fn series_csv(
    name: &str,
    title: &str,
    xs: &[u32],
    series: &[(String, Vec<f64>)],
    log_y: bool,
) -> Figure {
    let mut csv = String::from("tpb");
    for (label, _) in series {
        csv.push_str(&format!(",{label}"));
    }
    csv.push('\n');
    for (i, x) in xs.iter().enumerate() {
        csv.push_str(&x.to_string());
        for (_, ys) in series {
            csv.push_str(&format!(",{:.6}", ys[i]));
        }
        csv.push('\n');
    }
    let preview = ascii_chart(title, xs, series, 12, log_y);
    Figure {
        name: name.to_string(),
        title: title.to_string(),
        csv,
        preview,
    }
}

/// Figure 6 (a–d): per algorithm on the GTX 280, execution time of each level
/// *relative to level 1* vs. threads per block.
pub fn fig6(grid: &Grid) -> Vec<Figure> {
    let xs = grid.tpb_axis();
    let levels = grid.levels();
    (1u8..=4)
        .map(|algo| {
            let base: Vec<f64> = xs.iter().map(|&t| grid.get(algo, 1, t, GTX).time_ms).collect();
            let series: Vec<(String, Vec<f64>)> = levels
                .iter()
                .map(|&l| {
                    (
                        format!("Level{l}"),
                        xs.iter()
                            .enumerate()
                            .map(|(i, &t)| grid.get(algo, l, t, GTX).time_ms / base[i])
                            .collect(),
                    )
                })
                .collect();
            let letter = (b'a' + algo - 1) as char;
            series_csv(
                &format!("fig6{letter}"),
                &format!("Fig 6({letter}): Execution Time of Algorithm{algo} on GTX280 (relative to Level1)"),
                &xs,
                &series,
                false,
            )
        })
        .collect()
}

/// Figure 7 (a–c): per level on the GTX 280, absolute time of the four
/// algorithms vs. threads per block.
pub fn fig7(grid: &Grid) -> Vec<Figure> {
    let xs = grid.tpb_axis();
    grid.levels()
        .iter()
        .enumerate()
        .map(|(i, &level)| {
            let series: Vec<(String, Vec<f64>)> = (1u8..=4)
                .map(|algo| {
                    (
                        format!("Algorithm{algo}"),
                        xs.iter().map(|&t| grid.get(algo, level, t, GTX).time_ms).collect(),
                    )
                })
                .collect();
            let letter = (b'a' + i as u8) as char;
            series_csv(
                &format!("fig7{letter}"),
                &format!("Fig 7({letter}): Execution Time of Level{level} on GTX280 using Different Algorithms (ms, log preview)"),
                &xs,
                &series,
                true,
            )
        })
        .collect()
}

/// Figure 8: (a) Algorithm 1 at level 2 across cards; (b) Algorithm 3 at level
/// 1 across cards.
pub fn fig8(grid: &Grid) -> Vec<Figure> {
    let xs = grid.tpb_axis();
    let cards = grid.cards();
    let mk = |name: &str, title: &str, algo: u8, level: usize| {
        let series: Vec<(String, Vec<f64>)> = cards
            .iter()
            .map(|card| {
                (
                    card.replace("GeForce ", "").replace(' ', ""),
                    xs.iter()
                        .map(|&t| grid.get(algo, level, t, card).time_ms)
                        .collect(),
                )
            })
            .collect();
        series_csv(name, title, &xs, &series, false)
    };
    vec![
        mk(
            "fig8a",
            "Fig 8(a): Algorithm1 on Level2 across cards (ms) — shader-clock ordering",
            1,
            2,
        ),
        mk(
            "fig8b",
            "Fig 8(b): Algorithm3 on Level1 across cards (ms) — bandwidth ordering",
            3,
            1,
        ),
    ]
}

/// Figure 9 (a–l): the appendix grid — every (algorithm, level) with the three
/// cards as series.
pub fn fig9(grid: &Grid) -> Vec<Figure> {
    let xs = grid.tpb_axis();
    let cards = grid.cards();
    let mut out = Vec::new();
    let mut letter = b'a';
    for algo in 1u8..=4 {
        for &level in &grid.levels() {
            let series: Vec<(String, Vec<f64>)> = cards
                .iter()
                .map(|card| {
                    (
                        card.replace("GeForce ", "").replace(' ', ""),
                        xs.iter()
                            .map(|&t| grid.get(algo, level, t, card).time_ms)
                            .collect(),
                    )
                })
                .collect();
            out.push(series_csv(
                &format!("fig9{}", letter as char),
                &format!(
                    "Fig 9({}): Algorithm{algo} on Level{level} across cards (ms)",
                    letter as char
                ),
                &xs,
                &series,
                false,
            ));
            letter += 1;
        }
    }
    out
}

/// The conclusion's best-configuration table: per level, the fastest
/// (algorithm, tpb) on the GTX 280, next to the paper's reported optimum.
pub fn best_config(grid: &Grid) -> Figure {
    let paper_claims = [
        (1usize, "Algorithm4 @ 256 (block-level, buffered)"),
        (2, "Algorithm3 @ 64 (block-level, unbuffered)"),
        (3, "thread-level @ 96 (Algorithm1/2)"),
    ];
    let mut csv = String::from("level,best_algo,best_tpb,best_ms,paper_claim\n");
    let mut preview = String::from("Best configuration per level (GTX 280):\n");
    for &level in &grid.levels() {
        let (algo, tpb, ms) = grid.best_config(level, GTX);
        let claim = paper_claims
            .iter()
            .find(|(l, _)| *l == level)
            .map(|(_, c)| *c)
            .unwrap_or("-");
        csv.push_str(&format!(
            "{level},Algorithm{algo},{tpb},{ms:.4},\"{claim}\"\n"
        ));
        preview.push_str(&format!(
            "  L{level}: Algorithm{algo} @ {tpb} tpb -> {ms:.3} ms   (paper: {claim})\n"
        ));
    }
    Figure {
        name: "best_config".into(),
        title: "Best configuration per level".into(),
        csv,
        preview,
    }
}

/// Raw grid dump (every cell) for downstream analysis.
pub fn grid_csv(grid: &Grid) -> Figure {
    let mut csv = String::from(
        "algo,level,tpb,card,time_ms,bound,blocks,waves,occupancy,dram_mb,tex_hit_rate,episodes,total_count\n",
    );
    for c in &grid.cells {
        csv.push_str(&format!(
            "{},{},{},\"{}\",{:.6},{},{},{},{:.4},{:.3},{:.5},{},{}\n",
            c.algo,
            c.level,
            c.tpb,
            c.card,
            c.time_ms,
            c.bound,
            c.blocks,
            c.waves,
            c.occupancy,
            c.dram_mb,
            c.tex_hit_rate,
            c.episodes,
            c.total_count
        ));
    }
    Figure {
        name: "grid".into(),
        title: "Full measurement grid".into(),
        csv,
        preview: format!(
            "{} cells over db of {} letters\n",
            grid.cells.len(),
            grid.db_len
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridConfig;
    use gpu_sim::DeviceConfig;

    fn grid() -> Grid {
        let cfg = GridConfig {
            scale: 0.01,
            levels: vec![1, 2],
            tpb_sweep: vec![64, 256],
            cards: DeviceConfig::paper_testbed(),
            ..Default::default()
        };
        Grid::compute(&cfg)
    }

    #[test]
    fn figures_have_expected_shapes() {
        let g = grid();
        let f6 = fig6(&g);
        assert_eq!(f6.len(), 4);
        assert!(f6[0].csv.starts_with("tpb,Level1,Level2"));
        // Level-1 relative series is identically 1.
        for line in f6[0].csv.lines().skip(1) {
            let v: Vec<&str> = line.split(',').collect();
            let rel: f64 = v[1].parse().unwrap();
            assert!((rel - 1.0).abs() < 1e-9);
        }
        let f7 = fig7(&g);
        assert_eq!(f7.len(), 2); // two levels in this test grid
        assert!(f7[0].csv.contains("Algorithm4"));
        let f8 = fig8(&g);
        assert_eq!(f8.len(), 2);
        assert!(f8[0].csv.contains("8800GTS512"));
        let f9 = fig9(&g);
        assert_eq!(f9.len(), 8); // 4 algos x 2 levels
    }

    #[test]
    fn best_config_and_dump() {
        let g = grid();
        let best = best_config(&g);
        assert!(best.csv.lines().count() >= 3);
        let dump = grid_csv(&g);
        assert_eq!(dump.csv.lines().count(), g.cells.len() + 1);
    }
}
