//! Extension experiments beyond the paper's published evaluation — its §6
//! future-work list, executed:
//!
//! * [`level4_extension`] — "the effects of larger episodes (e.g., L >> 3)" on
//!   the constant-time thread-level kernels;
//! * [`pipeline_report`] — "pipelining multiple phases of the overall
//!   algorithm together";
//! * [`discovery_report`] — "a series of micro-benchmarks to discover the
//!   underlying hardware and architectural features".

use crate::figures::Figure;
use gpu_sim::microbench;
use gpu_sim::{CostModel, DeviceConfig};
use tdm_core::candidate::{permutation_count, permutations};
use tdm_core::{Alphabet, Episode};
use tdm_gpu::pipeline::simulate_pipelined_mining;
use tdm_gpu::{Algorithm, MiningProblem, SimOptions};
use tdm_workloads::paper_database_scaled;

/// Level-4 sweep (358,800 candidates — 23× the paper's largest level) for all
/// four kernels on the GTX 280, plus the per-episode scaling of Algorithm 1
/// across levels 1–4. Runs at a reduced scale by default because the
/// ground-truth counting of 358,800 episodes is CPU-heavy.
pub fn level4_extension(scale: f64) -> Figure {
    let db = paper_database_scaled(scale);
    let ab = Alphabet::latin26();
    let gtx = DeviceConfig::geforce_gtx_280();
    let cost = CostModel::default();
    let opts = SimOptions::default();
    let tpbs = [64u32, 96, 128, 256, 512];

    let mut csv = String::from("tpb,Algorithm1,Algorithm2,Algorithm3,Algorithm4\n");
    let episodes = permutations(&ab, 4);
    assert_eq!(episodes.len() as u64, permutation_count(26, 4).unwrap());
    let problem = MiningProblem::new(&db, &episodes);
    let mut preview = format!(
        "Level-4 extension: {} candidates over {} letters (GTX 280)\n",
        episodes.len(),
        db.len()
    );
    for &tpb in &tpbs {
        let mut row = format!("{tpb}");
        for algo in Algorithm::ALL {
            let run = problem
                .run(algo, tpb, &gtx, &cost, &opts)
                .expect("valid launch");
            row.push_str(&format!(",{:.4}", run.report.time_ms));
        }
        csv.push_str(&row);
        csv.push('\n');
    }

    // Per-episode constancy of the thread-level kernel across levels (the §6
    // question: does C1 survive L >> 3?).
    preview.push_str("Algorithm 1 @ 96 tpb, per level:\n");
    csv.push_str("# algorithm1_per_level: level,episodes,time_ms,us_per_episode\n");
    for level in 1..=4usize {
        let eps = permutations(&ab, level);
        let p = MiningProblem::new(&db, &eps);
        let run = p
            .run(Algorithm::ThreadTexture, 96, &gtx, &cost, &opts)
            .expect("valid launch");
        let per_ep = run.report.time_ms * 1e3 / eps.len() as f64;
        csv.push_str(&format!(
            "# L{level},{},{:.4},{:.4}\n",
            eps.len(),
            run.report.time_ms,
            per_ep
        ));
        preview.push_str(&format!(
            "  L{level}: {:>7} episodes -> {:>9.2} ms ({:.3} us/episode)\n",
            eps.len(),
            run.report.time_ms,
            per_ep
        ));
    }
    Figure {
        name: "ext_level4".into(),
        title: "Extension: level-4 sweep and per-episode scaling".into(),
        csv,
        preview,
    }
}

/// Pipelined execution of levels 1–3 counting (paper §6) on each card.
pub fn pipeline_report(scale: f64) -> String {
    let db = paper_database_scaled(scale);
    let ab = Alphabet::latin26();
    let levels: Vec<Vec<Episode>> = (1..=3).map(|l| permutations(&ab, l)).collect();
    let mut out = String::from("# Extension: phase pipelining (paper §6)\n\n");
    out.push_str(&format!(
        "Levels 1-3 counting with Algorithm 3 @ 64 tpb over {} letters.\n\n",
        db.len()
    ));
    out.push_str(
        "| card | serial (ms) | gen-overlap (ms) | co-scheduled kernels (ms) | co-schedule speedup |\n",
    );
    out.push_str("|---|---|---|---|---|\n");
    for card in DeviceConfig::paper_testbed() {
        let report = simulate_pipelined_mining(
            &db,
            &levels,
            Algorithm::BlockTexture,
            64,
            &card,
            &CostModel::default(),
            &SimOptions::default(),
        )
        .expect("valid launches");
        out.push_str(&format!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.2}x |\n",
            card.name,
            report.serial_ms,
            report.pipelined_ms,
            report.coscheduled_kernels_ms,
            report.coschedule_speedup()
        ));
    }
    out.push_str(
        "\nCo-scheduling absorbs the under-occupied level-1/2 kernels into the\n\
         level-3 kernel's idle SMs — the gain the paper anticipated from\n\
         pipelining phases.\n",
    );
    out
}

/// Micro-benchmark discovery report: per card, configured vs. probed machine
/// parameters (paper §6's plan, run against the simulator as a black box).
pub fn discovery_report() -> String {
    let cost = CostModel::default();
    let mut out = String::from("# Extension: micro-benchmark hardware discovery (paper §6)\n\n");
    out.push_str(
        "| card | tex latency (probed/config) | issue cyc | tex cache (probed) | blocks/SM (probed/config) | bandwidth GB/s (probed/config) |\n|---|---|---|---|---|---|\n",
    );
    for dev in DeviceConfig::paper_testbed() {
        let m = microbench::discover(&dev, &cost);
        out.push_str(&format!(
            "| {} | {:.0} / {:.0} | {:.1} | {} KB | {} / {} | {:.1} / {:.1} |\n",
            dev.name,
            m.tex_latency_cycles,
            cost.tex_hit_latency,
            m.issue_cycles,
            m.texture_cache_bytes / 1024,
            m.max_blocks_per_sm,
            dev.max_blocks_per_sm,
            m.bandwidth_gbps,
            dev.mem_bandwidth_gbps,
        ));
    }
    out.push_str(
        "\nEvery probe treats the simulator as a black box and recovers the\n\
         configured parameter from timing alone — an end-to-end consistency\n\
         check of the scheduler, cache, and latency models.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level4_extension_runs_small() {
        let fig = level4_extension(0.005);
        assert!(fig.csv.contains("# L4,358800"));
        assert!(fig.preview.contains("L4"));
        // 4 tpb rows + headers/comments.
        assert!(fig.csv.lines().count() > 8);
    }

    #[test]
    fn pipeline_report_renders() {
        let md = pipeline_report(0.01);
        assert!(md.contains("GeForce GTX 280"));
        assert!(md.contains("co-scheduled"));
    }

    #[test]
    fn discovery_report_renders() {
        let md = discovery_report();
        assert!(md.contains("GeForce 8800 GTS 512"));
        assert!(md.lines().count() > 5);
    }
}
