//! Table 1 (candidate growth) and Table 2 (card features) of the paper.

use gpu_sim::DeviceConfig;
use tdm_core::candidate::permutation_count;

/// Table 1: the number of distinct-item episodes of length `L` from an alphabet
/// of size `N = 26`, for `L = 1..=max_level`. Returns `(L, count)` rows.
pub fn table1(max_level: usize) -> Vec<(usize, u64)> {
    (1..=max_level)
        .map(|l| {
            (
                l,
                permutation_count(26, l).expect("26-symbol alphabet fits u64 up to L=15"),
            )
        })
        .collect()
}

/// Table 1 as CSV (matches the paper's row: episodes per level).
pub fn table1_csv(max_level: usize) -> String {
    let mut out = String::from("level,episodes\n");
    for (l, n) in table1(max_level) {
        out.push_str(&format!("{l},{n}\n"));
    }
    out
}

/// Table 2: the architectural features of the three cards, one row per feature
/// (mirrors the paper's layout).
pub fn table2() -> String {
    let cards = DeviceConfig::paper_testbed();
    let mut out = String::from("feature");
    for c in &cards {
        out.push_str(&format!(",{}", c.name));
    }
    out.push('\n');
    let mut push_row = |name: &str, f: &dyn Fn(&DeviceConfig) -> String| {
        out.push_str(name);
        for c in &cards {
            out.push_str(&format!(",{}", f(c)));
        }
        out.push('\n');
    };
    push_row("GPU", &|c| c.gpu_chip.clone());
    push_row("Memory (MB)", &|c| c.memory_mb.to_string());
    push_row("Memory Bandwidth (GBps)", &|c| {
        format!("{}", c.mem_bandwidth_gbps)
    });
    push_row("Multiprocessors", &|c| c.sm_count.to_string());
    push_row("Cores", &|c| c.total_cores().to_string());
    push_row("Processor Clock (MHz)", &|c| c.shader_clock_mhz.to_string());
    push_row("Compute Capability", &|c| c.compute_capability.to_string());
    push_row("Registers per Multiprocessor", &|c| {
        c.registers_per_sm.to_string()
    });
    push_row("Threads per Block (Max)", &|c| {
        c.max_threads_per_block.to_string()
    });
    push_row("Active Threads per Multiprocessor (Max)", &|c| {
        c.max_threads_per_sm.to_string()
    });
    push_row("Active Blocks per Multiprocessor (Max)", &|c| {
        c.max_blocks_per_sm.to_string()
    });
    push_row("Active Warps per Multiprocessor (Max)", &|c| {
        c.max_warps_per_sm.to_string()
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let rows = table1(3);
        assert_eq!(rows, vec![(1, 26), (2, 650), (3, 15_600)]);
    }

    #[test]
    fn table1_csv_form() {
        let csv = table1_csv(4);
        assert!(csv.starts_with("level,episodes\n"));
        assert!(csv.contains("3,15600\n"));
        assert!(csv.contains("4,358800\n"));
    }

    #[test]
    fn table2_contains_paper_numbers() {
        let t = table2();
        // Spot checks straight from the paper's Table 2.
        assert!(t.contains("GeForce GTX 280"));
        assert!(t.contains("141.7"));
        assert!(t.contains("Multiprocessors,16,16,30"));
        assert!(t.contains("Cores,128,128,240"));
        assert!(t.contains("Processor Clock (MHz),1625,1500,1296"));
        assert!(t.contains("Compute Capability,1.1,1.1,1.3"));
    }
}
