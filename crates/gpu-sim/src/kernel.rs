//! Kernel descriptions: launch geometry and per-block execution profiles.
//!
//! A kernel tells the engine *what one block does* as an ordered list of
//! [`Phase`]s. The figures in a profile come from functional execution of the
//! real algorithm (see the `tdm-gpu` crate): total issue work across the block's
//! warps (divergence-adjusted by [`crate::warp::LockstepRecorder`]), the critical
//! warp's serial dependency chain, and the memory traffic each phase generates.
//! All quantities are **per block**; the engine scales them by residency and wave
//! counts.

use crate::occupancy::KernelResources;
use serde::{Deserialize, Serialize};

/// Grid geometry of a kernel launch (paper §2.1.2: `M` equally-shaped blocks of
/// `N` threads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub blocks: u32,
    /// Threads per block.
    pub threads_per_block: u32,
}

impl LaunchConfig {
    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.blocks as u64 * self.threads_per_block as u64
    }
}

/// Which memory path a phase's traffic uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MemKind {
    /// Read-only texture path through the per-SM texture cache.
    Texture {
        /// Concurrent sequential streams one block keeps alive (warps for a
        /// broadcast scan, lanes for a partitioned scan).
        streams_per_block: u32,
        /// Distinct bytes one block touches.
        unique_bytes: u64,
        /// Whether co-resident blocks read the *same* addresses in near-lockstep
        /// (true for kernels where every block scans the database with the same
        /// partitioning — temporal sharing dedups their fetches).
        shared_across_blocks: bool,
    },
    /// On-chip shared memory.
    Shared {
        /// Bank-conflict serialization degree (1 = conflict-free). See
        /// [`crate::smem::conflict_degree`].
        conflict_degree: u32,
    },
    /// Device (global) memory — cooperative buffer loads, result writes.
    Global,
}

/// Memory traffic of one phase, per block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemTraffic {
    /// Memory path.
    pub kind: MemKind,
    /// Memory instructions issued at warp granularity (issue slots before
    /// conflict replays).
    pub requests: u64,
    /// Dependent accesses along the critical warp's serial chain (the FSM's
    /// fetch→step→fetch dependency makes scans latency chains).
    pub chain: u64,
    /// Logical bytes accessed by the whole block.
    pub touched_bytes: u64,
}

/// One phase of a block's execution.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Phase {
    /// Human-readable label (reported in breakdowns).
    pub label: &'static str,
    /// Total compute issue work across all the block's warps
    /// (divergence-adjusted warp instructions).
    pub warp_instructions: u64,
    /// Compute instructions along the critical (slowest) warp's own path.
    pub chain_instructions: u64,
    /// Optional memory traffic interleaved with the compute.
    pub mem: Option<MemTraffic>,
    /// Number of block-wide `__syncthreads()` barriers in this phase.
    pub barriers: u32,
}

impl Phase {
    /// A pure-compute phase where all warps do the same work.
    pub fn compute(label: &'static str, warp_instructions: u64, warps: u32) -> Self {
        Phase {
            label,
            warp_instructions,
            chain_instructions: if warps == 0 {
                warp_instructions
            } else {
                warp_instructions / warps as u64
            },
            mem: None,
            barriers: 0,
        }
    }
}

/// Everything one block executes, in order.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct BlockProfile {
    /// Ordered phases.
    pub phases: Vec<Phase>,
}

impl BlockProfile {
    /// Total issue work (instructions + memory slots, before replays) per block.
    pub fn total_issue_work(&self) -> u64 {
        self.phases
            .iter()
            .map(|p| p.warp_instructions + p.mem.map_or(0, |m| m.requests))
            .sum()
    }
}

/// A complete kernel for simulation: geometry, resources, and what a block does.
///
/// Profiles may vary across blocks (e.g. ragged last block); `profile` describes
/// the *statistically representative* block, which is exact for the uniform
/// mining kernels this crate was built for.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct KernelSpec {
    /// Grid geometry.
    pub launch: LaunchConfig,
    /// Occupancy-relevant resources.
    pub resources: KernelResources,
    /// Per-block execution profile.
    pub profile: BlockProfile,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn launch_totals() {
        let l = LaunchConfig {
            blocks: 26,
            threads_per_block: 128,
        };
        assert_eq!(l.total_threads(), 26 * 128);
    }

    #[test]
    fn compute_phase_divides_chain() {
        let p = Phase::compute("scan", 800, 4);
        assert_eq!(p.chain_instructions, 200);
        assert!(p.mem.is_none());
        let p0 = Phase::compute("degenerate", 800, 0);
        assert_eq!(p0.chain_instructions, 800);
    }

    #[test]
    fn issue_work_sums_compute_and_memory() {
        let profile = BlockProfile {
            phases: vec![
                Phase {
                    label: "load",
                    warp_instructions: 100,
                    chain_instructions: 50,
                    mem: Some(MemTraffic {
                        kind: MemKind::Global,
                        requests: 40,
                        chain: 20,
                        touched_bytes: 4096,
                    }),
                    barriers: 1,
                },
                Phase::compute("scan", 300, 2),
            ],
        };
        assert_eq!(profile.total_issue_work(), 100 + 40 + 300);
    }
}
