//! Micro-benchmarks that discover the simulated machine's parameters —
//! the paper's §6 plan, implemented against the simulator:
//!
//! > "We plan to pursue a series of micro-benchmarks to discover the underlying
//! > hardware and architectural features such as scheduling, caching, and
//! > memory allocation."
//!
//! Each probe launches a purpose-built synthetic kernel and infers one machine
//! parameter *from timing alone*, treating the simulator as a black box — the
//! same methodology one would use on real silicon. The tests then check that
//! the discovered values round-trip to the configured [`DeviceConfig`] /
//! [`CostModel`], which is a strong end-to-end consistency check of the engine:
//! if the scheduler, cache model, or latency accounting were wrong, the probes
//! would disagree with the configuration.

use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::engine::simulate;
use crate::kernel::{BlockProfile, KernelSpec, LaunchConfig, MemKind, MemTraffic, Phase};
use crate::occupancy::KernelResources;

/// Result of a full discovery run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoveredMachine {
    /// Measured texture-fetch latency on a resident stream (cycles).
    pub tex_latency_cycles: f64,
    /// Measured warp-issue cost per instruction (cycles).
    pub issue_cycles: f64,
    /// Inferred texture-cache working set per SM (bytes).
    pub texture_cache_bytes: u32,
    /// Inferred maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Measured device bandwidth (GB/s).
    pub bandwidth_gbps: f64,
}

fn bare_spec(blocks: u32, tpb: u32, phases: Vec<Phase>) -> KernelSpec {
    KernelSpec {
        launch: LaunchConfig {
            blocks,
            threads_per_block: tpb,
        },
        resources: KernelResources::new(tpb),
        profile: BlockProfile { phases },
    }
}

fn net_cycles(dev: &DeviceConfig, cost: &CostModel, spec: &KernelSpec) -> f64 {
    let rep = simulate(dev, cost, spec).expect("probe kernels are valid");
    rep.cycles - rep.components.launch_cycles
}

/// Pointer-chase probe: one warp, `n` dependent texture fetches with no other
/// work. Time/access − instruction overhead = the texture pipeline latency.
pub fn probe_tex_latency(dev: &DeviceConfig, cost: &CostModel) -> f64 {
    let n: u64 = 100_000;
    let instr_per_access = 2u64;
    let spec = bare_spec(
        1,
        32,
        vec![Phase {
            label: "chase",
            warp_instructions: n * instr_per_access,
            chain_instructions: n * instr_per_access,
            mem: Some(MemTraffic {
                kind: MemKind::Texture {
                    streams_per_block: 1,
                    unique_bytes: n,
                    shared_across_blocks: true,
                },
                requests: n,
                chain: n,
                touched_bytes: n,
            }),
            barriers: 0,
        }],
    );
    let cycles = net_cycles(dev, cost, &spec);
    cycles / n as f64 - instr_per_access as f64 * cost.issue_cycles
}

/// Issue-throughput probe: saturate one SM with warps of pure compute; the
/// per-instruction cost is total cycles over total instructions.
pub fn probe_issue_cycles(dev: &DeviceConfig, cost: &CostModel) -> f64 {
    let instr: u64 = 1_000_000;
    let warps = 8u32;
    let spec = bare_spec(
        1,
        warps * 32,
        vec![Phase {
            label: "alu",
            warp_instructions: instr * warps as u64,
            chain_instructions: instr,
            mem: None,
            barriers: 0,
        }],
    );
    let cycles = net_cycles(dev, cost, &spec);
    cycles / (instr * warps as u64) as f64
}

/// Cache-size probe: one block whose lanes keep `streams` sequential streams
/// alive. Sweep `streams`; when they stop fitting, the average access latency
/// rises above the hit latency. Returns the inferred working set in bytes
/// (largest sweep point whose latency is within 10% of the resident-stream
/// baseline, times the line size).
pub fn probe_texture_cache_size(dev: &DeviceConfig, cost: &CostModel) -> u32 {
    let line = cost.tex_line_bytes;
    let per_stream_bytes: u64 = 4096;
    let latency_for = |streams: u32| -> f64 {
        let accesses = per_stream_bytes * streams as u64;
        let spec = bare_spec(
            1,
            512,
            vec![Phase {
                label: "sweep",
                warp_instructions: accesses * 2 / 32,
                chain_instructions: accesses * 2 / 512,
                mem: Some(MemTraffic {
                    kind: MemKind::Texture {
                        streams_per_block: streams,
                        unique_bytes: accesses,
                        shared_across_blocks: true,
                    },
                    requests: accesses / 32,
                    chain: accesses / 512,
                    touched_bytes: accesses,
                }),
                barriers: 0,
            }],
        );
        let rep = simulate(dev, cost, &spec).expect("valid probe");
        // Average observed latency per access on the critical chain.
        1.0 - rep.counters.tex_hit_rate()
    };
    let baseline = latency_for(8);
    let mut best = 8u32;
    let mut streams = 16u32;
    while streams <= 4096 {
        let miss_rate = latency_for(streams);
        if miss_rate
            <= baseline
                + 0.02
                + (per_stream_bytes.div_ceil(line as u64) as f64
                    / (per_stream_bytes * streams as u64) as f64)
        {
            best = streams;
        }
        streams *= 2;
    }
    best * line
}

/// Occupancy probe: launch ever more *latency-bound* blocks (one warp chasing
/// dependent texture fetches). While blocks co-reside, their chains overlap
/// and the kernel time stays one chain long; the first grid size that needs a
/// second wave doubles the time — the staircase edge is the per-SM block
/// limit. (A compute-bound probe would not work: issue work grows with every
/// resident block, hiding the residency boundary.)
pub fn probe_max_blocks(dev: &DeviceConfig, cost: &CostModel) -> u32 {
    let m: u64 = 20_000; // dependent fetches per block
    let chase = |blocks: u32| {
        net_cycles(
            dev,
            cost,
            &bare_spec(
                blocks,
                32,
                vec![Phase {
                    label: "chase",
                    warp_instructions: m,
                    chain_instructions: m,
                    mem: Some(MemTraffic {
                        kind: MemKind::Texture {
                            streams_per_block: 1,
                            unique_bytes: m,
                            shared_across_blocks: true,
                        },
                        requests: m,
                        chain: m,
                        touched_bytes: m,
                    }),
                    barriers: 0,
                }],
            ),
        )
    };
    let one_wave = chase(dev.sm_count);
    let mut cap = 1u32;
    for k in 2..=32u32 {
        let t = chase(k * dev.sm_count);
        if t < one_wave * 1.5 {
            cap = k;
        } else {
            break;
        }
    }
    cap
}

/// Stream probe: flood the device with coalesced global traffic and divide
/// bytes by time.
pub fn probe_bandwidth(dev: &DeviceConfig, cost: &CostModel) -> f64 {
    let bytes_per_block: u64 = 64 * 1024 * 1024 / dev.sm_count as u64;
    let spec = bare_spec(
        dev.sm_count * dev.max_blocks_per_sm,
        256,
        vec![Phase {
            label: "stream",
            warp_instructions: 1,
            chain_instructions: 1,
            mem: Some(MemTraffic {
                kind: MemKind::Global,
                requests: bytes_per_block / 64,
                chain: 1,
                touched_bytes: bytes_per_block,
            }),
            barriers: 0,
        }],
    );
    let rep = simulate(dev, cost, &spec).expect("valid probe");
    let seconds = (rep.cycles - rep.components.launch_cycles) / dev.clock_hz();
    rep.counters.dram_bytes as f64 / seconds / 1e9
}

/// Runs every probe.
pub fn discover(dev: &DeviceConfig, cost: &CostModel) -> DiscoveredMachine {
    DiscoveredMachine {
        tex_latency_cycles: probe_tex_latency(dev, cost),
        issue_cycles: probe_issue_cycles(dev, cost),
        texture_cache_bytes: probe_texture_cache_size(dev, cost),
        max_blocks_per_sm: probe_max_blocks(dev, cost),
        bandwidth_gbps: probe_bandwidth(dev, cost),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovers_texture_latency() {
        let cost = CostModel::default();
        for dev in DeviceConfig::paper_testbed() {
            let lat = probe_tex_latency(&dev, &cost);
            // Mostly hits on a resident stream: close to the hit latency.
            assert!(
                (lat - cost.tex_hit_latency).abs() < 0.05 * cost.tex_hit_latency + 10.0,
                "{}: {lat} vs {}",
                dev.name,
                cost.tex_hit_latency
            );
        }
    }

    #[test]
    fn discovers_issue_rate() {
        let cost = CostModel::default();
        let dev = DeviceConfig::geforce_gtx_280();
        let issue = probe_issue_cycles(&dev, &cost);
        assert!((issue - cost.issue_cycles).abs() < 0.1, "{issue}");
    }

    #[test]
    fn discovers_cache_working_set_ordering() {
        let cost = CostModel::default();
        let g92 = probe_texture_cache_size(&DeviceConfig::geforce_8800_gts_512(), &cost);
        let gt200 = probe_texture_cache_size(&DeviceConfig::geforce_gtx_280(), &cost);
        // The probe recovers the configured 2x working-set difference.
        assert!(gt200 > g92, "gt200 {gt200} vs g92 {g92}");
        assert!((4 * 1024..=16 * 1024).contains(&g92), "{g92}");
        assert!((8 * 1024..=32 * 1024).contains(&gt200), "{gt200}");
    }

    #[test]
    fn discovers_block_limit() {
        let cost = CostModel::default();
        for dev in DeviceConfig::paper_testbed() {
            let blocks = probe_max_blocks(&dev, &cost);
            assert_eq!(blocks, dev.max_blocks_per_sm, "{}", dev.name);
        }
    }

    #[test]
    fn discovers_bandwidth_within_tolerance() {
        let cost = CostModel::default();
        for dev in DeviceConfig::paper_testbed() {
            let bw = probe_bandwidth(&dev, &cost);
            let rel = (bw - dev.mem_bandwidth_gbps).abs() / dev.mem_bandwidth_gbps;
            assert!(
                rel < 0.15,
                "{}: probed {bw} vs spec {}",
                dev.name,
                dev.mem_bandwidth_gbps
            );
        }
    }

    #[test]
    fn full_discovery_is_consistent() {
        let cost = CostModel::default();
        let dev = DeviceConfig::geforce_gtx_280();
        let m = discover(&dev, &cost);
        assert_eq!(m.max_blocks_per_sm, 8);
        assert!(m.issue_cycles > 3.5 && m.issue_cycles < 4.5);
        assert!(m.bandwidth_gbps > 100.0);
    }
}
