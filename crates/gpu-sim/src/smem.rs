//! Shared-memory model: latency and bank conflicts.
//!
//! On cc 1.x hardware shared memory has 16 banks of 32-bit words; a half-warp's
//! accesses are conflict-free when they fall in distinct banks (or all read the
//! same word — the broadcast case the buffered thread-level kernel enjoys).
//! Conflicting accesses replay serially, multiplying both the issue slots and the
//! effective latency of the access — this is the mechanism that penalizes the
//! buffered block-level kernel's power-of-two slice strides (Algorithm 4).

use serde::{Deserialize, Serialize};

/// Access pattern of one shared-memory read/write per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SmemPattern {
    /// All lanes of a half-warp read the same address (hardware broadcast).
    Broadcast,
    /// Lane `i` accesses `base + i * stride_bytes`.
    Strided {
        /// Per-lane stride in bytes.
        stride_bytes: u32,
    },
}

/// The serialization degree of a pattern: 1 = conflict-free, `d` = `d`-way
/// conflict (the access replays `d` times for a half-warp).
///
/// For a byte-granularity stride `s`, lanes `i` and `j` of a half-warp collide
/// when their words map to the same bank: `floor(i*s/4) ≡ floor(j*s/4) (mod 16)`.
/// We compute the exact maximum lanes-per-bank over a 16-lane half-warp, which
/// handles sub-word strides (multiple lanes inside one word count as a broadcast
/// on cc 1.x only when the *word* is identical for all lanes, which we treat as
/// conflict-free for same-word pairs — the hardware merges them).
pub fn conflict_degree(pattern: SmemPattern, banks: u32, half_warp: u32) -> u32 {
    match pattern {
        SmemPattern::Broadcast => 1,
        SmemPattern::Strided { stride_bytes } => {
            if stride_bytes == 0 {
                return 1; // degenerate broadcast
            }
            let banks = banks.max(1);
            // Count distinct (bank, word) pairs per bank: accesses to the same
            // word merge; accesses to different words in the same bank replay.
            let mut per_bank_words: std::collections::HashMap<u32, std::collections::HashSet<u64>> =
                std::collections::HashMap::new();
            for lane in 0..half_warp {
                let addr = lane as u64 * stride_bytes as u64;
                let word = addr / 4;
                let bank = (word % banks as u64) as u32;
                per_bank_words.entry(bank).or_default().insert(word);
            }
            per_bank_words
                .values()
                .map(|words| words.len() as u32)
                .max()
                .unwrap_or(1)
        }
    }
}

/// Convenience: degree with the cc 1.x constants (16 banks, 16-lane half-warp).
pub fn conflict_degree_cc1x(pattern: SmemPattern) -> u32 {
    conflict_degree(pattern, 16, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_is_free() {
        assert_eq!(conflict_degree_cc1x(SmemPattern::Broadcast), 1);
        assert_eq!(
            conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 0 }),
            1
        );
    }

    #[test]
    fn word_stride_is_conflict_free() {
        // 4-byte stride: lanes hit banks 0..15 — perfect.
        assert_eq!(
            conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 4 }),
            1
        );
    }

    #[test]
    fn two_word_stride_two_way() {
        // 8-byte stride: words 0,2,4,... -> banks 0,2,..,14,0,2,..: two lanes per
        // bank but different words -> 2-way.
        assert_eq!(
            conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 8 }),
            2
        );
    }

    #[test]
    fn large_power_of_two_strides_fully_serialize() {
        // 64-byte stride: words 0,16,32,... all in bank 0 -> 16-way.
        assert_eq!(
            conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 64 }),
            16
        );
        // 128-byte slice stride (Algorithm 4 with 8 KB / 64 threads): same story.
        assert_eq!(
            conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 128 }),
            16
        );
    }

    #[test]
    fn sub_word_strides_merge_within_words() {
        // 1-byte stride: lanes 0..15 touch words 0..3 in banks 0..3; same-word
        // accesses merge, different words are in different banks -> 1.
        assert_eq!(
            conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 1 }),
            1
        );
        // 2-byte stride: words 0..7, banks 0..7, one word per bank -> 1.
        assert_eq!(
            conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 2 }),
            1
        );
    }

    #[test]
    fn odd_strides_spread_well() {
        // 20-byte stride: words 0,5,10,...,75 -> banks spread; max 1 per bank.
        assert_eq!(
            conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 20 }),
            1
        );
        // 36-byte stride (9 words): gcd(9,16)=1 -> conflict-free.
        assert_eq!(
            conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 36 }),
            1
        );
    }

    #[test]
    fn degree_bounded_by_half_warp() {
        for s in [1u32, 3, 4, 8, 16, 32, 64, 96, 128, 256, 512, 1024] {
            let d = conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: s });
            assert!((1..=16).contains(&d), "stride {s} -> degree {d}");
        }
    }
}
