//! The occupancy calculator.
//!
//! How many blocks of a kernel can be resident on one SM at once, given the
//! device's ceilings (paper Table 2) and the kernel's per-thread registers and
//! per-block shared memory. This is the quantity the paper repeatedly reasons
//! with (§5.2.3: "Algorithms 3 and 4 are limited to 240 episodes being searched
//! due to the limitation of 8 active blocks on each of the 30 multiprocessors"),
//! and whose insufficiency for predicting *performance* §6 calls out — our engine
//! uses occupancy only as the residency input to the timing model.

use crate::config::DeviceConfig;
use serde::{Deserialize, Serialize};

/// Per-kernel resource usage that occupancy depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelResources {
    /// Threads per block of the launch.
    pub threads_per_block: u32,
    /// Registers per thread (cc 1.x allocates them per block at warp granularity).
    pub registers_per_thread: u32,
    /// Shared memory per block, in bytes (buffers + reduction scratch).
    pub shared_mem_per_block: u32,
}

impl KernelResources {
    /// A typical light kernel: `regs` defaults to 16, no shared memory.
    pub fn new(threads_per_block: u32) -> Self {
        KernelResources {
            threads_per_block,
            registers_per_thread: 16,
            shared_mem_per_block: 0,
        }
    }

    /// Sets the per-block shared memory.
    pub fn with_shared_mem(mut self, bytes: u32) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Sets the per-thread register count.
    pub fn with_registers(mut self, regs: u32) -> Self {
        self.registers_per_thread = regs;
        self
    }

    /// Warps per block (threads rounded up to warp granularity).
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block.div_ceil(warp_size)
    }
}

/// Which ceiling capped the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    /// The 8-blocks-per-SM hardware cap.
    Blocks,
    /// The resident-thread ceiling (768 / 1024).
    Threads,
    /// The resident-warp ceiling (24 / 32).
    Warps,
    /// The register file.
    Registers,
    /// Shared memory.
    SharedMem,
}

/// Result of the occupancy computation for one SM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Blocks co-resident on one SM.
    pub active_blocks: u32,
    /// Warps co-resident on one SM.
    pub active_warps: u32,
    /// Threads co-resident on one SM.
    pub active_threads: u32,
    /// The binding constraint.
    pub limiter: OccupancyLimiter,
    /// `active_warps / max_warps_per_sm` — what the CUDA Occupancy Calculator
    /// reports (paper §6 discusses why this alone cannot identify optimal
    /// performance).
    pub occupancy_fraction: f64,
}

/// Computes the occupancy of a kernel on a device.
///
/// Returns `None` when even a single block does not fit (shared memory or
/// registers exceed the SM, or the block is larger than the device allows).
pub fn occupancy(dev: &DeviceConfig, res: &KernelResources) -> Option<Occupancy> {
    if res.threads_per_block == 0 || res.threads_per_block > dev.max_threads_per_block {
        return None;
    }
    let warps_per_block = res.warps_per_block(dev.warp_size);

    // Register allocation on cc 1.x is per block, at warp granularity: threads
    // rounded to whole warps, times registers per thread.
    let regs_per_block = warps_per_block * dev.warp_size * res.registers_per_thread;

    let mut limits: Vec<(u32, OccupancyLimiter)> = vec![
        (dev.max_blocks_per_sm, OccupancyLimiter::Blocks),
        (
            dev.max_threads_per_sm / res.threads_per_block,
            OccupancyLimiter::Threads,
        ),
        (
            dev.max_warps_per_sm / warps_per_block,
            OccupancyLimiter::Warps,
        ),
    ];
    if let Some(by_regs) = dev.registers_per_sm.checked_div(regs_per_block) {
        limits.push((by_regs, OccupancyLimiter::Registers));
    }
    if let Some(by_smem) = dev.shared_mem_per_sm.checked_div(res.shared_mem_per_block) {
        limits.push((by_smem, OccupancyLimiter::SharedMem));
    }

    // min by blocks; ties resolved in the listed priority order.
    let (active_blocks, limiter) = limits
        .into_iter()
        .min_by_key(|&(blocks, _)| blocks)
        .expect("limits never empty");
    if active_blocks == 0 {
        return None;
    }
    let active_warps = active_blocks * warps_per_block;
    Some(Occupancy {
        active_blocks,
        active_warps,
        active_threads: active_blocks * res.threads_per_block,
        limiter,
        occupancy_fraction: active_warps as f64 / dev.max_warps_per_sm as f64,
    })
}

/// Per-tenant shared-memory scratch a multi-tenant union launch adds to each
/// block: a routing entry (member id + candidate-offset base) plus a staging
/// slot for the member's partial count, kept bank-padded — 64 bytes per tenant.
pub const UNION_SMEM_PER_TENANT: u32 = 64;

/// The resource footprint of a K-tenant union launch built from a solo
/// kernel's resources: same threads and registers, plus
/// [`UNION_SMEM_PER_TENANT`] bytes of per-block shared memory per tenant for
/// the demux routing/staging tables. `tenants == 1` (or 0) is the solo kernel
/// unchanged.
pub fn union_resources(res: &KernelResources, tenants: u32) -> KernelResources {
    let extra = tenants
        .saturating_sub(1)
        .saturating_mul(UNION_SMEM_PER_TENANT);
    KernelResources {
        shared_mem_per_block: res.shared_mem_per_block.saturating_add(extra),
        ..*res
    }
}

/// [`occupancy`] of a K-tenant union launch: the solo kernel's resources
/// widened by [`union_resources`]. Returns `None` when the routing tables push
/// a block past the SM's shared memory.
pub fn union_occupancy(
    dev: &DeviceConfig,
    res: &KernelResources,
    tenants: u32,
) -> Option<Occupancy> {
    occupancy(dev, &union_resources(res, tenants))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx() -> DeviceConfig {
        DeviceConfig::geforce_gtx_280()
    }

    fn gts() -> DeviceConfig {
        DeviceConfig::geforce_8800_gts_512()
    }

    #[test]
    fn small_blocks_hit_the_block_cap() {
        // 16-thread blocks: 8 blocks resident (128 threads), limited by Blocks.
        let occ = occupancy(&gtx(), &KernelResources::new(16)).unwrap();
        assert_eq!(occ.active_blocks, 8);
        assert_eq!(occ.active_warps, 8); // 16 threads round up to 1 warp
        assert_eq!(occ.limiter, OccupancyLimiter::Blocks);
    }

    #[test]
    fn paper_512_thread_case_on_cc11() {
        // Paper §4.2.1: "two blocks of 512 threads can not be active
        // simultaneously on the same multiprocessor" (768-thread ceiling).
        let occ = occupancy(&gts(), &KernelResources::new(512).with_registers(8)).unwrap();
        assert_eq!(occ.active_blocks, 1);
        assert_eq!(occ.limiter, OccupancyLimiter::Threads);
    }

    #[test]
    fn gtx280_fits_two_512_blocks() {
        // 1024-thread ceiling on cc 1.3 admits 2 blocks of 512 = 32 warps.
        let occ = occupancy(&gtx(), &KernelResources::new(512).with_registers(8)).unwrap();
        assert_eq!(occ.active_blocks, 2);
        assert_eq!(occ.active_warps, 32);
        assert_eq!(occ.occupancy_fraction, 1.0);
    }

    #[test]
    fn register_pressure_limits() {
        // 256 threads × 32 regs = 8192 regs/block: exactly 1 on G92, 2 on GT200.
        let res = KernelResources::new(256).with_registers(32);
        assert_eq!(occupancy(&gts(), &res).unwrap().active_blocks, 1);
        assert_eq!(
            occupancy(&gts(), &res).unwrap().limiter,
            OccupancyLimiter::Registers
        );
        assert_eq!(occupancy(&gtx(), &res).unwrap().active_blocks, 2);
    }

    #[test]
    fn shared_memory_limits() {
        // 4 KB per block: 4 blocks per 16 KB SM, if other limits allow.
        let res = KernelResources::new(64)
            .with_registers(10)
            .with_shared_mem(4 * 1024);
        let occ = occupancy(&gtx(), &res).unwrap();
        assert_eq!(occ.active_blocks, 4);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMem);
    }

    #[test]
    fn impossible_kernels_rejected() {
        // Block bigger than the device maximum.
        assert!(occupancy(&gtx(), &KernelResources::new(1024)).is_none());
        // Shared memory larger than the SM.
        assert!(occupancy(&gtx(), &KernelResources::new(64).with_shared_mem(20 * 1024)).is_none());
        // Zero threads.
        assert!(occupancy(&gtx(), &KernelResources::new(0)).is_none());
    }

    #[test]
    fn warp_rounding() {
        // 33 threads occupy 2 warps.
        let res = KernelResources::new(33);
        assert_eq!(res.warps_per_block(32), 2);
        let occ = occupancy(&gtx(), &res).unwrap();
        assert_eq!(occ.active_warps, occ.active_blocks * 2);
    }

    #[test]
    fn union_of_one_is_the_solo_kernel() {
        let res = KernelResources::new(256).with_shared_mem(1024);
        assert_eq!(union_resources(&res, 1), res);
        assert_eq!(union_resources(&res, 0), res);
        assert_eq!(union_occupancy(&gtx(), &res, 1), occupancy(&gtx(), &res));
    }

    #[test]
    fn union_tenants_add_smem_and_squeeze_occupancy() {
        // 3.8 KB base: 4 blocks fit per 16 KB SM solo; +64 tenants of routing
        // scratch (~4 KB extra) drops residency.
        let res = KernelResources::new(64)
            .with_registers(10)
            .with_shared_mem(3840);
        let solo = occupancy(&gtx(), &res).unwrap();
        let fused = union_occupancy(&gtx(), &res, 65).unwrap();
        assert_eq!(
            union_resources(&res, 65).shared_mem_per_block,
            3840 + 64 * UNION_SMEM_PER_TENANT
        );
        assert!(fused.active_blocks < solo.active_blocks);
        // An absurd tenant count can't fit a single block.
        assert!(union_occupancy(&gtx(), &res, 100_000).is_none());
    }

    #[test]
    fn occupancy_fraction_is_warp_based() {
        // 8 blocks × 3 warps = 24 of 32 warps on GTX 280 -> 75%.
        let occ = occupancy(&gtx(), &KernelResources::new(96)).unwrap();
        assert_eq!(occ.active_blocks, 8);
        assert_eq!(occ.active_warps, 24);
        assert!((occ.occupancy_fraction - 0.75).abs() < 1e-9);
    }
}
