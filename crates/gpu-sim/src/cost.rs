//! Calibration constants of the timing model.
//!
//! These are the only tunable numbers in the simulator. They are set once, from
//! public CUDA-1.x micro-architecture lore (texture pipeline latency in the low
//! hundreds of cycles, global latency 400–600 cycles, shared memory a few tens,
//! 4-cycle warp issue), and the same values are used for every card — per-card
//! differences come exclusively from [`crate::DeviceConfig`] (clock, SM count,
//! bandwidth, occupancy ceilings), which is the paper's own premise.
//!
//! The boolean switches exist for the ablation benches (DESIGN.md §8): turning a
//! mechanism off shows which characterization it carries.

use serde::{Deserialize, Serialize};

/// Timing-model constants shared by all simulated cards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles for one warp instruction to issue on an SM (8 cores × 4 cycles = 32
    /// lanes; paper §2.1.1: "a single instruction is completed by the entire warp
    /// in 4 cycles").
    pub issue_cycles: f64,
    /// Texture fetch latency on a cache hit (the texture pipeline is long even
    /// when it hits — this is what makes single-warp texture scans slow).
    pub tex_hit_latency: f64,
    /// Texture fetch latency on a cache miss (device memory).
    pub tex_miss_latency: f64,
    /// Texture cache line size in bytes.
    pub tex_line_bytes: u32,
    /// Shared-memory access latency (per access, before conflict replays).
    pub smem_latency: f64,
    /// Global (device) memory latency for non-texture accesses.
    pub gmem_latency: f64,
    /// Bytes per coalesced global transaction (cc 1.x half-warp segment).
    pub gmem_transaction_bytes: u32,
    /// Fixed kernel launch + driver overhead, in microseconds.
    pub launch_overhead_us: f64,
    /// Overhead of advancing a *resident* device pipeline to its next stage, in
    /// microseconds. A persistent-kernel pipeline (Everest-style serving) keeps
    /// the stream and candidate buffers on the device and replaces the
    /// driver-mediated launch with a doorbell write + pointer swap; this is the
    /// cost [`crate::simulate_resident`] charges instead of
    /// [`launch_overhead_us`](Self::launch_overhead_us).
    pub advance_overhead_us: f64,
    /// Cycles per mapped candidate slot to demultiplex a K-tenant union
    /// launch's count buffer back into per-member counts (one gather + add per
    /// slot; see [`union_demux_cycles`](Self::union_demux_cycles)).
    pub demux_cycles_per_candidate: f64,
    /// Host→device copy bandwidth in GB/s (PCIe 1.x/2.0-era pinned-memory
    /// transfer), used to model the one-time stream upload of a resident
    /// pipeline.
    pub h2d_bandwidth_gbs: f64,
    /// Cycles for a `__syncthreads()` barrier to drain and release the block.
    pub barrier_cycles: f64,
    /// Number of shared-memory banks (16 on cc 1.x; conflicts resolved per
    /// half-warp).
    pub smem_banks: u32,
    /// Model the texture cache (off = all texture accesses hit; ablation).
    pub model_texture_cache: bool,
    /// Serialize divergent warp paths (off = charge the longest single path;
    /// ablation).
    pub model_divergence: bool,
    /// Let co-resident warps hide memory latency (off = every block's critical
    /// path serializes; ablation).
    pub model_latency_hiding: bool,
    /// Model shared-memory bank conflicts (off = all accesses conflict-free;
    /// ablation).
    pub model_bank_conflicts: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            issue_cycles: 4.0,
            tex_hit_latency: 380.0,
            tex_miss_latency: 600.0,
            tex_line_bytes: 32,
            smem_latency: 36.0,
            gmem_latency: 550.0,
            gmem_transaction_bytes: 64,
            launch_overhead_us: 15.0,
            advance_overhead_us: 1.0,
            demux_cycles_per_candidate: 2.0,
            h2d_bandwidth_gbs: 3.0,
            barrier_cycles: 120.0,
            smem_banks: 16,
            model_texture_cache: true,
            model_divergence: true,
            model_latency_hiding: true,
            model_bank_conflicts: true,
        }
    }
}

impl CostModel {
    /// The default model with the texture cache disabled (ablation).
    pub fn without_texture_cache() -> Self {
        CostModel {
            model_texture_cache: false,
            ..Default::default()
        }
    }

    /// The default model with divergence serialization disabled (ablation).
    pub fn without_divergence() -> Self {
        CostModel {
            model_divergence: false,
            ..Default::default()
        }
    }

    /// The default model with latency hiding disabled (ablation).
    pub fn without_latency_hiding() -> Self {
        CostModel {
            model_latency_hiding: false,
            ..Default::default()
        }
    }

    /// The default model with bank-conflict modelling disabled (ablation).
    pub fn without_bank_conflicts() -> Self {
        CostModel {
            model_bank_conflicts: false,
            ..Default::default()
        }
    }

    /// Cycles to demultiplex a union launch's count buffer: one gather + add
    /// per mapped candidate slot, summed over the union's K members. The demux
    /// runs on the host after the D2H count readback, so it scales with the
    /// total mapped slots, not with stream length.
    pub fn union_demux_cycles(&self, mapped_slots: u64) -> f64 {
        self.demux_cycles_per_candidate * mapped_slots as f64
    }

    /// Milliseconds to copy `bytes` host→device at
    /// [`h2d_bandwidth_gbs`](Self::h2d_bandwidth_gbs) (plus one launch-sized
    /// driver round trip to enqueue the copy).
    pub fn h2d_copy_ms(&self, bytes: u64) -> f64 {
        let transfer_s = bytes as f64 / (self.h2d_bandwidth_gbs * 1e9);
        transfer_s * 1e3 + self.launch_overhead_us * 1e-3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = CostModel::default();
        assert_eq!(c.issue_cycles, 4.0);
        assert!(c.tex_hit_latency < c.tex_miss_latency);
        assert!(c.smem_latency < c.tex_hit_latency);
        assert!(c.model_texture_cache && c.model_divergence && c.model_latency_hiding);
    }

    #[test]
    fn ablation_constructors_flip_one_switch() {
        assert!(!CostModel::without_texture_cache().model_texture_cache);
        assert!(!CostModel::without_divergence().model_divergence);
        assert!(!CostModel::without_latency_hiding().model_latency_hiding);
        assert!(!CostModel::without_bank_conflicts().model_bank_conflicts);
        // Each leaves the others on.
        let c = CostModel::without_texture_cache();
        assert!(c.model_divergence && c.model_latency_hiding && c.model_bank_conflicts);
    }

    #[test]
    fn resident_advance_is_cheaper_than_a_launch() {
        let c = CostModel::default();
        assert!(c.advance_overhead_us < c.launch_overhead_us);
    }

    #[test]
    fn demux_scales_with_mapped_slots() {
        let c = CostModel::default();
        assert_eq!(c.union_demux_cycles(0), 0.0);
        assert_eq!(c.union_demux_cycles(1000), 2.0 * c.union_demux_cycles(500));
    }

    #[test]
    fn h2d_copy_includes_enqueue_overhead() {
        let c = CostModel::default();
        // Zero bytes still pays the driver round trip.
        assert!(c.h2d_copy_ms(0) > 0.0);
        // 3 GB at 3 GB/s ≈ 1 s.
        let ms = c.h2d_copy_ms(3_000_000_000);
        assert!((ms - 1000.0).abs() / 1000.0 < 0.01, "{ms}");
    }
}
