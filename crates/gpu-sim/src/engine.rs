//! The timing engine: occupancy-limited wave scheduling with an
//! issue/latency/bandwidth interval model.
//!
//! Blocks are placed onto SMs in *waves*: each wave fills every SM up to the
//! kernel's occupancy (`active_blocks`), the wave runs to completion, and the next
//! wave starts (thread blocks are independent — paper §2.1.2 — and our kernels'
//! blocks are statistically identical, so greedy list scheduling degenerates to
//! waves). Per wave and SM, three quantities compete:
//!
//! * **issue**: total warp instructions (compute + memory slots + conflict
//!   replays) of the resident blocks × 4 cycles — the throughput bound when
//!   enough warps are resident;
//! * **critical path**: one warp's own serial chain — instructions plus its
//!   dependent memory latencies. A wave can never beat the slowest warp it
//!   contains; with few resident warps this is the *latency bound* (the paper's
//!   small-problem regime, Characterization 4);
//! * **bandwidth**: DRAM bytes the wave moves, across all SMs, divided by the
//!   card's bandwidth (Characterization 8's regime).
//!
//! Wave time = max(issue, critical, bandwidth) with latency hiding enabled;
//! without it (ablation) the critical paths of all resident blocks serialize.

use crate::config::DeviceConfig;
use crate::cost::CostModel;
use crate::kernel::{KernelSpec, MemKind};
use crate::occupancy::occupancy;
use crate::report::{BoundKind, SimCounters, SimReport, TimeComponents};
use crate::texcache::{StreamPattern, TextureCache};
use crate::SimError;

/// Simulates one kernel launch on a device.
///
/// # Errors
/// [`SimError`] when the launch is empty, the block exceeds device limits, or a
/// single block's resources cannot fit on one SM.
pub fn simulate(
    dev: &DeviceConfig,
    cost: &CostModel,
    spec: &KernelSpec,
) -> Result<SimReport, SimError> {
    simulate_with_overhead(dev, cost, spec, cost.launch_overhead_us)
}

/// Simulates one stage of a *resident* device pipeline: identical wave timing
/// to [`simulate`], but the fixed per-launch cost is
/// [`CostModel::advance_overhead_us`] (a doorbell write + pointer swap into an
/// already-running persistent kernel) instead of
/// [`CostModel::launch_overhead_us`] (a driver-mediated launch). This is the
/// lever an Everest-style serving pipeline pulls: the stream and candidate
/// buffers stay on the device across mining levels, so only the first stage
/// pays the full launch.
///
/// # Errors
/// Same validation as [`simulate`].
pub fn simulate_resident(
    dev: &DeviceConfig,
    cost: &CostModel,
    spec: &KernelSpec,
) -> Result<SimReport, SimError> {
    simulate_with_overhead(dev, cost, spec, cost.advance_overhead_us)
}

fn simulate_with_overhead(
    dev: &DeviceConfig,
    cost: &CostModel,
    spec: &KernelSpec,
    overhead_us: f64,
) -> Result<SimReport, SimError> {
    let launch = spec.launch;
    if launch.blocks == 0 || launch.threads_per_block == 0 {
        return Err(SimError::EmptyLaunch);
    }
    if launch.threads_per_block > dev.max_threads_per_block {
        return Err(SimError::BlockTooLarge {
            requested: launch.threads_per_block,
            max: dev.max_threads_per_block,
        });
    }
    let occ = occupancy(dev, &spec.resources).ok_or(SimError::ResourcesExceedSm {
        what: "resources (registers/shared memory/threads)",
    })?;

    let cache = TextureCache::new(dev.texture_cache_bytes, cost);
    let capacity_per_wave = (occ.active_blocks as u64) * (dev.sm_count as u64);
    let total_blocks = launch.blocks as u64;
    let full_waves = total_blocks / capacity_per_wave;
    let remainder = total_blocks % capacity_per_wave;

    let mut counters = SimCounters::default();
    let mut components = TimeComponents::default();
    let mut cycles = 0.0f64;
    let mut waves = 0u32;

    // Evaluate one wave with `resident` blocks on the busiest SM and
    // `blocks_in_wave` blocks across `sms_active` SMs.
    let mut run_wave = |resident: u32, blocks_in_wave: u64, sms_active: u32| {
        let (wave_cycles, bound_terms) = wave_time(
            dev,
            cost,
            spec,
            &cache,
            resident,
            blocks_in_wave,
            sms_active,
            &mut counters,
        );
        cycles += wave_cycles;
        components.issue_cycles += bound_terms.0.min(wave_cycles);
        components.latency_cycles += bound_terms.1.min(wave_cycles);
        components.bandwidth_cycles += bound_terms.2.min(wave_cycles);
        waves += 1;
    };

    for _ in 0..full_waves {
        run_wave(occ.active_blocks, capacity_per_wave, dev.sm_count);
    }
    if remainder > 0 {
        let sms_active = remainder.min(dev.sm_count as u64) as u32;
        let resident = remainder.div_ceil(dev.sm_count as u64) as u32;
        run_wave(resident.min(occ.active_blocks), remainder, sms_active);
    }

    let launch_cycles = overhead_us * 1e-6 * dev.clock_hz();
    components.launch_cycles = launch_cycles;
    cycles += launch_cycles;

    let bound = classify(&components);
    Ok(SimReport {
        cycles,
        time_ms: cycles / dev.clock_hz() * 1e3,
        occupancy: occ,
        waves,
        bound,
        components,
        counters,
    })
}

/// Computes one wave's time in cycles; returns (cycles, (issue, critical, bw)).
#[allow(clippy::too_many_arguments)]
fn wave_time(
    dev: &DeviceConfig,
    cost: &CostModel,
    spec: &KernelSpec,
    cache: &TextureCache,
    resident: u32,
    blocks_in_wave: u64,
    sms_active: u32,
    counters: &mut SimCounters,
) -> (f64, (f64, f64, f64)) {
    let r = resident.max(1) as u64;
    let mut issue_slots_sm = 0u64; // per busiest SM
    let mut critical = 0.0f64; // one block's slowest warp, in cycles
    let mut dram_bytes_sm = 0u64;

    for phase in &spec.profile.phases {
        let mut phase_issue = phase.warp_instructions;
        let mut chain_latency = 0.0;
        if let Some(mem) = &phase.mem {
            match mem.kind {
                MemKind::Texture {
                    streams_per_block,
                    unique_bytes,
                    shared_across_blocks,
                } => {
                    let pattern = StreamPattern {
                        concurrent_streams: streams_per_block as u64 * r,
                        accesses: mem.touched_bytes * r,
                        unique_bytes: if shared_across_blocks {
                            unique_bytes
                        } else {
                            unique_bytes.saturating_mul(r)
                        },
                    };
                    let out = cache.stream_scan(&pattern, cost);
                    // Counters aggregate across the wave's active SMs (the
                    // cache outcome itself is per SM).
                    counters.tex_accesses += out.accesses * sms_active as u64;
                    counters.tex_hits += out.hits * sms_active as u64;
                    counters.tex_misses += out.misses * sms_active as u64;
                    dram_bytes_sm += out.dram_bytes;
                    chain_latency = mem.chain as f64 * out.mean_latency(cost);
                    phase_issue += mem.requests;
                }
                MemKind::Shared { conflict_degree } => {
                    let degree = if cost.model_bank_conflicts {
                        conflict_degree.max(1) as u64
                    } else {
                        1
                    };
                    phase_issue += mem.requests * degree;
                    chain_latency = mem.chain as f64 * cost.smem_latency * degree as f64;
                }
                MemKind::Global => {
                    phase_issue += mem.requests;
                    chain_latency = mem.chain as f64 * cost.gmem_latency;
                    // Global traffic always moves bytes (coalesced transactions).
                    dram_bytes_sm += mem.touched_bytes * r;
                }
            }
        }
        issue_slots_sm += phase_issue * r;
        critical += phase.chain_instructions as f64 * cost.issue_cycles
            + chain_latency
            + phase.barriers as f64 * cost.barrier_cycles;
        counters.barriers += phase.barriers as u64 * blocks_in_wave;
    }

    counters.issue_slots += issue_slots_sm * sms_active as u64;
    counters.dram_bytes += dram_bytes_sm * sms_active as u64;

    let issue_cycles = issue_slots_sm as f64 * cost.issue_cycles;
    let bw_cycles = (dram_bytes_sm as f64 * sms_active as f64) / dev.bandwidth_bytes_per_cycle();

    let wave = if cost.model_latency_hiding {
        issue_cycles.max(critical).max(bw_cycles)
    } else {
        // No hiding: every resident block's critical path serializes on its SM.
        (critical * r as f64 + issue_cycles).max(bw_cycles)
    };
    (wave, (issue_cycles, critical, bw_cycles))
}

fn classify(c: &TimeComponents) -> BoundKind {
    let mut best = (c.issue_cycles, BoundKind::Issue);
    if c.latency_cycles > best.0 {
        best = (c.latency_cycles, BoundKind::Latency);
    }
    if c.bandwidth_cycles > best.0 {
        best = (c.bandwidth_cycles, BoundKind::Bandwidth);
    }
    if c.launch_cycles > best.0 {
        best = (c.launch_cycles, BoundKind::Launch);
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BlockProfile, LaunchConfig, MemTraffic, Phase};
    use crate::occupancy::KernelResources;

    fn gtx() -> DeviceConfig {
        DeviceConfig::geforce_gtx_280()
    }

    fn compute_kernel(blocks: u32, tpb: u32, instr_per_warp: u64) -> KernelSpec {
        let warps = tpb.div_ceil(32);
        KernelSpec {
            launch: LaunchConfig {
                blocks,
                threads_per_block: tpb,
            },
            resources: KernelResources::new(tpb),
            profile: BlockProfile {
                phases: vec![Phase {
                    label: "compute",
                    warp_instructions: instr_per_warp * warps as u64,
                    chain_instructions: instr_per_warp,
                    mem: None,
                    barriers: 0,
                }],
            },
        }
    }

    #[test]
    fn empty_launch_rejected() {
        let spec = compute_kernel(0, 32, 100);
        assert_eq!(
            simulate(&gtx(), &CostModel::default(), &spec),
            Err(SimError::EmptyLaunch)
        );
    }

    #[test]
    fn oversized_block_rejected() {
        let mut spec = compute_kernel(1, 32, 100);
        spec.launch.threads_per_block = 513;
        spec.resources.threads_per_block = 513;
        assert!(matches!(
            simulate(&gtx(), &CostModel::default(), &spec),
            Err(SimError::BlockTooLarge { .. })
        ));
    }

    #[test]
    fn impossible_resources_rejected() {
        let mut spec = compute_kernel(1, 64, 100);
        spec.resources.shared_mem_per_block = 64 * 1024;
        assert!(matches!(
            simulate(&gtx(), &CostModel::default(), &spec),
            Err(SimError::ResourcesExceedSm { .. })
        ));
    }

    #[test]
    fn single_wave_issue_bound_scales_with_work() {
        let cost = CostModel::default();
        let a = simulate(&gtx(), &cost, &compute_kernel(30, 256, 100_000)).unwrap();
        let b = simulate(&gtx(), &cost, &compute_kernel(30, 256, 200_000)).unwrap();
        assert!(b.cycles > 1.9 * (a.cycles - a.components.launch_cycles));
        assert_eq!(a.waves, 1);
    }

    #[test]
    fn wave_count_follows_occupancy() {
        // 16-thread blocks: 8 resident per SM, 30 SMs -> capacity 240.
        let spec = compute_kernel(960, 16, 1000);
        let rep = simulate(&gtx(), &CostModel::default(), &spec).unwrap();
        assert_eq!(rep.waves, 4);
        // 961 blocks need a 5th (partial) wave.
        let spec = compute_kernel(961, 16, 1000);
        let rep = simulate(&gtx(), &CostModel::default(), &spec).unwrap();
        assert_eq!(rep.waves, 5);
    }

    #[test]
    fn more_waves_take_longer() {
        let cost = CostModel::default();
        let one = simulate(&gtx(), &cost, &compute_kernel(240, 16, 10_000)).unwrap();
        let four = simulate(&gtx(), &cost, &compute_kernel(960, 16, 10_000)).unwrap();
        let ratio = (four.cycles - four.components.launch_cycles)
            / (one.cycles - one.components.launch_cycles);
        assert!((ratio - 4.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn latency_bound_when_single_warp() {
        // One block, one warp, long dependent texture chain: critical path rules.
        let n: u64 = 100_000;
        let spec = KernelSpec {
            launch: LaunchConfig {
                blocks: 1,
                threads_per_block: 32,
            },
            resources: KernelResources::new(32),
            profile: BlockProfile {
                phases: vec![Phase {
                    label: "scan",
                    warp_instructions: n * 8,
                    chain_instructions: n * 8,
                    mem: Some(MemTraffic {
                        kind: MemKind::Texture {
                            streams_per_block: 1,
                            unique_bytes: n,
                            shared_across_blocks: true,
                        },
                        requests: n,
                        chain: n,
                        touched_bytes: n,
                    }),
                    barriers: 0,
                }],
            },
        };
        let rep = simulate(&gtx(), &CostModel::default(), &spec).unwrap();
        assert_eq!(rep.bound, BoundKind::Latency);
        // Critical path ≈ n * (8*4 + ~hit latency) cycles.
        let expected = n as f64 * (32.0 + CostModel::default().tex_hit_latency);
        assert!(
            (rep.components.latency_cycles - expected).abs() / expected < 0.05,
            "latency {} vs expected {expected}",
            rep.components.latency_cycles
        );
    }

    #[test]
    fn bandwidth_bound_with_thrashing_streams() {
        // Partitioned scan with far more streams than cache lines.
        let n: u64 = 400_000;
        let tpb = 512u32;
        let spec = KernelSpec {
            launch: LaunchConfig {
                blocks: 600,
                threads_per_block: tpb,
            },
            resources: KernelResources::new(tpb),
            profile: BlockProfile {
                phases: vec![Phase {
                    label: "scan",
                    warp_instructions: (n / 32) * 8,
                    chain_instructions: (n as f64 / tpb as f64) as u64 * 8,
                    mem: Some(MemTraffic {
                        kind: MemKind::Texture {
                            streams_per_block: tpb,
                            unique_bytes: n,
                            shared_across_blocks: true,
                        },
                        requests: n / 32,
                        chain: n / tpb as u64,
                        touched_bytes: n,
                    }),
                    barriers: 0,
                }],
            },
        };
        let rep = simulate(&gtx(), &CostModel::default(), &spec).unwrap();
        assert_eq!(rep.bound, BoundKind::Bandwidth);
        // Thrash amplification: DRAM traffic far above the logical footprint.
        assert!(rep.counters.dram_bytes > 10 * n);
        // The same kernel without the cache model is NOT bandwidth bound.
        let rep2 = simulate(&gtx(), &CostModel::without_texture_cache(), &spec).unwrap();
        assert!(rep2.cycles < rep.cycles);
        assert_eq!(rep2.counters.dram_bytes, 0);
    }

    #[test]
    fn latency_hiding_ablation_slows_underoccupied_kernels() {
        let spec = compute_kernel(240, 16, 50_000);
        let on = simulate(&gtx(), &CostModel::default(), &spec).unwrap();
        let off = simulate(&gtx(), &CostModel::without_latency_hiding(), &spec).unwrap();
        assert!(off.cycles >= on.cycles);
    }

    #[test]
    fn launch_overhead_dominates_tiny_kernels() {
        let rep = simulate(&gtx(), &CostModel::default(), &compute_kernel(1, 32, 10)).unwrap();
        assert_eq!(rep.bound, BoundKind::Launch);
        // 15 us at 1.296 GHz ≈ 19 440 cycles.
        assert!(rep.time_ms > 0.014 && rep.time_ms < 0.04, "{}", rep.time_ms);
    }

    #[test]
    fn shader_clock_scales_time() {
        // Identical issue-bound kernel on the 8800 GTS 512 vs the 9800 GX2: same
        // SM count, time ratio = inverse clock ratio (Characterization 7).
        let spec = compute_kernel(128, 256, 100_000);
        let cost = CostModel::default();
        let gts = simulate(&DeviceConfig::geforce_8800_gts_512(), &cost, &spec).unwrap();
        let gx2 = simulate(&DeviceConfig::geforce_9800_gx2(), &cost, &spec).unwrap();
        assert!(gts.time_ms < gx2.time_ms);
        let ratio = gx2.time_ms / gts.time_ms;
        assert!((ratio - 1625.0 / 1500.0).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn resident_advance_amortizes_launch_overhead() {
        let cost = CostModel::default();
        let spec = compute_kernel(30, 256, 1_000);
        let launched = simulate(&gtx(), &cost, &spec).unwrap();
        let resident = simulate_resident(&gtx(), &cost, &spec).unwrap();
        // Same wave timing, different fixed cost.
        let launch_delta = launched.components.launch_cycles - resident.components.launch_cycles;
        assert!((launched.cycles - resident.cycles - launch_delta).abs() < 1e-6);
        let expected =
            (cost.launch_overhead_us - cost.advance_overhead_us) * 1e-6 * gtx().clock_hz();
        assert!((launch_delta - expected).abs() < 1e-6);
        // A kernel whose work sits between the two overheads (~4k cycles vs
        // 15 us ≈ 19k / 1 us ≈ 1.3k) is Launch-bound through the driver, not
        // when resident.
        let tiny = compute_kernel(1, 32, 1000);
        assert_eq!(
            simulate(&gtx(), &cost, &tiny).unwrap().bound,
            BoundKind::Launch
        );
        assert_ne!(
            simulate_resident(&gtx(), &cost, &tiny).unwrap().bound,
            BoundKind::Launch
        );
    }

    #[test]
    fn resident_advance_validates_like_a_launch() {
        let cost = CostModel::default();
        assert_eq!(
            simulate_resident(&gtx(), &cost, &compute_kernel(0, 32, 100)),
            Err(SimError::EmptyLaunch)
        );
    }

    #[test]
    fn bank_conflicts_multiply_issue_slots() {
        let mk = |degree: u32| KernelSpec {
            launch: LaunchConfig {
                blocks: 30,
                threads_per_block: 256,
            },
            resources: KernelResources::new(256),
            profile: BlockProfile {
                phases: vec![Phase {
                    label: "smem",
                    warp_instructions: 10_000,
                    chain_instructions: 1250,
                    mem: Some(MemTraffic {
                        kind: MemKind::Shared {
                            conflict_degree: degree,
                        },
                        requests: 10_000,
                        chain: 1250,
                        touched_bytes: 0,
                    }),
                    barriers: 0,
                }],
            },
        };
        let cost = CostModel::default();
        let free = simulate(&gtx(), &cost, &mk(1)).unwrap();
        let bad = simulate(&gtx(), &cost, &mk(16)).unwrap();
        assert!(bad.cycles > 5.0 * free.cycles);
        // Ablation flattens the difference.
        let ab = simulate(&gtx(), &CostModel::without_bank_conflicts(), &mk(16)).unwrap();
        assert!((ab.cycles - free.cycles).abs() < 1.0);
    }
}
