//! Simulation reports: time, bottleneck classification, and hardware counters.

use crate::occupancy::Occupancy;
use serde::{Deserialize, Serialize};

/// What bound the kernel's runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundKind {
    /// Warp-issue throughput (compute/divergence bound).
    Issue,
    /// Memory latency on under-occupied SMs.
    Latency,
    /// Device-memory bandwidth.
    Bandwidth,
    /// Fixed launch overhead (sub-millisecond kernels).
    Launch,
}

/// Aggregated "hardware counter" style statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SimCounters {
    /// Warp instructions issued (including memory slots and conflict replays).
    pub issue_slots: u64,
    /// Texture accesses (logical, byte granularity).
    pub tex_accesses: u64,
    /// Texture cache hits.
    pub tex_hits: u64,
    /// Texture cache misses.
    pub tex_misses: u64,
    /// Bytes moved from device memory (texture misses + global traffic).
    pub dram_bytes: u64,
    /// Block-wide barriers executed.
    pub barriers: u64,
}

impl SimCounters {
    /// Texture hit rate (1.0 when no texture access happened).
    pub fn tex_hit_rate(&self) -> f64 {
        if self.tex_accesses == 0 {
            1.0
        } else {
            self.tex_hits as f64 / self.tex_accesses as f64
        }
    }

    /// Accumulates another counter set.
    pub fn add(&mut self, o: &SimCounters) {
        self.issue_slots += o.issue_slots;
        self.tex_accesses += o.tex_accesses;
        self.tex_hits += o.tex_hits;
        self.tex_misses += o.tex_misses;
        self.dram_bytes += o.dram_bytes;
        self.barriers += o.barriers;
    }
}

/// Contribution of each model term to the total runtime (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TimeComponents {
    /// Cycles attributable to issue-bound waves.
    pub issue_cycles: f64,
    /// Cycles attributable to latency-bound waves.
    pub latency_cycles: f64,
    /// Cycles attributable to bandwidth-bound waves.
    pub bandwidth_cycles: f64,
    /// Launch overhead cycles.
    pub launch_cycles: f64,
}

/// The result of simulating one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total shader-clock cycles.
    pub cycles: f64,
    /// Wall-clock milliseconds at the card's shader clock.
    pub time_ms: f64,
    /// The occupancy the launch achieved.
    pub occupancy: Occupancy,
    /// Number of scheduling waves the grid needed.
    pub waves: u32,
    /// Dominant bottleneck across waves.
    pub bound: BoundKind,
    /// Per-term cycle attribution.
    pub components: TimeComponents,
    /// Counter totals.
    pub counters: SimCounters,
}

impl SimReport {
    /// Convenience: microseconds.
    pub fn time_us(&self) -> f64 {
        self.time_ms * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut a = SimCounters {
            issue_slots: 10,
            tex_accesses: 4,
            tex_hits: 3,
            tex_misses: 1,
            dram_bytes: 32,
            barriers: 2,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.issue_slots, 20);
        assert_eq!(a.tex_misses, 2);
        assert_eq!(a.barriers, 4);
        assert!((a.tex_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_hit_rate_is_one() {
        assert_eq!(SimCounters::default().tex_hit_rate(), 1.0);
    }
}
