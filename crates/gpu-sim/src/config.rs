//! Device configurations — paper Table 2.
//!
//! The three presets encode exactly the architectural features the paper lists for
//! its testbed cards, plus the texture-cache working set ("between six and eight
//! KB per multiprocessor", paper §4.2.1 — we use 8 KB).

use serde::{Deserialize, Serialize};

/// NVIDIA compute capability generations relevant to the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ComputeCapability {
    /// G92-class hardware (8800 GTS 512, 9800 GX2).
    Cc1_1,
    /// GT200-class hardware (GTX 280).
    Cc1_3,
}

impl std::fmt::Display for ComputeCapability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComputeCapability::Cc1_1 => write!(f, "1.1"),
            ComputeCapability::Cc1_3 => write!(f, "1.3"),
        }
    }
}

/// Architectural description of a simulated card (paper Table 2 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Marketing name, e.g. "GeForce GTX 280".
    pub name: String,
    /// GPU chip, e.g. "GT200".
    pub gpu_chip: String,
    /// Device memory in MB.
    pub memory_mb: u32,
    /// Peak device-memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Number of multiprocessors (SMs).
    pub sm_count: u32,
    /// Scalar cores per SM (8 on all CUDA 1.x hardware).
    pub cores_per_sm: u32,
    /// Shader (core) clock in MHz — the clock SIMT issue runs at.
    pub shader_clock_mhz: u32,
    /// Hardware generation.
    pub compute_capability: ComputeCapability,
    /// 32-bit registers per SM.
    pub registers_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Texture cache working set per SM in bytes (paper: 6–8 KB; we use 8 KB).
    pub texture_cache_bytes: u32,
    /// Threads per warp (32).
    pub warp_size: u32,
}

impl DeviceConfig {
    /// GeForce 8800 GTS 512 (G92, compute capability 1.1) — paper §4.2.1.
    pub fn geforce_8800_gts_512() -> Self {
        DeviceConfig {
            name: "GeForce 8800 GTS 512".into(),
            gpu_chip: "G92".into(),
            memory_mb: 512,
            mem_bandwidth_gbps: 57.6,
            sm_count: 16,
            cores_per_sm: 8,
            shader_clock_mhz: 1625,
            compute_capability: ComputeCapability::Cc1_1,
            registers_per_sm: 8192,
            max_threads_per_block: 512,
            max_threads_per_sm: 768,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 24,
            shared_mem_per_sm: 16 * 1024,
            texture_cache_bytes: 8 * 1024,
            warp_size: 32,
        }
    }

    /// GeForce 9800 GX2 (2×G92; the paper drives one GPU of the pair) — §4.2.2.
    pub fn geforce_9800_gx2() -> Self {
        DeviceConfig {
            name: "GeForce 9800 GX2".into(),
            gpu_chip: "G92".into(),
            memory_mb: 512,
            mem_bandwidth_gbps: 64.0,
            sm_count: 16,
            cores_per_sm: 8,
            shader_clock_mhz: 1500,
            compute_capability: ComputeCapability::Cc1_1,
            registers_per_sm: 8192,
            max_threads_per_block: 512,
            max_threads_per_sm: 768,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 24,
            shared_mem_per_sm: 16 * 1024,
            texture_cache_bytes: 8 * 1024,
            warp_size: 32,
        }
    }

    /// GeForce GTX 280 (GT200, compute capability 1.3) — paper §4.2.3.
    pub fn geforce_gtx_280() -> Self {
        DeviceConfig {
            name: "GeForce GTX 280".into(),
            gpu_chip: "GT200".into(),
            memory_mb: 1024,
            mem_bandwidth_gbps: 141.7,
            sm_count: 30,
            cores_per_sm: 8,
            shader_clock_mhz: 1296,
            compute_capability: ComputeCapability::Cc1_3,
            registers_per_sm: 16384,
            max_threads_per_block: 512,
            max_threads_per_sm: 1024,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 32,
            shared_mem_per_sm: 16 * 1024,
            // GT200's per-SM texture L1 is the same 8 KB class as G92's, but it is
            // backed by a sizeable L2 texture cache that G92 lacks; we model the
            // pair as a doubled effective per-SM working set.
            texture_cache_bytes: 16 * 1024,
            warp_size: 32,
        }
    }

    /// The paper's full testbed, oldest card first.
    pub fn paper_testbed() -> Vec<DeviceConfig> {
        vec![
            Self::geforce_8800_gts_512(),
            Self::geforce_9800_gx2(),
            Self::geforce_gtx_280(),
        ]
    }

    /// Total scalar cores (`sm_count * cores_per_sm`).
    pub fn total_cores(&self) -> u32 {
        self.sm_count * self.cores_per_sm
    }

    /// Shader clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.shader_clock_mhz as f64 * 1.0e6
    }

    /// Peak bandwidth in bytes per shader cycle (used for kernel-wide DRAM
    /// arbitration).
    pub fn bandwidth_bytes_per_cycle(&self) -> f64 {
        self.mem_bandwidth_gbps * 1.0e9 / self.clock_hz()
    }

    /// Maximum resident threads across the whole device.
    pub fn max_resident_threads(&self) -> u32 {
        self.sm_count * self.max_threads_per_sm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let gts = DeviceConfig::geforce_8800_gts_512();
        assert_eq!(gts.total_cores(), 128);
        assert_eq!(gts.shader_clock_mhz, 1625);
        assert_eq!(gts.max_warps_per_sm, 24);
        assert_eq!(gts.registers_per_sm, 8192);

        let gx2 = DeviceConfig::geforce_9800_gx2();
        assert_eq!(gx2.total_cores(), 128);
        assert_eq!(gx2.mem_bandwidth_gbps, 64.0);
        assert_eq!(gx2.compute_capability, ComputeCapability::Cc1_1);

        let gtx = DeviceConfig::geforce_gtx_280();
        assert_eq!(gtx.total_cores(), 240);
        assert_eq!(gtx.sm_count, 30);
        assert_eq!(gtx.max_threads_per_sm, 1024);
        assert_eq!(gtx.max_warps_per_sm, 32);
        assert_eq!(gtx.compute_capability, ComputeCapability::Cc1_3);
    }

    #[test]
    fn derived_quantities() {
        let gtx = DeviceConfig::geforce_gtx_280();
        // 30,720 active threads (paper §5.2.3).
        assert_eq!(gtx.max_resident_threads(), 30_720);
        // 141.7 GB/s at 1.296 GHz ≈ 109 B/cycle.
        let bpc = gtx.bandwidth_bytes_per_cycle();
        assert!((bpc - 109.3).abs() < 0.5, "{bpc}");
    }

    #[test]
    fn testbed_ordering_matches_paper() {
        let cards = DeviceConfig::paper_testbed();
        assert_eq!(cards.len(), 3);
        // Shader clocks: 1625, 1500, 1296 (paper §5.3.1).
        assert!(cards[0].shader_clock_mhz > cards[1].shader_clock_mhz);
        assert!(cards[1].shader_clock_mhz > cards[2].shader_clock_mhz);
        // Bandwidth: GTX 280 far ahead (paper §5.3.2).
        assert!(cards[2].mem_bandwidth_gbps > 2.0 * cards[0].mem_bandwidth_gbps);
    }

    #[test]
    fn capability_display() {
        assert_eq!(ComputeCapability::Cc1_1.to_string(), "1.1");
        assert_eq!(ComputeCapability::Cc1_3.to_string(), "1.3");
        assert!(ComputeCapability::Cc1_1 < ComputeCapability::Cc1_3);
    }
}
