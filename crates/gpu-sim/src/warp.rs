//! SIMT warp-lockstep execution with divergence accounting.
//!
//! A warp executes one instruction for all 32 lanes at a time. When lanes branch
//! differently, the hardware serializes: every taken path is executed with the
//! other lanes masked off (paper §2.1.1). For the timing model this means the
//! issue cost of one "logical step" is the **union of the instruction counts of
//! the distinct paths the lanes took**, plus the common (non-divergent) overhead.
//!
//! Kernels drive this module by reporting, per logical step, which path each lane
//! took ([`PathTaken`]); the [`LockstepRecorder`] accumulates issue-instruction
//! totals under the chosen divergence model. The numbers come from *real*
//! execution over real data, so divergence costs are measured, not guessed.

/// One lane's branch outcome on one logical step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathTaken {
    /// Small path identifier (< 64); lanes reporting the same id are assumed to
    /// execute the same instruction sequence this step.
    pub id: u8,
    /// Instructions on that path.
    pub instructions: u32,
}

/// Accumulates warp-issue work across lockstep steps.
#[derive(Debug, Clone)]
pub struct LockstepRecorder {
    steps: u64,
    issue_instructions: u64,
    divergent_steps: u64,
    path_histogram: [u64; 64],
}

impl Default for LockstepRecorder {
    fn default() -> Self {
        LockstepRecorder {
            steps: 0,
            issue_instructions: 0,
            divergent_steps: 0,
            path_histogram: [0; 64],
        }
    }
}

impl LockstepRecorder {
    /// New, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one logical step of a warp.
    ///
    /// * `paths`: the branch outcome of every **active** lane (≤ warp size);
    /// * `common_overhead`: instructions all lanes share this step (loop
    ///   bookkeeping, address arithmetic) regardless of divergence;
    /// * `serialize_divergence`: the real SIMT rule (sum distinct paths). When
    ///   false (ablation), only the most expensive taken path is charged.
    pub fn record_step(
        &mut self,
        paths: &[PathTaken],
        common_overhead: u32,
        serialize_divergence: bool,
    ) {
        self.steps += 1;
        let mut seen: u64 = 0;
        let mut serial_cost: u64 = 0;
        let mut max_cost: u64 = 0;
        let mut distinct = 0u32;
        for p in paths {
            debug_assert!(p.id < 64, "path ids must be < 64");
            let bit = 1u64 << p.id;
            if seen & bit == 0 {
                seen |= bit;
                distinct += 1;
                serial_cost += p.instructions as u64;
                max_cost = max_cost.max(p.instructions as u64);
                self.path_histogram[p.id as usize] += 1;
            }
        }
        if distinct > 1 {
            self.divergent_steps += 1;
        }
        let body = if serialize_divergence {
            serial_cost
        } else {
            max_cost
        };
        self.issue_instructions += common_overhead as u64 + body;
    }

    /// Logical steps recorded.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total warp-issue instructions (divergence-adjusted).
    pub fn issue_instructions(&self) -> u64 {
        self.issue_instructions
    }

    /// Steps on which at least two distinct paths were taken.
    pub fn divergent_steps(&self) -> u64 {
        self.divergent_steps
    }

    /// Mean issue instructions per step (0 when empty).
    pub fn mean_instructions_per_step(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.issue_instructions as f64 / self.steps as f64
        }
    }

    /// How often each path id was present among the distinct paths of a step.
    pub fn path_histogram(&self) -> &[u64; 64] {
        &self.path_histogram
    }

    /// Merges another recorder (e.g. per-warp recorders combined per block).
    pub fn merge(&mut self, other: &LockstepRecorder) {
        self.steps += other.steps;
        self.issue_instructions += other.issue_instructions;
        self.divergent_steps += other.divergent_steps;
        for (a, b) in self
            .path_histogram
            .iter_mut()
            .zip(other.path_histogram.iter())
        {
            *a += b;
        }
    }
}

/// Extrapolates a sampled mean to a full population, guarding the empty case.
///
/// Sampling policy: the mining kernels execute a handful of warps exactly (every
/// lane, every character) and scale the measured per-warp issue work to the full
/// warp population, which is statistically uniform for these kernels (each warp
/// processes the same stream positions for a different episode subset).
pub fn extrapolate(sampled_total: u64, sampled_units: u64, population_units: u64) -> u64 {
    if sampled_units == 0 {
        return 0;
    }
    ((sampled_total as f64 / sampled_units as f64) * population_units as f64).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_warp_charges_one_path() {
        let mut rec = LockstepRecorder::new();
        let paths: Vec<PathTaken> = (0..32)
            .map(|_| PathTaken {
                id: 0,
                instructions: 5,
            })
            .collect();
        rec.record_step(&paths, 2, true);
        assert_eq!(rec.issue_instructions(), 7);
        assert_eq!(rec.divergent_steps(), 0);
    }

    #[test]
    fn divergent_warp_serializes_distinct_paths() {
        let mut rec = LockstepRecorder::new();
        let mut paths = vec![
            PathTaken {
                id: 0,
                instructions: 2
            };
            30
        ];
        paths.push(PathTaken {
            id: 1,
            instructions: 4,
        });
        paths.push(PathTaken {
            id: 2,
            instructions: 6,
        });
        rec.record_step(&paths, 2, true);
        // 2 common + 2 + 4 + 6 = 14
        assert_eq!(rec.issue_instructions(), 14);
        assert_eq!(rec.divergent_steps(), 1);
    }

    #[test]
    fn ablation_charges_max_path_only() {
        let mut rec = LockstepRecorder::new();
        let paths = [
            PathTaken {
                id: 0,
                instructions: 2,
            },
            PathTaken {
                id: 1,
                instructions: 6,
            },
        ];
        rec.record_step(&paths, 1, false);
        assert_eq!(rec.issue_instructions(), 7); // 1 + max(2,6)
    }

    #[test]
    fn duplicate_path_ids_counted_once() {
        let mut rec = LockstepRecorder::new();
        let paths = vec![
            PathTaken {
                id: 3,
                instructions: 5
            };
            32
        ];
        rec.record_step(&paths, 0, true);
        assert_eq!(rec.issue_instructions(), 5);
        assert_eq!(rec.path_histogram()[3], 1);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = LockstepRecorder::new();
        let mut b = LockstepRecorder::new();
        let p = [PathTaken {
            id: 1,
            instructions: 3,
        }];
        a.record_step(&p, 1, true);
        b.record_step(&p, 1, true);
        b.record_step(&p, 1, true);
        a.merge(&b);
        assert_eq!(a.steps(), 3);
        assert_eq!(a.issue_instructions(), 12);
        assert_eq!(a.path_histogram()[1], 3);
    }

    #[test]
    fn mean_and_extrapolation() {
        let mut rec = LockstepRecorder::new();
        let p = [PathTaken {
            id: 0,
            instructions: 4,
        }];
        rec.record_step(&p, 0, true);
        rec.record_step(&p, 0, true);
        assert_eq!(rec.mean_instructions_per_step(), 4.0);
        assert_eq!(extrapolate(rec.issue_instructions(), 2, 10), 40);
        assert_eq!(extrapolate(0, 0, 10), 0);
    }

    #[test]
    fn empty_recorder_is_zeroed() {
        let rec = LockstepRecorder::new();
        assert_eq!(rec.steps(), 0);
        assert_eq!(rec.mean_instructions_per_step(), 0.0);
    }
}
