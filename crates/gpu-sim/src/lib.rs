//! # gpu-sim — a CUDA-like SIMT performance simulator
//!
//! This crate is the hardware substrate for the reproduction of *"Multi-Dimensional
//! Characterization of Temporal Data Mining on Graphics Processors"* (IPPS 2009).
//! The paper ran on three NVIDIA cards (GeForce 8800 GTS 512, 9800 GX2, GTX 280);
//! no GPU is available here, so we model the architectural mechanisms that the
//! paper's eight characterizations hinge on:
//!
//! * **SIMT execution** — warps of 32 threads issue one instruction per 4 cycles
//!   per SM; divergent branches serialize the union of taken paths
//!   ([`warp::LockstepRecorder`]);
//! * **occupancy** — active blocks per SM limited by block/thread/warp/register/
//!   shared-memory ceilings (paper Table 2; [`occupancy()`]);
//! * **texture cache** — per-SM cache with spatial-locality streaming reuse and a
//!   thrash regime when concurrent streams exceed capacity ([`texcache`]);
//! * **shared memory** — low latency, 16-bank conflict serialization ([`smem`]);
//! * **global memory** — coalesced transactions, long latency, per-card bandwidth
//!   with kernel-wide arbitration ([`engine`]);
//! * **latency hiding** — a resident set's issue work overlaps memory latency;
//!   kernels with few warps are latency-bound ([`engine`]).
//!
//! Kernels are described to the simulator as per-block phase profiles
//! ([`kernel::BlockProfile`]) whose instruction and memory figures come from
//! *functional execution* of the real algorithm over real data (exactly for small
//! runs, warp-sampled for large ones — the mining kernels in the `tdm-gpu` crate
//! show the pattern). The timing engine then schedules blocks in occupancy-limited
//! waves and computes, per SM and wave, `max(issue, critical-path, bandwidth)`
//! time — a standard interval/roofline hybrid that reproduces who-wins orderings
//! without cycle-by-cycle simulation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod cost;
pub mod engine;
pub mod kernel;
pub mod microbench;
pub mod occupancy;
pub mod report;
pub mod smem;
pub mod texcache;
pub mod warp;

pub use config::{ComputeCapability, DeviceConfig};
pub use cost::CostModel;
pub use engine::{simulate, simulate_resident};
pub use kernel::{BlockProfile, KernelSpec, LaunchConfig, MemKind, MemTraffic, Phase};
pub use occupancy::{
    occupancy, union_occupancy, union_resources, KernelResources, Occupancy, OccupancyLimiter,
    UNION_SMEM_PER_TENANT,
};
pub use report::{BoundKind, SimCounters, SimReport};

/// Errors from kernel validation and simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// threads-per-block exceeded the device limit.
    BlockTooLarge {
        /// Requested threads per block.
        requested: u32,
        /// Device maximum.
        max: u32,
    },
    /// The launch had zero blocks or zero threads.
    EmptyLaunch,
    /// Per-block resources exceed what a single SM offers (kernel can never run).
    ResourcesExceedSm {
        /// Human-readable description of the exhausted resource.
        what: &'static str,
    },
    /// A resident pipeline was advanced with a plan compiled against different
    /// device state (stale or foreign stream/candidate buffers). The pipeline
    /// must be rebuilt before it can serve the plan.
    StalePlan {
        /// Fingerprint of the state the pipeline holds resident.
        expected: u64,
        /// Fingerprint of the state the plan was compiled against.
        got: u64,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::BlockTooLarge { requested, max } => {
                write!(
                    f,
                    "block of {requested} threads exceeds device maximum {max}"
                )
            }
            SimError::EmptyLaunch => write!(f, "kernel launch needs at least one block and thread"),
            SimError::ResourcesExceedSm { what } => {
                write!(
                    f,
                    "per-block {what} exceeds a single multiprocessor's capacity"
                )
            }
            SimError::StalePlan { expected, got } => {
                write!(
                    f,
                    "resident pipeline holds state {expected:#018x} but the plan \
                     was compiled against {got:#018x}; rebuild the pipeline"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}
