//! Texture-cache model.
//!
//! The paper's unbuffered kernels (Algorithms 1 and 3) stream the database
//! through texture memory and rely on the per-SM texture cache ("the texture
//! cache working set is between six and eight KB per multiprocessor", §4.2.1).
//! Two regimes matter for the characterizations:
//!
//! * **streaming reuse** — while the set of concurrent sequential streams fits in
//!   the cache, each line is fetched once and the per-byte accesses hit
//!   (spatial locality); streams that read the *same* addresses (Algorithm 1's
//!   broadcast, or the identical partitioning of different Algorithm-3 blocks)
//!   share fetches (temporal locality);
//! * **thrash** — once concurrent streams outnumber cache lines, a stream's line
//!   is evicted between its own consecutive accesses: every access misses and
//!   each miss drags a whole line from DRAM (32× traffic amplification for
//!   byte-sized items). This cliff is what turns Algorithm 3 bandwidth-bound at
//!   high thread counts (Characterization 8).
//!
//! The model is *pattern-based*: callers describe the access pattern of a
//! residency epoch (streams, bytes, sharing) and get hit/miss/DRAM totals; the
//! transition between regimes is the smooth occupancy ratio rather than a step,
//! matching the gradual upturns in the paper's figures.

use crate::cost::CostModel;
use serde::{Deserialize, Serialize};

/// A streaming access pattern over the texture path for one SM-residency epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamPattern {
    /// Number of concurrent sequential streams alive on the SM (e.g. resident
    /// warps for a broadcast scan; resident lanes for a partitioned scan).
    pub concurrent_streams: u64,
    /// Total logical byte accesses issued by all consumers on this SM.
    pub accesses: u64,
    /// Distinct bytes underlying those accesses (consumers reading the same
    /// addresses in near-lockstep share fetches).
    pub unique_bytes: u64,
}

/// Outcome of a pattern over the cache.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheOutcome {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses served from the cache.
    pub hits: u64,
    /// Accesses that went to device memory.
    pub misses: u64,
    /// Bytes moved from DRAM (misses × line size).
    pub dram_bytes: u64,
}

impl CacheOutcome {
    /// Hit fraction (1.0 for an empty pattern).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Average access latency under a cost model.
    pub fn mean_latency(&self, cost: &CostModel) -> f64 {
        let hr = self.hit_rate();
        hr * cost.tex_hit_latency + (1.0 - hr) * cost.tex_miss_latency
    }

    /// Accumulates another outcome.
    pub fn add(&mut self, other: &CacheOutcome) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.dram_bytes += other.dram_bytes;
    }
}

/// Per-SM texture cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TextureCache {
    /// Capacity in bytes.
    pub capacity_bytes: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl TextureCache {
    /// Cache with the given capacity and the cost model's line size.
    pub fn new(capacity_bytes: u32, cost: &CostModel) -> Self {
        TextureCache {
            capacity_bytes,
            line_bytes: cost.tex_line_bytes,
        }
    }

    /// Number of lines.
    pub fn lines(&self) -> u64 {
        (self.capacity_bytes / self.line_bytes.max(1)) as u64
    }

    /// Evaluates a streaming pattern.
    ///
    /// With modelling disabled (`cost.model_texture_cache == false`) every access
    /// hits and no DRAM traffic is charged — the ablation that deletes
    /// Characterization 8.
    pub fn stream_scan(&self, pattern: &StreamPattern, cost: &CostModel) -> CacheOutcome {
        let accesses = pattern.accesses;
        if accesses == 0 {
            return CacheOutcome::default();
        }
        if !cost.model_texture_cache {
            return CacheOutcome {
                accesses,
                hits: accesses,
                misses: 0,
                dram_bytes: 0,
            };
        }
        let line = self.line_bytes.max(1) as u64;
        // Fraction of streams whose working line survives between their own
        // consecutive accesses.
        let resident_fraction = if pattern.concurrent_streams == 0 {
            1.0
        } else {
            (self.lines() as f64 / pattern.concurrent_streams as f64).min(1.0)
        };
        // Streaming regime: each distinct line fetched once.
        let stream_misses = pattern.unique_bytes.div_ceil(line);
        // Thrash regime: every access misses (and over-fetches a line).
        let thrash_misses = accesses;
        let misses_f = resident_fraction * stream_misses as f64
            + (1.0 - resident_fraction) * thrash_misses as f64;
        let misses = (misses_f.round() as u64).min(accesses);
        CacheOutcome {
            accesses,
            hits: accesses - misses,
            misses,
            dram_bytes: misses * line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> (TextureCache, CostModel) {
        let cost = CostModel::default();
        (TextureCache::new(8 * 1024, &cost), cost)
    }

    #[test]
    fn line_count() {
        let (c, _) = cache();
        assert_eq!(c.lines(), 256); // 8 KB / 32 B
    }

    #[test]
    fn single_stream_gets_spatial_reuse() {
        let (c, cost) = cache();
        let out = c.stream_scan(
            &StreamPattern {
                concurrent_streams: 1,
                accesses: 32_000,
                unique_bytes: 32_000,
            },
            &cost,
        );
        // One miss per 32-byte line.
        assert_eq!(out.misses, 1000);
        assert_eq!(out.hits, 31_000);
        assert_eq!(out.dram_bytes, 32_000);
        assert!((out.hit_rate() - 0.96875).abs() < 1e-9);
    }

    #[test]
    fn shared_streams_fetch_unique_bytes_once() {
        let (c, cost) = cache();
        // 8 warps broadcasting over the same 32 KB: accesses 8x, unique once.
        let out = c.stream_scan(
            &StreamPattern {
                concurrent_streams: 8,
                accesses: 8 * 32_000,
                unique_bytes: 32_000,
            },
            &cost,
        );
        assert_eq!(out.misses, 1000);
        assert_eq!(out.dram_bytes, 32_000);
    }

    #[test]
    fn thrash_regime_misses_everything() {
        let (c, cost) = cache();
        // 4096 streams over a 256-line cache: resident fraction 1/16.
        let out = c.stream_scan(
            &StreamPattern {
                concurrent_streams: 4096,
                accesses: 160_000,
                unique_bytes: 160_000,
            },
            &cost,
        );
        // ~ 1/16 * 5000 + 15/16 * 160000 ≈ 150 312
        assert!(out.misses > 140_000, "misses = {}", out.misses);
        assert_eq!(out.dram_bytes, out.misses * 32);
        // Traffic amplification: DRAM bytes greatly exceed unique bytes.
        assert!(out.dram_bytes > 20 * out.accesses);
    }

    #[test]
    fn transition_is_monotone_in_streams() {
        let (c, cost) = cache();
        let mut last = 0u64;
        for streams in [16u64, 64, 256, 512, 1024, 4096] {
            let out = c.stream_scan(
                &StreamPattern {
                    concurrent_streams: streams,
                    accesses: 100_000,
                    unique_bytes: 100_000,
                },
                &cost,
            );
            assert!(out.misses >= last, "streams={streams}");
            last = out.misses;
        }
    }

    #[test]
    fn ablation_disables_misses() {
        let (c, _) = cache();
        let cost = CostModel::without_texture_cache();
        let out = c.stream_scan(
            &StreamPattern {
                concurrent_streams: 10_000,
                accesses: 50_000,
                unique_bytes: 50_000,
            },
            &cost,
        );
        assert_eq!(out.misses, 0);
        assert_eq!(out.dram_bytes, 0);
        assert_eq!(out.hit_rate(), 1.0);
    }

    #[test]
    fn latency_blends_hit_and_miss() {
        let (c, cost) = cache();
        let all_hit = CacheOutcome {
            accesses: 10,
            hits: 10,
            misses: 0,
            dram_bytes: 0,
        };
        assert_eq!(all_hit.mean_latency(&cost), cost.tex_hit_latency);
        let all_miss = CacheOutcome {
            accesses: 10,
            hits: 0,
            misses: 10,
            dram_bytes: 320,
        };
        assert_eq!(all_miss.mean_latency(&cost), cost.tex_miss_latency);
        let _ = c;
    }

    #[test]
    fn empty_pattern_is_identity() {
        let (c, cost) = cache();
        let out = c.stream_scan(
            &StreamPattern {
                concurrent_streams: 0,
                accesses: 0,
                unique_bytes: 0,
            },
            &cost,
        );
        assert_eq!(out, CacheOutcome::default());
        assert_eq!(out.hit_rate(), 1.0);
    }

    #[test]
    fn misses_never_exceed_accesses() {
        let (c, cost) = cache();
        let out = c.stream_scan(
            &StreamPattern {
                concurrent_streams: 1_000_000,
                accesses: 10,
                unique_bytes: 1_000_000,
            },
            &cost,
        );
        assert!(out.misses <= out.accesses);
    }
}
