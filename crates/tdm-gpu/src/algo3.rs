//! Algorithm 3 — block-level parallelism, no buffering (paper §3.3.3).
//!
//! One block searches for one episode; the block's `t` threads each scan a
//! different slice of the database through texture memory ("each of the t
//! threads within a block start at a different offset"). Because an appearance
//! can span slice boundaries (paper Fig. 5), an intermediate step between map
//! and reduce resolves live partial matches by scanning past the boundary; the
//! reduce step then sums the per-thread counts.
//!
//! Performance-wise this kernel keeps `tpb × resident-blocks` concurrent
//! texture streams alive per SM — the cache-thrash / bandwidth regime of
//! Characterization 8 once that number outgrows the texture cache.

use crate::launch::thread_ranges;
use crate::lockstep::{measure_spans, run_partitioned_warp, FsmCosts, SpanStats};
use crate::{Algorithm, KernelRun, MiningProblem, ProfileStats, SimOptions};
use gpu_sim::{
    simulate, BlockProfile, CostModel, DeviceConfig, KernelResources, KernelSpec, MemKind,
    MemTraffic, Phase, SimError,
};
use tdm_core::engine::CompiledCandidates;
use tdm_core::segment::even_bounds;
use tdm_core::EventDb;

pub(crate) fn sample_block_level(
    db: &EventDb,
    compiled: &CompiledCandidates,
    tpb: u32,
    serialize: bool,
    opts: &SimOptions,
) -> ProfileStats {
    let costs = FsmCosts::default();
    let n = db.len();
    let ranges = thread_ranges(n, tpb);
    let warps: Vec<&[std::ops::Range<usize>]> = ranges.chunks(32).collect();

    // Sample blocks (episodes) evenly.
    let n_blocks = compiled.len();
    let block_ids: Vec<usize> = if opts.exact || n_blocks <= opts.sample_blocks {
        (0..n_blocks).collect()
    } else {
        let s = opts.sample_blocks.max(1);
        (0..s)
            .map(|i| i * (n_blocks - 1) / (s - 1).max(1))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };

    let mut total = 0u64;
    let mut max = 0u64;
    let mut samples = 0u64;
    let mut spans = SpanStats::default();
    let bounds = even_bounds(n, tpb as usize);
    for &b in &block_ids {
        let items = compiled.items_of(b);
        // Sample warps within the block.
        let warp_ids: Vec<usize> = if opts.exact || warps.len() <= opts.sample_warps {
            (0..warps.len()).collect()
        } else {
            let s = opts.sample_warps.max(1);
            (0..s)
                .map(|i| i * (warps.len() - 1) / (s - 1).max(1))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect()
        };
        for &w in &warp_ids {
            let out = run_partitioned_warp(db.symbols(), items, warps[w], &costs, serialize);
            let issue = out.recorder.issue_instructions();
            total += issue;
            max = max.max(issue);
            samples += 1;
        }
        let (_, s) = measure_spans(db.symbols(), items, &bounds);
        spans.boundaries += s.boundaries;
        spans.live += s.live;
        spans.continuation_chars += s.continuation_chars;
        spans.recovered += s.recovered;
    }

    ProfileStats {
        mean_warp_issue: total as f64 / samples.max(1) as f64,
        max_warp_issue: max as f64,
        mean_span_window: spans.mean_window(),
        live_boundary_fraction: spans.live_fraction(),
    }
}

/// Builds the span-check and reduce phases shared by Algorithms 3 and 4.
/// `boundaries_per_thread` is how many segment ends each thread must resolve
/// (1 for Algorithm 3; one per epoch for Algorithm 4).
pub(crate) fn span_and_reduce_phases(
    stats: &ProfileStats,
    tpb: u32,
    boundaries_per_thread: u64,
    texture_continuations: bool,
) -> Vec<Phase> {
    let warps = tpb.div_ceil(32).max(1) as u64;
    let lanes = tpb.clamp(1, 32) as f64;
    // Probability at least one lane in a warp has a live partial this boundary.
    let p_any = 1.0 - (1.0 - stats.live_boundary_fraction).powf(lanes);
    // Warp cost per boundary: bookkeeping (save/restore FSM state, store the
    // partial, recompute the lane's next global index, predicate the pending
    // carry) plus, when any lane continues, the continuation loop, which
    // SIMT-executes for the longest lane. The bookkeeping is fixed per
    // boundary, so for Algorithm 4 — whose boundary count per thread equals the
    // epoch count while its per-thread scan shrinks as 1/tpb — this term grows
    // linearly with the block size, the paper's Characterization-3 slope.
    let per_boundary = 16.0 + p_any * (stats.mean_span_window.max(1.0)) * 3.0;
    let span_instr = (per_boundary * boundaries_per_thread as f64).round() as u64;
    let continuation_reads =
        (stats.live_boundary_fraction * stats.mean_span_window * boundaries_per_thread as f64)
            .ceil() as u64;

    let span_phase = Phase {
        label: "span-check",
        warp_instructions: span_instr * warps,
        chain_instructions: span_instr,
        mem: Some(if texture_continuations {
            MemTraffic {
                kind: MemKind::Texture {
                    streams_per_block: tpb,
                    unique_bytes: continuation_reads * 32,
                    shared_across_blocks: true,
                },
                requests: continuation_reads.max(1) * warps,
                chain: continuation_reads.max(1),
                touched_bytes: continuation_reads * tpb as u64,
            }
        } else {
            MemTraffic {
                kind: MemKind::Shared { conflict_degree: 1 },
                requests: continuation_reads.max(1) * warps,
                chain: continuation_reads.max(1),
                touched_bytes: 0,
            }
        }),
        barriers: 0,
    };

    // Reduce: every thread stores its partial count to shared memory, one
    // barrier, thread 0 sums tpb values serially and writes the result.
    let reduce_phase = Phase {
        label: "reduce",
        warp_instructions: warps * 2 + tpb as u64 * 3,
        chain_instructions: tpb as u64 * 3,
        mem: Some(MemTraffic {
            kind: MemKind::Shared { conflict_degree: 1 },
            requests: warps + tpb as u64,
            chain: tpb as u64,
            touched_bytes: 0,
        }),
        barriers: 1,
    };

    // Result write-back: one global transaction per block.
    let write_phase = Phase {
        label: "result-write",
        warp_instructions: 2,
        chain_instructions: 2,
        mem: Some(MemTraffic {
            kind: MemKind::Global,
            requests: 1,
            chain: 1,
            touched_bytes: 32,
        }),
        barriers: 0,
    };

    vec![span_phase, reduce_phase, write_phase]
}

/// Runs Algorithm 3.
///
/// # Errors
/// Propagates launch-validation failures from the simulator.
pub fn run(
    problem: &MiningProblem<'_>,
    tpb: u32,
    dev: &DeviceConfig,
    cost: &CostModel,
    opts: &SimOptions,
) -> Result<KernelRun, SimError> {
    let n = problem.db().len() as u64;
    let launch = crate::launch::grid_for(Algorithm::BlockTexture, problem.compiled(), tpb);
    let opts_c = *opts;
    let stats = problem.cached_stats(
        (
            Algorithm::BlockTexture,
            crate::algo1::stats_key(tpb, cost.model_divergence),
        ),
        |db, compiled| sample_block_level(db, compiled, tpb, cost.model_divergence, &opts_c),
    );

    let warps = tpb.div_ceil(32).max(1) as u64;
    let steps_per_lane = n.div_ceil(tpb as u64).max(1);

    let scan_phase = Phase {
        label: "texture-scan",
        warp_instructions: (stats.mean_warp_issue * warps as f64).round() as u64,
        chain_instructions: stats.max_warp_issue.round() as u64,
        mem: Some(MemTraffic {
            kind: MemKind::Texture {
                // Every lane is its own sequential stream.
                streams_per_block: tpb,
                unique_bytes: n,
                // All blocks use the same partitioning of the same database.
                shared_across_blocks: true,
            },
            requests: steps_per_lane * warps,
            chain: steps_per_lane,
            touched_bytes: n,
        }),
        barriers: 0,
    };

    let mut phases = vec![scan_phase];
    phases.extend(span_and_reduce_phases(&stats, tpb, 1, true));

    let spec = KernelSpec {
        launch,
        resources: KernelResources::new(tpb)
            .with_registers(opts.registers_per_thread)
            .with_shared_mem(4 * tpb), // per-thread partial counts
        profile: BlockProfile { phases },
    };
    let report = simulate(dev, cost, &spec)?;
    Ok(KernelRun {
        algo: Algorithm::BlockTexture,
        launch,
        counts: problem.counts().to_vec(),
        report,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::candidate::permutations;
    use tdm_core::Alphabet;

    fn small_db() -> EventDb {
        let symbols: Vec<u8> = (0..20_000u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 9) % 26) as u8)
            .collect();
        EventDb::new(Alphabet::latin26(), symbols).unwrap()
    }

    #[test]
    fn one_block_per_episode() {
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 1);
        let p = MiningProblem::new(&db, &eps);
        let run = run(
            &p,
            64,
            &DeviceConfig::geforce_gtx_280(),
            &CostModel::default(),
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(run.launch.blocks, 26);
        assert_eq!(run.counts, tdm_core::count::count_episodes(&db, &eps));
    }

    #[test]
    fn much_faster_than_thread_level_at_level1() {
        // Characterization 4: at L = 1, block-level wins by orders of magnitude.
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 1);
        let dev = DeviceConfig::geforce_gtx_280();
        let cost = CostModel::default();
        let opts = SimOptions::default();
        let p = MiningProblem::new(&db, &eps);
        let a1 = crate::algo1::run(&p, 256, &dev, &cost, &opts).unwrap();
        let a3 = run(&p, 256, &dev, &cost, &opts).unwrap();
        assert!(
            a3.report.time_ms * 5.0 < a1.report.time_ms,
            "A3 {} vs A1 {}",
            a3.report.time_ms,
            a1.report.time_ms
        );
    }

    #[test]
    fn bandwidth_pressure_grows_with_tpb() {
        // Characterization 8's mechanism: more threads -> more concurrent
        // streams -> more cache thrash -> more DRAM traffic.
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 2);
        let dev = DeviceConfig::geforce_8800_gts_512();
        let cost = CostModel::default();
        let opts = SimOptions::default();
        let p = MiningProblem::new(&db, &eps);
        let t64 = run(&p, 64, &dev, &cost, &opts).unwrap();
        let t512 = run(&p, 512, &dev, &cost, &opts).unwrap();
        assert!(t512.report.counters.dram_bytes > t64.report.counters.dram_bytes);
    }

    #[test]
    fn span_statistics_present_for_multi_item_episodes() {
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 2);
        let compiled = CompiledCandidates::compile(26, &eps);
        let stats = sample_block_level(&db, &compiled, 128, true, &SimOptions::default());
        assert!(stats.live_boundary_fraction >= 0.0);
        assert!(stats.mean_warp_issue > 0.0);
    }
}
