//! Grid shaping and sweep helpers.
//!
//! The paper assigns work two ways (§3.3): thread-level kernels pack one episode
//! per thread and fill blocks in order ("threads 1–512 are assigned to thread
//! block 1, …"); block-level kernels launch one block per episode, with the
//! block's threads splitting the database evenly.

use crate::Algorithm;
use gpu_sim::LaunchConfig;
use tdm_core::engine::CompiledCandidates;

/// Thread-level grid: `ceil(episodes / tpb)` blocks of `tpb` threads.
pub fn thread_level_grid(episodes: usize, threads_per_block: u32) -> LaunchConfig {
    LaunchConfig {
        blocks: (episodes as u64).div_ceil(threads_per_block as u64).max(1) as u32,
        threads_per_block,
    }
}

/// Block-level grid: one block per episode.
pub fn block_level_grid(episodes: usize, threads_per_block: u32) -> LaunchConfig {
    LaunchConfig {
        blocks: episodes.max(1) as u32,
        threads_per_block,
    }
}

/// The grid an algorithm launches for a compiled candidate set: thread-level
/// kernels pack `ceil(candidates / tpb)` blocks, block-level kernels launch
/// one block per candidate. This is the geometry entry point of the
/// plan/execute API — launch shape is derived from the compiled layout, never
/// from raw episode slices.
pub fn grid_for(
    algo: Algorithm,
    compiled: &CompiledCandidates,
    threads_per_block: u32,
) -> LaunchConfig {
    if algo.is_block_level() {
        block_level_grid(compiled.len(), threads_per_block)
    } else {
        thread_level_grid(compiled.len(), threads_per_block)
    }
}

/// The paper's block-size sweep (x-axes of Figures 6–9): every multiple of 32
/// from 32 to 512, plus the 16-thread starting point.
pub fn paper_tpb_sweep() -> Vec<u32> {
    let mut v = vec![16];
    v.extend((1..=16).map(|i| i * 32));
    v
}

/// A coarser sweep for quick runs (powers of two plus the paper's named optima
/// 96 and 240).
pub fn coarse_tpb_sweep() -> Vec<u32> {
    vec![16, 32, 64, 96, 128, 192, 240, 256, 320, 384, 448, 512]
}

/// Per-thread byte ranges for a block-level kernel: thread `t` of `tpb` scans
/// `[t*n/tpb, (t+1)*n/tpb)` (paper §3.3.3).
pub fn thread_ranges(n: usize, tpb: u32) -> Vec<std::ops::Range<usize>> {
    let tpb = tpb.max(1) as usize;
    (0..tpb)
        .map(|t| (t * n / tpb)..((t + 1) * n / tpb))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_level_geometry() {
        // Paper §5.2.2: at level 2, blocks = ceil(650 / tpb).
        assert_eq!(thread_level_grid(650, 16).blocks, 41);
        assert_eq!(thread_level_grid(650, 512).blocks, 2);
        // Level 1: any tpb >= 26 gives one block (paper §5.2.2).
        assert_eq!(thread_level_grid(26, 32).blocks, 1);
        assert_eq!(thread_level_grid(26, 16).blocks, 2);
    }

    #[test]
    fn block_level_geometry() {
        assert_eq!(block_level_grid(15_600, 64).blocks, 15_600);
        assert_eq!(block_level_grid(26, 256).blocks, 26);
    }

    #[test]
    fn sweeps_cover_the_paper_axis() {
        let sweep = paper_tpb_sweep();
        assert_eq!(sweep.first(), Some(&16));
        assert_eq!(sweep.last(), Some(&512));
        assert!(sweep.contains(&96) && sweep.contains(&256));
        assert_eq!(sweep.len(), 17);
        let coarse = coarse_tpb_sweep();
        assert!(coarse.contains(&240)); // the paper's Algo-4 crossover point
    }

    #[test]
    fn ranges_partition_exactly() {
        for (n, tpb) in [(1000usize, 7u32), (393_019, 64), (10, 32)] {
            let rs = thread_ranges(n, tpb);
            assert_eq!(rs.len(), tpb as usize);
            assert_eq!(rs[0].start, 0);
            assert_eq!(rs.last().unwrap().end, n);
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let total: usize = rs.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
        }
    }
}
