//! Algorithm 2 — thread-level parallelism with shared-memory buffering
//! (paper §3.3.2).
//!
//! Same episode-per-thread mapping as Algorithm 1, but the block's threads
//! cooperatively stage the database through a shared-memory buffer in *epochs*:
//! load a chunk, `__syncthreads()`, every thread scans the chunk (its FSM state
//! persists across epochs), `__syncthreads()`, load the next chunk. The scan
//! reads are broadcasts (all lanes at the same buffer position → conflict-free),
//! so the texture path's long hit latency is traded for cheap shared-memory
//! access at the price of the load phases — whose per-thread latency chain
//! shrinks as threads are added, the amortization of Characterization 2.

use crate::algo1::{sample_thread_level, stats_key};
use crate::{Algorithm, KernelRun, MiningProblem, SimOptions};
use gpu_sim::{
    simulate, BlockProfile, ComputeCapability, CostModel, DeviceConfig, KernelResources,
    KernelSpec, MemKind, MemTraffic, Phase, SimError,
};

/// DRAM-traffic amplification and per-warp-step replay count for byte-granular
/// cooperative loads: cc 1.0/1.1 cannot coalesce sub-word accesses (one 32-byte
/// transaction per lane), cc 1.2+ coalesces a half-warp's consecutive bytes into
/// one transaction.
pub(crate) fn byte_load_penalty(cc: ComputeCapability) -> (u64, u64) {
    match cc {
        ComputeCapability::Cc1_1 => (16, 32), // (replays per warp step, bytes amplification)
        ComputeCapability::Cc1_3 => (2, 2),
    }
}

/// Runs Algorithm 2.
///
/// # Errors
/// Propagates launch-validation failures from the simulator.
pub fn run(
    problem: &MiningProblem<'_>,
    tpb: u32,
    dev: &DeviceConfig,
    cost: &CostModel,
    opts: &SimOptions,
) -> Result<KernelRun, SimError> {
    let n = problem.db().len() as u64;
    let n_eps = problem.compiled().len();
    let launch = crate::launch::grid_for(Algorithm::ThreadBuffered, problem.compiled(), tpb);
    let opts_c = *opts;
    // The compute inner loop is identical to Algorithm 1's; reuse its samples.
    let stats = problem.cached_stats(
        (
            Algorithm::ThreadTexture,
            stats_key(tpb, cost.model_divergence),
        ),
        |db, compiled| sample_thread_level(db, compiled, tpb, cost.model_divergence, &opts_c),
    );

    let lanes = tpb.clamp(1, 32) as usize;
    let active_warps = n_eps.div_ceil(lanes).max(1) as f64;
    let blocks = launch.blocks as f64;
    let active_wpb = active_warps / blocks;
    let alloc_warps = tpb.div_ceil(32).max(1) as u64; // all warps join the loads

    let buffer = opts.buffer_bytes.max(tpb).min(dev.shared_mem_per_sm / 2);
    let epochs = n.div_ceil(buffer as u64);
    let (replays, amplification) = byte_load_penalty(dev.compute_capability);

    // Cooperative load: each thread moves n/tpb bytes over the whole run.
    let bytes_per_thread = (n as f64 / tpb as f64).ceil() as u64;
    let load_phase = Phase {
        label: "buffer-load",
        // Address arithmetic + smem store per loaded byte, on every warp.
        warp_instructions: bytes_per_thread * 3 * alloc_warps,
        chain_instructions: bytes_per_thread * 3,
        mem: Some(MemTraffic {
            kind: MemKind::Global,
            requests: bytes_per_thread * replays * alloc_warps,
            chain: bytes_per_thread / opts.load_mlp.max(1) as u64,
            touched_bytes: n * amplification,
        }),
        barriers: (2 * epochs) as u32,
    };

    let grid_issue = stats.mean_warp_issue * active_warps;
    let compute_phase = Phase {
        label: "buffered-scan",
        warp_instructions: (grid_issue / blocks).round() as u64,
        chain_instructions: stats.max_warp_issue.round() as u64,
        mem: Some(MemTraffic {
            // Broadcast reads: all lanes at the same buffer offset.
            kind: MemKind::Shared { conflict_degree: 1 },
            requests: (n as f64 * active_wpb).round() as u64,
            chain: n,
            touched_bytes: 0,
        }),
        barriers: 0,
    };

    let spec = KernelSpec {
        launch,
        resources: KernelResources::new(tpb)
            .with_registers(opts.registers_per_thread)
            .with_shared_mem(buffer),
        profile: BlockProfile {
            phases: vec![load_phase, compute_phase],
        },
    };
    let report = simulate(dev, cost, &spec)?;
    Ok(KernelRun {
        algo: Algorithm::ThreadBuffered,
        launch,
        counts: problem.counts().to_vec(),
        report,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::candidate::permutations;
    use tdm_core::{Alphabet, EventDb};

    fn small_db() -> EventDb {
        let symbols: Vec<u8> = (0..20_000u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 9) % 26) as u8)
            .collect();
        EventDb::new(Alphabet::latin26(), symbols).unwrap()
    }

    #[test]
    fn counts_match_algorithm1() {
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 2);
        let dev = DeviceConfig::geforce_gtx_280();
        let cost = CostModel::default();
        let opts = SimOptions::default();
        let p = MiningProblem::new(&db, &eps);
        let a1 = crate::algo1::run(&p, 128, &dev, &cost, &opts).unwrap();
        let a2 = run(&p, 128, &dev, &cost, &opts).unwrap();
        // Buffering must not change the mining result (state persists across
        // epochs, so the scan is logically identical).
        assert_eq!(a1.counts, a2.counts);
    }

    #[test]
    fn beats_algorithm1_at_high_thread_counts() {
        // Characterization 2 + §5.2: cheap shared-memory access beats the
        // texture path's latency once the load cost is amortized.
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 1);
        let dev = DeviceConfig::geforce_gtx_280();
        let cost = CostModel::default();
        let opts = SimOptions::default();
        let p = MiningProblem::new(&db, &eps);
        let a1 = crate::algo1::run(&p, 512, &dev, &cost, &opts).unwrap();
        let a2 = run(&p, 512, &dev, &cost, &opts).unwrap();
        assert!(
            a2.report.time_ms < a1.report.time_ms,
            "A2 {} vs A1 {}",
            a2.report.time_ms,
            a1.report.time_ms
        );
    }

    #[test]
    fn execution_time_decreases_with_threads() {
        // Characterization 2: more threads per block amortize the buffer loads.
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 1);
        let dev = DeviceConfig::geforce_gtx_280();
        let cost = CostModel::default();
        let opts = SimOptions::default();
        let p = MiningProblem::new(&db, &eps);
        let t16 = run(&p, 16, &dev, &cost, &opts).unwrap().report.time_ms;
        let t512 = run(&p, 512, &dev, &cost, &opts).unwrap().report.time_ms;
        assert!(t512 < t16, "512tpb {t512} vs 16tpb {t16}");
    }

    #[test]
    fn old_cards_pay_more_for_uncoalesced_loads() {
        let (r11, a11) = byte_load_penalty(ComputeCapability::Cc1_1);
        let (r13, a13) = byte_load_penalty(ComputeCapability::Cc1_3);
        assert!(r11 > r13);
        assert!(a11 > a13);
    }

    #[test]
    fn buffer_size_respected_in_resources() {
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 1);
        let dev = DeviceConfig::geforce_gtx_280();
        let p = MiningProblem::new(&db, &eps);
        let run = run(
            &p,
            64,
            &dev,
            &CostModel::default(),
            &SimOptions {
                buffer_bytes: 2048,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(run.spec.resources.shared_mem_per_block, 2048);
        assert!(run.report.counters.barriers > 0);
    }
}
