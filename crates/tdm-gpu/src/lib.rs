//! # tdm-gpu — the paper's four parallel mining kernels, on `gpu-sim`
//!
//! The paper implements frequent-episode counting as four CUDA kernels
//! (§3.3, Figure 4), the cartesian product of {thread-level, block-level}
//! parallelism × {unbuffered texture, shared-memory buffered} data access:
//!
//! | Algorithm | Parallelism | Data access | Module |
//! |-----------|-------------|-------------|--------|
//! | 1 | one thread = one episode | texture | [`algo1`] |
//! | 2 | one thread = one episode | shared-memory buffer epochs | [`algo2`] |
//! | 3 | one block = one episode, threads split the database | texture | [`algo3`] |
//! | 4 | one block = one episode | buffered, fixed per-thread slices | [`algo4`] |
//!
//! Each kernel here is executed **functionally** over real data — the FSM
//! transitions, boundary continuations, and reductions actually run, and the
//! counts are cross-checked against `tdm-core`'s sequential ground truth — while
//! a warp-sampled lockstep pass ([`lockstep`]) measures divergence-adjusted
//! instruction costs. From those measurements each kernel builds the
//! [`gpu_sim::BlockProfile`] that the timing engine schedules.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algo1;
pub mod algo2;
pub mod algo3;
pub mod algo4;
pub mod device;
pub mod launch;
pub mod lockstep;
pub mod pipeline;
pub mod validate;

pub use device::{
    stream_fingerprint, DevicePipeline, DispatchDecision, GpuPipelineBackend, StreamResidency,
    UnionLaunch,
};

use gpu_sim::{CostModel, DeviceConfig, KernelSpec, LaunchConfig, SimError, SimReport};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use tdm_core::engine::CompiledCandidates;
use tdm_core::session::{BackendError, CountRequest, Counts, Executor};
use tdm_core::{Episode, EventDb};

/// The four kernels of the paper (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Algorithm {
    /// Algorithm 1: thread-level parallelism, texture memory.
    ThreadTexture,
    /// Algorithm 2: thread-level parallelism, shared-memory buffering.
    ThreadBuffered,
    /// Algorithm 3: block-level parallelism, texture memory.
    BlockTexture,
    /// Algorithm 4: block-level parallelism, shared-memory buffering.
    BlockBuffered,
}

impl Algorithm {
    /// All four, in paper order.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::ThreadTexture,
        Algorithm::ThreadBuffered,
        Algorithm::BlockTexture,
        Algorithm::BlockBuffered,
    ];

    /// The paper's numbering (1–4).
    pub fn number(self) -> u8 {
        match self {
            Algorithm::ThreadTexture => 1,
            Algorithm::ThreadBuffered => 2,
            Algorithm::BlockTexture => 3,
            Algorithm::BlockBuffered => 4,
        }
    }

    /// True for the block-level kernels (one block per episode).
    pub fn is_block_level(self) -> bool {
        matches!(self, Algorithm::BlockTexture | Algorithm::BlockBuffered)
    }

    /// True for the buffered kernels.
    pub fn is_buffered(self) -> bool {
        matches!(self, Algorithm::ThreadBuffered | Algorithm::BlockBuffered)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Algorithm{}", self.number())
    }
}

/// Knobs of the simulation-side execution (not of the mining semantics).
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    /// Warps sampled exactly per kernel for divergence measurement (higher =
    /// tighter estimates, slower). `exact` overrides.
    pub sample_warps: usize,
    /// Blocks sampled per block-level kernel for span statistics.
    pub sample_blocks: usize,
    /// Execute every warp of every block exactly (small inputs / tests).
    pub exact: bool,
    /// Shared-memory buffer bytes per block for the buffered kernels
    /// (paper §3.3: "buffers portions of the database in shared memory").
    pub buffer_bytes: u32,
    /// Registers per thread assumed for occupancy.
    pub registers_per_thread: u32,
    /// Memory-level parallelism of the cooperative buffer loads (outstanding
    /// loads per thread). A naive copy loop is 1: each iteration's shared-memory
    /// store depends on its global load and recycles the same register, so the
    /// per-thread load chain is fully serialized — which is exactly why the
    /// paper's buffered kernels improve as threads are added (each thread loads
    /// `n / tpb` bytes; Characterization 2).
    pub load_mlp: u32,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            sample_warps: 4,
            sample_blocks: 3,
            exact: false,
            buffer_bytes: 4096,
            registers_per_thread: 16,
            load_mlp: 1,
        }
    }
}

/// Result of one kernel run: real counts plus the simulated timing report.
#[derive(Debug, Clone)]
pub struct KernelRun {
    /// Which kernel ran.
    pub algo: Algorithm,
    /// Grid geometry used.
    pub launch: LaunchConfig,
    /// Appearance count per candidate episode (same order as the input).
    pub counts: Vec<u64>,
    /// Timing and counters from the simulator.
    pub report: SimReport,
    /// The kernel spec handed to the engine (for inspection/serialization).
    pub spec: KernelSpec,
}

/// Per-kernel instruction/divergence/span measurements (cached per
/// `(algorithm, threads-per-block)` inside [`MiningProblem`]).
#[derive(Debug, Clone)]
pub(crate) struct ProfileStats {
    /// Mean divergence-adjusted issue instructions per warp (whole scan).
    pub mean_warp_issue: f64,
    /// Maximum sampled per-warp issue instructions (critical warp).
    pub max_warp_issue: f64,
    /// Mean boundary-continuation ("span") window in characters, per boundary
    /// (block-level kernels only).
    pub mean_span_window: f64,
    /// Fraction of boundaries with a live partial match (block-level only).
    pub live_boundary_fraction: f64,
}

/// A fixed (database, candidate set) pair with the candidate set in the flat
/// CSR layout of [`CompiledCandidates`], memoized ground-truth counts, and
/// per-kernel profile measurements. Kernels take their launch geometry *and*
/// their sampling inputs from the compiled layout — no `&[Episode]` anywhere
/// on the execute side.
///
/// The reproduction harness holds one of these per episode level and sweeps
/// cards and block sizes against it cheaply — concurrently, since all
/// memoization is behind interior mutability and every kernel run takes
/// `&self`. In the plan/execute API the session owns the compiled set and the
/// problem merely **borrows** it ([`MiningProblem::from_compiled`]), so the
/// GPU backend never recompiles per level.
pub struct MiningProblem<'a> {
    db: &'a EventDb,
    compiled: Cow<'a, CompiledCandidates>,
    counts: OnceLock<Vec<u64>>,
    profile_cache: Mutex<HashMap<(Algorithm, u32), ProfileStats>>,
}

impl<'a> MiningProblem<'a> {
    /// Creates the problem from raw episodes, compiling the candidate set
    /// (counts and profile sampling stay lazy). Prefer
    /// [`MiningProblem::from_compiled`] when a compiled set already exists.
    pub fn new(db: &'a EventDb, episodes: &'a [Episode]) -> Self {
        Self::with_compiled(
            db,
            Cow::Owned(CompiledCandidates::compile(db.alphabet().len(), episodes)),
        )
    }

    /// Creates the problem over an existing compiled candidate set, borrowing
    /// it — the zero-recompile path the session-driven [`GpuBackend`] uses.
    pub fn from_compiled(db: &'a EventDb, compiled: &'a CompiledCandidates) -> Self {
        Self::with_compiled(db, Cow::Borrowed(compiled))
    }

    fn with_compiled(db: &'a EventDb, compiled: Cow<'a, CompiledCandidates>) -> Self {
        MiningProblem {
            db,
            compiled,
            counts: OnceLock::new(),
            profile_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The database.
    pub fn db(&self) -> &EventDb {
        self.db
    }

    /// The compiled (CSR) form of the candidate set the kernels scan.
    pub fn compiled(&self) -> &CompiledCandidates {
        &self.compiled
    }

    /// Ground-truth appearance counts, computed once via the engine's
    /// cost-dispatched counter (vertical occurrence lists, word-packed
    /// Shift-And, or the sharded scan — whichever the model picks) and
    /// memoized.
    pub fn counts(&self) -> &[u64] {
        self.counts
            .get_or_init(|| self.compiled.count_best(self.db.symbols()))
    }

    /// Runs one kernel configuration. Takes `&self`: independent
    /// configurations of the same problem may run concurrently.
    ///
    /// # Errors
    /// Propagates [`SimError`] from launch validation (e.g. block too large).
    pub fn run(
        &self,
        algo: Algorithm,
        threads_per_block: u32,
        dev: &DeviceConfig,
        cost: &CostModel,
        opts: &SimOptions,
    ) -> Result<KernelRun, SimError> {
        match algo {
            Algorithm::ThreadTexture => algo1::run(self, threads_per_block, dev, cost, opts),
            Algorithm::ThreadBuffered => algo2::run(self, threads_per_block, dev, cost, opts),
            Algorithm::BlockTexture => algo3::run(self, threads_per_block, dev, cost, opts),
            Algorithm::BlockBuffered => algo4::run(self, threads_per_block, dev, cost, opts),
        }
    }

    /// Locks the profile cache, recovering from poisoning: a panicking kernel
    /// launch on another thread must not wedge every later request through the
    /// same problem. The map only ever holds complete, idempotent measurements
    /// (inserted after `compute` returns), so the poisoned guard's data is
    /// safe to keep using.
    fn profile_lock(&self) -> std::sync::MutexGuard<'_, HashMap<(Algorithm, u32), ProfileStats>> {
        self.profile_cache
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub(crate) fn cached_stats(
        &self,
        key: (Algorithm, u32),
        compute: impl FnOnce(&EventDb, &CompiledCandidates) -> ProfileStats,
    ) -> ProfileStats {
        if let Some(s) = self.profile_lock().get(&key) {
            return s.clone();
        }
        // Computed outside the lock: sampling is deterministic and idempotent,
        // so a concurrent duplicate costs time, never correctness.
        let s = compute(self.db, &self.compiled);
        self.profile_lock().insert(key, s.clone());
        s
    }
}

/// Ground-truth counts via the database-sharded engine: the candidate set is
/// compiled once, the stream is split into per-worker segments over the
/// `tdm-mapreduce` pool (inside [`CompiledCandidates::count_auto`]), and
/// boundary spans are fixed up exactly as the paper's block-level kernels do
/// (§3.3.3, Fig. 5). Falls back to one sequential compiled scan on short
/// streams or single-core machines.
pub fn parallel_counts(db: &EventDb, episodes: &[Episode]) -> Vec<u64> {
    let compiled = CompiledCandidates::compile(db.alphabet().len(), episodes);
    compiled.count_auto(db.symbols())
}

/// An [`Executor`] that runs one of the simulated GPU kernels for the
/// counting step of the level-wise miner, so the full mining loop can execute
/// "on the GPU" and be compared against CPU baselines. Borrows the request's
/// compiled candidate set end-to-end (geometry + sampling) — no per-level
/// recompile.
pub struct GpuBackend {
    /// Which kernel to use.
    pub algo: Algorithm,
    /// Block size.
    pub threads_per_block: u32,
    /// Simulated card.
    pub device: DeviceConfig,
    /// Cost model.
    pub cost: CostModel,
    /// Execution options.
    pub opts: SimOptions,
    /// Accumulated simulated kernel milliseconds across counting calls.
    pub simulated_ms: f64,
}

impl GpuBackend {
    /// Backend for a kernel/card/block-size choice with default options.
    pub fn new(algo: Algorithm, threads_per_block: u32, device: DeviceConfig) -> Self {
        GpuBackend {
            algo,
            threads_per_block,
            device,
            cost: CostModel::default(),
            opts: SimOptions::default(),
            simulated_ms: 0.0,
        }
    }
}

impl Executor for GpuBackend {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        let problem = MiningProblem::from_compiled(req.db(), req.compiled());
        let run = problem
            .run(
                self.algo,
                self.threads_per_block,
                &self.device,
                &self.cost,
                &self.opts,
            )
            .map_err(|e| BackendError::Launch(e.to_string()))?;
        self.simulated_ms += run.report.time_ms;
        Ok(run.counts)
    }

    fn name(&self) -> &str {
        match self.algo {
            Algorithm::ThreadTexture => "gpu-algorithm1",
            Algorithm::ThreadBuffered => "gpu-algorithm2",
            Algorithm::BlockTexture => "gpu-algorithm3",
            Algorithm::BlockBuffered => "gpu-algorithm4",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_numbering_and_classes() {
        assert_eq!(Algorithm::ThreadTexture.number(), 1);
        assert_eq!(Algorithm::BlockBuffered.number(), 4);
        assert!(!Algorithm::ThreadTexture.is_block_level());
        assert!(Algorithm::BlockTexture.is_block_level());
        assert!(Algorithm::ThreadBuffered.is_buffered());
        assert!(!Algorithm::BlockTexture.is_buffered());
        assert_eq!(Algorithm::ALL.len(), 4);
        assert_eq!(format!("{}", Algorithm::BlockTexture), "Algorithm3");
    }

    #[test]
    fn default_options() {
        let o = SimOptions::default();
        assert_eq!(o.buffer_bytes, 4096);
        assert!(!o.exact);
        assert!(o.sample_warps >= 1);
    }

    #[test]
    fn poisoned_profile_cache_recovers() {
        let symbols: Vec<u8> = (0..4000u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 9) % 26) as u8)
            .collect();
        let db = EventDb::new(tdm_core::Alphabet::latin26(), symbols).unwrap();
        let episodes = tdm_core::candidate::permutations(db.alphabet(), 1);
        let problem = MiningProblem::new(&db, &episodes);

        // Poison the cache: a thread panics (like a failing profiling pass)
        // while holding the guard.
        let poisoner = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = problem.profile_cache.lock().unwrap();
                panic!("kernel profiling panicked while holding the cache");
            })
            .join()
        });
        assert!(poisoner.is_err());
        assert!(problem.profile_cache.is_poisoned());

        // Later requests through the same problem must still run — and still
        // memoize — instead of cascading the panic.
        let run = problem
            .run(
                Algorithm::BlockTexture,
                64,
                &DeviceConfig::geforce_gtx_280(),
                &CostModel::default(),
                &SimOptions::default(),
            )
            .expect("poisoned cache must not fail later runs");
        assert_eq!(run.counts, problem.counts());
        assert!(!problem.profile_lock().is_empty());
    }
}
