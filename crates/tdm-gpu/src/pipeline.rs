//! Phase pipelining — the paper's §6 future-work item, implemented:
//!
//! > "…the effect of pipelining multiple phases of the overall algorithm
//! > together as searching for candidates of episode length 3 can proceed
//! > while episode lengths of 2 and 4 are also computed."
//!
//! Two forms of overlap are modelled:
//!
//! 1. **CPU/GPU pipelining** — candidate generation for level `k+1` (a CPU
//!    phase) overlaps the level-`k` counting kernel: a classic two-stage
//!    pipeline whose makespan is `gen_1 + Σ max(kernel_k, gen_{k+1}) +
//!    kernel_last`.
//! 2. **Device co-scheduling** — counting kernels of *different levels* run
//!    concurrently, filling SMs the other kernel leaves idle (level 1 uses one
//!    block; level 3 floods the card). The makespan bound is the standard
//!    area/critical-path argument: `max(Σ SM-seconds / SM-count, longest
//!    kernel)` — attainable by any work-conserving block scheduler because
//!    blocks are independent (paper §2.1.2).
//!
//! The harness's `ext` target reports both against serial execution.

use crate::{Algorithm, MiningProblem, SimOptions};
use gpu_sim::{occupancy, CostModel, DeviceConfig, KernelResources, Occupancy, SimError};
use tdm_core::{Episode, EventDb};

/// One phase in a pipeline schedule.
#[derive(Debug, Clone)]
pub struct PhaseTiming {
    /// Label, e.g. `count-L2` or `generate-L3`.
    pub label: String,
    /// Phase duration in milliseconds.
    pub time_ms: f64,
    /// SMs the phase actually occupies (CPU phases use 0).
    pub sms_used: f64,
}

/// Makespan of kernels co-scheduled on one device: the greater of the
/// bandwidth-style area bound and the longest individual kernel.
pub fn coscheduled_makespan(phases: &[PhaseTiming], total_sms: u32) -> f64 {
    let area: f64 = phases.iter().map(|p| p.time_ms * p.sms_used).sum();
    let longest = phases.iter().map(|p| p.time_ms).fold(0.0, f64::max);
    (area / total_sms as f64).max(longest)
}

/// Makespan of a two-stage generate→count pipeline (generation of level `k+1`
/// overlaps counting of level `k`).
pub fn two_stage_makespan(gen_ms: &[f64], count_ms: &[f64]) -> f64 {
    assert_eq!(gen_ms.len(), count_ms.len(), "one generation per level");
    if gen_ms.is_empty() {
        return 0.0;
    }
    let mut t = gen_ms[0];
    for k in 0..count_ms.len() {
        let next_gen = if k + 1 < gen_ms.len() {
            gen_ms[k + 1]
        } else {
            0.0
        };
        t += count_ms[k].max(next_gen);
    }
    t
}

/// Report comparing serial, CPU/GPU-pipelined, and co-scheduled execution of a
/// multi-level counting workload.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Per-level kernel timings.
    pub phases: Vec<PhaseTiming>,
    /// Measured CPU generation time per level (ms).
    pub generation_ms: Vec<f64>,
    /// Strictly serial execution: Σ (generation + kernel).
    pub serial_ms: f64,
    /// Generation overlapped with the previous level's kernel.
    pub pipelined_ms: f64,
    /// All counting kernels co-scheduled on the device (generation done once
    /// up front, as the paper's phrasing implies for a fixed candidate space).
    pub coscheduled_ms: f64,
    /// Device time of the co-scheduled kernels alone (no generation) — the
    /// simulated quantity [`Self::coschedule_speedup`] is defined over.
    pub coscheduled_kernels_ms: f64,
}

impl PipelineReport {
    /// Speedup of the CPU/GPU pipeline over serial.
    pub fn pipeline_speedup(&self) -> f64 {
        self.serial_ms / self.pipelined_ms
    }

    /// Speedup of device co-scheduling over running kernels back to back.
    ///
    /// Compares simulated device time only: the host-measured generation cost
    /// is the same on both sides (done once up front), so it is excluded —
    /// keeping the ratio deterministic regardless of host load.
    pub fn coschedule_speedup(&self) -> f64 {
        let kernels: f64 = self.phases.iter().map(|p| p.time_ms).sum();
        kernels / self.coscheduled_kernels_ms
    }
}

/// Occupancy of one pipeline phase's kernel shape, as a typed error instead of
/// a panic: a stale or foreign configuration (block size / register budget not
/// validated by the kernel run that produced the phase) must surface as
/// [`SimError::ResourcesExceedSm`] to the caller, not unwind mid-schedule.
fn phase_occupancy(dev: &DeviceConfig, tpb: u32, opts: &SimOptions) -> Result<Occupancy, SimError> {
    occupancy(
        dev,
        &KernelResources::new(tpb).with_registers(opts.registers_per_thread),
    )
    .ok_or(SimError::ResourcesExceedSm {
        what: "pipeline-phase resources (registers/threads)",
    })
}

/// Simulates the pipelined mining of several candidate levels with one kernel
/// configuration.
///
/// # Errors
/// Propagates simulator launch errors.
pub fn simulate_pipelined_mining(
    db: &EventDb,
    levels: &[Vec<Episode>],
    algo: Algorithm,
    tpb: u32,
    dev: &DeviceConfig,
    cost: &CostModel,
    opts: &SimOptions,
) -> Result<PipelineReport, SimError> {
    let mut phases = Vec::with_capacity(levels.len());
    let mut generation_ms = Vec::with_capacity(levels.len());
    for episodes in levels {
        // Measure real candidate-generation cost on this host (the CPU stage).
        let level = episodes.first().map(|e| e.level()).unwrap_or(1);
        let t0 = std::time::Instant::now();
        let regenerated = tdm_core::candidate::permutations(db.alphabet(), level);
        let gen_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(regenerated.len(), episodes.len(), "level mismatch");
        generation_ms.push(gen_ms);

        let problem = MiningProblem::new(db, episodes);
        let run = problem.run(algo, tpb, dev, cost, opts)?;
        let occ = phase_occupancy(dev, tpb, opts)?;
        let sms_used = (run.launch.blocks as f64 / occ.active_blocks as f64)
            .ceil()
            .min(dev.sm_count as f64);
        phases.push(PhaseTiming {
            label: format!("count-L{level}"),
            time_ms: run.report.time_ms,
            sms_used: if run.report.waves > 1 {
                dev.sm_count as f64 // multi-wave kernels keep the device busy
            } else {
                sms_used
            },
        });
    }

    let count_ms: Vec<f64> = phases.iter().map(|p| p.time_ms).collect();
    let serial_ms: f64 = generation_ms.iter().sum::<f64>() + count_ms.iter().sum::<f64>();
    let pipelined_ms = two_stage_makespan(&generation_ms, &count_ms);
    let coscheduled_kernels_ms = coscheduled_makespan(&phases, dev.sm_count);
    let coscheduled_ms = generation_ms.iter().sum::<f64>() + coscheduled_kernels_ms;
    Ok(PipelineReport {
        phases,
        generation_ms,
        serial_ms,
        pipelined_ms,
        coscheduled_ms,
        coscheduled_kernels_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::candidate::permutations;
    use tdm_core::Alphabet;

    #[test]
    fn area_bound_fills_idle_sms() {
        // One long skinny kernel + one short wide one: co-scheduling hides the
        // short one entirely.
        let phases = vec![
            PhaseTiming {
                label: "skinny".into(),
                time_ms: 100.0,
                sms_used: 1.0,
            },
            PhaseTiming {
                label: "wide".into(),
                time_ms: 10.0,
                sms_used: 29.0,
            },
        ];
        let makespan = coscheduled_makespan(&phases, 30);
        assert_eq!(makespan, 100.0); // longest job dominates
                                     // Serial would be 110.
    }

    #[test]
    fn area_bound_kicks_in_when_everything_is_wide() {
        let phases = vec![
            PhaseTiming {
                label: "a".into(),
                time_ms: 50.0,
                sms_used: 30.0,
            },
            PhaseTiming {
                label: "b".into(),
                time_ms: 50.0,
                sms_used: 30.0,
            },
        ];
        assert_eq!(coscheduled_makespan(&phases, 30), 100.0); // no free lunch
    }

    #[test]
    fn two_stage_pipeline_overlaps_generation() {
        // gen = [2, 8, 2], count = [10, 10, 10]:
        // serial = 12 + 18 + 12 = 42; pipelined = 2 + max(10,8) + max(10,2) + 10 = 32.
        let t = two_stage_makespan(&[2.0, 8.0, 2.0], &[10.0, 10.0, 10.0]);
        assert_eq!(t, 32.0);
        assert_eq!(two_stage_makespan(&[], &[]), 0.0);
    }

    #[test]
    fn foreign_phase_resources_error_instead_of_panicking() {
        // A register budget no SM can hold: the phase must report a typed
        // SimError (previously this path was an expect() that unwound).
        let opts = SimOptions {
            registers_per_thread: 1_000_000,
            ..Default::default()
        };
        let err = phase_occupancy(&DeviceConfig::geforce_gtx_280(), 64, &opts).unwrap_err();
        assert!(matches!(err, SimError::ResourcesExceedSm { .. }));
        // A sane configuration still resolves.
        assert!(
            phase_occupancy(&DeviceConfig::geforce_gtx_280(), 64, &SimOptions::default()).is_ok()
        );
    }

    #[test]
    fn pipelined_mining_reports_consistent_bounds() {
        let symbols: Vec<u8> = (0..12_000u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 9) % 26) as u8)
            .collect();
        let db = tdm_core::EventDb::new(Alphabet::latin26(), symbols).unwrap();
        let ab = Alphabet::latin26();
        let levels: Vec<Vec<Episode>> = vec![permutations(&ab, 1), permutations(&ab, 2)];
        let report = simulate_pipelined_mining(
            &db,
            &levels,
            Algorithm::BlockTexture,
            64,
            &DeviceConfig::geforce_gtx_280(),
            &CostModel::default(),
            &SimOptions::default(),
        )
        .unwrap();
        // Pipelining never slows things down, and never beats the longest kernel.
        assert!(report.pipelined_ms <= report.serial_ms + 1e-9);
        let longest = report.phases.iter().map(|p| p.time_ms).fold(0.0, f64::max);
        assert!(report.coscheduled_ms >= longest);
        assert!(report.pipeline_speedup() >= 1.0);
        assert!(report.coschedule_speedup() >= 1.0);
    }

    #[test]
    fn coscheduling_helps_level1_plus_level3_shapes() {
        // L1 (26 blocks, underfills a 30-SM card) co-scheduled with L2 (650
        // blocks, multi-wave): the L1 kernel should ride along nearly free.
        let symbols: Vec<u8> = (0..20_000u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 9) % 26) as u8)
            .collect();
        let db = tdm_core::EventDb::new(Alphabet::latin26(), symbols).unwrap();
        let ab = Alphabet::latin26();
        let levels: Vec<Vec<Episode>> = vec![permutations(&ab, 1), permutations(&ab, 2)];
        let report = simulate_pipelined_mining(
            &db,
            &levels,
            Algorithm::BlockTexture,
            64,
            &DeviceConfig::geforce_gtx_280(),
            &CostModel::default(),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(report.coschedule_speedup() > 1.0);
    }
}
