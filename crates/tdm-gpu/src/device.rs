//! The persistent device pipeline — `gpu-sim` as a *serving* backend.
//!
//! The paper launches one kernel per episode level and re-uploads its inputs
//! each time; Everest-style GPU serving inverts that: a persistent kernel is
//! launched once, the event stream is uploaded once and stays device-resident,
//! candidate CSR buffers live on the device across levels, and each level is a
//! pipeline *advance* (a doorbell write + pointer swap into the running grid)
//! instead of a driver-mediated launch. [`DevicePipeline`] models that
//! lifecycle on the simulator:
//!
//! 1. [`upload`](DevicePipeline::upload) — one host→device copy of the stream
//!    (at [`gpu_sim::CostModel::h2d_bandwidth_gbs`]) plus the persistent
//!    kernel's single driver launch, idempotent per stream fingerprint;
//! 2. [`advance`](DevicePipeline::advance) — run one level's counting kernel
//!    with the resident stream: identical wave timing to a fresh launch, but
//!    the fixed cost is [`gpu_sim::CostModel::advance_overhead_us`]
//!    (first advance still pays the full launch);
//! 3. [`advance_union`](DevicePipeline::advance_union) — a K-tenant batched
//!    advance over a [`CandidateUnion`]'s fused CSR: per-tenant routing tables
//!    widen the block's shared memory ([`gpu_sim::union_resources`]), the
//!    count buffer is demultiplexed per member exactly as the CPU co-mining
//!    path does ([`CandidateUnion::demux`]), and the demux cost is charged at
//!    [`gpu_sim::CostModel::union_demux_cycles`].
//!
//! A plan compiled against a different stream than the one resident is a
//! [`SimError::StalePlan`] — the serving layer rebuilds the pipeline instead
//! of silently scanning foreign buffers.
//!
//! [`GpuPipelineBackend`] wraps the pipeline as an [`Executor`] with
//! serve-time CPU-vs-GPU dispatch: each level is routed per
//! [`CompiledCandidates::choose_backend_class`] (the same op-unit cost model
//! as [`CompiledCandidates::choose_strategy`]), so level 1 and narrow unions
//! stay on the CPU and wide levels advance the device pipeline. Both paths
//! produce bit-identical counts.

use crate::{Algorithm, KernelRun, MiningProblem, SimOptions};
use gpu_sim::{simulate, simulate_resident, union_resources, CostModel, DeviceConfig, SimError};
use tdm_core::engine::{CandidateUnion, CompiledCandidates, DispatchClass, GpuDispatchModel};
use tdm_core::session::{BackendError, CountRequest, Counts, Executor};
use tdm_core::EventDb;

/// FNV-1a content fingerprint of the stream a pipeline holds resident
/// (alphabet size, length, symbols — everything the kernels scan).
pub fn stream_fingerprint(db: &EventDb) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    eat(&(db.alphabet().len() as u64).to_le_bytes());
    eat(&(db.symbols().len() as u64).to_le_bytes());
    eat(db.symbols());
    h
}

/// What the pipeline holds on the device after [`DevicePipeline::upload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamResidency {
    /// [`stream_fingerprint`] of the uploaded stream.
    pub fingerprint: u64,
    /// Bytes copied host→device.
    pub bytes: u64,
    /// Modeled milliseconds of the copy + the persistent kernel's one launch.
    pub upload_ms: f64,
}

/// A persistent simulated-GPU mining pipeline: one resident plan per stream,
/// advanced level by level (see the [module docs](self)).
pub struct DevicePipeline {
    /// Which counting kernel the resident grid runs.
    pub algo: Algorithm,
    /// Block size of the resident grid.
    pub threads_per_block: u32,
    /// Simulated card.
    pub device: DeviceConfig,
    /// Cost model (launch/advance overheads, H2D bandwidth, demux rate).
    pub cost: CostModel,
    /// Execution options.
    pub opts: SimOptions,
    resident: Option<StreamResidency>,
    advances: u64,
    /// Accumulated simulated milliseconds (uploads + advances + demux).
    pub simulated_ms: f64,
}

impl DevicePipeline {
    /// A pipeline for one kernel/card/block-size choice with default cost
    /// model and options.
    pub fn new(algo: Algorithm, threads_per_block: u32, device: DeviceConfig) -> Self {
        DevicePipeline {
            algo,
            threads_per_block,
            device,
            cost: CostModel::default(),
            opts: SimOptions::default(),
            resident: None,
            advances: 0,
            simulated_ms: 0.0,
        }
    }

    /// The stream currently resident, if any.
    pub fn resident(&self) -> Option<&StreamResidency> {
        self.resident.as_ref()
    }

    /// Pipeline advances since the last upload.
    pub fn advances(&self) -> u64 {
        self.advances
    }

    /// Makes `db`'s stream device-resident: models the one-time host→device
    /// copy and the persistent kernel's single driver launch, and returns the
    /// modeled milliseconds. Idempotent — re-uploading the resident stream
    /// costs nothing; a *different* stream evicts the old plan and pays the
    /// copy again.
    pub fn upload(&mut self, db: &EventDb) -> f64 {
        let fingerprint = stream_fingerprint(db);
        if let Some(res) = &self.resident {
            if res.fingerprint == fingerprint {
                return 0.0;
            }
        }
        let bytes = db.symbols().len() as u64;
        let upload_ms = self.cost.h2d_copy_ms(bytes);
        self.resident = Some(StreamResidency {
            fingerprint,
            bytes,
            upload_ms,
        });
        self.advances = 0;
        self.simulated_ms += upload_ms;
        upload_ms
    }

    /// Advances the pipeline one level: runs `compiled` over the resident
    /// stream. The first advance after an upload pays the full driver launch
    /// (the persistent kernel starting); every later advance is re-timed as a
    /// resident doorbell ([`gpu_sim::simulate_resident`]). Candidate CSR
    /// updates ride the doorbell — they are written into device-resident
    /// buffers, not re-allocated per level.
    ///
    /// # Errors
    /// [`SimError::StalePlan`] when `db` is not the resident stream (or
    /// nothing was uploaded); otherwise the kernel's own validation errors.
    pub fn advance(
        &mut self,
        db: &EventDb,
        compiled: &CompiledCandidates,
    ) -> Result<KernelRun, SimError> {
        self.advance_inner(db, compiled, 1, 0)
    }

    /// A K-tenant batched advance over a [`CandidateUnion`]'s fused CSR:
    /// counts the union once, widens the block with per-tenant routing tables,
    /// charges the host demux, and returns the per-member counts demultiplexed
    /// exactly as the CPU co-mining path does.
    ///
    /// `compiled` must be the compiled form of `union.episodes()`.
    ///
    /// # Errors
    /// As [`advance`](Self::advance); additionally, enough tenants can push
    /// the routing tables past the SM's shared memory.
    pub fn advance_union(
        &mut self,
        db: &EventDb,
        compiled: &CompiledCandidates,
        union: &CandidateUnion,
    ) -> Result<UnionLaunch, SimError> {
        let tenants = union.sources();
        let mapped_slots: u64 = (0..tenants).map(|s| union.map(s).len() as u64).sum();
        let run = self.advance_inner(db, compiled, tenants as u32, mapped_slots)?;
        let member_counts = (0..tenants).map(|s| union.demux(s, &run.counts)).collect();
        Ok(UnionLaunch {
            demux_ms: self.demux_ms(mapped_slots),
            tenants,
            member_counts,
            run,
        })
    }

    /// [`advance_union`](Self::advance_union) when only the tenant count is
    /// known (the serving layer's fused batches carry the union's compiled CSR
    /// but not the union itself): models K routing tables and a full-overlap
    /// demux (`K × |union|` mapped slots — exact for identical members, an
    /// upper bound otherwise), without demultiplexing.
    pub fn advance_modeled(
        &mut self,
        db: &EventDb,
        compiled: &CompiledCandidates,
        tenants: u32,
    ) -> Result<KernelRun, SimError> {
        let mapped_slots = tenants as u64 * compiled.len() as u64;
        self.advance_inner(db, compiled, tenants.max(1), mapped_slots)
    }

    fn demux_ms(&self, mapped_slots: u64) -> f64 {
        self.cost.union_demux_cycles(mapped_slots) / self.device.clock_hz() * 1e3
    }

    fn advance_inner(
        &mut self,
        db: &EventDb,
        compiled: &CompiledCandidates,
        tenants: u32,
        mapped_slots: u64,
    ) -> Result<KernelRun, SimError> {
        let got = stream_fingerprint(db);
        let expected = match &self.resident {
            Some(res) => res.fingerprint,
            None => 0,
        };
        if self.resident.is_none() || expected != got {
            return Err(SimError::StalePlan { expected, got });
        }
        let problem = MiningProblem::from_compiled(db, compiled);
        let mut run = problem.run(
            self.algo,
            self.threads_per_block,
            &self.device,
            &self.cost,
            &self.opts,
        )?;
        if tenants > 1 {
            run.spec.resources = union_resources(&run.spec.resources, tenants);
        }
        run.report = if self.advances == 0 {
            // The persistent kernel's one driver-mediated launch.
            simulate(&self.device, &self.cost, &run.spec)?
        } else {
            simulate_resident(&self.device, &self.cost, &run.spec)?
        };
        self.advances += 1;
        self.simulated_ms += run.report.time_ms + self.demux_ms(mapped_slots);
        Ok(run)
    }
}

/// One K-tenant union advance: the fused kernel run plus the per-member demux.
#[derive(Debug, Clone)]
pub struct UnionLaunch {
    /// The fused launch (counts are the *union*'s counts).
    pub run: KernelRun,
    /// Modeled milliseconds of the host-side demux.
    pub demux_ms: f64,
    /// Union members sharing the launch.
    pub tenants: usize,
    /// `member_counts[s]` = member `s`'s counts, in its own submission order
    /// ([`CandidateUnion::demux`]).
    pub member_counts: Vec<Vec<u64>>,
}

/// One serve-time routing decision of [`GpuPipelineBackend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchDecision {
    /// Episode level of the request.
    pub level: usize,
    /// Candidate-set (union) size.
    pub candidates: usize,
    /// Where the level ran.
    pub class: DispatchClass,
}

/// An [`Executor`] serving counting requests from a persistent
/// [`DevicePipeline`], with per-level CPU-vs-GPU dispatch
/// ([`CompiledCandidates::choose_backend_class`]): cheap levels are counted on
/// the CPU with the engine's best strategy, expensive ones advance the
/// resident pipeline (uploading the stream on first use, re-uploading only
/// when the stream changes). Fused co-mining batches set
/// [`tenants`](Self::tenants) so union launches are modeled with K routing
/// tables; the counts themselves are bit-identical either way.
pub struct GpuPipelineBackend {
    pipeline: DevicePipeline,
    /// The GPU side of the dispatch cost model.
    pub dispatch: GpuDispatchModel,
    /// Union members sharing each launch (1 = solo; the serving layer sets
    /// the fused batch's size).
    pub tenants: u32,
    /// Route every level to the device regardless of the model (conformance
    /// tests exercise the GPU path on workloads dispatch would keep on CPU).
    pub force_gpu: bool,
    /// Levels that advanced the pipeline.
    pub gpu_levels: u64,
    /// Levels counted on the CPU.
    pub cpu_levels: u64,
    /// Every routing decision, in request order.
    pub decisions: Vec<DispatchDecision>,
}

impl GpuPipelineBackend {
    /// A serving backend over one kernel/card/block-size choice.
    pub fn new(algo: Algorithm, threads_per_block: u32, device: DeviceConfig) -> Self {
        GpuPipelineBackend {
            pipeline: DevicePipeline::new(algo, threads_per_block, device),
            dispatch: GpuDispatchModel::default(),
            tenants: 1,
            force_gpu: false,
            gpu_levels: 0,
            cpu_levels: 0,
            decisions: Vec::new(),
        }
    }

    /// The paper's strongest serving shape: Algorithm 3 (block-level,
    /// texture) at 512 threads per block.
    pub fn with_defaults(device: DeviceConfig) -> Self {
        Self::new(Algorithm::BlockTexture, 512, device)
    }

    /// Sets the union-launch tenant count (builder style).
    pub fn tenants(mut self, tenants: u32) -> Self {
        self.tenants = tenants.max(1);
        self
    }

    /// Forces every level onto the device (builder style).
    pub fn force_gpu(mut self) -> Self {
        self.force_gpu = true;
        self
    }

    /// The underlying pipeline (residency, advance count, simulated time).
    pub fn pipeline(&self) -> &DevicePipeline {
        &self.pipeline
    }

    /// Accumulated simulated device milliseconds.
    pub fn simulated_ms(&self) -> f64 {
        self.pipeline.simulated_ms
    }
}

impl Executor for GpuPipelineBackend {
    fn execute(&mut self, req: &CountRequest<'_>) -> Result<Counts, BackendError> {
        let compiled = req.compiled();
        let class = if self.force_gpu {
            DispatchClass::GpuPipeline
        } else {
            compiled.choose_backend_class(req.occurrence_index(), &self.dispatch)
        };
        self.decisions.push(DispatchDecision {
            level: req.level(),
            candidates: compiled.len(),
            class,
        });
        match class {
            DispatchClass::GpuPipeline => {
                self.pipeline.upload(req.db());
                let run = self
                    .pipeline
                    .advance_modeled(req.db(), compiled, self.tenants)
                    .map_err(|e| BackendError::Launch(e.to_string()))?;
                self.gpu_levels += 1;
                Ok(run.counts)
            }
            // The CPU classes are exactly choose_strategy's picks, so the
            // engine's cost-dispatched counter reproduces them bit-identically.
            _ => {
                self.cpu_levels += 1;
                Ok(compiled.count_best_with_index(req.stream(), req.occurrence_index()))
            }
        }
    }

    fn name(&self) -> &str {
        "gpu-pipeline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::candidate::permutations;
    use tdm_core::{Alphabet, Miner, MinerConfig, SequentialBackend};

    fn db(len: u32) -> EventDb {
        let symbols: Vec<u8> = (0..len)
            .map(|i| ((i.wrapping_mul(2654435761) >> 9) % 26) as u8)
            .collect();
        EventDb::new(Alphabet::latin26(), symbols).unwrap()
    }

    fn gtx() -> DeviceConfig {
        DeviceConfig::geforce_gtx_280()
    }

    #[test]
    fn upload_is_idempotent_and_evicts_on_stream_change() {
        let a = db(8000);
        let b = db(9000);
        let mut p = DevicePipeline::new(Algorithm::BlockTexture, 64, gtx());
        let first = p.upload(&a);
        assert!(first > 0.0);
        assert_eq!(p.upload(&a), 0.0);
        assert_eq!(p.resident().unwrap().bytes, 8000);
        // A different stream pays the copy again and resets the plan.
        assert!(p.upload(&b) > 0.0);
        assert_eq!(p.resident().unwrap().bytes, 9000);
        assert_eq!(p.advances(), 0);
    }

    #[test]
    fn stale_plan_is_a_typed_error() {
        let a = db(8000);
        let b = db(9000);
        let episodes = permutations(a.alphabet(), 1);
        let compiled = CompiledCandidates::compile(26, &episodes);
        let mut p = DevicePipeline::new(Algorithm::BlockTexture, 64, gtx());
        // Nothing uploaded yet.
        assert!(matches!(
            p.advance(&a, &compiled),
            Err(SimError::StalePlan { expected: 0, .. })
        ));
        p.upload(&a);
        // A foreign stream must not be scanned against a's resident buffers.
        let err = p.advance(&b, &compiled).unwrap_err();
        assert!(matches!(err, SimError::StalePlan { .. }));
        if let SimError::StalePlan { expected, got } = err {
            assert_eq!(expected, stream_fingerprint(&a));
            assert_eq!(got, stream_fingerprint(&b));
            assert_ne!(expected, got);
        }
        // The resident stream still advances fine.
        assert!(p.advance(&a, &compiled).is_ok());
    }

    #[test]
    fn fused_advances_amortize_the_launch() {
        let d = db(20_000);
        let levels: Vec<_> = (1..=3).map(|l| permutations(d.alphabet(), l)).collect();
        let compiled: Vec<_> = levels
            .iter()
            .map(|eps| CompiledCandidates::compile(26, eps))
            .collect();

        // Fused: upload once, advance per level.
        let mut p = DevicePipeline::new(Algorithm::BlockTexture, 512, gtx());
        p.upload(&d);
        let mut fused_ms = p.resident().unwrap().upload_ms;
        for c in &compiled {
            fused_ms += p.advance(&d, c).unwrap().report.time_ms;
        }

        // Per-level: a fresh problem + driver launch + upload every level.
        let mut per_level_ms = 0.0;
        for c in &compiled {
            let problem = MiningProblem::from_compiled(&d, c);
            let run = problem
                .run(
                    Algorithm::BlockTexture,
                    512,
                    &gtx(),
                    &CostModel::default(),
                    &SimOptions::default(),
                )
                .unwrap();
            per_level_ms += run.report.time_ms + CostModel::default().h2d_copy_ms(20_000);
        }

        assert!(
            per_level_ms > fused_ms,
            "per-level {per_level_ms} vs fused {fused_ms}"
        );
        // Counts stay ground truth regardless of residency.
        let again = p.advance(&d, &compiled[1]).unwrap();
        assert_eq!(again.counts, compiled[1].count_best(d.symbols()));
    }

    #[test]
    fn union_advance_demuxes_like_the_cpu_path() {
        let d = db(12_000);
        let all = permutations(d.alphabet(), 2);
        // Three overlapping members.
        let members: Vec<Vec<tdm_core::Episode>> = vec![
            all[0..200].to_vec(),
            all[100..300].to_vec(),
            all[50..250].to_vec(),
        ];
        let sources: Vec<&[tdm_core::Episode]> = members.iter().map(|m| m.as_slice()).collect();
        let union = CandidateUnion::build(&sources);
        let compiled = CompiledCandidates::compile(26, union.episodes());

        let mut p = DevicePipeline::new(Algorithm::BlockTexture, 512, gtx());
        p.upload(&d);
        let launch = p.advance_union(&d, &compiled, &union).unwrap();
        assert_eq!(launch.tenants, 3);
        assert!(launch.demux_ms > 0.0);
        // Bit-identical to each member counted solo.
        for (s, member) in members.iter().enumerate() {
            let solo = CompiledCandidates::compile(26, member);
            assert_eq!(
                launch.member_counts[s],
                solo.count_best(d.symbols()),
                "member {s} diverged"
            );
        }
        // Routing tables widened the block's shared memory.
        let solo_res = MiningProblem::from_compiled(&d, &compiled)
            .run(
                Algorithm::BlockTexture,
                512,
                &gtx(),
                &CostModel::default(),
                &SimOptions::default(),
            )
            .unwrap()
            .spec
            .resources;
        assert!(launch.run.spec.resources.shared_mem_per_block > solo_res.shared_mem_per_block);
    }

    #[test]
    fn backend_dispatches_small_levels_to_cpu_and_wide_ones_to_gpu() {
        let d = db(20_000);
        let config = MinerConfig {
            alpha: 0.002,
            max_level: Some(2),
            ..Default::default()
        };
        let mut backend = GpuPipelineBackend::with_defaults(gtx());
        let via_pipeline = Miner::new(config).mine(&d, &mut backend).unwrap();
        let serial = Miner::new(config)
            .mine(&d, &mut SequentialBackend::default())
            .unwrap();
        assert_eq!(via_pipeline, serial);
        // Level 1 (26 candidates) stays on CPU; level 2 (650) goes wide.
        assert!(backend.cpu_levels >= 1, "{:?}", backend.decisions);
        assert!(backend.gpu_levels >= 1, "{:?}", backend.decisions);
        assert_eq!(backend.decisions[0].class, DispatchClass::CpuVertical);
        assert_eq!(backend.decisions[1].class, DispatchClass::GpuPipeline);
        assert!(backend.simulated_ms() > 0.0);
    }
}
