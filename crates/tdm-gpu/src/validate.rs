//! Cross-validation of the simulated kernels against sequential ground truth.
//!
//! The paper's kernels must all compute the same counts; ours must additionally
//! match `tdm-core`'s sequential FSM scan. [`validate_counts`] checks a
//! [`crate::KernelRun`] against the reference, and [`validate_all`] sweeps every
//! kernel at a block size — used by integration tests and available to library
//! users as a sanity gate after configuration changes. Like the kernels
//! themselves, validation works off the compiled candidate layout — item
//! slices, not `&[Episode]`.

use crate::{Algorithm, KernelRun, MiningProblem, SimOptions};
use gpu_sim::{CostModel, DeviceConfig};
use tdm_core::engine::CompiledCandidates;
use tdm_core::EventDb;

/// A count mismatch found by validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMismatch {
    /// Index of the episode in the compiled candidate set.
    pub episode_index: usize,
    /// The episode's items (compiled layout slice).
    pub items: Vec<u8>,
    /// Count from the kernel.
    pub kernel: u64,
    /// Count from the sequential reference.
    pub reference: u64,
}

/// Compares a kernel run's counts against an independently computed reference.
pub fn validate_counts(
    run: &KernelRun,
    compiled: &CompiledCandidates,
    reference: &[u64],
) -> Vec<CountMismatch> {
    run.counts
        .iter()
        .zip(reference.iter())
        .enumerate()
        .filter(|(_, (k, r))| k != r)
        .map(|(i, (&k, &r))| CountMismatch {
            episode_index: i,
            items: compiled.items_of(i).to_vec(),
            kernel: k,
            reference: r,
        })
        .collect()
}

/// Independent sequential reference: one full per-episode FSM scan per
/// compiled candidate (deliberately *not* the active-set engine the CPU
/// backends share, so engine bugs cannot self-validate).
pub fn reference_counts(db: &EventDb, compiled: &CompiledCandidates) -> Vec<u64> {
    tdm_core::count::count_compiled_naive(db.symbols(), compiled)
}

/// Runs all four kernels at one block size on one card and validates each
/// against the sequential reference. Returns per-algorithm mismatches (all
/// empty on success).
///
/// # Errors
/// Propagates simulator launch errors.
pub fn validate_all(
    db: &EventDb,
    compiled: &CompiledCandidates,
    tpb: u32,
    dev: &DeviceConfig,
) -> Result<Vec<(Algorithm, Vec<CountMismatch>)>, gpu_sim::SimError> {
    let cost = CostModel::default();
    let opts = SimOptions::default();
    let reference = reference_counts(db, compiled);
    let mut out = Vec::with_capacity(4);
    for algo in Algorithm::ALL {
        let problem = MiningProblem::from_compiled(db, compiled);
        let run = problem.run(algo, tpb, dev, &cost, &opts)?;
        out.push((algo, validate_counts(&run, compiled, &reference)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::candidate::permutations;
    use tdm_core::{Alphabet, Episode};

    #[test]
    fn all_kernels_validate_on_random_text() {
        let symbols: Vec<u8> = (0..8_000u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 11) % 26) as u8)
            .collect();
        let db = EventDb::new(Alphabet::latin26(), symbols).unwrap();
        let eps = permutations(&Alphabet::latin26(), 2);
        let compiled = CompiledCandidates::compile(26, &eps);
        let results = validate_all(&db, &compiled, 128, &DeviceConfig::geforce_gtx_280()).unwrap();
        for (algo, mismatches) in results {
            assert!(mismatches.is_empty(), "{algo} mismatches: {mismatches:?}");
        }
    }

    #[test]
    fn mismatch_reporting_works() {
        let db = EventDb::from_str_symbols(&Alphabet::latin26(), "ABAB").unwrap();
        let eps = vec![Episode::from_str(&Alphabet::latin26(), "AB").unwrap()];
        let compiled = CompiledCandidates::compile(26, &eps);
        let problem = MiningProblem::from_compiled(&db, &compiled);
        let mut run = problem
            .run(
                Algorithm::ThreadTexture,
                32,
                &DeviceConfig::geforce_gtx_280(),
                &CostModel::default(),
                &SimOptions::default(),
            )
            .unwrap();
        // Corrupt the counts and make sure validation notices.
        run.counts[0] += 1;
        let reference = reference_counts(&db, &compiled);
        let mismatches = validate_counts(&run, &compiled, &reference);
        assert_eq!(mismatches.len(), 1);
        assert_eq!(mismatches[0].kernel, mismatches[0].reference + 1);
        assert_eq!(mismatches[0].items, eps[0].items());
    }
}
