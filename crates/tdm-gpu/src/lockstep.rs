//! Warp-lockstep functional execution of the FSM kernels.
//!
//! The inner loop of every kernel is: fetch one character, take one FSM
//! transition. SIMT hardware runs 32 lanes of that loop together; lanes whose
//! transition differs (advance vs. reset vs. restart…) serialize. This module
//! executes that inner loop *for real* — every lane holds a live
//! [`tdm_core::fsm::EpisodeFsm`] over the real database — while a
//! [`gpu_sim::warp::LockstepRecorder`] charges the union of taken paths per step.
//! The measured per-warp instruction totals feed the kernels' block profiles, and
//! the lane counters double as a functional cross-check of the counting results.

use gpu_sim::warp::{LockstepRecorder, PathTaken};
use tdm_core::fsm::{EpisodeFsm, StepKind};
use tdm_core::segment::SegmentScan;

/// Instruction costs of the FSM's branch paths, in scalar instructions.
///
/// The values mirror a hand-written CUDA inner loop: compare + branch for the
/// match test, a state update, plus the extra compare for the restart test on
/// the reset path, and counter/store work on completion. `loop_overhead` is the
/// per-iteration index/bounds bookkeeping every lane shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmCosts {
    /// At start state, character is not `a1` (fall-through).
    pub idle: u32,
    /// Matched the next expected item.
    pub advance: u32,
    /// Completing advance: counter increment + reset.
    pub complete: u32,
    /// Re-anchor on `a1`.
    pub restart: u32,
    /// Fall back to the start state.
    pub reset: u32,
    /// Per-step shared bookkeeping (loop counter, address arithmetic).
    pub loop_overhead: u32,
}

impl Default for FsmCosts {
    fn default() -> Self {
        FsmCosts {
            idle: 2,
            advance: 3,
            complete: 6,
            restart: 3,
            reset: 3,
            loop_overhead: 2,
        }
    }
}

impl FsmCosts {
    /// Maps a transition to its SIMT path id and cost.
    #[inline]
    pub fn path(&self, kind: StepKind) -> PathTaken {
        let (id, instructions) = match kind {
            StepKind::Idle => (0, self.idle),
            StepKind::Advance => (1, self.advance),
            StepKind::Complete => (2, self.complete),
            StepKind::Restart => (3, self.restart),
            StepKind::Reset => (4, self.reset),
        };
        PathTaken { id, instructions }
    }
}

/// Outcome of executing one warp in lockstep.
#[derive(Debug, Clone)]
pub struct WarpOutcome {
    /// Divergence-adjusted issue accounting.
    pub recorder: LockstepRecorder,
    /// Per-lane completion counts.
    pub lane_counts: Vec<u64>,
    /// Per-lane FSM end states (for segmented kernels' span handling).
    pub lane_end_states: Vec<u8>,
}

/// Executes a *broadcast* warp: every lane reads the same character stream
/// (thread-level kernels — each lane searches its own episode over the whole
/// database). Episodes are given as raw item slices (the compiled layout of
/// [`tdm_core::engine::CompiledCandidates`]); each slice must be non-empty.
pub fn run_broadcast_warp(
    stream: &[u8],
    episodes: &[&[u8]],
    costs: &FsmCosts,
    serialize_divergence: bool,
) -> WarpOutcome {
    assert!(
        !episodes.is_empty() && episodes.len() <= 32,
        "a warp holds 1..=32 lanes"
    );
    let mut fsms: Vec<EpisodeFsm> = episodes
        .iter()
        .map(|it| EpisodeFsm::from_items(it))
        .collect();
    let mut recorder = LockstepRecorder::new();
    let mut paths: Vec<PathTaken> = Vec::with_capacity(fsms.len());
    for &c in stream {
        paths.clear();
        for fsm in &mut fsms {
            paths.push(costs.path(fsm.step(c)));
        }
        recorder.record_step(&paths, costs.loop_overhead, serialize_divergence);
    }
    WarpOutcome {
        recorder,
        lane_counts: fsms.iter().map(|f| f.count()).collect(),
        lane_end_states: fsms.iter().map(|f| f.state()).collect(),
    }
}

/// Executes a *partitioned* warp: lane `i` scans its own byte range of the
/// stream while all lanes search the same episode, given as its (non-empty)
/// item slice (block-level kernels). Ranges may have unequal lengths;
/// exhausted lanes drop out of the step.
pub fn run_partitioned_warp(
    stream: &[u8],
    items: &[u8],
    ranges: &[std::ops::Range<usize>],
    costs: &FsmCosts,
    serialize_divergence: bool,
) -> WarpOutcome {
    assert!(
        !ranges.is_empty() && ranges.len() <= 32,
        "a warp holds 1..=32 lanes"
    );
    let mut fsms: Vec<EpisodeFsm> = ranges
        .iter()
        .map(|_| EpisodeFsm::from_items(items))
        .collect();
    let mut recorder = LockstepRecorder::new();
    let steps = ranges.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut paths: Vec<PathTaken> = Vec::with_capacity(ranges.len());
    for k in 0..steps {
        paths.clear();
        for (lane, r) in ranges.iter().enumerate() {
            if r.start + k < r.end {
                let c = stream[r.start + k];
                paths.push(costs.path(fsms[lane].step(c)));
            }
        }
        if !paths.is_empty() {
            recorder.record_step(&paths, costs.loop_overhead, serialize_divergence);
        }
    }
    WarpOutcome {
        recorder,
        lane_counts: fsms.iter().map(|f| f.count()).collect(),
        lane_end_states: fsms.iter().map(|f| f.state()).collect(),
    }
}

/// Per-boundary span statistics for the block-level kernels: scans the episode
/// over the segmentation `bounds` and measures, per boundary, whether a partial
/// match was live and how many continuation characters it consumed
/// (paper Fig. 5's intermediate step).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStats {
    /// Number of interior boundaries inspected.
    pub boundaries: u64,
    /// Boundaries where the segment ended mid-match.
    pub live: u64,
    /// Total continuation characters consumed across live boundaries.
    pub continuation_chars: u64,
    /// Spanning completions recovered by the continuations.
    pub recovered: u64,
}

impl SpanStats {
    /// Mean continuation window per boundary (0 when no boundaries).
    pub fn mean_window(&self) -> f64 {
        if self.boundaries == 0 {
            0.0
        } else {
            self.continuation_chars as f64 / self.boundaries as f64
        }
    }

    /// Fraction of boundaries with a live partial.
    pub fn live_fraction(&self) -> f64 {
        if self.boundaries == 0 {
            0.0
        } else {
            self.live as f64 / self.boundaries as f64
        }
    }
}

/// Measures span statistics (and the segmented count, returned alongside) for
/// one episode — given as its (non-empty) item slice — over a segmentation.
pub fn measure_spans(stream: &[u8], items: &[u8], bounds: &[usize]) -> (u64, SpanStats) {
    let mut stats = SpanStats::default();
    let mut total = 0u64;
    let mut start = 0usize;
    for &b in bounds.iter().chain(std::iter::once(&stream.len())) {
        let scan: SegmentScan = tdm_core::segment::scan_segment_items(stream, items, start..b);
        total += scan.count;
        if b < stream.len() {
            stats.boundaries += 1;
            if scan.end_state > 0 {
                stats.live += 1;
                // Replay the continuation to count the characters it consumes.
                let mut j = scan.end_state as usize;
                let mut consumed = 0u64;
                for &c in &stream[b..] {
                    if c == items[j] {
                        consumed += 1;
                        j += 1;
                        if j == items.len() {
                            stats.recovered += 1;
                            total += 1;
                            break;
                        }
                    } else {
                        break;
                    }
                }
                stats.continuation_chars += consumed;
            }
        }
        start = b;
    }
    (total, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::count::count_episode;
    use tdm_core::segment::even_bounds;
    use tdm_core::{Alphabet, Episode, EventDb};

    fn db_of(s: &str) -> EventDb {
        EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap()
    }

    fn ep(s: &str) -> Episode {
        Episode::from_str(&Alphabet::latin26(), s).unwrap()
    }

    #[test]
    fn broadcast_lane_counts_match_sequential() {
        let db = db_of("ABCABCABXYZXYZQQQABC");
        let e1 = ep("ABC");
        let e2 = ep("XYZ");
        let e3 = ep("Q");
        let eps = [e1.items(), e2.items(), e3.items()];
        let out = run_broadcast_warp(db.symbols(), &eps, &FsmCosts::default(), true);
        assert_eq!(out.lane_counts[0], count_episode(&db, &e1));
        assert_eq!(out.lane_counts[1], count_episode(&db, &e2));
        assert_eq!(out.lane_counts[2], count_episode(&db, &e3));
        assert_eq!(out.recorder.steps(), db.len() as u64);
    }

    #[test]
    fn divergence_costs_more_than_uniform() {
        let db = db_of(&"ABCXYZ".repeat(200));
        let e1 = ep("ABC");
        let e2 = ep("XYZ");
        // Two different episodes diverge; two copies of the same one do not.
        let diverse = run_broadcast_warp(
            db.symbols(),
            &[e1.items(), e2.items()],
            &FsmCosts::default(),
            true,
        );
        let uniform = run_broadcast_warp(
            db.symbols(),
            &[e1.items(), e1.items()],
            &FsmCosts::default(),
            true,
        );
        assert!(diverse.recorder.issue_instructions() > uniform.recorder.issue_instructions());
        assert!(diverse.recorder.divergent_steps() > 0);
        assert_eq!(uniform.recorder.divergent_steps(), 0);
    }

    #[test]
    fn ablation_reduces_divergence_cost() {
        let db = db_of(&"ABCXYZ".repeat(100));
        let e1 = ep("ABC");
        let e2 = ep("XYZ");
        let on = run_broadcast_warp(
            db.symbols(),
            &[e1.items(), e2.items()],
            &FsmCosts::default(),
            true,
        );
        let off = run_broadcast_warp(
            db.symbols(),
            &[e1.items(), e2.items()],
            &FsmCosts::default(),
            false,
        );
        assert!(off.recorder.issue_instructions() < on.recorder.issue_instructions());
        // Functional results identical either way.
        assert_eq!(on.lane_counts, off.lane_counts);
    }

    #[test]
    fn partitioned_lanes_scan_their_ranges() {
        let text = "ABABABABABABABAB"; // 16 chars, 8 "AB" pairs
        let db = db_of(text);
        let e = ep("AB");
        let ranges: Vec<_> = (0..4).map(|i| (i * 4)..((i + 1) * 4)).collect();
        let out =
            run_partitioned_warp(db.symbols(), e.items(), &ranges, &FsmCosts::default(), true);
        // Each 4-char segment "ABAB" holds 2 appearances.
        assert_eq!(out.lane_counts, vec![2, 2, 2, 2]);
        assert_eq!(out.recorder.steps(), 4);
    }

    #[test]
    fn partitioned_handles_ragged_ranges() {
        let db = db_of("AAAAAAA"); // 7 chars
        let e = ep("A");
        let ranges = vec![0..3, 3..6, 6..7];
        let out =
            run_partitioned_warp(db.symbols(), e.items(), &ranges, &FsmCosts::default(), true);
        assert_eq!(out.lane_counts, vec![3, 3, 1]);
        assert_eq!(out.recorder.steps(), 3);
    }

    #[test]
    fn span_measurement_matches_sequential_count() {
        let db = db_of(&"QABCP".repeat(300));
        let e = ep("ABC");
        let seq = count_episode(&db, &e);
        for parts in [2usize, 3, 7, 16, 64] {
            let bounds = even_bounds(db.len(), parts);
            let (total, stats) = measure_spans(db.symbols(), e.items(), &bounds);
            assert_eq!(total, seq, "parts={parts}");
            assert_eq!(stats.boundaries, (parts - 1) as u64);
        }
    }

    #[test]
    fn span_stats_detect_live_boundaries() {
        // Cut right inside an appearance: boundary is live and recovers it.
        let db = db_of("XXABC");
        let e = ep("ABC");
        let (total, stats) = measure_spans(db.symbols(), e.items(), &[3]); // "XXA | BC"
        assert_eq!(total, 1);
        assert_eq!(stats.live, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.continuation_chars, 2);
        assert_eq!(stats.mean_window(), 2.0);
        assert_eq!(stats.live_fraction(), 1.0);
    }

    #[test]
    fn longer_episodes_span_more() {
        // Characterization 3's mechanism: higher level -> more live boundaries.
        let db = db_of(&"ABCDEFX".repeat(500));
        let bounds = even_bounds(db.len(), 64);
        let (_, s2) = measure_spans(db.symbols(), ep("AB").items(), &bounds);
        let (_, s6) = measure_spans(db.symbols(), ep("ABCDEF").items(), &bounds);
        assert!(
            s6.live_fraction() >= s2.live_fraction(),
            "L6 {} vs L2 {}",
            s6.live_fraction(),
            s2.live_fraction()
        );
    }
}
