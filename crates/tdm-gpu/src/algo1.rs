//! Algorithm 1 — thread-level parallelism, no buffering (paper §3.3.2).
//!
//! One thread searches for one episode over the entire database, which lives in
//! texture memory; threads are packed into blocks in episode order. The reduce
//! function is the identity (each thread owns its episode's count). The map
//! phase is a single texture-fetch → FSM-step loop per character, and because
//! all threads advance through the database in lockstep, every lane of a warp
//! reads the *same* address (a broadcast stream with strong temporal and spatial
//! locality — "the spatial and temporal locality of the data-access pattern
//! should be able to be exploited by the texture cache", §3.3.2).

use crate::lockstep::{run_broadcast_warp, FsmCosts};
use crate::{Algorithm, KernelRun, MiningProblem, ProfileStats, SimOptions};
use gpu_sim::{
    simulate, BlockProfile, CostModel, DeviceConfig, KernelResources, KernelSpec, MemKind,
    MemTraffic, Phase, SimError,
};
use tdm_core::engine::CompiledCandidates;
use tdm_core::EventDb;

/// Cache key: block size plus the divergence-model bit (bit 16).
pub(crate) fn stats_key(tpb: u32, serialize: bool) -> u32 {
    tpb | ((serialize as u32) << 16)
}

/// Samples thread-level warps (shared by Algorithms 1 and 2, whose inner compute
/// loops are identical — they differ only in where the characters come from).
/// Lane episodes come straight from the compiled CSR layout.
pub(crate) fn sample_thread_level(
    db: &EventDb,
    compiled: &CompiledCandidates,
    tpb: u32,
    serialize: bool,
    opts: &SimOptions,
) -> ProfileStats {
    let lanes = tpb.clamp(1, 32) as usize;
    let n_warps = compiled.len().div_ceil(lanes).max(1);
    let costs = FsmCosts::default();

    let sample_ids: Vec<usize> = if opts.exact || n_warps <= opts.sample_warps {
        (0..n_warps).collect()
    } else {
        // Evenly spaced sample across the warp population.
        let s = opts.sample_warps.max(1);
        (0..s)
            .map(|i| i * (n_warps - 1) / (s - 1).max(1))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };

    let mut total = 0u64;
    let mut max = 0u64;
    for &w in &sample_ids {
        let lo = w * lanes;
        let hi = ((w + 1) * lanes).min(compiled.len());
        if lo >= hi {
            continue;
        }
        let warp_eps: Vec<&[u8]> = (lo..hi).map(|i| compiled.items_of(i)).collect();
        let out = run_broadcast_warp(db.symbols(), &warp_eps, &costs, serialize);
        let issue = out.recorder.issue_instructions();
        total += issue;
        max = max.max(issue);
    }
    let mean = total as f64 / sample_ids.len().max(1) as f64;
    ProfileStats {
        mean_warp_issue: mean,
        max_warp_issue: max as f64,
        mean_span_window: 0.0,
        live_boundary_fraction: 0.0,
    }
}

/// Runs Algorithm 1.
///
/// # Errors
/// Propagates launch-validation failures from the simulator.
pub fn run(
    problem: &MiningProblem<'_>,
    tpb: u32,
    dev: &DeviceConfig,
    cost: &CostModel,
    opts: &SimOptions,
) -> Result<KernelRun, SimError> {
    let n = problem.db().len() as u64;
    let n_eps = problem.compiled().len();
    let launch = crate::launch::grid_for(Algorithm::ThreadTexture, problem.compiled(), tpb);
    let opts_c = *opts;
    let stats = problem.cached_stats(
        (
            Algorithm::ThreadTexture,
            stats_key(tpb, cost.model_divergence),
        ),
        |db, compiled| sample_thread_level(db, compiled, tpb, cost.model_divergence, &opts_c),
    );

    let lanes = tpb.clamp(1, 32) as usize;
    let active_warps = n_eps.div_ceil(lanes).max(1) as f64;
    let blocks = launch.blocks as f64;
    let warps_per_block = active_warps / blocks; // mean active warps per block

    let grid_issue = stats.mean_warp_issue * active_warps;
    let profile = BlockProfile {
        phases: vec![Phase {
            label: "texture-scan",
            warp_instructions: (grid_issue / blocks).round() as u64,
            chain_instructions: stats.max_warp_issue.round() as u64,
            mem: Some(MemTraffic {
                kind: MemKind::Texture {
                    streams_per_block: warps_per_block.ceil().max(1.0) as u32,
                    unique_bytes: n,
                    shared_across_blocks: true,
                },
                requests: (n as f64 * warps_per_block).round() as u64,
                chain: n,
                touched_bytes: (n as f64 * warps_per_block).round() as u64,
            }),
            barriers: 0,
        }],
    };

    let spec = KernelSpec {
        launch,
        resources: KernelResources::new(tpb).with_registers(opts.registers_per_thread),
        profile,
    };
    let report = simulate(dev, cost, &spec)?;
    Ok(KernelRun {
        algo: Algorithm::ThreadTexture,
        launch,
        counts: problem.counts().to_vec(),
        report,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::candidate::permutations;
    use tdm_core::Alphabet;

    fn small_db() -> EventDb {
        // Deterministic pseudo-random text, long enough to be meaningful.
        let symbols: Vec<u8> = (0..20_000u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 9) % 26) as u8)
            .collect();
        EventDb::new(Alphabet::latin26(), symbols).unwrap()
    }

    #[test]
    fn counts_match_ground_truth() {
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 2);
        let problem = MiningProblem::new(&db, &eps);
        let expected = tdm_core::count::count_episodes(&db, &eps);
        let run = run(
            &problem,
            128,
            &DeviceConfig::geforce_gtx_280(),
            &CostModel::default(),
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(run.counts, expected);
        assert_eq!(run.launch.blocks, 6); // ceil(650/128)
        assert!(run.report.time_ms > 0.0);
    }

    #[test]
    fn level1_is_latency_bound_with_one_block() {
        // 26 episodes at tpb >= 32: one block, one active warp — the paper's
        // small-problem regime (Characterization 4).
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 1);
        let problem = MiningProblem::new(&db, &eps);
        let run = run(
            &problem,
            256,
            &DeviceConfig::geforce_gtx_280(),
            &CostModel::default(),
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(run.launch.blocks, 1);
        assert_eq!(run.report.bound, gpu_sim::BoundKind::Latency);
    }

    #[test]
    fn level3_like_load_is_issue_bound() {
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 2); // 650 episodes: 21 warps
        let problem = MiningProblem::new(&db, &eps);
        let run96 = run(
            &problem,
            96,
            &DeviceConfig::geforce_gtx_280(),
            &CostModel::default(),
            &SimOptions::default(),
        )
        .unwrap();
        // 650 episodes over 96-thread blocks: 7 blocks; plenty of warps.
        assert_eq!(run96.launch.blocks, 7);
        assert!(run96.report.cycles > 0.0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 2);
        let dev = DeviceConfig::geforce_gtx_280();
        let cost = CostModel::default();
        let opts = SimOptions::default();
        let p1 = MiningProblem::new(&db, &eps);
        let p2 = MiningProblem::new(&db, &eps);
        let a = run(&p1, 64, &dev, &cost, &opts).unwrap();
        let b = run(&p2, 64, &dev, &cost, &opts).unwrap();
        assert_eq!(a.report.cycles, b.report.cycles);
    }

    #[test]
    fn exact_mode_matches_sampled_closely() {
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 2);
        let dev = DeviceConfig::geforce_gtx_280();
        let cost = CostModel::default();
        let p1 = MiningProblem::new(&db, &eps);
        let p2 = MiningProblem::new(&db, &eps);
        let sampled = run(&p1, 128, &dev, &cost, &SimOptions::default()).unwrap();
        let exact = run(
            &p2,
            128,
            &dev,
            &cost,
            &SimOptions {
                exact: true,
                ..Default::default()
            },
        )
        .unwrap();
        let rel = (sampled.report.cycles - exact.report.cycles).abs() / exact.report.cycles;
        assert!(rel < 0.15, "sampled vs exact diverge by {rel}");
    }
}
