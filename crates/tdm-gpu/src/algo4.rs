//! Algorithm 4 — block-level parallelism with shared-memory buffering
//! (paper §3.3.3).
//!
//! One block per episode, with the database staged through a shared-memory
//! buffer in epochs (as in Algorithm 2), but each thread always processes the
//! *same* slice of the buffer: "thread Ti will always access the exact same
//! block of shared memory addresses for the entire search – the data at those
//! addresses will change as the buffer is updated". Thread `i`'s logical
//! segment list is therefore discontiguous — slice `i` of epoch 0, slice `i` of
//! epoch 1, … — which multiplies the number of span boundaries by the epoch
//! count (the reduce-phase growth of Characterization 3) and makes the scan
//! reads *strided* in shared memory, paying bank-conflict replays whenever the
//! slice stride hits the 16-bank pattern.

use crate::algo2::byte_load_penalty;
use crate::algo3::span_and_reduce_phases;
use crate::lockstep::{measure_spans, FsmCosts, SpanStats};
use crate::{Algorithm, KernelRun, MiningProblem, ProfileStats, SimOptions};
use gpu_sim::smem::{conflict_degree_cc1x, SmemPattern};
use gpu_sim::warp::{LockstepRecorder, PathTaken};
use gpu_sim::{
    simulate, BlockProfile, CostModel, DeviceConfig, KernelResources, KernelSpec, MemKind,
    MemTraffic, Phase, SimError,
};
use tdm_core::engine::CompiledCandidates;
use tdm_core::fsm::EpisodeFsm;
use tdm_core::EventDb;

/// The buffer geometry Algorithm 4 actually runs with: the requested buffer is
/// rounded down so each thread owns an integral slice of at least one byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferGeometry {
    /// Effective buffer bytes per epoch (slice * tpb).
    pub buffer_bytes: u64,
    /// Bytes per thread per epoch.
    pub slice_bytes: u64,
    /// Number of buffer epochs to cover the database.
    pub epochs: u64,
}

/// Computes the buffer geometry for a database of `n` bytes.
pub fn buffer_geometry(n: u64, tpb: u32, requested_buffer: u32) -> BufferGeometry {
    let slice = (requested_buffer as u64 / tpb as u64).max(1);
    let buffer = slice * tpb as u64;
    BufferGeometry {
        buffer_bytes: buffer,
        slice_bytes: slice,
        epochs: n.div_ceil(buffer).max(1),
    }
}

/// The global slice boundaries of Algorithm 4's segmentation: every
/// `slice_bytes` across the whole database (each (epoch, slice) pair is one
/// segment in stream order).
pub fn slice_bounds(n: u64, geometry: &BufferGeometry) -> Vec<usize> {
    (1..n.div_ceil(geometry.slice_bytes))
        .map(|k| (k * geometry.slice_bytes) as usize)
        .filter(|&b| b < n as usize)
        .collect()
}

/// Lockstep execution of one Algorithm-4 warp: lane `i` (thread `t = warp*32 +
/// i`) scans slice `t` of every epoch, restarting its FSM at each slice start
/// (span handling is a separate phase, as in the kernel). The episode is given
/// as its (non-empty) item slice.
#[allow(clippy::too_many_arguments)]
fn run_slice_warp(
    stream: &[u8],
    items: &[u8],
    geometry: &BufferGeometry,
    first_thread: u32,
    lanes: u32,
    tpb: u32,
    costs: &FsmCosts,
    serialize: bool,
) -> (LockstepRecorder, Vec<u64>) {
    let n = stream.len() as u64;
    let mut fsms: Vec<EpisodeFsm> = (0..lanes).map(|_| EpisodeFsm::from_items(items)).collect();
    let mut recorder = LockstepRecorder::new();
    let mut counts = vec![0u64; lanes as usize];
    let mut paths: Vec<PathTaken> = Vec::with_capacity(lanes as usize);
    for epoch in 0..geometry.epochs {
        // Every lane restarts its FSM at its slice boundary.
        for (i, f) in fsms.iter_mut().enumerate() {
            counts[i] += f.count();
            f.reset();
        }
        let base = epoch * geometry.buffer_bytes;
        for off in 0..geometry.slice_bytes {
            paths.clear();
            for lane in 0..lanes {
                let t = first_thread + lane;
                let pos = base + t as u64 * geometry.slice_bytes + off;
                if pos < n {
                    let c = stream[pos as usize];
                    paths.push(costs.path(fsms[lane as usize].step(c)));
                }
            }
            if !paths.is_empty() {
                recorder.record_step(&paths, costs.loop_overhead, serialize);
            }
        }
    }
    for (i, f) in fsms.iter_mut().enumerate() {
        counts[i] += f.count();
    }
    let _ = tpb;
    (recorder, counts)
}

pub(crate) fn sample_slice_level(
    db: &EventDb,
    compiled: &CompiledCandidates,
    tpb: u32,
    requested_buffer: u32,
    serialize: bool,
    opts: &SimOptions,
) -> ProfileStats {
    let costs = FsmCosts::default();
    let n = db.len() as u64;
    let geometry = buffer_geometry(n, tpb, requested_buffer);
    let warps = tpb.div_ceil(32).max(1);

    let n_blocks = compiled.len();
    let block_ids: Vec<usize> = if opts.exact || n_blocks <= opts.sample_blocks {
        (0..n_blocks).collect()
    } else {
        let s = opts.sample_blocks.max(1);
        (0..s)
            .map(|i| i * (n_blocks - 1) / (s - 1).max(1))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    };

    let bounds = slice_bounds(n, &geometry);
    let mut total = 0u64;
    let mut max = 0u64;
    let mut samples = 0u64;
    let mut spans = SpanStats::default();
    for &b in &block_ids {
        let items = compiled.items_of(b);
        let warp_ids: Vec<u32> = if opts.exact || warps as usize <= opts.sample_warps {
            (0..warps).collect()
        } else {
            let s = opts.sample_warps.max(1) as u32;
            (0..s)
                .map(|i| i * (warps - 1) / (s - 1).max(1))
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect()
        };
        for &w in &warp_ids {
            let first_thread = w * 32;
            let lanes = (tpb - first_thread).min(32);
            let (rec, _) = run_slice_warp(
                db.symbols(),
                items,
                &geometry,
                first_thread,
                lanes,
                tpb,
                &costs,
                serialize,
            );
            let issue = rec.issue_instructions();
            total += issue;
            max = max.max(issue);
            samples += 1;
        }
        let (_, s) = measure_spans(db.symbols(), items, &bounds);
        spans.boundaries += s.boundaries;
        spans.live += s.live;
        spans.continuation_chars += s.continuation_chars;
        spans.recovered += s.recovered;
    }

    ProfileStats {
        mean_warp_issue: total as f64 / samples.max(1) as f64,
        max_warp_issue: max as f64,
        mean_span_window: spans.mean_window(),
        live_boundary_fraction: spans.live_fraction(),
    }
}

/// Runs Algorithm 4.
///
/// # Errors
/// Propagates launch-validation failures from the simulator.
pub fn run(
    problem: &MiningProblem<'_>,
    tpb: u32,
    dev: &DeviceConfig,
    cost: &CostModel,
    opts: &SimOptions,
) -> Result<KernelRun, SimError> {
    let n = problem.db().len() as u64;
    let launch = crate::launch::grid_for(Algorithm::BlockBuffered, problem.compiled(), tpb);
    let geometry = buffer_geometry(n, tpb, opts.buffer_bytes.min(dev.shared_mem_per_sm / 2));
    let opts_c = *opts;
    let buffer_key = geometry.buffer_bytes as u32;
    let stats = problem.cached_stats(
        (
            Algorithm::BlockBuffered,
            crate::algo1::stats_key(tpb, cost.model_divergence) ^ (buffer_key << 8),
        ),
        |db, compiled| {
            sample_slice_level(
                db,
                compiled,
                tpb,
                buffer_key,
                cost.model_divergence,
                &opts_c,
            )
        },
    );

    let warps = tpb.div_ceil(32).max(1) as u64;
    let (replays, amplification) = byte_load_penalty(dev.compute_capability);
    let bytes_per_thread = (n as f64 / tpb as f64).ceil() as u64;

    let load_phase = Phase {
        label: "buffer-load",
        warp_instructions: bytes_per_thread * 3 * warps,
        chain_instructions: bytes_per_thread * 3,
        mem: Some(MemTraffic {
            kind: MemKind::Global,
            requests: bytes_per_thread * replays * warps,
            chain: bytes_per_thread / opts.load_mlp.max(1) as u64,
            touched_bytes: n * amplification,
        }),
        barriers: (2 * geometry.epochs) as u32,
    };

    let degree = conflict_degree_cc1x(SmemPattern::Strided {
        stride_bytes: geometry.slice_bytes as u32,
    });
    let steps_per_lane = bytes_per_thread;
    let compute_phase = Phase {
        label: "sliced-scan",
        warp_instructions: (stats.mean_warp_issue * warps as f64).round() as u64,
        chain_instructions: stats.max_warp_issue.round() as u64,
        mem: Some(MemTraffic {
            kind: MemKind::Shared {
                conflict_degree: degree,
            },
            requests: steps_per_lane * warps,
            chain: steps_per_lane,
            touched_bytes: 0,
        }),
        barriers: 0,
    };

    let mut phases = vec![load_phase, compute_phase];
    // One boundary to resolve per thread per epoch; continuations read the
    // shared buffer, not texture.
    phases.extend(span_and_reduce_phases(&stats, tpb, geometry.epochs, false));

    let spec = KernelSpec {
        launch,
        resources: KernelResources::new(tpb)
            .with_registers(opts.registers_per_thread)
            .with_shared_mem(geometry.buffer_bytes as u32 + 4 * tpb),
        profile: BlockProfile { phases },
    };
    let report = simulate(dev, cost, &spec)?;
    Ok(KernelRun {
        algo: Algorithm::BlockBuffered,
        launch,
        counts: problem.counts().to_vec(),
        report,
        spec,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::candidate::permutations;
    use tdm_core::count::count_episode;
    use tdm_core::segment::count_segmented;
    use tdm_core::{Alphabet, Episode};

    fn small_db() -> EventDb {
        let symbols: Vec<u8> = (0..20_000u32)
            .map(|i| ((i.wrapping_mul(2654435761) >> 9) % 26) as u8)
            .collect();
        EventDb::new(Alphabet::latin26(), symbols).unwrap()
    }

    #[test]
    fn geometry_rounds_to_whole_slices() {
        let g = buffer_geometry(100_000, 64, 4096);
        assert_eq!(g.slice_bytes, 64);
        assert_eq!(g.buffer_bytes, 4096);
        assert_eq!(g.epochs, 25);
        // tpb larger than the buffer: one byte per thread.
        let g = buffer_geometry(1000, 512, 256);
        assert_eq!(g.slice_bytes, 1);
        assert_eq!(g.buffer_bytes, 512);
        assert_eq!(g.epochs, 2);
    }

    #[test]
    fn slice_segmentation_count_matches_sequential() {
        // The (epoch, slice) segmentation with continuations equals the
        // sequential count for the paper's distinct-item episodes.
        let db = small_db();
        let ab = Alphabet::latin26();
        let ep = Episode::from_str(&ab, "AB").unwrap();
        let g = buffer_geometry(db.len() as u64, 64, 4096);
        let bounds = slice_bounds(db.len() as u64, &g);
        assert_eq!(count_segmented(&db, &ep, &bounds), count_episode(&db, &ep));
    }

    #[test]
    fn slice_warp_counts_match_segment_scans() {
        let db = small_db();
        let ab = Alphabet::latin26();
        let ep = Episode::from_str(&ab, "AB").unwrap();
        let g = buffer_geometry(db.len() as u64, 64, 2048);
        let (_, counts) = run_slice_warp(
            db.symbols(),
            ep.items(),
            &g,
            0,
            32,
            64,
            &FsmCosts::default(),
            true,
        );
        // Lane 0 scans slice 0 of every epoch; verify against direct scans.
        let mut expect0 = 0u64;
        for e in 0..g.epochs {
            let start = (e * g.buffer_bytes) as usize;
            let end = (start + g.slice_bytes as usize).min(db.len());
            if start < db.len() {
                expect0 += tdm_core::segment::scan_segment(db.symbols(), &ep, start..end).count;
            }
        }
        assert_eq!(counts[0], expect0);
    }

    #[test]
    fn counts_match_ground_truth() {
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 1);
        let p = MiningProblem::new(&db, &eps);
        let run = run(
            &p,
            256,
            &DeviceConfig::geforce_gtx_280(),
            &CostModel::default(),
            &SimOptions::default(),
        )
        .unwrap();
        assert_eq!(run.counts, tdm_core::count::count_episodes(&db, &eps));
        assert_eq!(run.launch.blocks, 26);
    }

    #[test]
    fn power_of_two_slices_pay_bank_conflicts() {
        // 4096-byte buffer, 64 threads -> 64-byte slices -> 16-way conflicts;
        // 240 threads -> 17-byte slices -> conflict-free-ish.
        let d64 = conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 64 });
        let d17 = conflict_degree_cc1x(SmemPattern::Strided { stride_bytes: 17 });
        assert_eq!(d64, 16);
        assert!(d17 <= 2);
        // And it shows in simulated time (same level, same card).
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 2);
        let dev = DeviceConfig::geforce_gtx_280();
        let cost = CostModel::default();
        let opts = SimOptions::default();
        let p = MiningProblem::new(&db, &eps);
        let t64 = run(&p, 64, &dev, &cost, &opts).unwrap();
        let t240 = run(&p, 240, &dev, &cost, &opts).unwrap();
        assert!(
            t240.report.time_ms < t64.report.time_ms,
            "240tpb {} vs 64tpb {}",
            t240.report.time_ms,
            t64.report.time_ms
        );
    }

    #[test]
    fn sub_millisecond_at_level1_on_gtx280() {
        // Characterization 4: "Algorithm 4 on the GTX280 is sub-millisecond".
        // (Scaled DB here is ~20x smaller than the paper's, so the bound holds
        // with margin; the harness checks it at full size.)
        let db = small_db();
        let eps = permutations(&Alphabet::latin26(), 1);
        let p = MiningProblem::new(&db, &eps);
        let run = run(
            &p,
            256,
            &DeviceConfig::geforce_gtx_280(),
            &CostModel::default(),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(run.report.time_ms < 1.0, "{}", run.report.time_ms);
    }
}
