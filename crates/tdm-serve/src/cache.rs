//! The session cache: parked `MiningSession`s keyed by database content hash
//! and configuration fingerprint.
//!
//! Repeated queries against the same database and configuration are the
//! common case for a mining service (dashboards refreshing, clients polling a
//! growing stream at intervals, co-mining systems like Mayura batching
//! similar queries). The expensive part of such a query is the *plan* state —
//! the stream snapshot, the shard bounds, and above all the compiled
//! candidate buffers that `MiningSession` reuses in place across levels. The
//! cache keeps whole owned sessions (`MiningSession<'static>`, sharing the
//! service pool) between requests, so a hit re-enters the level loop with
//! every buffer already allocated and warm: no session planning (no stream
//! snapshot, no shard-bound computation) and no fresh allocations. Each
//! level's candidates are still compiled — that scan is inherent to the
//! level loop — but *in place* into the parked session's buffers, so the
//! compiled-candidate storage keeps the *same address* across requests,
//! which the workspace tests assert.
//!
//! ## Collision safety
//!
//! The key is a 64-bit FNV-1a content hash (plus a config fingerprint), so
//! two different databases *can* collide. An entry is therefore only handed
//! out after verification against the requesting database — pointer equality
//! of the `Arc` when the client resubmits the same handle, full
//! symbol/timestamp comparison otherwise — and a forged or colliding key
//! falls back to a miss instead of serving another tenant's session.

use std::sync::Arc;
use tdm_core::session::{CoSession, MiningSession};
use tdm_core::{EventDb, MinerConfig};
use tdm_mapreduce::pool::Pool;

/// Cache key of one (database, configuration) pair: a content hash of the
/// database plus a fingerprint of every planning-relevant `MinerConfig`
/// field. The key is *probabilistic* — entries are verified against the full
/// request before being shared (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// FNV-1a hash of the database content (alphabet size, symbols,
    /// timestamps).
    pub db_hash: u64,
    /// FNV-1a hash of the mining configuration (α bits, level bound,
    /// candidate universe).
    pub config_fingerprint: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= b as u64;
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// 64-bit FNV-1a content hash of a database: alphabet size, length, the full
/// symbol stream, and the timestamps when present. Every byte of content
/// participates — equal prefixes with different tails hash differently.
pub fn db_content_hash(db: &EventDb) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &(db.alphabet().len() as u64).to_le_bytes());
    fnv1a(&mut h, &(db.len() as u64).to_le_bytes());
    fnv1a(&mut h, db.symbols());
    match db.times() {
        Some(times) => {
            fnv1a(&mut h, &[1]);
            for &t in times {
                fnv1a(&mut h, &t.to_le_bytes());
            }
        }
        None => fnv1a(&mut h, &[0]),
    }
    h
}

/// Fingerprint of every `MinerConfig` field that shapes the plan (candidate
/// sets per level, elimination threshold): α's bit pattern, the level bound,
/// and the candidate-universe switch.
pub fn config_fingerprint(config: &MinerConfig) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &config.alpha.to_bits().to_le_bytes());
    let level = match config.max_level {
        Some(l) => l as u64 + 1,
        None => 0,
    };
    fnv1a(&mut h, &level.to_le_bytes());
    fnv1a(&mut h, &[config.distinct_items_only as u8]);
    h
}

/// The [`SessionKey`] of one request.
pub fn session_key(db: &EventDb, config: &MinerConfig) -> SessionKey {
    SessionKey {
        db_hash: db_content_hash(db),
        config_fingerprint: config_fingerprint(config),
    }
}

/// Order-insensitive fingerprint of a *set* of configurations: the member
/// count plus every per-config [`config_fingerprint`], folded in **sorted**
/// order. Two batches with the same configs in a different arrival order get
/// the same fingerprint — that is what lets a parked [`CoSession`] answer a
/// permuted batch (see [`CoSession::member_permutation`]).
pub fn group_fingerprint(configs: &[MinerConfig]) -> u64 {
    let mut fps: Vec<u64> = configs.iter().map(config_fingerprint).collect();
    fps.sort_unstable();
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, &(fps.len() as u64).to_le_bytes());
    for fp in fps {
        fnv1a(&mut h, &fp.to_le_bytes());
    }
    h
}

fn config_matches(a: &MinerConfig, b: &MinerConfig) -> bool {
    a.alpha.to_bits() == b.alpha.to_bits()
        && a.max_level == b.max_level
        && a.distinct_items_only == b.distinct_items_only
}

/// True when two database handles refer to the same content: pointer
/// equality as the fast path, full symbol/timestamp comparison otherwise. A
/// 64-bit hash collision must never share a session — or a co-mining batch.
pub(crate) fn db_matches(a: &Arc<EventDb>, b: &Arc<EventDb>) -> bool {
    Arc::ptr_eq(a, b)
        || (a.alphabet().len() == b.alphabet().len()
            && a.symbols() == b.symbols()
            && a.times() == b.times())
}

/// One parked session: the owned `MiningSession<'static>` plus the exact
/// database handle and configuration it was planned for (the verification
/// material).
pub struct CachedSession {
    db: Arc<EventDb>,
    config: MinerConfig,
    session: MiningSession<'static>,
}

impl CachedSession {
    /// Plans a fresh session for `db` under `config`, dispatching its scans
    /// to the shared `pool`.
    pub fn build(db: Arc<EventDb>, config: MinerConfig, pool: Arc<Pool>) -> Self {
        let session = MiningSession::builder_shared(Arc::clone(&db))
            .config(config)
            .with_pool(pool)
            .build();
        CachedSession {
            db,
            config,
            session,
        }
    }

    /// True when this entry was planned for exactly this database content and
    /// configuration (not merely the same hash).
    pub fn matches(&self, db: &Arc<EventDb>, config: &MinerConfig) -> bool {
        config_matches(&self.config, config) && db_matches(&self.db, db)
    }

    /// The parked session, for driving a mining run.
    pub fn session_mut(&mut self) -> &mut MiningSession<'static> {
        &mut self.session
    }

    /// The session (shared view).
    pub fn session(&self) -> &MiningSession<'static> {
        &self.session
    }
}

impl std::fmt::Debug for CachedSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedSession")
            .field("db_len", &self.db.len())
            .field("session", &self.session)
            .finish()
    }
}

/// Counters describing the cache's behavior since service start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found and verified an entry.
    pub hits: u64,
    /// Lookups that found nothing for the key.
    pub misses: u64,
    /// Entries dropped because the cache was full.
    pub evictions: u64,
    /// Lookups whose key matched an entry that failed content verification —
    /// a 64-bit collision or a forged key. Counted as misses too.
    pub collisions: u64,
}

/// A small LRU map of parked sessions. Entries are **taken out** while a
/// request uses them (a session is single-writer) and re-inserted when the
/// request completes; concurrent identical requests simply miss and plan
/// their own session, the last one back wins the cache slot.
#[derive(Debug)]
pub struct SessionCache {
    capacity: usize,
    /// Recency order: least-recently-used first.
    entries: Vec<(SessionKey, CachedSession)>,
    stats: CacheStats,
}

impl SessionCache {
    /// An empty cache holding at most `capacity` sessions (0 disables
    /// caching: every request plans fresh).
    pub fn new(capacity: usize) -> Self {
        SessionCache {
            capacity,
            entries: Vec::with_capacity(capacity.min(64)),
            stats: CacheStats::default(),
        }
    }

    /// Number of parked sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no session is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, verifies the entry against the actual request content,
    /// and hands the session out (removing it from the cache while in use).
    pub fn take(
        &mut self,
        key: SessionKey,
        db: &Arc<EventDb>,
        config: &MinerConfig,
    ) -> Option<CachedSession> {
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(i) if self.entries[i].1.matches(db, config) => {
                self.stats.hits += 1;
                Some(self.entries.remove(i).1)
            }
            Some(_) => {
                // Same 64-bit key, different content: never share the entry.
                self.stats.collisions += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Parks `entry` under `key` as the most-recently-used session, evicting
    /// the least-recently-used one when over capacity. Re-inserting an
    /// existing key replaces that entry (the returning request has the
    /// fresher buffers).
    pub fn put(&mut self, key: SessionKey, entry: CachedSession) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push((key, entry));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
            self.stats.evictions += 1;
        }
    }
}

/// One parked co-mining session: the [`CoSession`] plus the exact database
/// handle it was planned for (the verification material). The member configs
/// live inside the session itself.
pub struct CachedCoSession {
    db: Arc<EventDb>,
    session: CoSession,
}

impl CachedCoSession {
    /// Plans a fresh co-mining session for `db` over `configs`, dispatching
    /// its union scans to the shared `pool`.
    pub fn build(db: Arc<EventDb>, configs: &[MinerConfig], pool: Arc<Pool>) -> Self {
        let session = CoSession::builder(Arc::clone(&db))
            .configs(configs.iter().copied())
            .with_pool(pool)
            .build();
        CachedCoSession { db, session }
    }

    /// The member permutation when this entry was planned for exactly this
    /// database content and this config *set* (any order), `None` otherwise.
    pub fn matches(&self, db: &Arc<EventDb>, configs: &[MinerConfig]) -> Option<Vec<usize>> {
        if !db_matches(&self.db, db) {
            return None;
        }
        self.session.member_permutation(configs)
    }

    /// The parked co-session, for driving a fused batch.
    pub fn session_mut(&mut self) -> &mut CoSession {
        &mut self.session
    }

    /// The co-session (shared view).
    pub fn session(&self) -> &CoSession {
        &self.session
    }
}

impl std::fmt::Debug for CachedCoSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedCoSession")
            .field("db_len", &self.db.len())
            .field("members", &self.session.members())
            .finish()
    }
}

/// An LRU map of parked [`CoSession`]s keyed by (database content hash,
/// **sorted** config-set fingerprint) — the co-mining sibling of
/// [`SessionCache`], with the same take/put discipline, the same full-content
/// verification, and the same counter taxonomy. A hit additionally yields the
/// member permutation that routes the batch's arrival order onto the parked
/// session's member order.
#[derive(Debug)]
pub struct CoSessionCache {
    capacity: usize,
    /// Recency order: least-recently-used first.
    entries: Vec<(SessionKey, CachedCoSession)>,
    stats: CacheStats,
}

impl CoSessionCache {
    /// An empty cache holding at most `capacity` co-sessions (0 disables
    /// caching: every fused batch plans fresh).
    pub fn new(capacity: usize) -> Self {
        CoSessionCache {
            capacity,
            entries: Vec::with_capacity(capacity.min(64)),
            stats: CacheStats::default(),
        }
    }

    /// Number of parked co-sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no co-session is parked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, verifies the entry against the batch's database and
    /// config set, and hands it out (removed while in use) together with the
    /// member permutation for `configs`' arrival order.
    pub fn take(
        &mut self,
        key: SessionKey,
        db: &Arc<EventDb>,
        configs: &[MinerConfig],
    ) -> Option<(CachedCoSession, Vec<usize>)> {
        match self.entries.iter().position(|(k, _)| *k == key) {
            Some(i) => match self.entries[i].1.matches(db, configs) {
                Some(perm) => {
                    self.stats.hits += 1;
                    Some((self.entries.remove(i).1, perm))
                }
                None => {
                    // Same 64-bit key, different content or config multiset:
                    // never share the entry.
                    self.stats.collisions += 1;
                    self.stats.misses += 1;
                    None
                }
            },
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Parks `entry` under `key` as the most-recently-used co-session (same
    /// replacement and eviction rules as [`SessionCache::put`]).
    pub fn put(&mut self, key: SessionKey, entry: CachedCoSession) {
        if self.capacity == 0 {
            return;
        }
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(i);
        }
        self.entries.push((key, entry));
        while self.entries.len() > self.capacity {
            self.entries.remove(0);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::Alphabet;

    fn db_of(s: &str) -> Arc<EventDb> {
        Arc::new(EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap())
    }

    fn pool() -> Arc<Pool> {
        Arc::new(Pool::with_workers(1))
    }

    #[test]
    fn content_hash_sees_every_byte() {
        // Equal prefixes, different tails: the hash-relevant content is the
        // whole stream, not a prefix.
        let a = db_of(&("AB".repeat(100) + "X"));
        let b = db_of(&("AB".repeat(100) + "Y"));
        assert_ne!(db_content_hash(&a), db_content_hash(&b));
        assert_eq!(db_content_hash(&a), db_content_hash(&a.clone()));
    }

    #[test]
    fn config_fingerprint_separates_every_field() {
        let base = MinerConfig::default();
        let alpha = MinerConfig {
            alpha: 0.25,
            ..base
        };
        let level = MinerConfig {
            max_level: Some(2),
            ..base
        };
        let universe = MinerConfig {
            distinct_items_only: false,
            ..base
        };
        let fps = [
            config_fingerprint(&base),
            config_fingerprint(&alpha),
            config_fingerprint(&level),
            config_fingerprint(&universe),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "fingerprints {i} and {j} collide");
            }
        }
        // max_level None vs Some(0) must differ (the +1 encoding).
        assert_ne!(
            config_fingerprint(&MinerConfig {
                max_level: Some(0),
                ..base
            }),
            config_fingerprint(&base)
        );
    }

    #[test]
    fn take_verifies_content_not_just_the_key() {
        let mut cache = SessionCache::new(4);
        let cfg = MinerConfig::default();
        let a = db_of("ABCABC");
        let b = db_of("CBACBA"); // same length/alphabet, different content
        let key_a = session_key(&a, &cfg);
        cache.put(key_a, CachedSession::build(Arc::clone(&a), cfg, pool()));

        // A forged lookup: database B presented under A's key must not get
        // A's session.
        assert!(cache.take(key_a, &b, &cfg).is_none());
        assert_eq!(cache.stats().collisions, 1);
        // The genuine owner still finds (and verifies) the entry.
        assert!(cache.take(key_a, &a, &cfg).is_some());
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn take_verifies_config_too() {
        let mut cache = SessionCache::new(4);
        let cfg = MinerConfig::default();
        let other = MinerConfig { alpha: 0.5, ..cfg };
        let a = db_of("ABCABC");
        let key = session_key(&a, &cfg);
        cache.put(key, CachedSession::build(Arc::clone(&a), cfg, pool()));
        assert!(cache.take(key, &a, &other).is_none());
        assert!(cache.take(key, &a, &cfg).is_some());
    }

    #[test]
    fn lru_eviction_order() {
        let mut cache = SessionCache::new(2);
        let cfg = MinerConfig::default();
        let dbs = [db_of("AAAA"), db_of("BBBB"), db_of("CCCC")];
        let keys: Vec<SessionKey> = dbs.iter().map(|d| session_key(d, &cfg)).collect();
        for (k, d) in keys.iter().zip(&dbs) {
            cache.put(*k, CachedSession::build(Arc::clone(d), cfg, pool()));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // The first (least recently used) entry was evicted.
        assert!(cache.take(keys[0], &dbs[0], &cfg).is_none());
        assert!(cache.take(keys[2], &dbs[2], &cfg).is_some());
    }

    #[test]
    fn reinsert_refreshes_recency() {
        let mut cache = SessionCache::new(2);
        let cfg = MinerConfig::default();
        let dbs = [db_of("AAAA"), db_of("BBBB"), db_of("CCCC")];
        let keys: Vec<SessionKey> = dbs.iter().map(|d| session_key(d, &cfg)).collect();
        cache.put(
            keys[0],
            CachedSession::build(Arc::clone(&dbs[0]), cfg, pool()),
        );
        cache.put(
            keys[1],
            CachedSession::build(Arc::clone(&dbs[1]), cfg, pool()),
        );
        // Touch entry 0: it becomes most-recently-used.
        let e = cache.take(keys[0], &dbs[0], &cfg).unwrap();
        cache.put(keys[0], e);
        // Inserting a third evicts entry 1, not entry 0.
        cache.put(
            keys[2],
            CachedSession::build(Arc::clone(&dbs[2]), cfg, pool()),
        );
        assert!(cache.take(keys[0], &dbs[0], &cfg).is_some());
        assert!(cache.take(keys[1], &dbs[1], &cfg).is_none());
    }

    #[test]
    fn group_fingerprint_is_order_insensitive_but_multiset_sensitive() {
        let a = MinerConfig::default();
        let b = MinerConfig { alpha: 0.25, ..a };
        let c = MinerConfig {
            max_level: Some(3),
            ..a
        };
        assert_eq!(group_fingerprint(&[a, b, c]), group_fingerprint(&[c, a, b]));
        assert_ne!(group_fingerprint(&[a, b]), group_fingerprint(&[a, b, c]));
        // Multiset, not set: duplicates count.
        assert_ne!(group_fingerprint(&[a, b]), group_fingerprint(&[a, a, b]));
        assert_ne!(group_fingerprint(&[a, a]), group_fingerprint(&[a]));
    }

    #[test]
    fn co_cache_hit_returns_the_routing_permutation() {
        let mut cache = CoSessionCache::new(4);
        let a = MinerConfig::default();
        let b = MinerConfig { alpha: 0.25, ..a };
        let db = db_of("ABCABC");
        let key = SessionKey {
            db_hash: db_content_hash(&db),
            config_fingerprint: group_fingerprint(&[a, b]),
        };
        cache.put(
            key,
            CachedCoSession::build(Arc::clone(&db), &[a, b], pool()),
        );

        // Same set, swapped arrival order: the permutation routes member 1's
        // result to request 0 and vice versa.
        let (entry, perm) = cache.take(key, &db, &[b, a]).expect("permuted hit");
        assert_eq!(perm, vec![1, 0]);
        assert_eq!(cache.stats().hits, 1);
        cache.put(key, entry);

        // Same key, different database content: verified miss.
        let other = db_of("CBACBA");
        assert!(cache.take(key, &other, &[b, a]).is_none());
        assert_eq!(cache.stats().collisions, 1);

        // Same key, wrong config multiset: verified miss too.
        assert!(cache.take(key, &db, &[a, a]).is_none());
        assert_eq!(cache.stats().collisions, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = SessionCache::new(0);
        let cfg = MinerConfig::default();
        let a = db_of("ABAB");
        let key = session_key(&a, &cfg);
        cache.put(key, CachedSession::build(Arc::clone(&a), cfg, pool()));
        assert!(cache.is_empty());
        assert!(cache.take(key, &a, &cfg).is_none());
    }
}
