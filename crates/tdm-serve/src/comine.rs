//! Cross-request co-mining: the batch-formation board (the waiting room).
//!
//! Two concurrent requests over the *same* database but *different*
//! configurations cannot share a cached session — yet their counting scans
//! walk the same stream. Mayura-style co-mining fuses them: the first such
//! request becomes the batch **leader**; same-database requests **join**
//! instead of mining alone. The leader then drives one
//! [`tdm_core::session::CoSession`] over every member's configuration, runs
//! the single shared union scan per level, and routes each member's
//! demultiplexed result back through its parked waiter slot. N concurrent
//! configs over one database cost ~1 scan per level instead of N.
//!
//! Batches form **before admission**: a request enters this board first and
//! only then (as a leader or a solo) takes an in-flight slot at the gate, so
//! joiners never hold a slot — the whole batch is admitted as one unit on
//! the leader's permit. That is what makes fusion *overload-first*: a
//! saturated gate (`max_in_flight` ≈ 1) is exactly when same-database
//! requests pile up behind the queued leader, and they fuse while waiting
//! instead of degrading to K serialized solo runs. A leader that is itself
//! rejected at the gate aborts its batch and shares the rejection with
//! everyone who joined while it queued.
//!
//! The board is keyed by the request's database content hash and — exactly
//! like the session cache — verified against the *full* database content
//! before a request may join: a 64-bit hash collision must never fuse two
//! tenants' scans.
//!
//! The window is bounded two ways: a leader stops collecting after
//! `window` elapses **or** as soon as the batch holds `max_batch` members
//! (whichever comes first), so saturated services form full batches without
//! paying the window latency.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tdm_core::session::MineError;
use tdm_core::stats::MiningResult;
use tdm_core::{EventDb, MinerConfig};
use tdm_mapreduce::pool::Priority;

use crate::cache::db_matches;
use crate::service::{BackendChoice, ServeError};

/// Co-mining counters since service start (a [`crate::ServiceStats`] field).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoMiningStats {
    /// Batches that closed with at least one joiner and ran a fused scan.
    pub batches: u64,
    /// Requests whose *successful* result came from a fused scan (leaders
    /// and joiners both). A failed batch counts toward `batches` and the
    /// service's `failed`, not here.
    pub fused_requests: u64,
    /// Leaders whose window elapsed with no joiner (they mined solo).
    pub solo_fallbacks: u64,
    /// Joins made while the batch leader was still **queued at the admission
    /// gate** (before it started collecting) — the waiting-room fusions that
    /// pre-admission batch formation exists for. Window joins (made during
    /// an admitted leader's formation window) are not counted here.
    pub waiting_room_joins: u64,
    /// Fused batches whose member backend vote picked a different executor
    /// than the leader's own [`BackendChoice`] (majority wins, the leader
    /// breaks ties). Only batches whose leader declared a backend vote.
    pub backend_votes_overridden: u64,
}

/// Default for how long a joiner waits on its slot before concluding the
/// delivery path is gone (`ServiceConfig::waiter_timeout` overrides it per
/// service — streaming re-mines want much shorter deadlines). Generous on
/// purpose: a fused scan takes seconds even on huge databases, so two minutes
/// of silence means the leader thread is lost in a way the [`Deliveries`]
/// drop guard could not catch (e.g. a leaked guard), and blocking the joiner
/// forever would wedge a service worker for good.
pub(crate) const DEFAULT_WAITER_TIMEOUT: Duration = Duration::from_secs(120);

/// A parked result slot: the joiner blocks on it; the leader delivers into it.
///
/// The payload is a full [`ServeError`] (not just a [`MineError`]): since
/// batches form before admission, a leader rejected at the gate shares its
/// `Overloaded` rejection with every joiner through these slots.
pub(crate) struct Waiter {
    /// The routed result plus the fused scan's wall time (so a joiner can
    /// split its blocking wait into queueing — window + residual — and
    /// service time).
    result: Mutex<Option<(Result<MiningResult, ServeError>, Duration)>>,
    done: Condvar,
}

impl Waiter {
    fn new() -> Self {
        Waiter {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn deliver(&self, r: Result<MiningResult, ServeError>, mine_time: Duration) {
        let mut slot = self.result.lock().expect("waiter slot");
        *slot = Some((r, mine_time));
        drop(slot);
        self.done.notify_all();
    }

    /// Blocks for the routed result; returns it with the batch's mining wall
    /// time (the member's share of service time). Gives up after
    /// [`DEFAULT_WAITER_TIMEOUT`] rather than blocking a service worker
    /// forever.
    #[cfg(test)]
    pub(crate) fn wait(&self) -> (Result<MiningResult, ServeError>, Duration) {
        self.wait_for(DEFAULT_WAITER_TIMEOUT)
    }

    /// [`Waiter::wait`] with an explicit deadline: if nothing is delivered
    /// within `timeout`, returns a typed [`MineError`] (backend
    /// `"co-mining-joiner"`) instead of spinning on the condvar forever.
    pub(crate) fn wait_for(
        &self,
        timeout: Duration,
    ) -> (Result<MiningResult, ServeError>, Duration) {
        let deadline = Instant::now() + timeout;
        let mut slot = self.result.lock().expect("waiter slot");
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            let now = Instant::now();
            if now >= deadline {
                let e = MineError {
                    level: 0,
                    backend: "co-mining-joiner".to_string(),
                    source: tdm_core::session::BackendError::Failed(format!(
                        "no batch result delivered within {timeout:?}; abandoning the waiter slot"
                    )),
                };
                return (Err(ServeError::Mine(e)), Duration::ZERO);
            }
            let (reacquired, _) = self
                .done
                .wait_timeout(slot, deadline - now)
                .expect("waiter slot");
            slot = reacquired;
        }
    }
}

/// One request that joined a batch: its config, its scheduling class, its
/// declared backend vote (None for caller-supplied executors), and the slot
/// its routed result goes to.
pub(crate) struct JoinedMember {
    pub(crate) config: MinerConfig,
    pub(crate) priority: Priority,
    pub(crate) backend: Option<BackendChoice>,
    waiter: Arc<Waiter>,
}

/// The joiners a leader collected, with drop-safe delivery: every member is
/// guaranteed an answer even if the leader's executor panics mid-batch
/// (undelivered members get a [`MineError`] instead of hanging forever).
pub(crate) struct Deliveries {
    members: Vec<JoinedMember>,
    /// Joins made before the leader started collecting (i.e. while it was
    /// still queued at the admission gate).
    waiting_room_joins: u64,
}

impl Deliveries {
    pub(crate) fn len(&self) -> usize {
        self.members.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Joins that happened in the waiting room (leader not yet collecting).
    pub(crate) fn waiting_room_joins(&self) -> u64 {
        self.waiting_room_joins
    }

    /// Member configurations, in join (= result) order.
    pub(crate) fn configs(&self) -> impl Iterator<Item = MinerConfig> + '_ {
        self.members.iter().map(|m| m.config)
    }

    /// Member backend votes, in join order (None = caller-supplied executor,
    /// which abstains).
    pub(crate) fn backends(&self) -> impl Iterator<Item = Option<BackendChoice>> + '_ {
        self.members.iter().map(|m| m.backend)
    }

    /// The strongest scheduling class in the batch (fusing never
    /// deprioritizes anyone's scans).
    pub(crate) fn max_priority(&self, leader: Priority) -> Priority {
        if leader == Priority::High || self.members.iter().any(|m| m.priority == Priority::High) {
            Priority::High
        } else {
            Priority::Normal
        }
    }

    /// Routes one demuxed result per member (in join order), stamped with
    /// the fused scan's wall time.
    pub(crate) fn deliver_ok(&mut self, results: Vec<MiningResult>, mine_time: Duration) {
        debug_assert_eq!(results.len(), self.members.len());
        // Drain only as many members as there are results: on a mismatch the
        // leftover members stay in the vec, so the drop guard fails them
        // explicitly instead of stranding their waiters forever.
        let n = results.len().min(self.members.len());
        for (member, result) in self.members.drain(..n).zip(results) {
            member.waiter.deliver(Ok(result), mine_time);
        }
    }

    /// The shared scan failed: every member shares the failure.
    pub(crate) fn deliver_err(&mut self, e: &MineError, mine_time: Duration) {
        for member in self.members.drain(..) {
            member
                .waiter
                .deliver(Err(ServeError::Mine(e.clone())), mine_time);
        }
    }

    /// The leader was rejected at the admission gate: every member of its
    /// aborted batch shares the rejection.
    pub(crate) fn deliver_rejected(mut self, pending: usize, limit: usize) {
        for member in self.members.drain(..) {
            member.waiter.deliver(
                Err(ServeError::Overloaded { pending, limit }),
                Duration::ZERO,
            );
        }
    }
}

impl Drop for Deliveries {
    fn drop(&mut self) {
        // Leader unwound without delivering (a panicking executor): fail the
        // members explicitly rather than leaving them blocked.
        if !self.members.is_empty() {
            let e = MineError {
                level: 0,
                backend: "co-mining-leader".to_string(),
                source: tdm_core::session::BackendError::Failed(
                    "batch leader aborted before delivering results".to_string(),
                ),
            };
            self.deliver_err(&e, Duration::ZERO);
        }
    }
}

/// How a request enters the co-mining board.
pub(crate) enum Entry {
    /// Batching is disabled (zero window): mine solo, untouched by the board.
    Solo,
    /// This request opened a batch; call [`Batcher::collect`] with the token
    /// to gather joiners (waits out the window / fills the batch).
    Leader(u64),
    /// This request joined an open batch; block on the waiter for the routed
    /// result.
    Joined(Arc<Waiter>),
}

struct OpenBatch {
    id: u64,
    db_hash: u64,
    db: Arc<EventDb>,
    joiners: Vec<JoinedMember>,
    /// Set once the leader passed admission and started collecting. Joins
    /// made before that happened in the waiting room (the leader was still
    /// queued at the gate).
    collecting: bool,
    /// Joins made while `collecting` was still false.
    waiting_room_joins: u64,
}

struct Board {
    open: Vec<OpenBatch>,
    next_id: u64,
}

/// The batch-formation board: open batches keyed by database content hash,
/// a formation window, and a batch-size bound. See the [module docs](self).
pub(crate) struct Batcher {
    window: Duration,
    max_batch: usize,
    board: Mutex<Board>,
    /// Signalled on every join so a leader waiting for a full batch wakes as
    /// soon as the last member arrives.
    changed: Condvar,
}

impl Batcher {
    /// A board holding batches open for `window` (ZERO disables co-mining)
    /// with at most `max_batch` members each, leader included (0 =
    /// unbounded, window-only).
    pub(crate) fn new(window: Duration, max_batch: usize) -> Self {
        Batcher {
            window,
            max_batch,
            board: Mutex::new(Board {
                open: Vec::new(),
                next_id: 0,
            }),
            changed: Condvar::new(),
        }
    }

    /// True when a formation window is configured.
    pub(crate) fn enabled(&self) -> bool {
        !self.window.is_zero()
    }

    /// Batches currently holding their window open.
    pub(crate) fn open_batches(&self) -> usize {
        self.board.lock().expect("co-mining board").open.len()
    }

    /// Joiners currently parked across every open batch (requests riding a
    /// leader without holding any admission slot).
    pub(crate) fn waiting_joiners(&self) -> usize {
        self.board
            .lock()
            .expect("co-mining board")
            .open
            .iter()
            .map(|s| s.joiners.len())
            .sum()
    }

    /// Routes one arriving request — **before** it takes anything at the
    /// admission gate: join an open same-database batch with room
    /// (content-verified), or open a new one and lead it. Joiners never hold
    /// an in-flight slot; they ride their leader's.
    pub(crate) fn enter(
        &self,
        db_hash: u64,
        db: &Arc<EventDb>,
        config: MinerConfig,
        priority: Priority,
        backend: Option<BackendChoice>,
    ) -> Entry {
        if !self.enabled() {
            return Entry::Solo;
        }
        let mut board = self.board.lock().expect("co-mining board");
        if let Some(slot) = board.open.iter_mut().find(|s| {
            s.db_hash == db_hash
                && (self.max_batch == 0 || s.joiners.len() + 1 < self.max_batch)
                && db_matches(&s.db, db)
        }) {
            let waiter = Arc::new(Waiter::new());
            slot.joiners.push(JoinedMember {
                config,
                priority,
                backend,
                waiter: Arc::clone(&waiter),
            });
            if !slot.collecting {
                slot.waiting_room_joins += 1;
            }
            drop(board);
            self.changed.notify_all();
            return Entry::Joined(waiter);
        }
        let id = board.next_id;
        board.next_id += 1;
        board.open.push(OpenBatch {
            id,
            db_hash,
            db: Arc::clone(db),
            joiners: Vec::new(),
            collecting: false,
            waiting_room_joins: 0,
        });
        Entry::Leader(id)
    }

    /// Leader side, called **after** passing admission: holds the batch open
    /// until the window elapses or the batch is full, then closes it and
    /// returns the joiners (possibly none). A batch that filled while the
    /// leader was queued at the gate closes immediately — no window latency
    /// under saturation.
    pub(crate) fn collect(&self, token: u64) -> Deliveries {
        let deadline = Instant::now() + self.window;
        let mut board = self.board.lock().expect("co-mining board");
        loop {
            let idx = board
                .open
                .iter()
                .position(|s| s.id == token)
                .expect("leader's batch vanished from the board");
            board.open[idx].collecting = true;
            let full = self.max_batch != 0 && board.open[idx].joiners.len() + 1 >= self.max_batch;
            let now = Instant::now();
            if full || now >= deadline {
                let slot = board.open.swap_remove(idx);
                return Deliveries {
                    members: slot.joiners,
                    waiting_room_joins: slot.waiting_room_joins,
                };
            }
            let (reacquired, _) = self
                .changed
                .wait_timeout(board, deadline - now)
                .expect("co-mining board");
            board = reacquired;
        }
    }

    /// Leader side, on a gate rejection: closes the batch *without* mining
    /// and returns whoever joined while the leader queued, so the caller can
    /// share the rejection ([`Deliveries::deliver_rejected`]) instead of
    /// stranding them until the waiter timeout.
    pub(crate) fn abort(&self, token: u64) -> Deliveries {
        let mut board = self.board.lock().expect("co-mining board");
        let idx = board
            .open
            .iter()
            .position(|s| s.id == token)
            .expect("leader's batch vanished from the board");
        let slot = board.open.swap_remove(idx);
        Deliveries {
            members: slot.joiners,
            waiting_room_joins: slot.waiting_room_joins,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdm_core::Alphabet;

    fn db_of(s: &str) -> Arc<EventDb> {
        Arc::new(EventDb::from_str_symbols(&Alphabet::latin26(), s).unwrap())
    }

    fn hash_of(db: &EventDb) -> u64 {
        crate::cache::db_content_hash(db)
    }

    #[test]
    fn zero_window_is_always_solo() {
        let b = Batcher::new(Duration::ZERO, 0);
        assert!(!b.enabled());
        let db = db_of("ABAB");
        match b.enter(
            hash_of(&db),
            &db,
            MinerConfig::default(),
            Priority::Normal,
            None,
        ) {
            Entry::Solo => {}
            _ => panic!("zero window must not open batches"),
        }
        assert_eq!(b.open_batches(), 0);
    }

    #[test]
    fn leader_joiner_handshake_routes_results() {
        let b = Arc::new(Batcher::new(Duration::from_secs(5), 2));
        let db = db_of("ABCABC");
        let h = hash_of(&db);
        let Entry::Leader(token) = b.enter(h, &db, MinerConfig::default(), Priority::Normal, None)
        else {
            panic!("first request must lead");
        };
        assert_eq!(b.open_batches(), 1);
        let joiner = {
            let b = Arc::clone(&b);
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let Entry::Joined(waiter) =
                    b.enter(h, &db, MinerConfig::default(), Priority::High, None)
                else {
                    panic!("second same-db request must join");
                };
                waiter.wait()
            })
        };
        // max_batch = 2: collect returns as soon as the joiner arrives — no
        // window sleep.
        let mut joiners = b.collect(token);
        assert_eq!(joiners.len(), 1);
        assert_eq!(joiners.max_priority(Priority::Normal), Priority::High);
        assert_eq!(b.open_batches(), 0);
        let result = MiningResult {
            levels: Vec::new(),
            db_len: db.len(),
        };
        joiners.deliver_ok(vec![result.clone()], Duration::from_millis(7));
        let (routed, mine_time) = joiner.join().unwrap();
        assert_eq!(routed.unwrap(), result);
        assert_eq!(mine_time, Duration::from_millis(7));
    }

    #[test]
    fn different_content_with_forced_hash_never_joins() {
        let b = Batcher::new(Duration::from_secs(5), 0);
        let a = db_of("ABCABC");
        let other = db_of("CBACBA"); // same length/alphabet, different content
        let h = hash_of(&a);
        let Entry::Leader(token) = b.enter(h, &a, MinerConfig::default(), Priority::Normal, None)
        else {
            panic!("first request must lead");
        };
        // A forged/colliding key: the other database presented under A's
        // hash must open its own batch, not fuse with A's.
        match b.enter(h, &other, MinerConfig::default(), Priority::Normal, None) {
            Entry::Leader(_) => {}
            _ => panic!("content verification must reject the collision"),
        }
        assert_eq!(b.open_batches(), 2);
        let joiners = b.collect(token);
        assert!(joiners.is_empty());
    }

    #[test]
    fn full_batches_spill_to_a_new_leader() {
        let b = Batcher::new(Duration::from_secs(5), 2);
        let db = db_of("XYXY");
        let h = hash_of(&db);
        let Entry::Leader(_) = b.enter(h, &db, MinerConfig::default(), Priority::Normal, None)
        else {
            panic!("lead");
        };
        let Entry::Joined(_) = b.enter(h, &db, MinerConfig::default(), Priority::Normal, None)
        else {
            panic!("join");
        };
        // Batch of 2 is full: the third same-db request leads a fresh batch.
        match b.enter(h, &db, MinerConfig::default(), Priority::Normal, None) {
            Entry::Leader(_) => {}
            _ => panic!("full batch must spill"),
        }
        assert_eq!(b.open_batches(), 2);
    }

    #[test]
    fn dropped_deliveries_fail_members_instead_of_hanging() {
        let b = Arc::new(Batcher::new(Duration::from_secs(5), 2));
        let db = db_of("ABAB");
        let h = hash_of(&db);
        let Entry::Leader(token) = b.enter(h, &db, MinerConfig::default(), Priority::Normal, None)
        else {
            panic!("lead");
        };
        let joiner = {
            let b = Arc::clone(&b);
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let Entry::Joined(waiter) =
                    b.enter(h, &db, MinerConfig::default(), Priority::Normal, None)
                else {
                    panic!("join");
                };
                waiter.wait()
            })
        };
        let joiners = b.collect(token);
        assert_eq!(joiners.len(), 1);
        drop(joiners); // leader "panicked": members must still get an answer
        let ServeError::Mine(err) = joiner.join().unwrap().0.unwrap_err() else {
            panic!("a dropped delivery must surface as a mining error");
        };
        assert_eq!(err.backend, "co-mining-leader");
    }

    #[test]
    fn aborted_batches_share_the_gate_rejection() {
        let b = Arc::new(Batcher::new(Duration::from_secs(5), 0));
        let db = db_of("ABAB");
        let h = hash_of(&db);
        let Entry::Leader(token) = b.enter(h, &db, MinerConfig::default(), Priority::Normal, None)
        else {
            panic!("lead");
        };
        let joiner = {
            let b = Arc::clone(&b);
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                let Entry::Joined(waiter) =
                    b.enter(h, &db, MinerConfig::default(), Priority::Normal, None)
                else {
                    panic!("join");
                };
                waiter.wait()
            })
        };
        // Wait for the joiner to be parked before aborting.
        while b.waiting_joiners() == 0 {
            std::thread::yield_now();
        }
        let joiners = b.abort(token);
        assert_eq!(joiners.len(), 1);
        // The joiner arrived before any collect() call, i.e. while the
        // leader was still queued at the gate.
        assert_eq!(joiners.waiting_room_joins(), 1);
        assert_eq!(b.open_batches(), 0);
        joiners.deliver_rejected(9, 4);
        let ServeError::Overloaded { pending, limit } = joiner.join().unwrap().0.unwrap_err()
        else {
            panic!("an aborted batch must share the leader's Overloaded rejection");
        };
        assert_eq!((pending, limit), (9, 4));
    }

    #[test]
    fn waiter_gives_up_on_a_never_delivering_board() {
        // A waiter whose leader never delivers (and whose Deliveries guard
        // never fires) must time out with a typed error, not block forever.
        let w = Waiter::new();
        let (result, mine_time) = w.wait_for(Duration::from_millis(20));
        let ServeError::Mine(err) = result.unwrap_err() else {
            panic!("a timed-out waiter must surface as a mining error");
        };
        assert_eq!(err.backend, "co-mining-joiner");
        assert!(err.to_string().contains("no batch result delivered"));
        assert_eq!(mine_time, Duration::ZERO);
    }

    #[test]
    fn waiter_delivery_beats_the_timeout() {
        let w = Arc::new(Waiter::new());
        let delivering = {
            let w = Arc::clone(&w);
            std::thread::spawn(move || {
                let result = MiningResult {
                    levels: Vec::new(),
                    db_len: 4,
                };
                w.deliver(Ok(result), Duration::from_millis(3));
            })
        };
        let (result, mine_time) = w.wait_for(Duration::from_secs(30));
        delivering.join().unwrap();
        assert_eq!(result.unwrap().db_len, 4);
        assert_eq!(mine_time, Duration::from_millis(3));
    }

    #[test]
    fn window_expiry_closes_an_empty_batch() {
        let b = Batcher::new(Duration::from_millis(10), 0);
        let db = db_of("ABAB");
        let Entry::Leader(token) = b.enter(
            hash_of(&db),
            &db,
            MinerConfig::default(),
            Priority::Normal,
            None,
        ) else {
            panic!("lead");
        };
        let joiners = b.collect(token);
        assert!(joiners.is_empty());
        assert_eq!(b.open_batches(), 0);
    }
}
