//! Fair FIFO admission with an in-flight limit and two priority classes.
//!
//! A mining request costs a level loop of pool-wide scans, so admitting every
//! arriving client at once just convoys them on the shared worker pool and
//! inflates everyone's latency. The service instead bounds how many requests
//! *mine* concurrently: arrivals take a ticket and block until admitted.
//! Admission order is strict FIFO within a priority class, and
//! [`Priority::High`] tickets are admitted before waiting
//! [`Priority::Normal`] ones (matching the pool's own high/normal job lanes),
//! so interactive traffic overtakes bulk traffic at both layers. A bounded
//! waiting room ([`AdmissionQueue::new`]'s `max_pending`) converts overload
//! into an immediate, explicit rejection instead of an unbounded queue.
//!
//! ## Aging (starvation control)
//!
//! Strict high-before-normal would let a continuous High stream starve a
//! queued Normal request forever. The gate therefore **ages** the normal
//! lane: after `aging_limit` consecutive High admissions while a Normal
//! request was waiting, the next admission goes to the oldest Normal ticket
//! (and the streak resets). High traffic still overtakes — it just can't
//! monopolize: a waiting Normal request is admitted after at most
//! `aging_limit` High admissions, however long the High stream runs.
//! [`AdmissionQueue::with_aging`] tunes the bound; `0` disables aging
//! (strict priority, the pre-aging behavior).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use tdm_mapreduce::pool::Priority;

/// The admission queue refused to enqueue a request: the waiting room is
/// already at `max_pending`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Requests waiting when the rejection happened.
    pub pending: usize,
    /// The configured waiting-room bound.
    pub limit: usize,
}

/// Default aging bound: a waiting Normal request is admitted after at most
/// this many consecutive High admissions.
pub const DEFAULT_AGING_LIMIT: usize = 8;

struct AdmitState {
    next_ticket: u64,
    in_flight: usize,
    high: VecDeque<u64>,
    normal: VecDeque<u64>,
    /// Consecutive High admissions made while a Normal request waited.
    high_streak: usize,
}

impl AdmitState {
    fn pending(&self) -> usize {
        self.high.len() + self.normal.len()
    }

    /// The one ticket eligible to be admitted next: the head of the high
    /// lane, or the head of the normal lane when the high lane is empty —
    /// **or** when the normal lane has aged past `aging_limit` consecutive
    /// High admissions (starvation control).
    fn next_eligible(&self, aging_limit: usize) -> Option<u64> {
        if aging_limit != 0 && self.high_streak >= aging_limit {
            if let Some(&escalated) = self.normal.front() {
                return Some(escalated);
            }
        }
        self.high.front().or_else(|| self.normal.front()).copied()
    }
}

/// A blocking, priority-aware, fair-FIFO admission gate with normal-lane
/// aging. See the [module docs](self).
pub struct AdmissionQueue {
    max_in_flight: usize,
    max_pending: usize,
    aging_limit: usize,
    state: Mutex<AdmitState>,
    admitted: Condvar,
}

impl std::fmt::Debug for AdmissionQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().expect("admission state");
        f.debug_struct("AdmissionQueue")
            .field("max_in_flight", &self.max_in_flight)
            .field("in_flight", &st.in_flight)
            .field("pending", &st.pending())
            .finish()
    }
}

/// Proof of admission: holds one in-flight slot, released on drop.
#[must_use = "dropping the permit immediately releases the in-flight slot"]
#[derive(Debug)]
pub struct Permit<'a> {
    queue: &'a AdmissionQueue,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.queue.state.lock().expect("admission state");
        st.in_flight -= 1;
        drop(st);
        self.queue.admitted.notify_all();
    }
}

impl AdmissionQueue {
    /// A gate admitting at most `max_in_flight` requests concurrently
    /// (clamped to ≥ 1) with at most `max_pending` more waiting (0 =
    /// unbounded waiting room) and the default aging bound
    /// ([`DEFAULT_AGING_LIMIT`]).
    pub fn new(max_in_flight: usize, max_pending: usize) -> Self {
        AdmissionQueue::with_aging(max_in_flight, max_pending, DEFAULT_AGING_LIMIT)
    }

    /// Like [`new`](AdmissionQueue::new), with an explicit aging bound: a
    /// waiting Normal request is admitted after at most `aging_limit`
    /// consecutive High admissions. `0` disables aging (strict priority — a
    /// continuous High stream can then starve the normal lane).
    pub fn with_aging(max_in_flight: usize, max_pending: usize, aging_limit: usize) -> Self {
        AdmissionQueue {
            max_in_flight: max_in_flight.max(1),
            max_pending,
            aging_limit,
            state: Mutex::new(AdmitState {
                next_ticket: 0,
                in_flight: 0,
                high: VecDeque::new(),
                normal: VecDeque::new(),
                high_streak: 0,
            }),
            admitted: Condvar::new(),
        }
    }

    /// The aging bound this gate runs with (0 = aging disabled).
    pub fn aging_limit(&self) -> usize {
        self.aging_limit
    }

    /// Takes a ticket and blocks until it is this request's turn and an
    /// in-flight slot is free.
    ///
    /// # Errors
    /// [`Overloaded`] immediately when the waiting room is full.
    pub fn acquire(&self, priority: Priority) -> Result<Permit<'_>, Overloaded> {
        let mut st = self.state.lock().expect("admission state");
        if self.max_pending != 0 && st.pending() >= self.max_pending {
            return Err(Overloaded {
                pending: st.pending(),
                limit: self.max_pending,
            });
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        match priority {
            Priority::High => st.high.push_back(ticket),
            Priority::Normal => st.normal.push_back(ticket),
        }
        loop {
            if st.in_flight < self.max_in_flight
                && st.next_eligible(self.aging_limit) == Some(ticket)
            {
                match priority {
                    Priority::High => st.high.pop_front(),
                    Priority::Normal => st.normal.pop_front(),
                };
                // Aging bookkeeping: High admissions made while Normal work
                // waits build the streak; any Normal admission resets it.
                match priority {
                    Priority::High if !st.normal.is_empty() => st.high_streak += 1,
                    Priority::High => st.high_streak = 0,
                    Priority::Normal => st.high_streak = 0,
                }
                st.in_flight += 1;
                let slots_left = st.in_flight < self.max_in_flight;
                drop(st);
                if slots_left {
                    // The next waiter may be admissible right away.
                    self.admitted.notify_all();
                }
                return Ok(Permit { queue: self });
            }
            st = self.admitted.wait(st).expect("admission state");
        }
    }

    /// Non-blocking admission: takes a slot immediately when one is free and
    /// nobody is queued ahead, `None` otherwise — this call never waits and
    /// never takes a ticket. Per-tenant quota gates (the network front-end's
    /// in-flight quotas) use this to turn quota exhaustion into an immediate
    /// typed error instead of parking a bounded handler thread at the gate.
    pub fn try_acquire(&self) -> Option<Permit<'_>> {
        let mut st = self.state.lock().expect("admission state");
        if st.in_flight < self.max_in_flight && st.pending() == 0 {
            st.in_flight += 1;
            Some(Permit { queue: self })
        } else {
            None
        }
    }

    /// Requests currently waiting for admission.
    pub fn pending(&self) -> usize {
        self.state.lock().expect("admission state").pending()
    }

    /// Requests currently admitted (holding a [`Permit`]).
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("admission state").in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn in_flight_never_exceeds_the_limit() {
        let q = Arc::new(AdmissionQueue::new(2, 0));
        let peak = Arc::new(AtomicUsize::new(0));
        let live = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let q = Arc::clone(&q);
                let peak = Arc::clone(&peak);
                let live = Arc::clone(&live);
                s.spawn(move || {
                    let permit = q.acquire(Priority::Normal).unwrap();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                    live.fetch_sub(1, Ordering::SeqCst);
                    drop(permit);
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "admission limit breached");
        assert_eq!(q.in_flight(), 0);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn fifo_within_a_priority_class() {
        // One slot; a holder blocks it while three tickets queue up. They
        // must be admitted in arrival order.
        let q = Arc::new(AdmissionQueue::new(1, 0));
        let order = Arc::new(Mutex::new(Vec::<usize>::new()));
        let first = q.acquire(Priority::Normal).unwrap();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for i in 0..3 {
                let qc = Arc::clone(&q);
                let order = Arc::clone(&order);
                handles.push(s.spawn(move || {
                    let p = qc.acquire(Priority::Normal).unwrap();
                    order.lock().unwrap().push(i);
                    drop(p);
                }));
                // Serialize arrivals so ticket order matches i.
                while q.pending() < i + 1 {
                    std::thread::yield_now();
                }
            }
            drop(first);
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn high_priority_overtakes_waiting_normal() {
        let q = Arc::new(AdmissionQueue::new(1, 0));
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let holder = q.acquire(Priority::Normal).unwrap();
        std::thread::scope(|s| {
            {
                let q = Arc::clone(&q);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    let p = q.acquire(Priority::Normal).unwrap();
                    order.lock().unwrap().push("normal");
                    drop(p);
                });
            }
            while q.pending() < 1 {
                std::thread::yield_now();
            }
            {
                let q = Arc::clone(&q);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    let p = q.acquire(Priority::High).unwrap();
                    order.lock().unwrap().push("high");
                    drop(p);
                });
            }
            while q.pending() < 2 {
                std::thread::yield_now();
            }
            drop(holder);
        });
        assert_eq!(*order.lock().unwrap(), vec!["high", "normal"]);
    }

    #[test]
    fn bounded_waiting_room_rejects_overload() {
        let q = Arc::new(AdmissionQueue::new(1, 1));
        let holder = q.acquire(Priority::Normal).unwrap();
        std::thread::scope(|s| {
            {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let p = q.acquire(Priority::Normal).unwrap();
                    drop(p);
                });
            }
            while q.pending() < 1 {
                std::thread::yield_now();
            }
            let err = q.acquire(Priority::Normal).unwrap_err();
            assert_eq!(
                err,
                Overloaded {
                    pending: 1,
                    limit: 1
                }
            );
            drop(holder);
        });
    }

    #[test]
    fn aging_prevents_a_continuous_high_stream_from_starving_normal() {
        // One slot, aging after 2 High admissions. A Normal request queues
        // first, then a stream of High requests keeps the high lane non-empty
        // for the rest of the test. Under strict priority the Normal ticket
        // would be admitted dead last; with aging it must go after exactly 2
        // High admissions.
        let q = Arc::new(AdmissionQueue::with_aging(1, 0, 2));
        assert_eq!(q.aging_limit(), 2);
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let holder = q.acquire(Priority::Normal).unwrap();
        std::thread::scope(|s| {
            {
                let q = Arc::clone(&q);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    let p = q.acquire(Priority::Normal).unwrap();
                    order.lock().unwrap().push("normal");
                    drop(p);
                });
            }
            while q.pending() < 1 {
                std::thread::yield_now();
            }
            for i in 0..5usize {
                {
                    let q = Arc::clone(&q);
                    let order = Arc::clone(&order);
                    s.spawn(move || {
                        let p = q.acquire(Priority::High).unwrap();
                        order.lock().unwrap().push("high");
                        drop(p);
                    });
                }
                // Serialize arrivals so the high lane's ticket order is fixed.
                while q.pending() < i + 2 {
                    std::thread::yield_now();
                }
            }
            drop(holder);
        });
        let order = order.lock().unwrap();
        assert_eq!(order.len(), 6);
        let normal_pos = order
            .iter()
            .position(|s| *s == "normal")
            .expect("normal request never admitted — starved");
        assert_eq!(
            normal_pos, 2,
            "normal must be admitted after exactly aging_limit high admissions: {order:?}"
        );
    }

    #[test]
    fn aging_zero_keeps_strict_priority() {
        // aging_limit 0 restores the pre-aging behavior: every queued High
        // ticket is admitted before the waiting Normal one.
        let q = Arc::new(AdmissionQueue::with_aging(1, 0, 0));
        let order = Arc::new(Mutex::new(Vec::<&'static str>::new()));
        let holder = q.acquire(Priority::Normal).unwrap();
        std::thread::scope(|s| {
            {
                let q = Arc::clone(&q);
                let order = Arc::clone(&order);
                s.spawn(move || {
                    let p = q.acquire(Priority::Normal).unwrap();
                    order.lock().unwrap().push("normal");
                    drop(p);
                });
            }
            while q.pending() < 1 {
                std::thread::yield_now();
            }
            for i in 0..3usize {
                {
                    let q = Arc::clone(&q);
                    let order = Arc::clone(&order);
                    s.spawn(move || {
                        let p = q.acquire(Priority::High).unwrap();
                        order.lock().unwrap().push("high");
                        drop(p);
                    });
                }
                while q.pending() < i + 2 {
                    std::thread::yield_now();
                }
            }
            drop(holder);
        });
        assert_eq!(
            *order.lock().unwrap(),
            vec!["high", "high", "high", "normal"]
        );
    }

    #[test]
    fn try_acquire_never_blocks_and_respects_queued_waiters() {
        let q = Arc::new(AdmissionQueue::new(1, 0));
        let first = q.try_acquire().expect("free slot");
        assert_eq!(q.in_flight(), 1);
        // Slot taken: immediate None, no queueing.
        assert!(q.try_acquire().is_none());
        assert_eq!(q.pending(), 0);
        // With a blocking waiter queued, a freed slot belongs to the waiter —
        // try_acquire must not jump the line.
        std::thread::scope(|s| {
            {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    let p = q.acquire(Priority::Normal).unwrap();
                    drop(p);
                });
            }
            while q.pending() < 1 {
                std::thread::yield_now();
            }
            assert!(q.try_acquire().is_none(), "queued waiter has the next slot");
            drop(first);
        });
        // Idle again: the slot is immediately takeable.
        let p = q.try_acquire().expect("idle gate");
        drop(p);
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn zero_in_flight_clamps_to_one() {
        let q = AdmissionQueue::new(0, 0);
        let p = q.acquire(Priority::Normal).unwrap();
        assert_eq!(q.in_flight(), 1);
        drop(p);
        assert_eq!(q.in_flight(), 0);
    }
}
