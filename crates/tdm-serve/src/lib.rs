//! # tdm-serve — the multi-tenant serving layer
//!
//! The paper characterizes the throughput of *one* mining run; a production
//! service faces many concurrent runs from many tenants. Later GPU mining
//! systems spell out what that takes: Everest wraps its kernels in a
//! scheduling/serving layer, and Mayura co-mines similar queries against the
//! same data to amortize compilation. This crate is that layer for the CPU
//! engine of this reproduction:
//!
//! * [`MiningService`] — accepts [`MiningRequest`]s (an `Arc<EventDb>`
//!   handle, a `MinerConfig`, a [`BackendChoice`], a [`Priority`]) from any
//!   number of client threads and serves each a full [`MiningResponse`];
//! * **one shared pool** — every request's counting scans multiplex over a
//!   single machine-sized [`Pool`](tdm_mapreduce::pool::Pool) (sessions are
//!   built with `MiningSessionBuilder::with_pool`), so 16 clients use the
//!   same threads one client would, instead of 16 × workers;
//! * **fair admission** ([`admission`]) — a configurable in-flight limit with
//!   strict FIFO order per priority class and a bounded waiting room that
//!   rejects overload explicitly ([`ServeError::Overloaded`]);
//! * **a session cache** ([`cache`]) — parked `MiningSession<'static>`s keyed
//!   by (database content hash, config fingerprint), verified against the
//!   full request content before reuse. A hit skips session planning (stream
//!   snapshot, shard bounds, buffer allocation) and re-enters the level loop
//!   with the compiled candidate buffers already allocated and warm — levels
//!   recompile in place, so the compiled storage keeps the same address
//!   across requests;
//! * **cross-request co-mining** ([`comine`]) — with a formation window
//!   configured ([`ServiceConfig::comine_window`]), concurrent requests that
//!   share a database (same content hash, fully verified) but differ in
//!   configuration are **fused**: the first one leads, later ones join, and
//!   the whole batch is mined by one `tdm_core::session::CoSession` — a
//!   single deduplicated union scan per level instead of one scan per
//!   request, with counts demultiplexed back per member. Batches form
//!   **before admission** (overload-first scheduling): joiners never hold an
//!   in-flight slot, so a saturated gate — exactly when same-database
//!   requests pile up — fuses K queued requests into one admitted unit
//!   instead of K serialized solo runs. Fused batches reuse parked
//!   [`CoSessionCache`] sessions keyed by (db hash, *sorted* config-set
//!   fingerprint), and [`MiningService::submit`]-style members vote on the
//!   fused executor (majority wins, leader breaks ties). Results stay
//!   bit-identical to solo mining (the workspace `tests/comining.rs`
//!   differential suite proves it under adversarial overlap);
//! * **streaming ingestion** ([`ingest`]) — per-tenant append buffers with
//!   count-or-age re-mine triggers and **fence** semantics: a sealed window
//!   is committed onto the tenant's epoch-versioned
//!   [`EventDb`](tdm_core::EventDb) and re-mined
//!   exactly once, appends during a re-mine land in the next window, and
//!   concurrent same-content window re-mines fuse on the batch board like
//!   any other requests ([`StreamIngest`]).
//!
//! Results are **bit-identical** to a serial `Miner::mine` of the same
//! request, for every backend choice and any concurrency level — the
//! workspace test suite asserts this with 16 concurrent clients.
//!
//! ```
//! use std::sync::Arc;
//! use tdm_core::{Alphabet, EventDb, MinerConfig};
//! use tdm_serve::{CacheOutcome, MiningRequest, MiningService, ServiceConfig};
//!
//! let service = MiningService::new(ServiceConfig { workers: 2, ..Default::default() });
//! let db = Arc::new(EventDb::from_str_symbols(&Alphabet::latin26(), &"ABCA".repeat(60)).unwrap());
//! let request = MiningRequest::new(db, MinerConfig { alpha: 0.02, ..Default::default() });
//!
//! let cold = service.submit(&request).unwrap();
//! let warm = service.submit(&request).unwrap();
//! assert_eq!(cold.stats.cache, CacheOutcome::Miss);
//! assert_eq!(warm.stats.cache, CacheOutcome::Hit);   // reused parked session
//! assert_eq!(cold.result, warm.result);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod cache;
pub mod comine;
pub mod ingest;
pub mod service;

pub use admission::{AdmissionQueue, Overloaded, Permit, DEFAULT_AGING_LIMIT};
pub use cache::{
    group_fingerprint, session_key, CacheStats, CachedCoSession, CachedSession, CoSessionCache,
    SessionCache, SessionKey,
};
pub use comine::CoMiningStats;
pub use ingest::{
    AppendOutcome, FlushReport, IngestError, IngestStats, IngestTriggers, StreamIngest,
    TenantSnapshot,
};
pub use service::{
    BackendChoice, CacheOutcome, MiningRequest, MiningResponse, MiningService, ResponseStats,
    ServeError, ServiceConfig, ServiceStats,
};

// The scheduling vocabulary clients need when building requests.
pub use tdm_mapreduce::pool::Priority;
